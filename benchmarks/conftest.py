"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's tables or figures at the
paper's problem scale, prints the rendered table next to the paper's
numbers, and records per-row fidelity ratios in the pytest-benchmark
``extra_info`` so ``--benchmark-json`` output carries them.

Run with::

    pytest benchmarks/ --benchmark-only

Tables are also written to ``benchmarks/output/`` for EXPERIMENTS.md.
"""

import os

import pytest

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


def pytest_collection_modifyitems(items):
    """Every test under ``benchmarks/`` is tier-2 by construction.

    Tier 1 (``pytest -x -q``, testpaths=tests) stays fast; the slow
    table reproductions and the perf suite carry the ``tier2`` marker
    (registered in pyproject.toml) so ``pytest benchmarks/ -m tier2``
    and CI dashboards can select them explicitly.
    """
    for item in items:
        item.add_marker(pytest.mark.tier2)


def save_and_print(result):
    """Persist a rendered experiment table and echo it to the terminal."""
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    path = os.path.join(OUTPUT_DIR, f"{result.experiment_id}.txt")
    text = result.render()
    with open(path, "w") as fh:
        fh.write(text + "\n")
    print("\n" + text)
    return path


def attach_fidelity(benchmark, result):
    """Record per-row measured/paper ratios on the benchmark record."""
    ratios = {c.label: round(c.ratio, 3)
              for c in result.comparisons if c.ratio}
    benchmark.extra_info["fidelity_ratios"] = ratios
    worst = result.worst_ratio()
    if worst is not None:
        benchmark.extra_info["worst_ratio"] = round(worst, 3)


@pytest.fixture
def record(benchmark):
    """Run an experiment driver once under the benchmark, with reporting."""
    def _run(fn, *args, **kwargs):
        result = benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                    rounds=1, iterations=1)
        save_and_print(result)
        attach_fidelity(benchmark, result)
        return result
    return _run
