"""Tier-2 perf suite: executes ``repro bench`` end to end.

These tests run the real benchmark bodies (the same ones the
``repro bench`` CLI and the CI smoke job use) and pin two things:

* the emitted document keeps the ``repro-bench/1`` schema, so the
  BENCH_*.json perf trajectory stays machine-readable across PRs;
* the determinism invariants recorded by the smoke suite match the
  committed baseline bit for bit — invariants are machine-independent,
  so this asserts simulation semantics, not speed.

Wall-clock values are intentionally *not* asserted here (machines
differ); the 20%-regression gate lives in the CI job via
``repro bench --smoke --check``.
"""

import json
import pathlib

from repro import bench

BASELINE = pathlib.Path(__file__).parent / "baseline_smoke.json"


def test_smoke_suite_schema_and_coverage():
    doc = bench.run_benchmarks(smoke=True, reps=1)
    assert doc["schema"] == bench.SCHEMA
    assert doc["smoke"] is True
    names = [r["name"] for r in doc["results"]]
    assert names == list(bench.BENCHMARKS)
    kinds = {r["kind"] for r in doc["results"]}
    assert kinds == {"micro", "macro"}
    for r in doc["results"]:
        assert r["value"] > 0
        assert r["invariants"], f"{r['name']} records no invariants"
        assert isinstance(r["higher_is_better"], bool)


def test_smoke_invariants_match_committed_baseline():
    """The simulator computes exactly what it computed at baseline time."""
    baseline = json.loads(BASELINE.read_text())
    doc = bench.run_benchmarks(smoke=True, reps=1)
    base_inv = {r["name"]: r["invariants"] for r in baseline["results"]}
    cur_inv = {r["name"]: r["invariants"] for r in doc["results"]}
    assert cur_inv == base_inv


def test_full_macro_multicore_invariants():
    """The full-grid (108-worker) macro run is deterministic and big."""
    doc = bench.run_benchmarks(smoke=False, reps=1,
                               only=["jacobi_multicore"])
    (res,) = doc["results"]
    inv = res["invariants"]
    assert inv["events"] > 100_000
    assert inv["sim_now"] > 0
    assert len(inv["grid_sha"]) == 16
    # run again: identical invariants (the in-run reps check only covers
    # repetitions inside one run_benchmarks call)
    doc2 = bench.run_benchmarks(smoke=False, reps=1,
                                only=["jacobi_multicore"])
    assert doc2["results"][0]["invariants"] == inv


def test_report_roundtrip(tmp_path):
    doc = bench.run_benchmarks(smoke=True, reps=1, only=["engine_events"])
    out = tmp_path / "bench.json"
    bench.write_report(doc, str(out))
    assert json.loads(out.read_text()) == doc
