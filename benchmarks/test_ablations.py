"""Ablation benchmarks for the design choices DESIGN.md calls out.

These go beyond the paper's tables: each ablation flips one design
decision of the optimised kernel (or of the machine model) and measures
the cost, quantifying *why* the paper's choices are the right ones.
"""

import pytest

from repro.core.grid import LaplaceProblem
from repro.core.jacobi_optimized import OptimizedConfig, OptimizedJacobiRunner
from repro.arch.device import GrayskullDevice
from repro.perfmodel.calibration import DEFAULT_COSTS
from repro.perfmodel.scaling import JacobiScalingModel


def _device():
    return GrayskullDevice(dram_bank_capacity=32 << 20)


def _run(cfg, problem=None, cores=(1, 1)):
    problem = problem or LaplaceProblem(nx=1024, ny=64)
    runner = OptimizedJacobiRunner(_device(), problem, cfg,
                                   cores_y=cores[0], cores_x=cores[1])
    return runner.run(100, sim_iterations=2, read_back=False)


def test_ablation_dst_accumulation(benchmark):
    """The paper's rejected FPU variant: accumulate in dst registers.

    Confirms Section IV: 'this actually resulted in lower performance'.
    """
    def run():
        base = _run(OptimizedConfig())
        ablated = _run(OptimizedConfig(accumulate_in_dst=True))
        return base.gpts, ablated.gpts
    base, ablated = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nListing-2 pipeline: {base:.3f} GPt/s; "
          f"dst accumulation: {ablated:.3f} GPt/s")
    assert ablated < base


def test_ablation_interleaving_for_jacobi(benchmark):
    """Section V's conclusion: 'no real downside to using memory
    interleaving' — the optimised kernel is at least as fast interleaved."""
    def run():
        inter = _run(OptimizedConfig(interleaved=True))
        single = _run(OptimizedConfig(interleaved=False))
        return inter.gpts, single.gpts
    inter, single = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\ninterleaved: {inter:.3f} GPt/s; single bank: {single:.3f}")
    assert inter >= 0.9 * single


def test_ablation_chunk_width(benchmark):
    """Fewer, larger reads: shrinking the row chunk hurts (Section V
    lesson 1 applied to the real kernel)."""
    def run():
        problem = LaplaceProblem(nx=1024, ny=32)
        wide = _run(OptimizedConfig(chunk=1024), problem)
        narrow = _run(OptimizedConfig(chunk=128), problem)
        return wide.gpts, narrow.gpts
    wide, narrow = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n1024-elem chunks: {wide:.3f} GPt/s; 128-elem: {narrow:.3f}")
    assert wide > narrow


def test_ablation_ragged_x_split(benchmark):
    """Table VIII's 8x8 anomaly: an X split that breaks the 1024-element
    chunk wastes FPU passes."""
    def run():
        model = JacobiScalingModel()
        aligned = model.run(9216, 1024, 5000, 8, 9)   # wx = 1024
        ragged = model.run(9216, 1024, 5000, 8, 8)    # wx = 1152
        return (aligned.gpts / aligned.total_cores,
                ragged.gpts / ragged.total_cores)
    per_core_aligned, per_core_ragged = benchmark.pedantic(
        run, rounds=1, iterations=1)
    print(f"\nper-core GPt/s: aligned-X {per_core_aligned:.4f}, "
          f"ragged-X {per_core_ragged:.4f}")
    assert per_core_aligned > per_core_ragged


def test_ablation_memcpy_cost_sensitivity(benchmark):
    """If baby-core memcpy were 10x faster, the initial kernel's gap to
    the optimised one would shrink dramatically — the cost model term the
    whole Section-IV analysis hinges on."""
    from repro.core.jacobi_initial import InitialConfig, InitialJacobiRunner

    def run():
        problem = LaplaceProblem(nx=256, ny=64)
        slow = InitialJacobiRunner(_device(), problem).run(
            50, sim_iterations=2, read_back=False)
        fast_costs = DEFAULT_COSTS.with_overrides(
            memcpy_rate=DEFAULT_COSTS.memcpy_rate * 10,
            memcpy_call=DEFAULT_COSTS.memcpy_call / 10)
        dev = GrayskullDevice(fast_costs, dram_bank_capacity=32 << 20)
        fast = InitialJacobiRunner(dev, problem).run(
            50, sim_iterations=2, read_back=False)
        return slow.gpts, fast.gpts
    slow, fast = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\ninitial kernel: {slow:.4f} GPt/s; with 10x memcpy: {fast:.4f}")
    assert fast > 2 * slow


def test_ablation_print_server(benchmark):
    """'Enabling the print server ... incurred significant overhead'
    (Section IV): modelled as a uniform slowdown factor."""
    def run():
        base = _run(OptimizedConfig())
        c = DEFAULT_COSTS
        return base.kernel_time_s, base.kernel_time_s * c.print_server_slowdown
    t_off, t_on = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nprint server off: {t_off:.4f}s; on (modelled): {t_on:.4f}s")
    assert t_on > 10 * t_off
