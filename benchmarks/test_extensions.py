"""Benchmarks for the future-work extensions (paper Section VIII).

Not tables from the paper — these quantify the three directions its
conclusions sketch: SRAM-resident execution with neighbour comms, more
complex stencils (advection), and the Wormhole card with FP32 and
connected multi-card scaling.
"""

import pytest

from repro.analysis.report import Table
from repro.arch.device import GrayskullDevice
from repro.core.grid import LaplaceProblem
from repro.core.jacobi_optimized import OptimizedJacobiRunner
from repro.core.jacobi_sram import SramJacobiRunner
from repro.core.stencil import StencilRunner, StencilSpec
from repro.perfmodel.scaling import JacobiScalingModel
from repro.perfmodel.wormhole import WormholeModel


def _device():
    return GrayskullDevice(dram_bank_capacity=32 << 20)


def test_sram_resident_vs_dram_streaming(benchmark):
    """Section VIII: 'copying the domain into local SRAM and operating
    from there' — quantified against the DRAM-streaming kernel."""
    def run():
        p = LaplaceProblem(nx=512, ny=128)
        rows = []
        for cy in (1, 2, 4, 8):
            sram = SramJacobiRunner(_device(), p, cores_y=cy).run(
                500, sim_iterations=4, read_back=False)
            stream = OptimizedJacobiRunner(_device(), p,
                                           cores_y=cy, cores_x=1).run(
                500, sim_iterations=4, read_back=False)
            rows.append((cy, sram.gpts, stream.gpts))
        return rows
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    t = Table("Extension: SRAM-resident vs DRAM-streaming Jacobi "
              "(512x128, GPt/s)",
              ["cores (Y)", "SRAM-resident", "DRAM-streaming", "speedup"])
    for cy, s, d in rows:
        t.add_row(cy, f"{s:.3f}", f"{d:.3f}", f"{s / d:.2f}x")
    print("\n" + t.render())
    assert all(s > d for _cy, s, d in rows)


def test_stencil_term_count_scaling(benchmark):
    """The generic stencil framework: cost grows with active terms."""
    def run():
        p = LaplaceProblem(nx=1024, ny=64)
        out = []
        for name, spec in [("advection-3", StencilSpec.advection_upwind(0.4, 0.2)),
                           ("jacobi-4", StencilSpec.jacobi()),
                           ("diffusion-5", StencilSpec.diffusion(0.2))]:
            r = StencilRunner(_device(), p, spec).run(
                50, sim_iterations=2, read_back=False)
            out.append((name, len(spec.active_terms()), r.gpts))
        return out
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    t = Table("Extension: generic stencil cost vs active terms "
              "(1024x64, 1 core)", ["stencil", "terms", "GPt/s"])
    for name, n, g in rows:
        t.add_row(name, n, f"{g:.3f}")
    print("\n" + t.render())
    gpts = [g for _n, _t, g in rows]
    assert gpts[0] > gpts[1] > gpts[2]


def test_wormhole_projection(benchmark):
    """Section VIII: FP32 + connected cards, projected."""
    def run():
        gs = JacobiScalingModel().run(9216, 1024, 5000, 12, 9)
        wh = WormholeModel()
        rows = [("Grayskull 108c BF16 (measured model)", gs.gpts,
                 gs.energy_j)]
        for dtype in ("bf16", "fp32"):
            r = wh.run(9216, 1024, 5000, 8, 9, dtype=dtype)
            rows.append((f"Wormhole 72c {dtype.upper()}", r.gpts,
                         r.energy_j))
        r4 = wh.run(9216, 1024, 5000, 8, 9, n_cards=4, dtype="fp32")
        rows.append(("Wormhole x4 FP32 (correct halos)", r4.gpts,
                     r4.energy_j))
        return rows
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    t = Table("Extension: Wormhole projection (1024x9216, 5000 iters)",
              ["configuration", "GPt/s", "Energy J"])
    for name, g, e in rows:
        t.add_row(name, f"{g:.2f}", f"{e:.0f}")
    t.add_footnote("projection: no Wormhole measurements exist in the "
                   "paper; assumptions in repro/perfmodel/wormhole.py")
    print("\n" + t.render())
    by_name = {r[0]: r[1] for r in rows}
    assert by_name["Wormhole 72c FP32"] < by_name["Wormhole 72c BF16"]
    assert by_name["Wormhole x4 FP32 (correct halos)"] > \
        3 * by_name["Wormhole 72c FP32"]
