"""Benchmark: regenerate Figures 1-6 (architecture/layout renderings).

The paper's figures are diagrams, not data plots; each is rebuilt from
the live simulator objects it depicts and written to benchmarks/output/.
"""

import os

import pytest

from repro.experiments import figures

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


@pytest.mark.parametrize("fig_id", ["fig1", "fig2", "fig3", "fig4",
                                    "fig5", "fig6"])
def test_figure(benchmark, fig_id):
    fn = getattr(figures, fig_id)
    text = benchmark.pedantic(fn, rounds=1, iterations=1)
    assert len(text) > 50
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    with open(os.path.join(OUTPUT_DIR, f"{fig_id}.txt"), "w") as fh:
        fh.write(text + "\n")
    print("\n" + text)
