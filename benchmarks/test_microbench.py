"""Micro-benchmarks of the simulator itself (host wall-clock).

Unlike the table benchmarks — which measure *simulated* seconds — these
measure how fast the reproduction's own machinery runs on the host:
event-loop throughput, BF16 conversion rate, CB handshake cost, and a
full Jacobi iteration through the DES.  Useful for keeping the simulator
fast enough to sweep the paper's full problem sizes.
"""

import numpy as np

from repro.arch.device import GrayskullDevice
from repro.core.grid import LaplaceProblem
from repro.core.jacobi_optimized import OptimizedJacobiRunner
from repro.cpu.jacobi import jacobi_step_bf16
from repro.dtypes.bf16 import bits_to_f32, f32_to_bits
from repro.sim import Simulator
from repro.sim.resources import FifoServer, Semaphore


def test_event_loop_throughput(benchmark):
    """Ping-pong of 2000 zero-delay events through the engine."""
    def run():
        sim = Simulator()

        def proc():
            for _ in range(1000):
                yield sim.timeout(0)
        sim.process(proc())
        sim.process(proc())
        sim.run()
        return sim.events_processed
    events = benchmark(run)
    assert events >= 2000


def test_semaphore_handoff(benchmark):
    def run():
        sim = Simulator()
        sem = Semaphore(sim)

        def producer():
            for _ in range(500):
                sem.release()
                yield sim.timeout(0)

        def consumer():
            for _ in range(500):
                yield sem.acquire()
        sim.process(producer())
        done = sim.process(consumer())
        sim.run(until=done)
        return True
    assert benchmark(run)


def test_fifo_server_submissions(benchmark):
    def run():
        sim = Simulator()
        srv = FifoServer(sim, rate=1e9)
        for _ in range(2000):
            srv.submit(1024)
        sim.run()
        return srv.jobs
    assert benchmark(run) == 2000


def test_bf16_conversion_rate(benchmark):
    """Round-trip a 1M-element array (the sweep-scale workload)."""
    data = np.linspace(-100, 100, 1 << 20, dtype=np.float32)

    def run():
        return bits_to_f32(f32_to_bits(data))
    out = benchmark(run)
    assert out.shape == data.shape


def test_bf16_jacobi_sweep_rate(benchmark):
    """One functional BF16 sweep on a 512x512 grid."""
    p = LaplaceProblem(nx=512, ny=512, left=1.0)
    bits = p.initial_grid_bf16()
    out = benchmark(jacobi_step_bf16, bits)
    assert out.shape == bits.shape


def test_des_jacobi_iteration(benchmark):
    """A full DES Jacobi iteration (64x64, optimised kernel)."""
    def run():
        dev = GrayskullDevice(dram_bank_capacity=1 << 20)
        res = OptimizedJacobiRunner(
            dev, LaplaceProblem(nx=64, ny=64)).run(1, read_back=False)
        return res.kernel_time_s
    t = benchmark(run)
    assert t > 0
