"""Benchmark: regenerate Table I (initial kernel generations vs CPU core).

Paper scale: 512x512 BF16 elements, 10000 iterations (device timings are
steady-state extrapolations from 2 fully simulated iterations).
"""

from repro.experiments import table1


def test_table1(record):
    result = record(table1.run)
    # shape assertions on the regenerated table
    rates = {c.label: c.measured for c in result.comparisons}
    assert rates["Double buffering"] > rates["Data write optimised"] \
        >= rates["Initial"]
    assert rates["CPU single core"] / rates["Double buffering"] > 50
