"""Benchmark: regenerate Table II (component on/off retiming).

Paper scale: 512x512 over 10000 iterations.
"""

from repro.experiments import table2


def test_table2(record):
    result = record(table2.run)
    rates = [c.measured for c in result.comparisons]
    # the paper's ordering: skeleton > compute > write > read > memcpy
    assert rates[0] > rates[1] > rates[2] > rates[3] > rates[4]
    assert result.worst_ratio() < 2.0
