"""Benchmark: regenerate Table III (contiguous streaming batch sweep).

Paper scale: 4096x4096 32-bit integers, batch sizes 16384 B down to 4 B,
read/write and sync/no-sync variants.
"""

from repro.experiments import table34


def test_table3(record):
    result = record(table34.run_table3)
    m = {c.label: c.measured for c in result.comparisons}
    # knee: runtime degrades sharply below ~1024-byte batches
    assert m["4B read nosync"] > 10 * m["1024B read nosync"]
    # sync discipline amplifies small batches
    assert m["4B read sync"] > 5 * m["4B read nosync"]
    # reading is hurt far more than writing by small batches
    assert m["4B read nosync"] > 3 * m["4B write nosync"]
