"""Benchmark: regenerate Table IV (non-contiguous streaming batch sweep).

Same sweep as Table III but batches proceed downwards through Y, so every
request is non-contiguous.
"""

from repro.experiments import table34


def test_table4(record):
    result = record(table34.run_table4)
    m = {c.label: c.measured for c in result.comparisons}
    assert m["4B read nosync"] > 10 * m["16384B read nosync"]
    # every measured cell within 2.5x of the paper's (the worst cells are
    # the 1-4KB sync reads, where the paper's per-request sync cost
    # mysteriously shrinks with batch size — EXPERIMENTS.md deviation #4)
    assert result.worst_ratio() < 2.5
