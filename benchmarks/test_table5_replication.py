"""Benchmark: regenerate Table V (replicated DRAM reads)."""

from repro.experiments import table567


def test_table5(record):
    result = record(table567.run_table5)
    runtimes = [c.measured for c in result.comparisons]
    # monotone growth with replication, roughly linear at high factors
    assert runtimes == sorted(runtimes)
    assert runtimes[-1] > 8 * runtimes[0]
    assert result.worst_ratio() < 2.0
