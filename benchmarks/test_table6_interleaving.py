"""Benchmark: regenerate Table VI (interleaving page size x replication)."""

from repro.experiments import table567


def test_table6(record):
    result = record(table567.run_table6)
    m = {c.label: c.measured for c in result.comparisons}
    # interleaving roughly halves heavy-replication runtime at 16-32K pages
    assert m["page 32K repl 32"] < 0.8 * m["page none repl 32"]
    assert m["page 16K repl 32"] < 0.8 * m["page none repl 32"]
    # tiny pages are worse than no interleaving
    assert m["page 1K repl 32"] > m["page none repl 32"]
    # without replication interleaving is roughly free (within 2x)
    assert m["page 32K repl 0"] < 2 * m["page none repl 0"]
