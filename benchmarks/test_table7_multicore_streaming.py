"""Benchmark: regenerate Table VII (streaming scaled across Tensix cores)."""

from repro.experiments import table567


def test_table7(record):
    result = record(table567.run_table7)
    m = {c.label: c.measured for c in result.comparisons}
    # 2 cores beat 1...
    assert m["page none cores 2"] < 0.8 * m["page none cores 1"]
    # ...but the single-bank stream does not scale beyond 2 (the paper's
    # surprise, reproduced: the shared bank saturates)
    assert m["page none cores 8"] > 0.5 * m["page none cores 2"]
    # Known deviation: our *interleaved* streams keep scaling with cores
    # (8 banks really do have the bandwidth), while the paper's stay flat
    # for reasons its authors could not pin down either ("NoC and/or DDR
    # bandwidth"); see EXPERIMENTS.md.  Only the single-bank column is
    # held to the fidelity band.
    for n in (1, 2, 4, 8):
        paper = {1: 0.010, 2: 0.005, 4: 0.005, 8: 0.005}[n]
        measured = m[f"page none cores {n}"]
        assert 0.5 < measured / paper < 2.0
