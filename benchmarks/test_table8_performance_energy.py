"""Benchmark: regenerate Table VIII (performance & energy comparison).

Paper scale: 1024x9216 BF16 elements over 5000 iterations; CPU 1/24
cores, e150 1..108 cores, 2 and 4 cards.
"""

from repro.experiments import table8


def test_table8(record):
    result = record(table8.run)
    m = {c.label: c.measured for c in result.comparisons}
    # headline shapes
    full_card = m["e150 108 cores GPt/s"]
    cpu24 = m["cpu 24 cores GPt/s"]
    assert full_card > 0.8 * cpu24               # comparable speed
    assert m["cpu 24 cores energy"] / m["e150 108 cores energy"] > 4.0
    assert m["e150 x 4 432 cores GPt/s"] > 3.0 * cpu24
    # every row within 1.6x of the paper
    assert result.worst_ratio() < 1.6
