#!/usr/bin/env python3
"""Atmospheric advection on the simulated Grayskull — the paper's next step.

The paper's future work names "more complex stencil algorithms, such as
atmospheric advection" as the target after Jacobi.  This example runs a
first-order upwind advection of a tracer plume (a pollutant cloud in a
steady wind) using the generic stencil framework: the evolution is shown
with the fast BF16 reference sweep, and a prefix is verified end-to-end
through the full simulated machine.

Usage::

    python examples/advection_weather.py
"""

import numpy as np

from repro.arch.device import GrayskullDevice
from repro.core.grid import LaplaceProblem
from repro.core.stencil import StencilRunner, StencilSpec, stencil_solve_bf16
from repro.dtypes.bf16 import bits_to_f32, f32_to_bits


def render(vals: np.ndarray, width: int = 48) -> str:
    shades = " .:-=+*#%@"
    interior = vals[1:-1, 1:-1]
    step = max(1, interior.shape[1] // width)
    hi = max(float(interior.max()), 1e-6)
    return "\n".join(
        "".join(shades[min(int(v / hi * (len(shades) - 1)),
                           len(shades) - 1)] for v in row[::step])
        for row in interior[::2 * step])


def main() -> None:
    # Wind toward +x (and slightly +y); tracer enters on a left-boundary band.
    problem = LaplaceProblem(nx=96, ny=48, left=0.0, initial=0.0)
    grid = problem.initial_grid_bf16()
    grid[10:24, 0] = f32_to_bits(np.float32(1.0))  # tracer source band

    spec = StencilSpec.advection_upwind(cu=0.5, cv=0.1)
    print(f"Upwind advection, cu=0.5 cv=0.1 (coefficients: "
          f"C={spec.center:g} W={spec.west:g} N={spec.north:g})\n")

    ref, last = grid.copy(), 0
    for steps in (10, 40, 90):
        ref = stencil_solve_bf16(ref, spec, steps - last)
        last = steps
        print(f"after {steps} steps:")
        print(render(bits_to_f32(ref)))
        print()

    # End-to-end verification through the simulated card.
    dev = GrayskullDevice(dram_bank_capacity=8 << 20)
    res = StencilRunner(dev, problem, spec).run(10, initial_grid=grid)
    want = stencil_solve_bf16(grid, spec, 10)
    ok = np.array_equal(res.grid_bits, want)
    print(f"device vs reference after 10 steps: "
          f"{'bit-identical' if ok else 'MISMATCH'}")
    print(f"device: {res.gpts:.4f} GPt/s, {res.energy_j * 1e3:.2f} mJ\n")

    # Cost model: fewer stencil terms = fewer FPU passes per sweep.
    print("modelled device cost per sweep (64x1024 domain, 1 core):")
    big = LaplaceProblem(nx=1024, ny=64)
    for name, s in [("advection (3 terms)", spec),
                    ("jacobi    (4 terms)", StencilSpec.jacobi()),
                    ("diffusion (5 terms)", StencilSpec.diffusion(0.2))]:
        r = StencilRunner(GrayskullDevice(dram_bank_capacity=8 << 20),
                          big, s).run(50, sim_iterations=2, read_back=False)
        print(f"  {name}: {r.kernel_time_s / 50 * 1e6:7.1f} us/sweep "
              f"({r.gpts:.3f} GPt/s)")


if __name__ == "__main__":
    main()
