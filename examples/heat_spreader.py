#!/usr/bin/env python3
"""Heat-spreader study: steady-state temperature in a chip lid.

A domain-specific scenario of the kind the paper's introduction motivates
(stencils underlie atmospheric modelling, CFD, seismology — and thermal
analysis).  A copper heat spreader sits between a hot die edge (left,
85 °C) and a cold plate (right, 25 °C), with adiabatic-ish warm top and
bottom edges.  We solve the steady state on the simulated e150 and study:

1. convergence: how many Jacobi iterations the BF16 hardware needs;
2. accuracy: the converged field against the exact discrete solution;
3. the cost of precision: BF16 (e150) vs FP32 (CPU) stall points.

Usage::

    python examples/heat_spreader.py
"""

import numpy as np

from repro import JacobiSolver, LaplaceProblem
from repro.cpu.jacobi import residual_f32, solve_direct
from repro.dtypes.bf16 import bf16_round


def main() -> None:
    problem = LaplaceProblem(nx=96, ny=64, left=85.0, right=25.0,
                             top=40.0, bottom=40.0, initial=25.0)
    exact = solve_direct(problem.initial_grid_f32())

    print("Heat spreader: 64x96 cells, die edge 85 C -> cold plate 25 C\n")
    print(f"{'iterations':>10s} {'device max err (C)':>20s} "
          f"{'cpu max err (C)':>17s} {'residual':>10s}")

    # the convergence sweep uses the functional BF16 engine (bit-identical
    # to the DES kernels — tests/core proves it — and much faster to run)
    solver_dev = JacobiSolver(backend="e150-model", cores=(1, 1))
    solver_cpu = JacobiSolver(backend="cpu")
    last_dev_err = None
    for iters in (50, 200, 800, 2000):
        dev = solver_dev.solve(problem, iters)
        cpu = solver_cpu.solve(problem, iters)
        dev_err = np.abs(dev.grid_f32[1:-1, 1:-1]
                         - exact[1:-1, 1:-1]).max()
        cpu_err = np.abs(cpu.grid_f32[1:-1, 1:-1]
                         - exact[1:-1, 1:-1]).max()
        res = residual_f32(cpu.grid_f32)
        print(f"{iters:10d} {dev_err:20.4f} {cpu_err:17.4f} {res:10.2e}")
        last_dev_err = dev_err

    print(f"\nBF16 resolution near 85 C: ~{85.0 * 2 ** -8:.2f} C. "
          f"The device stalls at {last_dev_err:.2f} C error — its Jacobi "
          "iteration reaches a BF16 rounding fixed point (updates smaller "
          "than half a ULP vanish), while FP32 keeps converging.  This "
          "quantifies the paper's 'BF16 vs FP32' caveat.")

    # The cure: mixed-precision defect correction — keep the solution in
    # FP32 on the host, use the device only for correction solves whose
    # residual is rescaled into BF16's sweet spot.
    from repro.core.refinement import solve_defect_correction
    refined = solve_defect_correction(problem, outer_cycles=8,
                                      inner_iterations=1500)
    ref_err = np.abs(refined.grid_f32[1:-1, 1:-1]
                     - exact[1:-1, 1:-1]).max()
    print(f"\nwith defect correction ({refined.outer_cycles} outer cycles "
          f"x 1500 BF16 device sweeps): max err {ref_err:.4f} C — the "
          "stall is gone while the heavy lifting stays on the card.")

    # engineering question: hottest point on the cold-plate interface
    dev = solver_dev.solve(problem, 2000)
    interface = refined.grid_f32[1:-1, -2]
    print(f"hottest cold-plate interface cell: {interface.max():.1f} C "
          f"(exact {exact[1:-1, -2].max():.1f} C)")

    # performance/energy of the production-size version of this study
    big = LaplaceProblem(nx=1024, ny=512, left=85.0, right=25.0,
                         top=40.0, bottom=40.0)
    perf = JacobiSolver(backend="e150-model", cores=(12, 9)).solve(
        big, 5000, compute_answer=False)
    print(f"\nfull-card production run ({big.ny}x{big.nx}, 5000 iters): "
          f"{perf.gpts:.1f} GPt/s, {perf.time_s:.2f} s, "
          f"{perf.energy_j:.0f} J on one e150")


if __name__ == "__main__":
    main()
