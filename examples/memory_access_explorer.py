#!/usr/bin/env python3
"""DRAM access-strategy explorer (the Section-V methodology, interactive).

Uses the streaming benchmark to answer the questions the paper asked
before redesigning its kernel — on a reduced problem so it runs in
seconds.  Prints the four 'lessons learnt' with the numbers that back
them.

Usage::

    python examples/memory_access_explorer.py [--full]

``--full`` runs the paper's 4096x4096 problem (minutes).
"""

import sys

from repro.streaming import (
    StreamConfig,
    run_streaming,
    sweep_batch_sizes,
)


def main(full: bool = False) -> None:
    if full:
        base = StreamConfig()  # the paper's 4096x4096 int32
        batches = [16384, 4096, 1024, 256, 64, 16, 4]
    else:
        base = StreamConfig(rows=256, row_elems=1024)
        batches = [4096, 1024, 256, 64, 16, 4]

    print(f"streaming {base.rows}x{base.row_elems} 32-bit integers "
          f"({base.total_bytes >> 20} MiB) through one Tensix core\n")

    print("Lesson 1 - fewer, larger DRAM accesses win:")
    rows = sweep_batch_sizes(base, batches)
    print(f"  {'batch':>7s} {'read nosync':>12s} {'read sync':>12s}")
    for r in rows:
        print(f"  {r.batch_size:6d}B {r.read_nosync_s:11.4f}s "
              f"{r.read_sync_s:11.4f}s")
    knee = next(r.batch_size for r in rows
                if r.read_nosync_s > 1.5 * rows[0].read_nosync_s)
    print(f"  -> performance degrades below ~{knee * 4}-byte batches\n")

    print("Lesson 2 - contiguous beats non-contiguous:")
    c = sweep_batch_sizes(base, [16])[0]
    nc = sweep_batch_sizes(base, [16], contiguous=False)[0]
    print(f"  16B batches: contiguous {c.read_nosync_s:.4f}s, "
          f"column-order {nc.read_nosync_s:.4f}s "
          f"({nc.read_nosync_s / c.read_nosync_s:.2f}x)\n")

    print("Lesson 3 - memcpy between local buffers and CBs is expensive:")
    from repro.perfmodel.calibration import DEFAULT_COSTS
    direct = base.total_bytes / DEFAULT_COSTS.noc_link_bw
    copied = direct + DEFAULT_COSTS.memcpy_time(base.total_bytes, calls=base.rows)
    print(f"  read into CB directly: ~{direct:.4f}s; "
          f"via local buffer + memcpy: ~{copied:.4f}s "
          f"({copied / direct:.0f}x)\n")

    print("Lesson 4 - replicated reads cost, interleaving ameliorates:")
    single = run_streaming(StreamConfig(rows=base.rows,
                                        row_elems=base.row_elems,
                                        replication=15))
    inter = run_streaming(StreamConfig(rows=base.rows,
                                       row_elems=base.row_elems,
                                       replication=15,
                                       page_size=16 << 10))
    none = run_streaming(base)
    print(f"  16x replicated reads, single bank: {single.runtime_s:.4f}s "
          f"(vs {none.runtime_s:.4f}s baseline)")
    print(f"  16x replicated reads, 16K-page interleaving: "
          f"{inter.runtime_s:.4f}s "
          f"({single.runtime_s / inter.runtime_s:.2f}x better)")


if __name__ == "__main__":
    main(full="--full" in sys.argv)
