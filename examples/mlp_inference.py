#!/usr/bin/env python3
"""A tiled MLP layer on the simulated Grayskull — the card's home turf.

The paper notes the Grayskull "is most mature for AI inference" and its
related work runs attention in SRAM on this same hardware.  This example
writes custom tt-metal-style kernels (reader → compute → writer) for a
small two-layer MLP

    y = ReLU(x @ W1) @ W2

using the FPU's ``matmul_tiles`` (with K-dimension accumulation),
``unary_tile('relu')`` and ``pack_tile``, and verifies the device result
against a NumPy BF16 reference.  It demonstrates how a downstream user
authors *new* kernels against this repository's device model.

Usage::

    python examples/mlp_inference.py
"""

import numpy as np

from repro.arch.device import GrayskullDevice
from repro.arch.tensix import COMPUTE, DATA_MOVER_0, DATA_MOVER_1
from repro.dtypes.bf16 import bf16_round, bits_to_f32, f32_to_bits
from repro.dtypes.tiles import TILE_DIM, TILE_NBYTES
from repro.ttmetal import (
    CreateCircularBuffer,
    CreateKernel,
    EnqueueProgram,
    EnqueueReadBuffer,
    EnqueueWriteBuffer,
    Finish,
    Program,
    create_buffer,
)

CB_ACT, CB_WGT, CB_OUT, CB_H = 0, 1, 16, 24

# Geometry: x is one tile row (32 x 64 = 1x2 tiles), W1 is 64x32 (2x1),
# W2 is 32x32 (1x1).  Everything tiled 32x32.
M, K, N = 32, 64, 32
K_TILES = K // TILE_DIM


def tiles_of(matrix: np.ndarray):
    """Row-major 32x32 tiles of a matrix (BF16 bit patterns)."""
    bits = f32_to_bits(matrix.astype(np.float32))
    th, tw = matrix.shape[0] // TILE_DIM, matrix.shape[1] // TILE_DIM
    return [bits[r * 32:(r + 1) * 32, c * 32:(c + 1) * 32]
            for r in range(th) for c in range(tw)]


def reader_kernel(ctx):
    """Stream activation and weight tiles for both layers into the CBs."""
    acts, wgts = ctx.arg("acts"), ctx.arg("wgts")
    # layer 1: K_TILES pairs; layer 2: one pair (activation comes from
    # the compute core's layer-1 output, so only the weight is read).
    for buf, cb in list(zip(acts, [CB_ACT] * len(acts))) + \
            list(zip(wgts, [CB_WGT] * len(wgts))):
        yield from ctx.cb_reserve_back(cb, 1)
        yield from ctx.noc_read_buffer(buf, 0, ctx.cb_write_ptr(cb),
                                       TILE_NBYTES)
        yield from ctx.noc_async_read_barrier()
        yield from ctx.cb_push_back(cb, 1)


def compute_kernel(ctx):
    """y = ReLU(x @ W1) @ W2, tile by tile, accumulating over K."""
    yield from ctx.tile_regs_acquire()
    # layer 1: accumulate x_tile_k @ W1_tile_k over the K dimension
    for k in range(K_TILES):
        yield from ctx.cb_wait_front(CB_ACT, k + 1)
        yield from ctx.cb_wait_front(CB_WGT, k + 1)
    for k in range(K_TILES):
        # tile k of x and of W1 (weights were pushed after activations,
        # so page index k addresses the matching pair)
        yield from ctx.matmul_tiles(CB_ACT, CB_WGT, k, k, 0,
                                    accumulate=(k > 0))
    # ReLU via the intermediate CB: pack the pre-activation, re-read it
    yield from ctx.cb_reserve_back(CB_H, 1)
    yield from ctx.pack_tile(0, CB_H)
    yield from ctx.cb_push_back(CB_H, 1)
    yield from ctx.cb_wait_front(CB_H, 1)
    yield from ctx.unary_tile("relu", CB_H, 0, 1)
    yield from ctx.cb_pop_front(CB_H, 1)
    yield from ctx.cb_reserve_back(CB_H, 1)
    yield from ctx.pack_tile(1, CB_H)
    yield from ctx.cb_push_back(CB_H, 1)
    # layer 2: ReLU(x@W1) @ W2 (W2 is the last weight tile pushed)
    yield from ctx.cb_wait_front(CB_WGT, K_TILES + 1)
    yield from ctx.cb_wait_front(CB_H, 1)
    yield from ctx.matmul_tiles(CB_H, CB_WGT, 0, K_TILES, 2)
    yield from ctx.cb_pop_front(CB_H, 1)
    for _ in range(K_TILES):
        yield from ctx.cb_pop_front(CB_ACT, 1)
    for _ in range(K_TILES + 1):
        yield from ctx.cb_pop_front(CB_WGT, 1)
    yield from ctx.cb_reserve_back(CB_OUT, 1)
    yield from ctx.pack_tile(2, CB_OUT)
    yield from ctx.cb_push_back(CB_OUT, 1)
    yield from ctx.tile_regs_release()


def writer_kernel(ctx):
    out = ctx.arg("out")
    yield from ctx.cb_wait_front(CB_OUT, 1)
    yield from ctx.noc_write_buffer(out, 0, ctx.cb_read_ptr(CB_OUT),
                                    TILE_NBYTES)
    yield from ctx.noc_async_write_barrier()
    yield from ctx.cb_pop_front(CB_OUT, 1)


def reference(x, w1, w2):
    """BF16 reference with the same rounding points as the kernels."""
    q = lambda m: bits_to_f32(f32_to_bits(m.astype(np.float32)))
    h = q(x) @ q(w1)                    # f32 accumulation in registers
    h = bf16_round(h)                   # pack
    h = np.maximum(bf16_round(h), 0)    # relu at f32, pack
    h = bf16_round(h)
    return bf16_round(h @ q(w2))        # layer 2 + final pack


def main() -> None:
    rng = np.random.default_rng(7)
    x = rng.normal(size=(M, K)).astype(np.float32)
    w1 = rng.normal(scale=0.3, size=(K, N)).astype(np.float32)
    w2 = rng.normal(scale=0.3, size=(N, N)).astype(np.float32)

    dev = GrayskullDevice(dram_bank_capacity=4 << 20)
    core = dev.core(0, 0)

    acts, wgts = [], []
    for t in tiles_of(x):
        buf = create_buffer(dev, TILE_NBYTES)
        EnqueueWriteBuffer(dev, buf, np.ascontiguousarray(t))
        acts.append(buf)
    for t in tiles_of(w1) + tiles_of(w2):
        buf = create_buffer(dev, TILE_NBYTES)
        EnqueueWriteBuffer(dev, buf, np.ascontiguousarray(t))
        wgts.append(buf)
    out = create_buffer(dev, TILE_NBYTES)

    prog = Program(dev)
    CreateCircularBuffer(prog, core, CB_ACT, TILE_NBYTES, K_TILES)
    CreateCircularBuffer(prog, core, CB_WGT, TILE_NBYTES, K_TILES + 1)
    CreateCircularBuffer(prog, core, CB_OUT, TILE_NBYTES, 2)
    CreateCircularBuffer(prog, core, CB_H, TILE_NBYTES, 2)
    args = dict(acts=acts, wgts=wgts, out=out)
    CreateKernel(prog, reader_kernel, core, DATA_MOVER_0, args)
    CreateKernel(prog, compute_kernel, core, COMPUTE, args)
    CreateKernel(prog, writer_kernel, core, DATA_MOVER_1, args)
    EnqueueProgram(dev, prog)
    t = Finish(dev)

    got = bits_to_f32(EnqueueReadBuffer(dev, out).view("<u2")).reshape(32, 32)
    want = reference(x, w1, w2)
    exact = np.array_equal(got, want)
    print(f"MLP layer ReLU(x@W1)@W2 on the simulated e150 "
          f"({M}x{K} @ {K}x{N} @ {N}x{N})")
    print(f"kernel time: {t * 1e6:.2f} us; "
          f"FPU ops: {core.fpu.ops}, packs: {core.fpu.packs}")
    print(f"device vs BF16 reference: "
          f"{'bit-identical' if exact else 'MISMATCH'}")
    print(f"output range: [{got.min():.3f}, {got.max():.3f}]")


if __name__ == "__main__":
    main()
