#!/usr/bin/env python3
"""Quickstart: solve Laplace's equation on the simulated Grayskull e150.

Runs the paper's Jacobi solver three ways — the CPU baseline, the
Section-IV initial Tensix port, and the Section-VI optimised kernels —
on a small diffusion problem, checks they agree, and prints the
performance/energy picture.

Usage::

    python examples/quickstart.py
"""

import numpy as np

from repro import JacobiSolver, LaplaceProblem
from repro.cpu.jacobi import solve_direct


def render_field(grid: np.ndarray, width: int = 32) -> str:
    """Coarse ASCII heat map of the interior."""
    interior = grid[1:-1, 1:-1]
    step = max(1, interior.shape[1] // width)
    shades = " .:-=+*#%@"
    lo, hi = interior.min(), interior.max()
    span = (hi - lo) or 1.0
    lines = []
    for row in interior[::step * 2]:
        cells = row[::step]
        lines.append("".join(
            shades[min(int((v - lo) / span * (len(shades) - 1)),
                       len(shades) - 1)]
            for v in cells))
    return "\n".join(lines)


def main() -> None:
    problem = LaplaceProblem(nx=64, ny=64, left=1.0, right=0.0)
    iterations = 300

    print(f"Solving Laplace on a {problem.ny}x{problem.nx} grid, "
          f"{iterations} Jacobi iterations")
    print(f"boundaries: left={problem.left}, right={problem.right}, "
          f"top={problem.top}, bottom={problem.bottom}\n")

    cpu = JacobiSolver(backend="cpu").solve(problem, iterations)
    initial = JacobiSolver(backend="e150", variant="initial").solve(
        problem, iterations, sim_iterations=2)
    optimized = JacobiSolver(backend="e150", variant="optimized").solve(
        problem, iterations)

    print(f"{'engine':34s} {'GPt/s':>9s} {'time':>10s} {'energy':>9s}")
    for name, res in [("CPU (FP32, Listing 1)", cpu),
                      ("e150 initial kernel (Section IV)", initial),
                      ("e150 optimised kernel (Section VI)", optimized)]:
        print(f"{name:34s} {res.gpts:9.4f} {res.time_s:9.2e}s "
              f"{res.energy_j:8.2f}J")

    # correctness: the optimised device answer vs the exact solution
    exact = solve_direct(problem.initial_grid_f32())
    err = np.abs(optimized.grid_f32[1:-1, 1:-1] - exact[1:-1, 1:-1]).max()
    gap = np.abs(optimized.grid_f32 - cpu.grid_f32).max()
    print(f"\nmax |device - exact solution|  = {err:.4f} "
          f"(after {iterations} iterations; not yet converged — see "
          "examples/heat_spreader.py for a convergence study)")
    print(f"max |device BF16 - CPU FP32|   = {gap:.4f}")

    print("\nDiffusion field (left boundary at 1.0 diffusing right):")
    print(render_field(optimized.grid_f32))


if __name__ == "__main__":
    main()
