#!/usr/bin/env python3
"""Regenerate every table and figure of the paper in one run.

Usage::

    python examples/reproduce_paper.py            # paper-scale (minutes)
    python examples/reproduce_paper.py --quick    # reduced scale (seconds)

Paper-scale runs print each table with the paper's numbers and the
measured/paper ratio per cell — the data behind EXPERIMENTS.md.
"""

import sys
import time

from repro.experiments import figures, table1, table2, table34, table567, table8


def run_all(quick: bool):
    results = []
    t0 = time.time()

    def stamp(result):
        results.append(result)
        print(result.render())
        print(f"[{time.time() - t0:6.1f}s]\n")

    if quick:
        stamp(table1.run(nx=64, ny=64, iterations=200, sim_iterations=2))
        stamp(table2.run(nx=64, ny=64, iterations=200, sim_iterations=2))
        stamp(table34.run_table3(rows=64, row_elems=1024,
                                 batch_sizes=[4096, 1024, 256, 64, 16, 4]))
        stamp(table34.run_table4(rows=64, row_elems=1024,
                                 batch_sizes=[4096, 1024, 256, 64, 16, 4]))
        stamp(table567.run_table5(rows=64, row_elems=1024,
                                  factors=(1, 2, 4, 8)))
        stamp(table567.run_table6(rows=64, row_elems=1024,
                                  page_sizes=[None, 32 << 10, 1 << 10],
                                  replications=(0, 8)))
        stamp(table567.run_table7(rows=64, row_elems=1024,
                                  page_sizes=[None, 32 << 10],
                                  core_counts=(1, 2, 4)))
        stamp(table8.run(nx=1024, ny=128, iterations=50, rows=[
            ("cpu", 1, None, None, 0, None, None),
            ("cpu", 24, None, None, 0, None, None),
            ("e150", 1, 1, 1, 1, None, None),
            ("e150", 8, 2, 4, 1, None, None),
            ("e150 x 2", 16, 4, 4, 2, None, None),
        ]))
    else:
        stamp(table1.run())
        stamp(table2.run())
        stamp(table34.run_table3())
        stamp(table34.run_table4())
        stamp(table567.run_table5())
        stamp(table567.run_table6())
        stamp(table567.run_table7())
        stamp(table8.run())

    for fig_id, text in figures.all_figures().items():
        print(f"--- {fig_id} " + "-" * 50)
        print(text)
        print()

    print("=" * 66)
    print("fidelity summary (measured/paper, worst row per table):")
    for r in results:
        worst = r.worst_ratio()
        label = f"{worst:.2f}x" if worst else "n/a (reduced scale)"
        print(f"  {r.experiment_id:8s} {label}")
    return results


if __name__ == "__main__":
    run_all(quick="--quick" in sys.argv)
