#!/usr/bin/env python3
"""Scale-out study: pick the right core geometry and card count.

Sweeps Table-VIII-style configurations of the optimised Jacobi kernel on
the paper's 1024x9216 production problem and answers two engineering
questions the paper raises:

1. Which decompositions waste FPU passes?  (X splits that break the
   1024-element chunk.)
2. Where does adding cores stop paying in *time* but keep paying in
   *energy*?  (The card draws ~52 W no matter what, so always use all
   108 workers.)

Usage::

    python examples/scale_out_study.py
"""

from repro import JacobiSolver, LaplaceProblem
from repro.perfmodel.cpumodel import XeonModel

PROBLEM = LaplaceProblem(nx=9216, ny=1024)
ITERATIONS = 5000


def main() -> None:
    xeon = XeonModel()
    cpu_gpts = xeon.throughput_pts(24) / 1e9
    cpu_energy = xeon.energy_j(PROBLEM.nx * PROBLEM.ny, ITERATIONS, 24)
    print(f"reference: 24-core Xeon = {cpu_gpts:.2f} GPt/s, "
          f"{cpu_energy:.0f} J\n")

    print(f"{'cores':>7s} {'geometry':>9s} {'GPt/s':>7s} {'vs CPU':>7s} "
          f"{'energy J':>9s} {'per-core GPt/s':>15s}")
    geometries = [(1, 1), (1, 2), (1, 4), (2, 4), (4, 4), (8, 4),
                  (8, 8), (8, 9), (12, 9)]
    best = None
    for cy, cx in geometries:
        res = JacobiSolver(backend="e150-model", cores=(cy, cx)).solve(
            PROBLEM, ITERATIONS, compute_answer=False)
        n = cy * cx
        print(f"{n:7d} {cy:>4d}x{cx:<4d} {res.gpts:7.2f} "
              f"{res.gpts / cpu_gpts:6.2f}x {res.energy_j:9.0f} "
              f"{res.gpts / n:15.4f}")
        if best is None or res.gpts > best[1].gpts:
            best = ((cy, cx), res)

    (cy, cx), res = best
    print(f"\nbest single card: {cy}x{cx} at {res.gpts:.2f} GPt/s, "
          f"{cpu_energy / res.energy_j:.1f}x less energy than the CPU")

    print("\nX-split rule of thumb: keep the per-core width a multiple of "
          "1024 elements (compare below the NoC-contention-free regime):")
    for cy, cx in ((1, 9), (1, 8)):
        r = JacobiSolver(backend="e150-model", cores=(cy, cx)).solve(
            PROBLEM, ITERATIONS, compute_answer=False)
        wx = -(-PROBLEM.nx // cx)
        note = "1024-aligned" if wx % 1024 == 0 else \
            f"ragged ({wx % 1024}-wide tail chunk wastes a full FPU pass)"
        print(f"  {cy}x{cx}: per-core width {wx} -> "
              f"{r.gpts / (cy * cx):.4f} GPt/s per core  [{note}]")

    print("\nmulti-card scaling (no inter-card halos, as in the paper):")
    for cards in (1, 2, 4):
        res = JacobiSolver(backend="e150-model", cores=(12 * cards, 9),
                           n_cards=cards).solve(PROBLEM, ITERATIONS,
                                                compute_answer=False)
        print(f"  {cards} card(s): {res.gpts:6.2f} GPt/s, "
              f"{res.energy_j:4.0f} J "
              f"({res.gpts / cpu_gpts:.2f}x CPU speed, "
              f"{cpu_energy / res.energy_j:.1f}x less energy)")
    print("\ncaveat (as in the paper): multi-card runs skip inter-card "
          "halo exchange, so the numerical answer deviates near the cuts; "
          "see tests/core/test_multicore.py for the quantified error.")


if __name__ == "__main__":
    main()
