"""repro — a reproduction of "Accelerating stencils on the Tenstorrent
Grayskull RISC-V accelerator" (Brown & Barton, SC 2024 workshops).

The package contains a functional + timing simulator of the Grayskull
e150 and its tt-metal programming model, the paper's Jacobi stencil
kernels (initial and optimised generations), the Section-V streaming
benchmark, the CPU baseline, and drivers that regenerate every table and
figure of the paper's evaluation.

Quickstart::

    from repro import JacobiSolver, LaplaceProblem
    result = JacobiSolver(backend="e150").solve(
        LaplaceProblem(nx=64, ny=64), iterations=50)
    print(result.gpts, "GPt/s;", result.energy_j, "J")

See README.md for the architecture overview, DESIGN.md for the system
inventory, and EXPERIMENTS.md for paper-vs-measured fidelity.
"""

from repro.core.grid import AlignedDomain, LaplaceProblem
from repro.core.solver import JacobiResult, JacobiSolver
from repro.core.stencil import StencilRunner, StencilSpec
from repro.perfmodel.calibration import DEFAULT_COSTS, CostModel

__version__ = "1.0.0"

__all__ = [
    "AlignedDomain",
    "CostModel",
    "DEFAULT_COSTS",
    "JacobiResult",
    "JacobiSolver",
    "LaplaceProblem",
    "StencilRunner",
    "StencilSpec",
    "__version__",
]
