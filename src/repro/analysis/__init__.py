"""Result analysis and paper-style table rendering."""

from repro.analysis.metrics import gpt_per_s, ratio, speedup
from repro.analysis.report import Table, format_seconds, format_si
from repro.analysis.resilience import FaultEvent, FaultTrace, ResilienceReport

__all__ = ["FaultEvent", "FaultTrace", "ResilienceReport", "Table",
           "format_seconds", "format_si", "gpt_per_s", "ratio", "speedup"]
