"""Result analysis and paper-style table rendering."""

from repro.analysis.metrics import gpt_per_s, ratio, speedup
from repro.analysis.report import Table, format_seconds, format_si

__all__ = ["Table", "format_seconds", "format_si", "gpt_per_s", "ratio",
           "speedup"]
