"""Small metric helpers shared by the experiment drivers."""

from __future__ import annotations

__all__ = ["gpt_per_s", "speedup", "ratio", "geomean_ratio"]


def gpt_per_s(points: int, iterations: int, seconds: float) -> float:
    """Billion points processed per second — the paper's Jacobi metric."""
    if seconds <= 0:
        raise ValueError("seconds must be positive")
    if points <= 0 or iterations <= 0:
        raise ValueError("points and iterations must be positive")
    return points * iterations / seconds / 1e9


def speedup(baseline_s: float, contender_s: float) -> float:
    """How many times faster the contender is than the baseline."""
    if baseline_s <= 0 or contender_s <= 0:
        raise ValueError("times must be positive")
    return baseline_s / contender_s


def ratio(measured: float, reference: float) -> float:
    """measured / reference — the per-row fidelity figure in EXPERIMENTS.md."""
    if reference == 0:
        raise ValueError("reference must be non-zero")
    return measured / reference


def geomean_ratio(pairs: list[tuple[float, float]]) -> float:
    """Geometric mean of measured/reference over many rows."""
    if not pairs:
        raise ValueError("need at least one pair")
    acc = 1.0
    for measured, reference in pairs:
        acc *= ratio(measured, reference)
    return acc ** (1.0 / len(pairs))
