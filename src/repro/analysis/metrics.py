"""Small metric helpers shared by the experiment and serving drivers."""

from __future__ import annotations

from typing import Dict, Sequence

__all__ = ["gpt_per_s", "speedup", "ratio", "geomean_ratio",
           "percentile", "latency_summary"]


def gpt_per_s(points: int, iterations: int, seconds: float) -> float:
    """Billion points processed per second — the paper's Jacobi metric."""
    if seconds <= 0:
        raise ValueError("seconds must be positive")
    if points <= 0 or iterations <= 0:
        raise ValueError("points and iterations must be positive")
    return points * iterations / seconds / 1e9


def speedup(baseline_s: float, contender_s: float) -> float:
    """How many times faster the contender is than the baseline."""
    if baseline_s <= 0 or contender_s <= 0:
        raise ValueError("times must be positive")
    return baseline_s / contender_s


def ratio(measured: float, reference: float) -> float:
    """measured / reference — the per-row fidelity figure in EXPERIMENTS.md."""
    if reference == 0:
        raise ValueError("reference must be non-zero")
    return measured / reference


def geomean_ratio(pairs: list[tuple[float, float]]) -> float:
    """Geometric mean of measured/reference over many rows."""
    if not pairs:
        raise ValueError("need at least one pair")
    acc = 1.0
    for measured, reference in pairs:
        acc *= ratio(measured, reference)
    return acc ** (1.0 / len(pairs))


def percentile(values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation).

    The serving layer's latency SLOs are simulated-time quantities that
    must be byte-identical across runs, so the estimator is the exact
    nearest-rank definition: the smallest value with at least ``p``
    percent of the sample at or below it.  No float interpolation means
    the reported p99 is always a latency that actually occurred.
    """
    if not values:
        raise ValueError("need at least one value")
    if not 0 < p <= 100:
        raise ValueError(f"percentile must be in (0, 100], got {p!r}")
    ordered = sorted(values)
    rank = max(1, -(-len(ordered) * p // 100))  # ceil without floats
    return ordered[int(rank) - 1]


def latency_summary(values: Sequence[float]) -> Dict[str, float]:
    """p50/p95/p99, mean and max of a latency sample (seconds).

    Keys are stable (``p50``/``p95``/``p99``/``mean``/``max``/``n``) so
    the serve report schema can embed the dict directly.
    """
    if not values:
        return {"n": 0}
    return {
        "n": len(values),
        "p50": percentile(values, 50),
        "p95": percentile(values, 95),
        "p99": percentile(values, 99),
        "mean": sum(values) / len(values),
        "max": max(values),
    }
