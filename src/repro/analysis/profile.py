"""Device profiling: per-core busy/stall breakdown and machine utilisation.

The paper located its bottleneck by re-running with components disabled
(Table II).  The simulator can do better: every baby core accounts its
busy time (issue costs, FPU ops, memcpy) separately from its stall time
(CB waits, semaphores, NoC barriers), and every bandwidth server tracks
its occupancy — so one run yields the whole breakdown.

Usage::

    from repro.analysis.profile import profile_device
    report = profile_device(device)     # after Finish(device)
    print(report.render())
    report.bottleneck()                 # e.g. ("(0, 0)", "dm0")
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.report import Table
from repro.arch.device import GrayskullDevice
from repro.arch.tensix import COMPUTE, DATA_MOVER_0, DATA_MOVER_1

__all__ = ["CoreProfile", "DeviceProfile", "profile_device"]

_SLOTS = (DATA_MOVER_0, COMPUTE, DATA_MOVER_1)


@dataclass(frozen=True)
class CoreProfile:
    """One core's per-slot busy/stall seconds."""

    coord: Tuple[int, int]
    busy: Dict[str, float]
    stall: Dict[str, float]

    def utilisation(self, slot: str, wall: float) -> float:
        return self.busy[slot] / wall if wall > 0 else 0.0

    @property
    def busiest_slot(self) -> str:
        return max(_SLOTS, key=lambda s: self.busy[s])


@dataclass
class DeviceProfile:
    """Whole-device picture for one (or more) finished program(s)."""

    wall_time_s: float
    cores: List[CoreProfile]
    noc0_read_bytes: int
    noc1_write_bytes: int
    bank_busy_s: List[float]
    energy_j: float
    dprint_messages: int

    def bottleneck(self) -> Optional[Tuple[Tuple[int, int], str]]:
        """The (core, slot) with the highest busy time — where optimisation
        effort pays (the paper's Section-IV question, answered directly)."""
        best = None
        for cp in self.cores:
            for slot in _SLOTS:
                if best is None or cp.busy[slot] > best[2]:
                    best = (cp.coord, slot, cp.busy[slot])
        return (best[0], best[1]) if best else None

    def bank_utilisation(self) -> List[float]:
        if self.wall_time_s <= 0:
            return [0.0] * len(self.bank_busy_s)
        return [b / self.wall_time_s for b in self.bank_busy_s]

    def render(self, max_cores: int = 12) -> str:
        t = Table(
            f"Device profile (wall {self.wall_time_s * 1e3:.3f} ms, "
            f"{self.energy_j:.3f} J)",
            ["core", "slot", "busy ms", "stall ms", "util %"])
        shown = 0
        for cp in self.cores:
            if shown >= max_cores:
                t.add_footnote(
                    f"... {len(self.cores) - max_cores} more active cores")
                break
            for slot in _SLOTS:
                if cp.busy[slot] == 0 and cp.stall[slot] == 0:
                    continue
                t.add_row(str(cp.coord), slot,
                          f"{cp.busy[slot] * 1e3:.3f}",
                          f"{cp.stall[slot] * 1e3:.3f}",
                          f"{100 * cp.utilisation(slot, self.wall_time_s):.0f}")
            shown += 1
        banks = ", ".join(f"{u * 100:.0f}%" for u in self.bank_utilisation())
        t.add_footnote(f"DRAM bank occupancy: [{banks}]")
        t.add_footnote(
            f"NoC0 read {self.noc0_read_bytes >> 10} KiB, "
            f"NoC1 written {self.noc1_write_bytes >> 10} KiB"
            + (f"; {self.dprint_messages} DPRINT messages"
               if self.dprint_messages else ""))
        bn = self.bottleneck()
        if bn:
            t.add_footnote(f"bottleneck: core {bn[0]} slot {bn[1]}")
        return t.render()


def profile_device(device: GrayskullDevice,
                   wall_time_s: Optional[float] = None) -> DeviceProfile:
    """Snapshot the device's accounting into a :class:`DeviceProfile`.

    ``wall_time_s`` defaults to the device clock (covering everything run
    so far); pass a program's duration to scope utilisation to it.
    """
    wall = wall_time_s if wall_time_s is not None else device.sim.now
    cores = []
    for c in device.workers:
        if any(c.busy_time[s] or c.stall_time[s] for s in _SLOTS):
            cores.append(CoreProfile(coord=c.coord,
                                     busy=dict(c.busy_time),
                                     stall=dict(c.stall_time)))
    return DeviceProfile(
        wall_time_s=wall,
        cores=cores,
        noc0_read_bytes=device.noc0.stats.read_bytes
        + device.noc1.stats.read_bytes,
        noc1_write_bytes=device.noc0.stats.write_bytes
        + device.noc1.stats.write_bytes,
        bank_busy_s=[b.port.busy_time for b in device.dram.banks],
        energy_j=device.energy.energy_j,
        dprint_messages=len(device.dprint_log),
    )
