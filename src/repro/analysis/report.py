"""Plain-text table rendering in the style of the paper's tables.

The experiment drivers produce structured rows; :class:`Table` renders
them with aligned columns so a benchmark run prints something directly
comparable to the paper's Tables I–VIII.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["Table", "format_si", "format_seconds"]


def format_si(value: float, unit: str = "", digits: int = 3) -> str:
    """1234567 → '1.23 M'; handles the ranges the tables need."""
    for factor, prefix in ((1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "K")):
        if abs(value) >= factor:
            return f"{value / factor:.{digits}g} {prefix}{unit}".rstrip()
    return f"{value:.{digits}g} {unit}".rstrip()


def format_seconds(seconds: float) -> str:
    """Render a runtime the way the paper's tables do (3 decimals)."""
    if seconds >= 0.0005:
        return f"{seconds:.3f}"
    return f"{seconds:.2e}"


class Table:
    """A fixed-column text table with a title and optional footnote."""

    def __init__(self, title: str, columns: Sequence[str]):
        if not columns:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []
        self.footnotes: List[str] = []

    def add_row(self, *cells) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} "
                "columns")
        self.rows.append([str(c) for c in cells])

    def add_footnote(self, text: str) -> None:
        self.footnotes.append(text)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines = [self.title, "=" * max(len(self.title), len(header)),
                 header, sep]
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.footnotes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover
        return self.render()
