"""Fault-event tracing and resilience reporting.

The fault-injection plane (:mod:`repro.faults`) and the resilient solver
(:func:`repro.core.solver.solve_resilient`) append :class:`FaultEvent`
records to a shared :class:`FaultTrace`.  The trace has a *canonical*
text form (:meth:`FaultTrace.to_text`) so two campaign runs with the same
seed can be compared byte-for-byte — the deterministic-replay check in CI
is a literal string comparison of two traces.

:class:`ResilienceReport` renders the campaign outcome as a paper-style
table: every injected fault, whether it was detected, and how it was
handled (ECC-corrected, retried, rolled back, remapped, watchdog-killed).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.report import Table

__all__ = ["FAULTS_SCHEMA", "FaultEvent", "FaultTrace",
           "ResilienceReport"]

#: schema tag of the FaultTrace JSON export; bump on layout changes.
FAULTS_SCHEMA = "repro-faults/1"


@dataclass(frozen=True)
class FaultEvent:
    """One fault-plane occurrence: an injection, detection, or recovery.

    ``t`` is simulated seconds for device-level events and ``-1.0`` for
    solver-iteration-level events (which carry the iteration in ``where``
    instead) — wall-clock never appears, so traces replay bit-identically.
    """

    t: float              #: simulated time (or -1.0 for iteration-indexed)
    kind: str             #: e.g. "dram.bitflip", "noc.delay", "solver.sdc"
    where: str            #: location: "bank3@0x1200.bit5", "iter17", ...
    action: str           #: "injected", "detected", "corrected", ...
    detail: str = ""      #: free-form, but deterministic, extra context

    def to_line(self) -> str:
        """Canonical one-line rendering (stable across runs)."""
        parts = [f"t={self.t:.9g}", self.kind, self.where, self.action]
        if self.detail:
            parts.append(self.detail)
        return " ".join(parts)


@dataclass
class FaultTrace:
    """An append-only, deterministic log of fault-plane events."""

    events: List[FaultEvent] = field(default_factory=list)

    def record(self, t: float, kind: str, where: str, action: str,
               detail: str = "") -> FaultEvent:
        ev = FaultEvent(t=float(t), kind=kind, where=where, action=action,
                        detail=detail)
        self.events.append(ev)
        return ev

    def __len__(self) -> int:
        return len(self.events)

    def count(self, kind: Optional[str] = None,
              action: Optional[str] = None) -> int:
        return sum(1 for e in self.events
                   if (kind is None or e.kind == kind)
                   and (action is None or e.action == action))

    def to_text(self) -> str:
        """Canonical rendering: byte-identical across seeded replays."""
        return "\n".join(e.to_line() for e in self.events) + "\n"

    def write(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_text())

    # -- versioned JSON (matches the repro-serve report convention) --------
    def to_json(self) -> dict:
        """Schema-tagged document; events as fixed-order rows."""
        return {
            "schema": FAULTS_SCHEMA,
            "n_events": len(self.events),
            "events": [[e.t, e.kind, e.where, e.action, e.detail]
                       for e in self.events],
        }

    def to_json_text(self) -> str:
        """Canonical byte-stable rendering (sorted keys, fixed format)."""
        return json.dumps(self.to_json(), sort_keys=True, indent=1) + "\n"

    @classmethod
    def from_json(cls, doc: dict) -> "FaultTrace":
        """Inverse of :meth:`to_json`; round-trips byte-identically."""
        schema = doc.get("schema")
        if schema != FAULTS_SCHEMA:
            raise ValueError(f"not a fault-trace document: schema "
                             f"{schema!r} (want {FAULTS_SCHEMA!r})")
        trace = cls()
        for t, kind, where, action, detail in doc.get("events", []):
            trace.record(t, kind, where, action, detail)
        if len(trace) != doc.get("n_events", len(trace)):
            raise ValueError(
                f"fault-trace document is inconsistent: n_events="
                f"{doc.get('n_events')} but {len(trace)} row(s)")
        return trace

    def write_json(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json_text())

    @classmethod
    def read_json(cls, path: str) -> "FaultTrace":
        with open(path) as fh:
            return cls.from_json(json.load(fh))


class ResilienceReport:
    """Campaign summary: injections vs. detections vs. recoveries."""

    def __init__(self, title: str = "Fault-injection campaign"):
        self.title = title
        self.trace = FaultTrace()
        self.outcome: Dict[str, str] = {}

    def note(self, key: str, value) -> None:
        """Attach a headline fact (residual, restarts, solve time, ...)."""
        self.outcome[key] = str(value)

    def render(self) -> str:
        by_kind: Dict[str, Dict[str, int]] = {}
        for ev in self.trace.events:
            by_kind.setdefault(ev.kind, {}).setdefault(ev.action, 0)
            by_kind[ev.kind][ev.action] += 1
        table = Table(self.title, ["fault kind", "action", "count"])
        for kind in sorted(by_kind):
            for action in sorted(by_kind[kind]):
                table.add_row(kind, action, by_kind[kind][action])
        if not self.trace.events:
            table.add_row("(none)", "-", 0)
        lines = [table.render(), ""]
        for key in sorted(self.outcome):
            lines.append(f"{key}: {self.outcome[key]}")
        return "\n".join(lines)
