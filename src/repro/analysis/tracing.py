"""Kernel timeline tracing: export runs to Chrome's trace viewer.

Attach a :class:`Tracer` to a device before launching programs and every
baby-core busy interval and stall is recorded; :meth:`Tracer.save` writes
a ``chrome://tracing`` / Perfetto-compatible JSON file where each Tensix
core is a process and each baby-core slot a thread — the pipeline overlap
the paper reasons about (Section IV's "concurrently computing, reading
the next tile, and writing the previous") becomes directly visible.

Usage::

    from repro.analysis.tracing import Tracer
    device.tracer = Tracer()
    ... run programs ...
    device.tracer.save("run.trace.json")   # open in ui.perfetto.dev
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import List, Optional, Tuple

__all__ = ["Tracer", "TraceEvent"]


@dataclass(frozen=True)
class TraceEvent:
    """One interval on a baby core's timeline (seconds)."""

    core: Tuple[int, int]
    slot: str
    kind: str          #: "busy" or "stall"
    t_start: float
    t_end: float

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


class Tracer:
    """Collects baby-core intervals; attach as ``device.tracer``."""

    def __init__(self, record_stalls: bool = True):
        self.record_stalls = record_stalls
        self.events: List[TraceEvent] = []

    def record(self, core: Tuple[int, int], slot: str, kind: str,
               t_start: float, t_end: float) -> None:
        if t_end <= t_start:
            return
        if kind == "stall" and not self.record_stalls:
            return
        self.events.append(TraceEvent(core, slot, kind, t_start, t_end))

    # -- export -----------------------------------------------------------
    def to_chrome_trace(self) -> dict:
        """The Chrome trace-event JSON structure (complete 'X' events)."""
        out = []
        for ev in self.events:
            out.append({
                "name": ev.kind,
                "cat": ev.kind,
                "ph": "X",
                "ts": ev.t_start * 1e6,          # microseconds
                "dur": ev.duration * 1e6,
                "pid": f"core{ev.core[0]},{ev.core[1]}",
                "tid": ev.slot,
                "args": {},
            })
        return {"traceEvents": out, "displayTimeUnit": "ns"}

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_chrome_trace(), fh)

    # -- quick queries ------------------------------------------------------
    def busy_time(self, core: Optional[Tuple[int, int]] = None,
                  slot: Optional[str] = None) -> float:
        return sum(ev.duration for ev in self.events
                   if ev.kind == "busy"
                   and (core is None or ev.core == core)
                   and (slot is None or ev.slot == slot))

    def overlap(self, slot_a: str, slot_b: str,
                core: Tuple[int, int]) -> float:
        """Seconds during which both slots of ``core`` were busy at once —
        the pipelining the optimised kernel exists to create."""
        a = sorted((e.t_start, e.t_end) for e in self.events
                   if e.kind == "busy" and e.core == core and e.slot == slot_a)
        b = sorted((e.t_start, e.t_end) for e in self.events
                   if e.kind == "busy" and e.core == core and e.slot == slot_b)
        total = 0.0
        i = j = 0
        while i < len(a) and j < len(b):
            lo = max(a[i][0], b[j][0])
            hi = min(a[i][1], b[j][1])
            if hi > lo:
                total += hi - lo
            if a[i][1] < b[j][1]:
                i += 1
            else:
                j += 1
        return total
