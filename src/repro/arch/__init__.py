"""Grayskull e150 hardware model.

Functional + timing simulation of the parts of the card the paper's
kernels touch:

* :mod:`repro.arch.dram` — 8 DDR banks, byte-accurate, with the 256-bit
  alignment behaviour discovered in Section IV-B of the paper.
* :mod:`repro.arch.noc` — the two networks-on-chip as calibrated
  bandwidth servers (per data-mover link, per-bank port).
* :mod:`repro.arch.sram` — 1 MB L1 per Tensix core with a bump allocator.
* :mod:`repro.arch.cb` — circular buffers (paged FIFOs) including the
  paper's ``cb_set_rd_ptr`` read-pointer aliasing extension.
* :mod:`repro.arch.fpu` — the 16384-bit tile engine (BF16 math on
  1024-element tiles, destination registers, pack/unpack).
* :mod:`repro.arch.tensix` — a Tensix core: two data-mover baby cores and
  the logical compute core, semaphores, CBs.
* :mod:`repro.arch.device` / :mod:`repro.arch.cluster` — the e150 (120
  cores, 108 workers, PCIe host link) and multi-card machines.
* :mod:`repro.arch.energy` — TT-SMI-style energy accounting.
"""

from repro.arch.cb import CircularBuffer
from repro.arch.cluster import Cluster
from repro.arch.device import GrayskullDevice
from repro.arch.dram import Dram, DramBank
from repro.arch.energy import EnergyMeter
from repro.arch.fpu import Fpu
from repro.arch.noc import Noc, NocTransferStats
from repro.arch.sram import Sram
from repro.arch.tensix import TensixCore

__all__ = [
    "CircularBuffer",
    "Cluster",
    "Dram",
    "DramBank",
    "EnergyMeter",
    "Fpu",
    "GrayskullDevice",
    "Noc",
    "NocTransferStats",
    "Sram",
    "TensixCore",
]
