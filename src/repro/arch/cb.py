"""Circular buffers: the FIFO pipes between baby cores in a Tensix core.

tt-metal semantics (Section II-A of the paper):

* A CB is a wrap-around queue of fixed-size **pages** in L1.
* The producer calls ``cb_reserve_back(n)`` (blocks until ``n`` pages are
  free), fills them (often by pointing a NoC read straight at
  ``get_write_ptr()``), then ``cb_push_back(n)`` commits them.
* The consumer calls ``cb_wait_front(n)`` (blocks until ``n`` pages are
  committed), uses them, then ``cb_pop_front(n)`` recycles them.

Two read-side extensions from the paper are modelled:

* :meth:`set_rd_ptr` — the ``cb_set_rd_ptr``/``llk_set_read_ptr`` API the
  authors *added to tt-metal* (Section VI) so the unpacker reads tile data
  from an arbitrary L1 address instead of the CB's own pages, eliminating
  the expensive data-mover memcpy.
* Data-mover-side and compute-side pointer state are **separate** (the
  paper found data movers and compute cores keep private copies of the CB
  structure, so a pointer poked by the data mover is invisible to
  compute): the alias is installed on the consumer side only.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

import numpy as np

from repro.arch.sram import Sram
from repro.sim import Event, SimulationError, Simulator

__all__ = ["CircularBuffer", "CBError"]


class CBError(RuntimeError):
    """Protocol violation on a circular buffer (over-push, over-pop, ...)."""


class CircularBuffer:
    """A paged FIFO in one core's L1."""

    #: supported element formats: BF16 (2 B) and FP32 (4 B — Wormhole mode).
    DTYPES = {"bf16": 2, "fp32": 4}

    def __init__(self, sim: Simulator, sram: Sram, cb_id: int,
                 page_size: int, n_pages: int, name: str = "",
                 dtype: str = "bf16"):
        if page_size <= 0 or n_pages <= 0:
            raise ValueError("page_size and n_pages must be positive")
        if dtype not in self.DTYPES:
            raise ValueError(f"dtype must be one of {sorted(self.DTYPES)}")
        if page_size % self.DTYPES[dtype]:
            raise ValueError(
                f"page_size {page_size} not a multiple of the {dtype} "
                "element size")
        self.sim = sim
        self.sram = sram
        self.cb_id = cb_id
        self.page_size = page_size
        self.n_pages = n_pages
        self.dtype = dtype
        self.elem_bytes = self.DTYPES[dtype]
        self.name = name or f"cb{cb_id}"
        self.base = sram.allocate(page_size * n_pages, align=32,
                                  label=self.name)

        # Queue state: absolute page counters (never wrap; modulo for slots).
        self._reserved = 0   # pages handed to the producer (reserve_back)
        self._pushed = 0     # pages committed (push_back)
        self._popped = 0     # pages recycled (pop_front)
        self._wait_q: Deque[tuple[int, Event]] = deque()
        self._reserve_q: Deque[tuple[int, Event]] = deque()
        #: fault injection: a wedged CB stops waking waiters (a hardware
        #: flow-control lock-up) — producers and consumers hang exactly as
        #: they would on silicon, until a watchdog intervenes.
        self.wedged = False
        # Consumer-side read-pointer alias (cb_set_rd_ptr), in L1 address.
        self._rd_alias: Optional[int] = None
        # Producer-side write-pointer alias (cb_set_wr_ptr) — the CB-alias
        # flexibility the paper *recommends* tt-metal add (Section VIII);
        # used by the SRAM-resident extension so pack_tile writes straight
        # into a local slab.
        self._wr_alias: Optional[int] = None

    # -- invariant helpers -------------------------------------------------
    @property
    def pages_committed(self) -> int:
        """Pages the consumer may wait_front on right now."""
        return self._pushed - self._popped

    @property
    def pages_free(self) -> int:
        """Pages the producer may still reserve."""
        return self.n_pages - (self._reserved - self._popped)

    def _slot_addr(self, abs_page: int) -> int:
        return self.base + (abs_page % self.n_pages) * self.page_size

    # -- synchronous fast paths ----------------------------------------------
    # The kernel API consults these before building a blocking event: a
    # satisfiable handshake commits in one call, with no Event, no heap
    # entry and no extra resume of the calling process.  FIFO fairness is
    # preserved because the fast path refuses whenever earlier requests are
    # still queued (the caller then lines up behind them via the event
    # path), and a wedged CB always refuses so injected flow-control faults
    # still hang producers and consumers exactly as before.
    def try_reserve(self, n: int = 1) -> bool:
        """Reserve ``n`` pages immediately if possible; never blocks."""
        if not 0 < n <= self.n_pages:
            raise CBError(f"{self.name}: cannot reserve {n} of {self.n_pages} pages")
        if self.wedged or self._reserve_q or self.pages_free < n:
            return False
        self._reserved += n
        return True

    def try_wait(self, n: int = 1) -> bool:
        """``True`` iff ``n`` pages are committed and a wait would not block."""
        if not 0 < n <= self.n_pages:
            raise CBError(f"{self.name}: cannot wait for {n} of {self.n_pages} pages")
        return not self.wedged and not self._wait_q \
            and self.pages_committed >= n

    # -- producer side -------------------------------------------------------
    def reserve_back(self, n: int = 1) -> Event:
        """Block until ``n`` pages are free, then reserve them."""
        if not 0 < n <= self.n_pages:
            raise CBError(f"{self.name}: cannot reserve {n} of {self.n_pages} pages")
        ev = self.sim.event(name=f"{self.name}.reserve({n})")
        self._reserve_q.append((n, ev))
        self._drain()
        return ev

    def push_back(self, n: int = 1) -> None:
        """Commit ``n`` previously reserved pages to the consumer."""
        if n <= 0:
            raise CBError("push count must be positive")
        if self._pushed + n > self._reserved:
            raise CBError(
                f"{self.name}: push_back({n}) without matching reserve_back "
                f"(pushed={self._pushed}, reserved={self._reserved})")
        self._pushed += n
        self._drain()

    def get_write_ptr(self) -> int:
        """L1 address of the next page to fill (after reserve_back)."""
        if self._reserved == self._pushed:
            raise CBError(f"{self.name}: get_write_ptr without reserved pages")
        return self._slot_addr(self._pushed)

    def _view_bits(self, addr: int) -> np.ndarray:
        if self.dtype == "fp32":
            return self.sram.view_u32(addr, self.page_size // 4)
        return self.sram.view_u16(addr, self.page_size // 2)

    def back_view_bits(self, page_offset: int = 0) -> np.ndarray:
        """Producer view of a back page in the CB's element width."""
        if self._wr_alias is not None:
            return self._view_bits(self._wr_alias
                                   + page_offset * self.page_size)
        if self._pushed + page_offset >= self._reserved:
            raise CBError(f"{self.name}: back page {page_offset} not reserved")
        return self._view_bits(self._slot_addr(self._pushed + page_offset))

    def front_view_bits(self, page_offset: int = 0) -> np.ndarray:
        """Consumer view of a committed page (honours the rd alias)."""
        if self._rd_alias is not None:
            return self._view_bits(self._rd_alias
                                   + page_offset * self.page_size)
        if page_offset >= self.pages_committed:
            raise CBError(
                f"{self.name}: front page {page_offset} beyond committed "
                f"{self.pages_committed}")
        return self._view_bits(self._slot_addr(self._popped + page_offset))

    def back_view_u16(self, page_offset: int = 0) -> np.ndarray:
        """16-bit view of a reserved-but-unpushed page (producer fill).

        With a write-pointer alias installed, the view targets the alias
        instead (no reservation needed — the pages are not used).
        """
        if self._wr_alias is not None:
            addr = self._wr_alias + page_offset * self.page_size
            return self.sram.view_u16(addr, self.page_size // 2)
        if self._pushed + page_offset >= self._reserved:
            raise CBError(f"{self.name}: back page {page_offset} not reserved")
        addr = self._slot_addr(self._pushed + page_offset)
        return self.sram.view_u16(addr, self.page_size // 2)

    def set_wr_ptr(self, l1_addr: int) -> None:
        """Alias the producer write pointer to ``l1_addr`` (extension).

        Implements the API flexibility the paper's conclusions ask for:
        "enabling CBs to alias local memory".  Unlike ``set_rd_ptr`` the
        alias persists until replaced or cleared with ``clear_wr_ptr``
        (each batch installs a fresh one anyway).
        """
        if l1_addr < 0 or l1_addr + self.page_size > self.sram.capacity:
            raise CBError(f"{self.name}: wr_ptr alias {l1_addr} out of L1")
        if l1_addr % 2:
            raise CBError(f"{self.name}: wr_ptr alias must be 2-byte aligned")
        self._wr_alias = l1_addr

    def clear_wr_ptr(self) -> None:
        self._wr_alias = None

    # -- consumer side -------------------------------------------------------
    def wait_front(self, n: int = 1) -> Event:
        """Block until ``n`` pages are committed (does not consume them)."""
        if not 0 < n <= self.n_pages:
            raise CBError(f"{self.name}: cannot wait for {n} of {self.n_pages} pages")
        ev = self.sim.event(name=f"{self.name}.wait({n})")
        self._wait_q.append((n, ev))
        self._drain()
        return ev

    def pop_front(self, n: int = 1) -> None:
        """Recycle ``n`` consumed pages back to the producer."""
        if n <= 0:
            raise CBError("pop count must be positive")
        if self._popped + n > self._pushed:
            raise CBError(
                f"{self.name}: pop_front({n}) exceeds committed pages "
                f"({self.pages_committed})")
        self._popped += n
        self._rd_alias = None  # an alias is valid for one wait/pop window
        self._drain()

    def get_read_ptr(self) -> int:
        """L1 address the unpacker will read from (honours set_rd_ptr)."""
        if self._rd_alias is not None:
            return self._rd_alias
        if self.pages_committed == 0:
            raise CBError(f"{self.name}: get_read_ptr with no committed pages")
        return self._slot_addr(self._popped)

    def front_view_u16(self, page_offset: int = 0) -> np.ndarray:
        """16-bit view of committed page ``page_offset`` (or the alias)."""
        if self._rd_alias is not None:
            addr = self._rd_alias + page_offset * self.page_size
            return self.sram.view_u16(addr, self.page_size // 2)
        if page_offset >= self.pages_committed:
            raise CBError(
                f"{self.name}: front page {page_offset} beyond committed "
                f"{self.pages_committed}")
        addr = self._slot_addr(self._popped + page_offset)
        return self.sram.view_u16(addr, self.page_size // 2)

    def set_rd_ptr(self, l1_addr: int) -> None:
        """``cb_set_rd_ptr``: alias the consumer read pointer to ``l1_addr``.

        The paper's zero-copy trick: the unpacker reads tile data straight
        out of the data mover's local buffer.  The alias is cleared by the
        next ``pop_front`` (each batch re-installs it after
        ``cb_wait_front`` completes, exactly as Section VI describes).
        """
        if l1_addr < 0 or l1_addr + self.page_size > self.sram.capacity:
            raise CBError(f"{self.name}: rd_ptr alias {l1_addr} out of L1")
        if l1_addr % 2:
            raise CBError(f"{self.name}: rd_ptr alias must be 2-byte aligned")
        self._rd_alias = l1_addr

    # -- fault injection -------------------------------------------------------
    def wedge(self) -> None:
        """Lock up the CB: queued and future waits never complete."""
        self.wedged = True

    def unwedge(self) -> None:
        """Release an injected wedge and wake whatever is now satisfiable."""
        self.wedged = False
        self._drain()

    # -- scheduling ----------------------------------------------------------
    def _drain(self) -> None:
        if self.wedged:
            return
        progressed = True
        while progressed:
            progressed = False
            if self._reserve_q:
                n, ev = self._reserve_q[0]
                if self.pages_free >= n:
                    self._reserved += n
                    self._reserve_q.popleft()
                    ev.succeed()
                    progressed = True
            if self._wait_q:
                n, ev = self._wait_q[0]
                if self.pages_committed >= n:
                    self._wait_q.popleft()
                    ev.succeed()
                    progressed = True

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<CB {self.name} pages={self.n_pages}x{self.page_size}B "
                f"committed={self.pages_committed} free={self.pages_free}>")
