"""Multi-card machines: several e150s on one PCIe host.

Grayskull cards cannot reach each other's memory (the paper: halo routing
through the host "is not supported currently by tt-metal"), so a cluster
is simply N independent devices whose programs run concurrently.  Wall
time is the slowest card's time; power and energy sum across cards — the
model behind the ×2 / ×4 card rows of Table VIII.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.arch.device import GrayskullDevice
from repro.perfmodel.calibration import DEFAULT_COSTS, CostModel

__all__ = ["Cluster"]


class Cluster:
    """N independent e150 cards (each with its own simulated clock)."""

    def __init__(self, n_cards: int, costs: CostModel = DEFAULT_COSTS,
                 dram_bank_capacity: Optional[int] = None):
        if n_cards <= 0:
            raise ValueError("a cluster needs at least one card")
        self.costs = costs
        self.cards: List[GrayskullDevice] = [
            GrayskullDevice(costs, dram_bank_capacity=dram_bank_capacity,
                            device_id=i)
            for i in range(n_cards)
        ]
        # Cross-card synchronisation is invisible to the per-card clocks
        # (each card simulates only its own launches), so barrier stalls
        # and host-staged transfer time are recorded here by whoever
        # coordinates the cards (repro.cluster's halo exchange).
        self._stall_s: List[float] = [0.0] * n_cards
        self._host_stage_s: float = 0.0

    @property
    def n_cards(self) -> int:
        return len(self.cards)

    def __iter__(self):
        return iter(self.cards)

    def __getitem__(self, i: int) -> GrayskullDevice:
        return self.cards[i]

    # -- cross-card time ledger -------------------------------------------
    def record_stall(self, card_index: int, dt: float) -> None:
        """Charge ``dt`` seconds of barrier stall to one card.

        A card that reaches a halo-exchange barrier early sits idle until
        the slowest card arrives; that wait is real wall time (and real
        idle-power draw) that the card's own simulated clock never sees.
        """
        if dt < 0:
            raise ValueError("stall time must be non-negative")
        self._stall_s[card_index] += dt

    def record_host_stage(self, dt: float) -> None:
        """Charge ``dt`` seconds of host-staged transfer (all cards idle)."""
        if dt < 0:
            raise ValueError("host staging time must be non-negative")
        self._host_stage_s += dt

    @property
    def stall_s(self) -> List[float]:
        """Per-card recorded barrier stalls (copy)."""
        return list(self._stall_s)

    @property
    def host_stage_s(self) -> float:
        return self._host_stage_s

    @property
    def wall_time_s(self) -> float:
        """Cluster wall time: the slowest card's clock *plus* its recorded
        barrier stalls, plus host staging time (during which every card
        idles)."""
        return max(card.sim.now + stall
                   for card, stall in zip(self.cards, self._stall_s)
                   ) + self._host_stage_s

    @property
    def energy_j(self) -> float:
        """Total energy: each card integrates its own power over the
        cluster wall time — every second a card is not simulating (an
        early finish, a barrier stall, host staging) draws idle power, so

            ``energy_j == Σ card.energy_j + Σ (wall − card.sim.now) · idle_w``

        holds as an exact identity (pinned by the accounting regression
        test)."""
        wall = self.wall_time_s
        total = 0.0
        for card in self.cards:
            total += card.energy.energy_j
            # Everything outside the card's own simulated activity —
            # finishing early, waiting at the exchange barrier, host
            # staging — is idle draw.
            idle = wall - card.sim.now
            if idle > 0:
                total += idle * self.costs.card_power_idle_w
        return total

    def map(self, fn: Callable[[GrayskullDevice], object]) -> list:
        """Apply ``fn`` to every card (e.g. to build per-card programs)."""
        return [fn(card) for card in self.cards]
