"""Multi-card machines: several e150s on one PCIe host.

Grayskull cards cannot reach each other's memory (the paper: halo routing
through the host "is not supported currently by tt-metal"), so a cluster
is simply N independent devices whose programs run concurrently.  Wall
time is the slowest card's time; power and energy sum across cards — the
model behind the ×2 / ×4 card rows of Table VIII.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.arch.device import GrayskullDevice
from repro.perfmodel.calibration import DEFAULT_COSTS, CostModel

__all__ = ["Cluster"]


class Cluster:
    """N independent e150 cards (each with its own simulated clock)."""

    def __init__(self, n_cards: int, costs: CostModel = DEFAULT_COSTS,
                 dram_bank_capacity: Optional[int] = None):
        if n_cards <= 0:
            raise ValueError("a cluster needs at least one card")
        self.costs = costs
        self.cards: List[GrayskullDevice] = [
            GrayskullDevice(costs, dram_bank_capacity=dram_bank_capacity,
                            device_id=i)
            for i in range(n_cards)
        ]

    @property
    def n_cards(self) -> int:
        return len(self.cards)

    def __iter__(self):
        return iter(self.cards)

    def __getitem__(self, i: int) -> GrayskullDevice:
        return self.cards[i]

    @property
    def wall_time_s(self) -> float:
        """Cluster wall time: the slowest card's simulated clock."""
        return max(card.sim.now for card in self.cards)

    @property
    def energy_j(self) -> float:
        """Total energy: each card integrates its own power over the
        cluster wall time (idle cards still draw idle power)."""
        wall = self.wall_time_s
        total = 0.0
        for card in self.cards:
            total += card.energy.energy_j
            # A card that finished early idles until the slowest one is done.
            idle = wall - card.sim.now
            if idle > 0:
                total += idle * self.costs.card_power_idle_w
        return total

    def map(self, fn: Callable[[GrayskullDevice], object]) -> list:
        """Apply ``fn`` to every card (e.g. to build per-card programs)."""
        return [fn(card) for card in self.cards]
