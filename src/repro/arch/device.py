"""The Grayskull e150: 120 Tensix cores, 8 DRAM banks, PCIe host link.

Geometry: a 12-wide × 10-high grid of Tensix cores.  As on the real card,
only 108 are *workers* (may run kernels); the remaining 12 are
storage-only.  We designate the top row as the storage row, which leaves a
12 × 9 worker grid — exactly the maximal decomposition the paper uses in
Table VIII.

The device owns the simulator clock, both NoCs, the DRAM, an energy meter
and the PCIe link used by host enqueue operations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.arch.dram import Dram
from repro.arch.energy import EnergyMeter
from repro.arch.noc import Noc
from repro.arch.tensix import TensixCore
from repro.perfmodel.calibration import DEFAULT_COSTS, CostModel
from repro.sim import Simulator
from repro.sim.resources import FifoServer

__all__ = ["GrayskullDevice"]


class GrayskullDevice:
    """One e150 card plus its private simulated clock."""

    def __init__(self, costs: CostModel = DEFAULT_COSTS,
                 dram_bank_capacity: Optional[int] = None,
                 device_id: int = 0):
        self.costs = costs
        self.device_id = device_id
        self.sim = Simulator()
        self.dram = Dram(self.sim, costs, bank_capacity=dram_bank_capacity)
        self.noc0 = Noc(self.sim, 0, self.dram, costs)
        self.noc1 = Noc(self.sim, 1, self.dram, costs)
        self.energy = EnergyMeter(self.sim, costs)
        #: the tt-metal debug print server: attaching it lets kernels
        #: DPRINT (at a heavy per-message cost — the paper disabled it
        #: for production runs).  Messages land in :attr:`dprint_log`.
        self.print_server_enabled = False
        self.dprint_log: list = []
        self.pcie = FifoServer(self.sim, rate=costs.pcie_bw,
                               overhead=costs.pcie_latency, name="pcie")

        self.grid_width = costs.grid_width
        self.grid_height = costs.grid_height
        storage_row = self.grid_height - 1  # top row: storage-only cores
        self._cores: Dict[Tuple[int, int], TensixCore] = {}
        for y in range(self.grid_height):
            for x in range(self.grid_width):
                self._cores[(x, y)] = TensixCore(
                    self.sim, x, y, self.noc0, self.noc1, costs,
                    is_worker=(y != storage_row))
        self._workers = [c for c in self._cores.values() if c.is_worker]
        if len(self._workers) != costs.n_worker_cores:
            raise AssertionError(
                f"worker count {len(self._workers)} != {costs.n_worker_cores}")

    # -- core lookup -----------------------------------------------------
    def core(self, x: int, y: int) -> TensixCore:
        try:
            return self._cores[(x, y)]
        except KeyError:
            raise KeyError(f"no core at ({x},{y}) on a "
                           f"{self.grid_width}x{self.grid_height} grid") from None

    @property
    def workers(self) -> List[TensixCore]:
        return list(self._workers)

    @property
    def n_workers(self) -> int:
        return len(self._workers)

    def release_launch_state(self) -> None:
        """Tear down the previous program so another can launch.

        Frees every core's CBs/semaphores/L1 and rewinds the DRAM
        allocator — what destroying a tt-metal Program plus its buffers
        does.  The simulated clock, energy meter and utilisation counters
        keep accumulating across launches; injected faults survive.
        """
        for core in self._cores.values():
            core.release_launch_state()
        self.dram.reset_allocator()

    def worker_grid(self, cores_y: int, cores_x: int) -> List[List[TensixCore]]:
        """Place a ``cores_y × cores_x`` decomposition onto physical cores.

        Returns ``grid[iy][ix]``.  The larger decomposition dimension is
        laid along the physical 12-wide axis when it would not otherwise
        fit (the paper's 12×9 placement requires this; see
        :func:`repro.perfmodel.scaling.columns_used`).
        """
        if cores_y * cores_x > self.n_workers:
            raise ValueError(
                f"{cores_y}x{cores_x} exceeds {self.n_workers} workers")
        swap = cores_y > (self.grid_height - 1)
        py, px = (cores_x, cores_y) if swap else (cores_y, cores_x)
        if py > self.grid_height - 1 or px > self.grid_width:
            raise ValueError(
                f"{cores_y}x{cores_x} cannot be placed on the "
                f"{self.grid_width}x{self.grid_height - 1} worker grid")
        grid: List[List[TensixCore]] = []
        for iy in range(cores_y):
            row = []
            for ix in range(cores_x):
                # physical (x, y): decomposition X along the grid width,
                # unless swapped, in which case decomposition Y runs along it.
                phys_x, phys_y = (iy, ix) if swap else (ix, iy)
                row.append(self.core(phys_x, phys_y))
            grid.append(row)
        return grid

    # -- DRAM geometry ------------------------------------------------------
    def dram_bank_noc_coords(self, bank_id: int) -> Tuple[int, int]:
        """NoC coordinates of a DRAM bank (banks sit along the grid edge).

        Kernels address banks via ``get_noc_addr(noc_x, noc_y, addr)``; we
        place bank *b* at ``(b + grid_width, 0)`` — a distinct, reserved
        coordinate space so core and bank addresses can't collide.
        """
        if not 0 <= bank_id < self.dram.n_banks:
            raise ValueError(f"bank {bank_id} out of range")
        return (self.grid_width + bank_id, 0)

    def bank_from_noc_coords(self, noc_x: int, noc_y: int) -> int:
        bank = noc_x - self.grid_width
        if noc_y != 0 or not 0 <= bank < self.dram.n_banks:
            raise ValueError(f"({noc_x},{noc_y}) is not a DRAM bank location")
        return bank

    # -- running ----------------------------------------------------------
    def run(self, until=None, max_events: Optional[int] = None):
        """Advance this card's simulator (see :meth:`Simulator.run`)."""
        return self.sim.run(until=until, max_events=max_events)

    def describe(self) -> str:
        """Text block diagram of the card (supports the Fig.-1 rendering)."""
        return (
            f"Grayskull e150 #{self.device_id}: "
            f"{self.grid_width}x{self.grid_height} Tensix cores "
            f"({self.n_workers} workers @ {self.costs.clock_hz / 1e9:.1f} GHz), "
            f"{self.dram.n_banks} DRAM banks, 2 NoCs, PCIe Gen4")

    def __repr__(self) -> str:  # pragma: no cover
        return f"<GrayskullDevice {self.device_id}>"
