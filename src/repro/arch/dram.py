"""DRAM subsystem: 8 banks, byte-accurate storage, alignment behaviour.

The behaviour the paper reverse-engineered in Section IV-B is modelled
mechanically, so the same bugs the authors hit occur here and the same
fixes (Listing 4's aligned-read helper, Fig. 5's padded allocation) cure
them:

* **Unaligned reads** (address not on a 256-bit / 32-byte boundary)
  "provide incorrect values": the DMA engine fetches from the address
  rounded *down* to the alignment boundary, so the caller receives data
  shifted by ``addr % 32`` bytes.
* **Unaligned writes**: a write that contiguously extends the immediately
  preceding write to the same bank is merged correctly by the controller
  (the paper found contiguous unaligned writes "do work as long as these
  come from separate locations in a buffer"); any *non-contiguous*
  unaligned write corrupts — it lands at the rounded-down address.

Each bank also owns a :class:`~repro.sim.resources.FifoServer` modelling
its service port, used by the NoC for contention timing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.perfmodel.calibration import DEFAULT_COSTS, CostModel
from repro.sim import Simulator
from repro.sim.resources import FifoServer

__all__ = ["DramBank", "Dram", "AccessFault"]


class AccessFault(Exception):
    """Out-of-range DRAM access (simulator-level protocol error)."""


@dataclass
class _WriteTracker:
    """Remembers the end of the last write for the merge heuristic."""

    last_end: int = -1


class DramBank:
    """One DDR bank: a flat byte array plus a service-port server."""

    def __init__(self, sim: Simulator, bank_id: int, capacity: int,
                 costs: CostModel):
        self.sim = sim
        self.bank_id = bank_id
        self.capacity = capacity
        self.costs = costs
        self.storage = np.zeros(capacity, dtype=np.uint8)
        self.port = FifoServer(sim, rate=costs.dram_bank_bw,
                               name=f"dram{bank_id}.port")
        self._writes = _WriteTracker()
        #: last service direction at the bank port ('r'/'w'); a flip costs
        #: the controller a turnaround stall (see Noc bookings).
        self.last_dir = ""
        # Counters for experiments/diagnostics.
        self.reads = 0
        self.writes = 0
        self.unaligned_reads = 0
        self.unaligned_writes = 0
        self.corrupted_writes = 0
        # -- fault injection / ECC scrub model ---------------------------
        #: when True, reads scrub injected bit-flips: a single flipped bit
        #: within one 32-byte ECC word is corrected in place; two or more
        #: flips in the same word are detected but uncorrectable.
        self.ecc_enabled = False
        self._injected_flips: dict[int, set[int]] = {}  # addr -> bit positions
        self.bit_flips = 0
        self.ecc_corrected = 0
        self.ecc_uncorrectable = 0

    def _check(self, addr: int, size: int) -> None:
        if addr < 0 or size < 0 or addr + size > self.capacity:
            raise AccessFault(
                f"bank {self.bank_id}: access [{addr}, {addr + size}) outside "
                f"capacity {self.capacity}")

    # -- fault injection ---------------------------------------------------
    def inject_bit_flip(self, addr: int, bit: int) -> None:
        """Flip one bit of storage (a DRAM soft error).

        The flip is remembered so the ECC model can later correct it: a
        second flip of the same bit cancels the record (the data really is
        back to its original value).
        """
        self._check(addr, 1)
        if not 0 <= bit < 8:
            raise ValueError(f"bit index {bit} outside a byte")
        self.storage[addr] ^= np.uint8(1 << bit)
        self.bit_flips += 1
        bits = self._injected_flips.setdefault(addr, set())
        bits.symmetric_difference_update({bit})
        if not bits:
            del self._injected_flips[addr]

    def _scrub(self, addr: int, size: int) -> None:
        """ECC pass over one read range (called from :meth:`read`).

        Flips are grouped by 32-byte ECC word (the DRAM access alignment):
        exactly one flipped bit in a word is corrected in place; more than
        one is uncorrectable — counted and left corrupted, matching
        SECDED behaviour.
        """
        if not self.ecc_enabled or not self._injected_flips:
            return
        word = self.costs.dram_alignment
        touched = [a for a in self._injected_flips if addr <= a < addr + size]
        by_word: dict[int, list[int]] = {}
        for a in touched:
            by_word.setdefault(a // word, []).append(a)
        for _w, addrs in sorted(by_word.items()):
            n_bits = sum(len(self._injected_flips[a]) for a in addrs)
            if n_bits == 1:
                a = addrs[0]
                bit = next(iter(self._injected_flips.pop(a)))
                self.storage[a] ^= np.uint8(1 << bit)
                self.ecc_corrected += 1
            else:
                self.ecc_uncorrectable += 1
                for a in addrs:
                    del self._injected_flips[a]

    def _clear_flips(self, addr: int, size: int) -> None:
        """A write overwrites corrupted bytes, retiring their flip records."""
        if self._injected_flips:
            for a in [a for a in self._injected_flips
                      if addr <= a < addr + size]:
                del self._injected_flips[a]

    # -- functional access (timing handled by the NoC) --------------------
    def read(self, addr: int, size: int, *, requests: int = 1) -> np.ndarray:
        """Fetch ``size`` bytes; unaligned addresses return shifted data.

        Returns a *copy* (the DMA engine snapshots the bank at issue time).
        ``requests`` is the number of logical DMA requests this range
        represents — the NoC passes >1 when it coalesces a run of
        contiguous aligned reads into one storage access, keeping the
        per-bank request counters identical to the uncoalesced form.
        """
        self._check(addr, size)
        self.reads += requests
        align = self.costs.dram_alignment
        if addr % align:
            # DMA fetches from the aligned-down address: the caller gets
            # bytes shifted by the misalignment — "incorrect values".
            self.unaligned_reads += 1
            base = addr - (addr % align)
            self._check(base, size)
            self._scrub(base, size)
            return self.storage[base:base + size].copy()
        self._scrub(addr, size)
        return self.storage[addr:addr + size].copy()

    def write(self, addr: int, data: np.ndarray, *,
              requests: int = 1) -> None:
        """Store bytes; non-contiguous unaligned writes corrupt (see module doc).

        ``requests`` mirrors :meth:`read`: a coalesced run of contiguous
        aligned writes is stored in one pass but still counted as the
        original number of controller requests.
        """
        data = np.asarray(data, dtype=np.uint8).ravel()
        size = data.size
        self._check(addr, size)
        self.writes += requests
        self._clear_flips(addr, size)
        align = self.costs.dram_alignment
        if addr % align:
            self.unaligned_writes += 1
            if addr == self._writes.last_end:
                # Controller merges a contiguous continuation correctly.
                self.storage[addr:addr + size] = data
            else:
                # Non-contiguous unaligned write: lands rounded-down,
                # clobbering earlier bytes — "corrupt values being stored".
                self.corrupted_writes += 1
                base = addr - (addr % align)
                self.storage[base:base + size] = data
                self._writes.last_end = base + size
                return
        else:
            self.storage[addr:addr + size] = data
        self._writes.last_end = addr + size

    def __repr__(self) -> str:  # pragma: no cover
        return f"<DramBank {self.bank_id} {self.capacity >> 20} MiB>"


class Dram:
    """The card's DRAM: banks plus a trivial single-bank allocator.

    Buffer-level policy (single-bank vs interleaved placement) lives in
    :mod:`repro.ttmetal.buffers`; this class only provides raw banks and
    round-robin bank assignment for new single-bank buffers, mirroring how
    tt-metal spreads allocations.
    """

    def __init__(self, sim: Simulator, costs: CostModel = DEFAULT_COSTS,
                 bank_capacity: Optional[int] = None):
        self.sim = sim
        self.costs = costs
        cap = bank_capacity if bank_capacity is not None else (
            costs.dram_bytes // costs.n_dram_banks)
        # Keep the default backing arrays modest: the paper's card has
        # 1 GiB/bank but no experiment touches more than ~256 MiB/bank.
        cap = min(cap, 256 << 20)
        self.banks: List[DramBank] = [
            DramBank(sim, b, cap, costs) for b in range(costs.n_dram_banks)]
        self._next_bank = 0
        self._bank_brk = [0] * len(self.banks)  # per-bank bump pointer

    @property
    def n_banks(self) -> int:
        return len(self.banks)

    def bank(self, bank_id: int) -> DramBank:
        return self.banks[bank_id]

    def allocate(self, size: int, bank_id: Optional[int] = None,
                 align: Optional[int] = None) -> tuple[int, int]:
        """Reserve ``size`` bytes in one bank; returns ``(bank_id, address)``.

        Banks are assigned round-robin when unspecified (each new buffer in
        a fresh bank, like tt-metal's allocator).  Addresses are aligned to
        the DRAM access alignment by default.
        """
        if size <= 0:
            raise ValueError("allocation size must be positive")
        align = align or self.costs.dram_alignment
        if bank_id is None:
            bank_id = self._next_bank
            self._next_bank = (self._next_bank + 1) % self.n_banks
        brk = self._bank_brk[bank_id]
        addr = (brk + align - 1) // align * align
        if addr + size > self.banks[bank_id].capacity:
            raise AccessFault(
                f"bank {bank_id} exhausted: need {size} at {addr}, "
                f"capacity {self.banks[bank_id].capacity}")
        self._bank_brk[bank_id] = addr + size
        return bank_id, addr

    def reset_allocator(self) -> None:
        """Return every buffer to the allocator (program teardown).

        Bank storage is untouched; only the bump pointers and the
        round-robin cursor rewind, so the next launch's buffers reuse the
        same addresses.  Callers must be done reading the old buffers.
        """
        self._bank_brk = [0] * len(self.banks)
        self._next_bank = 0

    def allocate_interleaved(self, size: int, page_size: int) -> list[tuple[int, int]]:
        """Reserve page slots round-robin across all banks.

        Returns ``[(bank_id, address), ...]`` — one entry per page, cycling
        bank 0,1,...,7,0,... exactly as tt-metal interleaves pages.
        """
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        if page_size > self.costs.max_interleave_page:
            raise ValueError(
                f"page_size {page_size} exceeds the "
                f"{self.costs.max_interleave_page}-byte tt-metal maximum")
        n_pages = (size + page_size - 1) // page_size
        pages = []
        for p in range(n_pages):
            pages.append(self.allocate(page_size,
                                       bank_id=p % self.n_banks))
        return pages
