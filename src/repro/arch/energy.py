"""Energy accounting: TT-SMI-style card power integration.

The paper's central energy observation (Section VII) is that the e150
draws a roughly constant 50–55 W regardless of how many Tensix cores are
busy, so card energy is essentially ``power × wall time`` — which is why
using all 108 workers is ~19× more energy-efficient than using one.

:class:`EnergyMeter` integrates card power over simulated time with
step-wise changes in the active-core count, mirroring how TT-SMI samples
the card.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.perfmodel.calibration import DEFAULT_COSTS, CostModel
from repro.sim import Simulator

__all__ = ["EnergyMeter"]


@dataclass
class _Interval:
    t_start: float
    active_cores: int


class EnergyMeter:
    """Integrates a card's power draw over simulated time."""

    def __init__(self, sim: Simulator, costs: CostModel = DEFAULT_COSTS):
        self.sim = sim
        self.costs = costs
        self._energy_j = 0.0
        self._current = _Interval(t_start=sim.now, active_cores=0)
        self.samples: List[tuple[float, float]] = []  #: (time, watts) trace

    def _flush(self) -> None:
        dt = self.sim.now - self._current.t_start
        if dt > 0:
            watts = self.costs.card_power_w(self._current.active_cores)
            self._energy_j += watts * dt
            self.samples.append((self.sim.now, watts))
        self._current.t_start = self.sim.now

    def set_active_cores(self, n: int) -> None:
        """Record a change in how many Tensix cores are executing kernels."""
        if n < 0:
            raise ValueError("active core count cannot be negative")
        self._flush()
        self._current.active_cores = n

    @property
    def active_cores(self) -> int:
        return self._current.active_cores

    @property
    def energy_j(self) -> float:
        """Energy consumed up to the current simulated time."""
        self._flush()
        return self._energy_j

    @property
    def power_w(self) -> float:
        """Instantaneous modelled power draw."""
        return self.costs.card_power_w(self._current.active_cores)
