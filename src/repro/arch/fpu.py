"""The Tensix matrix/vector FPU: tile math on BF16 CB pages.

The FPU is a 16384-bit wide engine: one operation covers 1024 BF16
elements (a 32×32 tile).  tt-metal drives it through the three compute
baby cores — unpack (CB → tile registers), math (registers → registers),
pack (registers → CB) — which the programmer sees as a single kernel.

This module is purely functional: it moves and transforms bits between
circular-buffer pages and the 16 destination tile registers.  Operation
*timing* is charged by the compute kernel context
(:class:`repro.ttmetal.kernel_api.ComputeCtx`), one ``fpu_op`` per tile
operation, as calibrated from Table II's compute-only row.

Internal precision: operands are unpacked to float32, math runs at
float32, and ``pack_tile`` rounds once to BF16 — matching the hardware
contract that each CB-to-CB pass costs exactly one rounding.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.arch.cb import CircularBuffer
from repro.dtypes.bf16 import bits_to_f32, f32_to_bits
from repro.dtypes.tiles import TILE_ELEMS

__all__ = ["Fpu", "FpuError", "N_DST_REGISTERS"]

#: Destination register file: 16 tile registers (half-sync mode exposes 8,
#: but the paper's kernels only ever use dst0).
N_DST_REGISTERS = 16


class FpuError(RuntimeError):
    """FPU protocol violation (unacquired registers, size mismatch, ...)."""


class Fpu:
    """Functional tile engine of one Tensix core."""

    def __init__(self):
        self._dst: List[Optional[np.ndarray]] = [None] * N_DST_REGISTERS
        self._acquired = False
        self.ops = 0          #: tile operations executed (for reports)
        self.packs = 0

    # -- register file management (tile_regs_acquire / release) -----------
    def acquire_dst(self) -> None:
        """``tile_regs_acquire``: claim the destination registers."""
        if self._acquired:
            raise FpuError("destination registers already acquired")
        self._acquired = True

    def release_dst(self) -> None:
        """``tile_regs_release``: free the registers (contents invalidated)."""
        if not self._acquired:
            raise FpuError("destination registers not acquired")
        self._acquired = False
        self._dst = [None] * N_DST_REGISTERS

    def _check_dst(self, idx: int) -> None:
        if not self._acquired:
            raise FpuError("operation requires acquired destination registers")
        if not 0 <= idx < N_DST_REGISTERS:
            raise FpuError(f"dst register {idx} out of range")

    def dst_value_f32(self, idx: int) -> np.ndarray:
        """Inspect a register (testing hook); float32 copy."""
        self._check_dst(idx)
        if self._dst[idx] is None:
            raise FpuError(f"dst register {idx} is empty")
        return self._dst[idx].copy()

    # -- unpack helpers ------------------------------------------------------
    @staticmethod
    def _unpack(cb: CircularBuffer, tile_index: int) -> np.ndarray:
        """CB page → float32 tile (the unpacker honours ``set_rd_ptr``).

        Pages up to one tile (2048 B: 1024 BF16 or 512 FP32 elements — the
        same 16384-bit FPU width) are accepted: a ragged chunk still
        occupies a full FPU pass but carries fewer elements.  FP32 pages
        (the Wormhole-precision mode) unpack losslessly.
        """
        if cb.page_size % 2 or cb.page_size > TILE_ELEMS * 2:
            raise FpuError(
                f"{cb.name}: FPU pages must be even-sized and at most "
                f"{TILE_ELEMS * 2} B, got {cb.page_size}")
        if cb.dtype == "fp32":
            return cb.front_view_bits(tile_index).copy().view(np.float32)
        return bits_to_f32(cb.front_view_u16(tile_index).copy())

    def _binary(self, cb_a: CircularBuffer, cb_b: CircularBuffer,
                ia: int, ib: int, dst: int, op: Callable) -> None:
        self._check_dst(dst)
        a = self._unpack(cb_a, ia)
        b = self._unpack(cb_b, ib)
        self._dst[dst] = op(a, b).astype(np.float32)
        self.ops += 1

    # -- tt-metal compute API surface -----------------------------------------
    def add_tiles(self, cb_a: CircularBuffer, cb_b: CircularBuffer,
                  ia: int, ib: int, dst: int) -> None:
        """``add_tiles``: dst = cb_a[ia] + cb_b[ib] (elementwise)."""
        self._binary(cb_a, cb_b, ia, ib, dst, np.add)

    def sub_tiles(self, cb_a: CircularBuffer, cb_b: CircularBuffer,
                  ia: int, ib: int, dst: int) -> None:
        """``sub_tiles``: dst = cb_a[ia] − cb_b[ib]."""
        self._binary(cb_a, cb_b, ia, ib, dst, np.subtract)

    def mul_tiles(self, cb_a: CircularBuffer, cb_b: CircularBuffer,
                  ia: int, ib: int, dst: int) -> None:
        """``mul_tiles``: dst = cb_a[ia] × cb_b[ib]."""
        self._binary(cb_a, cb_b, ia, ib, dst, np.multiply)

    def copy_tile(self, cb: CircularBuffer, idx: int, dst: int) -> None:
        """``copy_tile``: unpack one CB tile into a register unchanged."""
        self._check_dst(dst)
        self._dst[dst] = self._unpack(cb, idx)
        self.ops += 1

    def add_tiles_to_dst(self, cb: CircularBuffer, idx: int, dst: int) -> None:
        """Accumulate a CB tile onto a register.

        Models the destination-register accumulation mode the authors
        experimented with ("initialising the maths addition operators to
        accumulate using values held in the destination registers") — kept
        as an ablation; the paper found it slower end-to-end.
        """
        self._check_dst(dst)
        if self._dst[dst] is None:
            raise FpuError(f"accumulate into empty dst register {dst}")
        self._dst[dst] = (self._dst[dst] + self._unpack(cb, idx)).astype(np.float32)
        self.ops += 1

    # -- SFPU-style elementwise unary ops --------------------------------------
    #: the unary functions the paper lists the FPU supporting ("squares,
    #: logs, trigonometric functions ... ReLU, sigmoid").
    UNARY_OPS = {
        "exp": np.exp,
        "log": np.log,
        "sqrt": np.sqrt,
        "square": np.square,
        "abs": np.abs,
        "sin": np.sin,
        "cos": np.cos,
        "reciprocal": np.reciprocal,
        "relu": lambda x: np.maximum(x, 0.0),
        "sigmoid": lambda x: 1.0 / (1.0 + np.exp(-x)),
    }

    def unary_tile(self, op: str, cb: CircularBuffer, idx: int,
                   dst: int) -> None:
        """``exp_tile`` / ``relu_tile`` / ... : dst = op(cb[idx]).

        IEEE edge cases (log of a negative, 1/0, ...) produce NaN/inf
        exactly as hardware does; NumPy's warnings are suppressed.
        """
        self._check_dst(dst)
        try:
            fn = self.UNARY_OPS[op]
        except KeyError:
            raise FpuError(
                f"unknown unary op {op!r}; supported: "
                f"{sorted(self.UNARY_OPS)}") from None
        with np.errstate(all="ignore"):
            self._dst[dst] = fn(self._unpack(cb, idx)).astype(np.float32)
        self.ops += 1

    # -- reductions --------------------------------------------------------------
    def reduce_tile(self, cb: CircularBuffer, idx: int, dst: int,
                    kind: str = "sum") -> float:
        """``reduce_tile``: scalar reduction of a tile.

        As on hardware (REDUCE_SCALAR), the result lands in element 0 of
        the destination register with the rest zeroed; the value is also
        returned for host-side convenience.
        """
        self._check_dst(dst)
        data = self._unpack(cb, idx)
        if kind == "sum":
            val = np.float32(data.sum(dtype=np.float64))
        elif kind == "max":
            val = np.float32(data.max())
        elif kind == "absmax":
            val = np.float32(np.abs(data).max())
        else:
            raise FpuError(f"unknown reduction {kind!r} "
                           "(sum / max / absmax)")
        out = np.zeros_like(data)
        out.flat[0] = val
        self._dst[dst] = out
        self.ops += 1
        return float(val)

    # -- 2-D tile ops ---------------------------------------------------------
    def _unpack_2d(self, cb: CircularBuffer, idx: int) -> np.ndarray:
        data = self._unpack(cb, idx)
        if data.size != TILE_ELEMS:
            raise FpuError(
                f"{cb.name}: 2-D tile ops need full {TILE_ELEMS}-element "
                f"pages, got {data.size}")
        return data.reshape(32, 32)

    def matmul_tiles(self, cb_a: CircularBuffer, cb_b: CircularBuffer,
                     ia: int, ib: int, dst: int,
                     accumulate: bool = False) -> None:
        """``matmul_tiles``: dst (+)= cb_a[ia] @ cb_b[ib] on 32×32 tiles.

        The headline ML primitive of the Tensix FPU; ``accumulate=True``
        chains partial products across the K dimension.
        """
        self._check_dst(dst)
        prod = (self._unpack_2d(cb_a, ia) @ self._unpack_2d(cb_b, ib)
                ).astype(np.float32)
        if accumulate:
            if self._dst[dst] is None:
                raise FpuError("matmul accumulate into empty register")
            prod = (self._dst[dst].reshape(32, 32) + prod).astype(np.float32)
        self._dst[dst] = prod
        self.ops += 1

    def transpose_tile(self, cb: CircularBuffer, idx: int, dst: int) -> None:
        """``transpose_wh``: dst = cb[idx]ᵀ on a 32×32 tile."""
        self._check_dst(dst)
        self._dst[dst] = np.ascontiguousarray(
            self._unpack_2d(cb, idx).T).astype(np.float32)
        self.ops += 1

    def pack_tile(self, dst: int, cb_out: CircularBuffer,
                  page_offset: int = 0) -> None:
        """``pack_tile``: round a register to BF16 into a reserved CB page."""
        self._check_dst(dst)
        if self._dst[dst] is None:
            raise FpuError(f"pack of empty dst register {dst}")
        if cb_out.dtype == "fp32":
            out = cb_out.back_view_bits(page_offset)
            bits = np.ascontiguousarray(
                self._dst[dst], dtype=np.float32).ravel().view(np.uint32)
        else:
            out = cb_out.back_view_u16(page_offset)
            bits = f32_to_bits(self._dst[dst]).ravel()
        if out.size != bits.size:
            raise FpuError(
                f"{cb_out.name}: pack size mismatch — register holds "
                f"{bits.size} elements, page holds {out.size}")
        out[:] = bits
        self.packs += 1
