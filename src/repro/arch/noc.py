"""Network-on-chip model: transfer timing between cores and DRAM banks.

Each Tensix data-mover core owns one unidirectional link onto one of the
two NoCs (reads typically ride NoC0, writes NoC1 — the paper's Fig. 3
layout).  A DRAM transfer occupies both the caller's link and the target
bank's service port; its completion event fires when the later of the two
bookings drains, plus the exposed completion latency (which a
``noc_async_*_barrier`` makes visible).

Request *issue* costs (the ~105 ns/read, ~24.5 ns/write of Table III) are
charged to the issuing baby core by the kernel API, not here: they bound
throughput when requests are tiny, while the link/bank servers bound it
when requests are large — matching the knee at ~1024-byte batches in
Tables III/IV.

Functional semantics: bytes move at issue time (reads snapshot the bank;
writes land immediately, subject to the alignment rules in
:mod:`repro.arch.dram`); the returned event carries only timing.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence

import numpy as np

from repro.arch.dram import Dram, DramBank
from repro.perfmodel.calibration import DEFAULT_COSTS, CostModel
from repro.sim import Event, Simulator
from repro.sim.resources import FifoServer

__all__ = ["Noc", "NocTransferStats", "ReadJob", "WriteJob"]


@dataclass
class NocTransferStats:
    """Per-NoC traffic counters (exported by experiment reports)."""

    read_requests: int = 0
    read_bytes: int = 0
    write_requests: int = 0
    write_bytes: int = 0


@dataclass(frozen=True)
class ReadJob:
    """One DRAM→SRAM read: functional destination + addressing."""

    bank_id: int
    addr: int
    size: int


@dataclass(frozen=True)
class WriteJob:
    """One SRAM→DRAM write with its payload."""

    bank_id: int
    addr: int
    data: np.ndarray


def _coalesce_reads(jobs: Sequence[ReadJob], align: int):
    """Group a burst into maximal runs of mergeable reads.

    Yields ``(bank_id, addr, size, run)`` tuples in job order.  Jobs merge
    only when the combined storage access is byte-for-byte equivalent to
    issuing them one at a time: same bank, exactly contiguous, and every
    address ``align``-aligned (so the unaligned shifted-read emulation
    never applies inside a run and job boundaries coincide with ECC-word
    boundaries, keeping the scrub grouping identical).
    """
    run: list[ReadJob] = []
    run_end = 0
    for job in jobs:
        if run and job.bank_id == run[0].bank_id and job.addr == run_end \
                and job.addr % align == 0:
            run.append(job)
            run_end += job.size
            continue
        if run:
            first = run[0]
            yield first.bank_id, first.addr, run_end - first.addr, run
        run = [job]
        run_end = job.addr + job.size
        if job.addr % align:
            # unaligned start: never extend (shifted-read semantics)
            yield job.bank_id, job.addr, job.size, run
            run = []
    if run:
        first = run[0]
        yield first.bank_id, first.addr, run_end - first.addr, run


def _coalesce_writes(jobs: Sequence["WriteJob"], align: int):
    """Like :func:`_coalesce_reads` for write bursts.

    Runs require aligned contiguous same-bank payloads so the merge
    heuristic, corruption emulation and flip-clearing behave exactly as
    for individual writes.
    """
    run: list[WriteJob] = []
    run_end = 0
    sizes: list[int] = []
    for job in jobs:
        size = int(np.asarray(job.data).size)
        if run and job.bank_id == run[0].bank_id and job.addr == run_end \
                and job.addr % align == 0:
            run.append(job)
            sizes.append(size)
            run_end += size
            continue
        if run:
            yield run[0].bank_id, run[0].addr, sizes, run
        run = [job]
        sizes = [size]
        run_end = job.addr + size
        if job.addr % align:
            yield job.bank_id, job.addr, sizes, run
            run = []
            sizes = []
    if run:
        yield run[0].bank_id, run[0].addr, sizes, run


class Noc:
    """One of the two NoCs: shared access to the DRAM bank ports."""

    def __init__(self, sim: Simulator, noc_id: int, dram: Dram,
                 costs: CostModel = DEFAULT_COSTS):
        if noc_id not in (0, 1):
            raise ValueError("Grayskull has NoC 0 and NoC 1 only")
        self.sim = sim
        self.noc_id = noc_id
        self.dram = dram
        self.costs = costs
        self.stats = NocTransferStats()
        # -- fault injection: pending one-shot disturbances ----------------
        # Each entry is ``(kind, delay_s, hook)``; the next transfer whose
        # completion is assembled consumes the head of the queue.  "delay"
        # stretches the exposed completion latency; "drop" models a lost
        # flit retransmission (the latency is paid twice, plus the backoff).
        self._pending_faults: deque = deque()
        self.injected_delays = 0
        self.injected_drops = 0
        self._done_name = f"noc{noc_id}.done"

    def new_link(self, name: str) -> FifoServer:
        """A data-mover's private injection link onto this NoC."""
        return FifoServer(self.sim, rate=self.costs.noc_link_bw,
                          name=f"noc{self.noc_id}.link.{name}")

    # -- reads -------------------------------------------------------------
    def read_burst(self, link: FifoServer, jobs: Sequence[ReadJob],
                   out: List[np.ndarray] | None = None, *,
                   replay: bool = False,
                   interleaved: bool = False) -> Event:
        """Issue a burst of DRAM reads; returns one completion event.

        ``out`` (if given) collects the per-job byte arrays in order.
        ``replay`` marks re-reads of recently-fetched rows (row-buffer
        coalescing, Table V/VI); ``interleaved`` raises the effective link
        rate because consecutive pages stream from different banks.
        """
        if not jobs:
            ev = self.sim.event(name="noc.read.empty")
            ev.succeed()
            return ev
        total = 0
        per_bank: dict[int, int] = {}
        align = self.costs.dram_alignment
        for bank_id, addr, size, run in _coalesce_reads(jobs, align):
            data = self.dram.bank(bank_id).read(addr, size,
                                                requests=len(run))
            if out is not None:
                if len(run) == 1:
                    out.append(data)
                else:
                    # Split the merged snapshot back into per-job views so
                    # callers see the exact chunks they asked for.
                    off = 0
                    for job in run:
                        out.append(data[off:off + job.size])
                        off += job.size
            total += size
            per_bank[bank_id] = per_bank.get(bank_id, 0) + size
        self.stats.read_requests += len(jobs)
        self.stats.read_bytes += total

        link_bytes = total
        if replay:
            link_bytes = total * self.costs.replay_coalesce
        if interleaved:
            # Bursts striped over banks overlap in the DMA engine: model as
            # a faster effective link rate by scaling the booked bytes.
            link_bytes *= self.costs.noc_link_bw / self.costs.noc_link_bw_interleaved
        done_events = [link.submit(link_bytes)]
        for bank_id, nbytes in per_bank.items():
            done_events.append(self._book_bank(bank_id, nbytes, "r"))
        return self._completion(done_events, self.costs.read_latency)

    def read(self, link: FifoServer, job: ReadJob, *,
             replay: bool = False, interleaved: bool = False
             ) -> tuple[np.ndarray, Event]:
        """Single read; returns ``(bytes, completion_event)``."""
        out: List[np.ndarray] = []
        ev = self.read_burst(link, [job], out, replay=replay,
                             interleaved=interleaved)
        return out[0], ev

    def book_read(self, link: FifoServer, bank_id: int, nbytes: float,
                  n_requests: int, *, replay: bool = False) -> Event:
        """Timing-only booking for a pre-gathered uniform read burst."""
        self.stats.read_requests += n_requests
        self.stats.read_bytes += int(nbytes)
        link_bytes = nbytes * (self.costs.replay_coalesce if replay else 1.0)
        events = [link.submit(link_bytes),
                  self._book_bank(bank_id, nbytes, "r")]
        return self._completion(events, self.costs.read_latency)

    def book_write(self, link: FifoServer, bank_id: int, nbytes: float,
                   n_requests: int) -> Event:
        """Timing-only booking for a pre-scattered uniform write burst."""
        self.stats.write_requests += n_requests
        self.stats.write_bytes += int(nbytes)
        events = [link.submit(nbytes),
                  self._book_bank(bank_id, nbytes, "w")]
        return self._completion(events, self.costs.write_latency)

    # -- writes -------------------------------------------------------------
    def write_burst(self, link: FifoServer, jobs: Sequence[WriteJob], *,
                    interleaved: bool = False) -> Event:
        """Issue a burst of DRAM writes; returns one completion event."""
        if not jobs:
            ev = self.sim.event(name="noc.write.empty")
            ev.succeed()
            return ev
        total = 0
        per_bank: dict[int, int] = {}
        align = self.costs.dram_alignment
        for bank_id, addr, sizes, run in _coalesce_writes(jobs, align):
            if len(run) == 1:
                self.dram.bank(bank_id).write(addr, run[0].data)
            else:
                merged = np.concatenate(
                    [np.asarray(j.data, dtype=np.uint8).ravel()
                     for j in run])
                self.dram.bank(bank_id).write(addr, merged,
                                              requests=len(run))
            n = sum(sizes)
            total += n
            per_bank[bank_id] = per_bank.get(bank_id, 0) + n
        self.stats.write_requests += len(jobs)
        self.stats.write_bytes += total

        done_events = [link.submit(total)]
        for bank_id, nbytes in per_bank.items():
            done_events.append(self._book_bank(bank_id, nbytes, "w"))
        return self._completion(done_events, self.costs.write_latency)

    def write(self, link: FifoServer, job: WriteJob) -> Event:
        return self.write_burst(link, [job])

    # -- core-to-core (extension: Section VIII future work) ------------------
    def sram_copy(self, link: FifoServer, src: np.ndarray,
                  dst: np.ndarray) -> Event:
        """Direct SRAM→SRAM transfer between cores over the NoC.

        Not used by the paper's kernels (Grayskull cores exchange data via
        DRAM) but provided for the neighbour-communication extension the
        paper sketches in its future work.
        """
        if src.size != dst.size:
            raise ValueError("sram_copy size mismatch")
        dst[:] = src
        done = link.submit(int(src.size))
        return self._completion([done], self.costs.read_latency)

    # -- helpers ------------------------------------------------------------
    def _book_bank(self, bank_id: int, nbytes: int, direction: str) -> Event:
        """Occupy a bank port, charging a turnaround stall on a read↔write
        direction flip (the DRAM-controller cost that makes interleaving
        reads with synchronous writes expensive on the same bank)."""
        bank = self.dram.bank(bank_id)
        extra = self.costs.dram_turnaround if (
            bank.last_dir and bank.last_dir != direction) else 0.0
        bank.last_dir = direction
        return bank.port.submit(nbytes, extra_time=extra)

    # -- fault injection -----------------------------------------------------
    def inject_fault(self, kind: str, delay_s: float,
                     hook: Optional[Callable] = None) -> None:
        """Arm a one-shot disturbance for the next transfer on this NoC.

        ``kind`` is ``"delay"`` (the completion latency stretches by
        ``delay_s``) or ``"drop"`` (a lost transaction: the exposed latency
        is paid a second time for the retransmission, plus ``delay_s``).
        ``hook(kind, extra_s, t)`` is called when the fault is consumed.
        """
        if kind not in ("delay", "drop"):
            raise ValueError(f"unknown NoC fault kind {kind!r}")
        if delay_s < 0:
            raise ValueError("fault delay must be non-negative")
        self._pending_faults.append((kind, float(delay_s), hook))

    def _consume_fault(self, latency: float) -> float:
        """Extra completion latency from the next armed fault, if any."""
        if not self._pending_faults:
            return 0.0
        kind, delay_s, hook = self._pending_faults.popleft()
        if kind == "drop":
            self.injected_drops += 1
            extra = latency + delay_s   # retransmit: pay the latency again
        else:
            self.injected_delays += 1
            extra = delay_s
        if hook is not None:
            hook(kind, extra, self.sim.now)
        return extra

    def _completion(self, done_events: Iterable[Event],
                    latency: float) -> Event:
        """Completion = all bookings drained + exposed latency.

        Booking events (FifoServer completions) cannot fail, so instead of
        an :class:`~repro.sim.AllOf` gate — an extra heap entry plus a
        composite event per transfer — a counting callback fires the
        completion directly from the last booking's own callback list.
        """
        events = list(done_events)
        ev = Event(self.sim, self._done_name)
        total_latency = latency + self._consume_fault(latency)

        if len(events) == 1:
            events[0].add_callback(
                lambda _e: ev.succeed(delay=total_latency))
            return ev

        remaining = len(events)

        def _arm(_e):
            nonlocal remaining
            remaining -= 1
            if remaining == 0:
                ev.succeed(delay=total_latency)

        for booking in events:
            booking.add_callback(_arm)
        return ev
