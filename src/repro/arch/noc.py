"""Network-on-chip model: transfer timing between cores and DRAM banks.

Each Tensix data-mover core owns one unidirectional link onto one of the
two NoCs (reads typically ride NoC0, writes NoC1 — the paper's Fig. 3
layout).  A DRAM transfer occupies both the caller's link and the target
bank's service port; its completion event fires when the later of the two
bookings drains, plus the exposed completion latency (which a
``noc_async_*_barrier`` makes visible).

Request *issue* costs (the ~105 ns/read, ~24.5 ns/write of Table III) are
charged to the issuing baby core by the kernel API, not here: they bound
throughput when requests are tiny, while the link/bank servers bound it
when requests are large — matching the knee at ~1024-byte batches in
Tables III/IV.

Functional semantics: bytes move at issue time (reads snapshot the bank;
writes land immediately, subject to the alignment rules in
:mod:`repro.arch.dram`); the returned event carries only timing.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence

import numpy as np

from repro.arch.dram import Dram, DramBank
from repro.perfmodel.calibration import DEFAULT_COSTS, CostModel
from repro.sim import Event, Simulator
from repro.sim.resources import FifoServer

__all__ = ["Noc", "NocTransferStats", "ReadJob", "WriteJob"]


@dataclass
class NocTransferStats:
    """Per-NoC traffic counters (exported by experiment reports)."""

    read_requests: int = 0
    read_bytes: int = 0
    write_requests: int = 0
    write_bytes: int = 0


@dataclass(frozen=True)
class ReadJob:
    """One DRAM→SRAM read: functional destination + addressing."""

    bank_id: int
    addr: int
    size: int


@dataclass(frozen=True)
class WriteJob:
    """One SRAM→DRAM write with its payload."""

    bank_id: int
    addr: int
    data: np.ndarray


class Noc:
    """One of the two NoCs: shared access to the DRAM bank ports."""

    def __init__(self, sim: Simulator, noc_id: int, dram: Dram,
                 costs: CostModel = DEFAULT_COSTS):
        if noc_id not in (0, 1):
            raise ValueError("Grayskull has NoC 0 and NoC 1 only")
        self.sim = sim
        self.noc_id = noc_id
        self.dram = dram
        self.costs = costs
        self.stats = NocTransferStats()
        # -- fault injection: pending one-shot disturbances ----------------
        # Each entry is ``(kind, delay_s, hook)``; the next transfer whose
        # completion is assembled consumes the head of the queue.  "delay"
        # stretches the exposed completion latency; "drop" models a lost
        # flit retransmission (the latency is paid twice, plus the backoff).
        self._pending_faults: deque = deque()
        self.injected_delays = 0
        self.injected_drops = 0

    def new_link(self, name: str) -> FifoServer:
        """A data-mover's private injection link onto this NoC."""
        return FifoServer(self.sim, rate=self.costs.noc_link_bw,
                          name=f"noc{self.noc_id}.link.{name}")

    # -- reads -------------------------------------------------------------
    def read_burst(self, link: FifoServer, jobs: Sequence[ReadJob],
                   out: List[np.ndarray] | None = None, *,
                   replay: bool = False,
                   interleaved: bool = False) -> Event:
        """Issue a burst of DRAM reads; returns one completion event.

        ``out`` (if given) collects the per-job byte arrays in order.
        ``replay`` marks re-reads of recently-fetched rows (row-buffer
        coalescing, Table V/VI); ``interleaved`` raises the effective link
        rate because consecutive pages stream from different banks.
        """
        if not jobs:
            ev = self.sim.event(name="noc.read.empty")
            ev.succeed()
            return ev
        total = 0
        per_bank: dict[int, int] = {}
        for job in jobs:
            data = self.dram.bank(job.bank_id).read(job.addr, job.size)
            if out is not None:
                out.append(data)
            total += job.size
            per_bank[job.bank_id] = per_bank.get(job.bank_id, 0) + job.size
        self.stats.read_requests += len(jobs)
        self.stats.read_bytes += total

        link_bytes = total
        if replay:
            link_bytes = total * self.costs.replay_coalesce
        if interleaved:
            # Bursts striped over banks overlap in the DMA engine: model as
            # a faster effective link rate by scaling the booked bytes.
            link_bytes *= self.costs.noc_link_bw / self.costs.noc_link_bw_interleaved
        done_events = [link.submit(link_bytes)]
        for bank_id, nbytes in per_bank.items():
            done_events.append(self._book_bank(bank_id, nbytes, "r"))
        return self._completion(done_events, self.costs.read_latency)

    def read(self, link: FifoServer, job: ReadJob, *,
             replay: bool = False, interleaved: bool = False
             ) -> tuple[np.ndarray, Event]:
        """Single read; returns ``(bytes, completion_event)``."""
        out: List[np.ndarray] = []
        ev = self.read_burst(link, [job], out, replay=replay,
                             interleaved=interleaved)
        return out[0], ev

    def book_read(self, link: FifoServer, bank_id: int, nbytes: float,
                  n_requests: int, *, replay: bool = False) -> Event:
        """Timing-only booking for a pre-gathered uniform read burst."""
        self.stats.read_requests += n_requests
        self.stats.read_bytes += int(nbytes)
        link_bytes = nbytes * (self.costs.replay_coalesce if replay else 1.0)
        events = [link.submit(link_bytes),
                  self._book_bank(bank_id, nbytes, "r")]
        return self._completion(events, self.costs.read_latency)

    def book_write(self, link: FifoServer, bank_id: int, nbytes: float,
                   n_requests: int) -> Event:
        """Timing-only booking for a pre-scattered uniform write burst."""
        self.stats.write_requests += n_requests
        self.stats.write_bytes += int(nbytes)
        events = [link.submit(nbytes),
                  self._book_bank(bank_id, nbytes, "w")]
        return self._completion(events, self.costs.write_latency)

    # -- writes -------------------------------------------------------------
    def write_burst(self, link: FifoServer, jobs: Sequence[WriteJob], *,
                    interleaved: bool = False) -> Event:
        """Issue a burst of DRAM writes; returns one completion event."""
        if not jobs:
            ev = self.sim.event(name="noc.write.empty")
            ev.succeed()
            return ev
        total = 0
        per_bank: dict[int, int] = {}
        for job in jobs:
            self.dram.bank(job.bank_id).write(job.addr, job.data)
            n = int(np.asarray(job.data).size)
            total += n
            per_bank[job.bank_id] = per_bank.get(job.bank_id, 0) + n
        self.stats.write_requests += len(jobs)
        self.stats.write_bytes += total

        done_events = [link.submit(total)]
        for bank_id, nbytes in per_bank.items():
            done_events.append(self._book_bank(bank_id, nbytes, "w"))
        return self._completion(done_events, self.costs.write_latency)

    def write(self, link: FifoServer, job: WriteJob) -> Event:
        return self.write_burst(link, [job])

    # -- core-to-core (extension: Section VIII future work) ------------------
    def sram_copy(self, link: FifoServer, src: np.ndarray,
                  dst: np.ndarray) -> Event:
        """Direct SRAM→SRAM transfer between cores over the NoC.

        Not used by the paper's kernels (Grayskull cores exchange data via
        DRAM) but provided for the neighbour-communication extension the
        paper sketches in its future work.
        """
        if src.size != dst.size:
            raise ValueError("sram_copy size mismatch")
        dst[:] = src
        done = link.submit(int(src.size))
        return self._completion([done], self.costs.read_latency)

    # -- helpers ------------------------------------------------------------
    def _book_bank(self, bank_id: int, nbytes: int, direction: str) -> Event:
        """Occupy a bank port, charging a turnaround stall on a read↔write
        direction flip (the DRAM-controller cost that makes interleaving
        reads with synchronous writes expensive on the same bank)."""
        bank = self.dram.bank(bank_id)
        extra = self.costs.dram_turnaround if (
            bank.last_dir and bank.last_dir != direction) else 0.0
        bank.last_dir = direction
        return bank.port.submit(nbytes, extra_time=extra)

    # -- fault injection -----------------------------------------------------
    def inject_fault(self, kind: str, delay_s: float,
                     hook: Optional[Callable] = None) -> None:
        """Arm a one-shot disturbance for the next transfer on this NoC.

        ``kind`` is ``"delay"`` (the completion latency stretches by
        ``delay_s``) or ``"drop"`` (a lost transaction: the exposed latency
        is paid a second time for the retransmission, plus ``delay_s``).
        ``hook(kind, extra_s, t)`` is called when the fault is consumed.
        """
        if kind not in ("delay", "drop"):
            raise ValueError(f"unknown NoC fault kind {kind!r}")
        if delay_s < 0:
            raise ValueError("fault delay must be non-negative")
        self._pending_faults.append((kind, float(delay_s), hook))

    def _consume_fault(self, latency: float) -> float:
        """Extra completion latency from the next armed fault, if any."""
        if not self._pending_faults:
            return 0.0
        kind, delay_s, hook = self._pending_faults.popleft()
        if kind == "drop":
            self.injected_drops += 1
            extra = latency + delay_s   # retransmit: pay the latency again
        else:
            self.injected_delays += 1
            extra = delay_s
        if hook is not None:
            hook(kind, extra, self.sim.now)
        return extra

    def _completion(self, done_events: Iterable[Event],
                    latency: float) -> Event:
        """Completion = all bookings drained + exposed latency."""
        events = list(done_events)
        ev = self.sim.event(name=f"noc{self.noc_id}.done")
        gate = self.sim.all_of(events)
        total_latency = latency + self._consume_fault(latency)

        def _fire(_g):
            ev.succeed(delay=total_latency)

        gate.add_callback(_fire)
        return ev
