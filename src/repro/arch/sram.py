"""Per-core L1 SRAM: 1 MB of byte-addressable scratch with a bump allocator.

Circular buffers, the paper's double-buffered local read buffers, and the
scalar-constant CB all live here.  Addresses are plain integers into the
backing array; views are NumPy slices so data movement is zero-copy on the
Python side.
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.calibration import DEFAULT_COSTS, CostModel

__all__ = ["Sram", "SramExhausted"]


class SramExhausted(Exception):
    """The 1 MB of L1 is over-subscribed — a real tt-metal failure mode."""


class Sram:
    """L1 memory of one Tensix core."""

    #: tt-metal reserves the low region for firmware/kernel binaries.
    RESERVED = 16 * 1024

    def __init__(self, capacity: int = DEFAULT_COSTS.sram_bytes):
        if capacity <= self.RESERVED:
            raise ValueError("SRAM capacity below the reserved region")
        self.capacity = capacity
        self.mem = np.zeros(capacity, dtype=np.uint8)
        self._brk = self.RESERVED
        #: every allocation as (base, size, label) — consumed by
        #: ``repro.lint``'s L1-overlap rule (P204)
        self.regions: list = []

    @property
    def allocated(self) -> int:
        return self._brk

    @property
    def free(self) -> int:
        return self.capacity - self._brk

    def reset(self) -> None:
        """Free every allocation above the reserved firmware region.

        Program teardown: tt-metal returns a program's L1 (CB windows,
        scratch slabs) to the allocator when the program is destroyed, so
        a device can run launch after launch.  Memory contents are left
        in place — the next program must initialise what it reads.
        """
        self._brk = self.RESERVED
        self.regions.clear()

    def allocate(self, size: int, align: int = 32,
                 label: str = "slab") -> int:
        """Reserve ``size`` bytes; returns the base address."""
        if size <= 0:
            raise ValueError("allocation size must be positive")
        if align <= 0 or align & (align - 1):
            raise ValueError("alignment must be a positive power of two")
        addr = (self._brk + align - 1) // align * align
        if addr + size > self.capacity:
            raise SramExhausted(
                f"L1 exhausted: need {size} B at {addr}, capacity "
                f"{self.capacity} B ({self.free} B free)")
        self._brk = addr + size
        self.regions.append((addr, size, label))
        return addr

    def view(self, addr: int, size: int) -> np.ndarray:
        """A writable byte view of ``[addr, addr+size)``."""
        if addr < 0 or addr + size > self.capacity:
            raise IndexError(
                f"L1 access [{addr}, {addr + size}) outside {self.capacity}")
        return self.mem[addr:addr + size]

    def view_u16(self, addr: int, count: int) -> np.ndarray:
        """A view of ``count`` little-endian 16-bit words (BF16 payloads)."""
        if addr % 2:
            raise ValueError("16-bit view requires 2-byte alignment")
        return self.view(addr, count * 2).view("<u2")

    def view_u32(self, addr: int, count: int) -> np.ndarray:
        """A view of ``count`` little-endian 32-bit words."""
        if addr % 4:
            raise ValueError("32-bit view requires 4-byte alignment")
        return self.view(addr, count * 4).view("<u4")
