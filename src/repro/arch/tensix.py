"""A Tensix core: five baby RISC-V cores around 1 MB of L1 and the FPU.

Programmer-visible structure (paper Fig. 1):

* **data mover 0** ("reader" in the paper's design) — issues NoC reads,
  owns a link onto NoC 0;
* **data mover 1** ("writer") — issues NoC writes, link onto NoC 1;
* **compute** — the three compute baby cores (unpack/math/pack) exposed as
  one logical kernel, driving the :class:`~repro.arch.fpu.Fpu`;
* 1 MB L1 (:class:`~repro.arch.sram.Sram`) holding circular buffers and
  local scratch;
* semaphores for data-mover ↔ data-mover iteration hand-off (the green
  dashed line in Fig. 3).
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.arch.cb import CircularBuffer
from repro.arch.fpu import Fpu
from repro.arch.noc import Noc
from repro.arch.sram import Sram
from repro.perfmodel.calibration import DEFAULT_COSTS, CostModel
from repro.sim import Event, Simulator
from repro.sim.resources import FifoServer, Semaphore

__all__ = ["TensixCore", "DATA_MOVER_0", "DATA_MOVER_1", "COMPUTE"]

#: Kernel slot identifiers (mirror tt-metal's RISCV_0 / RISCV_1 / COMPUTE).
DATA_MOVER_0 = "dm0"
DATA_MOVER_1 = "dm1"
COMPUTE = "compute"


class TensixCore:
    """One Tensix core at grid position ``(x, y)``."""

    def __init__(self, sim: Simulator, x: int, y: int,
                 noc0: Noc, noc1: Noc,
                 costs: CostModel = DEFAULT_COSTS,
                 is_worker: bool = True):
        self.sim = sim
        self.x = x
        self.y = y
        self.costs = costs
        self.is_worker = is_worker
        self.sram = Sram(costs.sram_bytes)
        self.fpu = Fpu()
        self.noc0 = noc0
        self.noc1 = noc1
        #: injection links: dm0 reads over NoC0, dm1 writes over NoC1.
        self.links: Dict[str, FifoServer] = {
            DATA_MOVER_0: noc0.new_link(f"core{x},{y}.dm0"),
            DATA_MOVER_1: noc1.new_link(f"core{x},{y}.dm1"),
        }
        self.cbs: Dict[int, CircularBuffer] = {}
        self.semaphores: Dict[int, Semaphore] = {}
        #: accumulated busy time per kernel slot, for utilisation reports.
        self.busy_time: Dict[str, float] = {
            DATA_MOVER_0: 0.0, DATA_MOVER_1: 0.0, COMPUTE: 0.0}
        #: accumulated blocking time (CB waits, semaphores, NoC barriers).
        self.stall_time: Dict[str, float] = {
            DATA_MOVER_0: 0.0, DATA_MOVER_1: 0.0, COMPUTE: 0.0}
        # -- fault injection: hung kernel slots / whole-core failure -------
        self.hung_slots: Set[str] = set()
        self.failed = False
        self._hang_events: Dict[str, Event] = {}

    @property
    def coord(self) -> tuple[int, int]:
        return (self.x, self.y)

    # -- resources -----------------------------------------------------------
    def create_cb(self, cb_id: int, page_size: int, n_pages: int,
                  name: str = "", dtype: str = "bf16") -> CircularBuffer:
        """Allocate a circular buffer in this core's L1 (host-side config)."""
        if cb_id in self.cbs:
            raise ValueError(f"CB {cb_id} already exists on core {self.coord}")
        cb = CircularBuffer(self.sim, self.sram, cb_id, page_size, n_pages,
                            name=name or f"core{self.x},{self.y}.cb{cb_id}",
                            dtype=dtype)
        self.cbs[cb_id] = cb
        return cb

    def create_semaphore(self, sem_id: int, initial: int = 0) -> Semaphore:
        if sem_id in self.semaphores:
            raise ValueError(f"semaphore {sem_id} already exists")
        sem = Semaphore(self.sim, value=initial,
                        name=f"core{self.x},{self.y}.sem{sem_id}")
        self.semaphores[sem_id] = sem
        return sem

    def allocate_l1(self, size: int, align: int = 32) -> int:
        """Host-side L1 scratch allocation (local read buffers etc.)."""
        return self.sram.allocate(size, align=align)

    def release_launch_state(self) -> None:
        """Tear down one program's footprint on this core.

        Clears the CB/semaphore tables and frees the program's L1 so the
        next launch can configure the core from scratch (repeated
        launches on a persistent device, e.g. the cluster solver's
        one-launch-per-iteration loop).  Utilisation counters and any
        injected hang/failure state survive — a dead core stays dead.
        """
        self.cbs.clear()
        self.semaphores.clear()
        self.sram.reset()

    # -- fault injection -----------------------------------------------------
    def inject_hang(self, slot: str) -> None:
        """Hang one kernel slot: its next API call blocks forever.

        The kernel process strands on a named, never-firing event so the
        watchdog in :func:`repro.ttmetal.host.Finish` can report the core
        and interrupt the process via :meth:`repro.sim.Process.interrupt`.
        """
        if slot not in self.busy_time:
            raise ValueError(f"unknown kernel slot {slot!r}")
        self.hung_slots.add(slot)

    def fail_core(self) -> None:
        """Whole-core failure: every kernel slot hangs."""
        self.failed = True
        self.hung_slots.update(self.busy_time)

    def hang_gate(self, slot: str) -> Optional[Event]:
        """The never-firing event a hung slot's kernel must wait on.

        Returns ``None`` while the slot is healthy.  The event is shared by
        every kernel on the slot and carries a descriptive name, which is
        what the watchdog's per-core stall report prints.
        """
        if slot not in self.hung_slots:
            return None
        ev = self._hang_events.get(slot)
        if ev is None:
            ev = Event(self.sim,
                       name=f"core{self.x},{self.y}.{slot}.hang-injected")
            self._hang_events[slot] = ev
        return ev

    def describe(self) -> str:
        """Text rendering of the core's structure (regenerates paper Fig. 1)."""
        cb_lines = "\n".join(
            f"  |  CB{cb.cb_id}: {cb.n_pages} pages x {cb.page_size} B "
            f"@ L1[{cb.base:#x}]" for cb in self.cbs.values()) or \
            "  |  (no circular buffers configured)"
        return (
            f"Tensix core ({self.x},{self.y})\n"
            f"  +- baby core dm0  -> router -> NoC0 (data in)\n"
            f"  +- baby core dm1  -> router -> NoC1 (data out)\n"
            f"  +- baby cores unpack/math/pack -> FPU "
            f"(16384-bit SIMD, BF16 32x32 tiles)\n"
            f"  +- L1 SRAM: {self.sram.capacity // 1024} KiB "
            f"({self.sram.free // 1024} KiB free)\n" + cb_lines)

    def __repr__(self) -> str:  # pragma: no cover
        kind = "worker" if self.is_worker else "storage"
        return f"<TensixCore ({self.x},{self.y}) {kind}>"
