"""``repro bench`` — the standing micro/macro performance benchmark suite.

The simulator is the substrate every experiment, fault campaign and lint
sweep runs on, so its speed is a first-class deliverable.  This module
measures it two ways:

* **micro** benchmarks time one hot path in isolation — raw engine event
  throughput, CB handshake round-trips, NoC burst issue — and report a
  throughput (higher is better);
* **macro** benchmarks time the paper's workloads end to end — the
  single-core and full-grid (12x9 = 108 worker) Jacobi solves and a
  streaming sweep — and report wall-clock seconds (lower is better).

Every benchmark also records *invariants*: the final simulated time,
total events processed and (for solves) a hash of the result grid.
Invariants are machine-independent — they must be byte-identical from
run to run and from laptop to CI — so a baseline comparison separates
"the simulator got slower" (tolerance applies) from "the simulator got
*different*" (always a failure).

Results serialise to a schema-stable JSON document
(``repro-bench/1``)::

    python -m repro bench                 # full suite -> BENCH_<date>.json
    python -m repro bench --smoke         # reduced sizes (CI)
    python -m repro bench --smoke --check # compare vs committed baseline

``benchmarks/perf/baseline_smoke.json`` is the committed baseline the CI
smoke job regresses against.
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

SCHEMA = "repro-bench/1"

#: default committed baseline for ``--smoke --check`` (repo-relative)
SMOKE_BASELINE = "benchmarks/perf/baseline_smoke.json"


@dataclass
class BenchResult:
    """One benchmark's outcome: a perf metric plus determinism invariants."""

    name: str
    kind: str                  # "micro" | "macro"
    metric: str                # e.g. "events_per_sec", "wall_s"
    value: float
    unit: str
    higher_is_better: bool
    invariants: Dict[str, object] = field(default_factory=dict)
    #: wall seconds of every repetition, in run order — not just the
    #: best-of value, so parallel-host results stay interpretable.
    rep_walls: List[float] = field(default_factory=list)

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "metric": self.metric,
            "value": self.value,
            "unit": self.unit,
            "higher_is_better": self.higher_is_better,
            "invariants": self.invariants,
            "rep_walls": self.rep_walls,
        }


@dataclass(frozen=True)
class BenchJob:
    """Config of the ``bench_invariants`` parallel job kind."""

    name: str
    smoke: bool


class BenchError(RuntimeError):
    """A benchmark produced inconsistent results across repetitions."""


# --------------------------------------------------------------------------
# micro benchmarks
# --------------------------------------------------------------------------

def _bench_engine(smoke: bool) -> Tuple[float, float, Dict[str, object]]:
    """Raw engine throughput: one process yielding N chained timeouts."""
    from repro.sim import Simulator, Timeout

    n = 20_000 if smoke else 200_000
    sim = Simulator()

    def proc():
        for _ in range(n):
            yield Timeout(sim, 1e-9)

    sim.process(proc(), name="bench.engine")
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    inv = {"events": sim.events_processed, "sim_now": sim.now}
    return wall, sim.events_processed / wall, inv


def _bench_cb_roundtrip(smoke: bool) -> Tuple[float, float, Dict[str, object]]:
    """Producer/consumer CB handshakes through a 2-page circular buffer."""
    from repro.arch.cb import CircularBuffer
    from repro.arch.sram import Sram
    from repro.sim import Simulator

    n = 10_000 if smoke else 100_000
    sim = Simulator()
    cb = CircularBuffer(sim, Sram(), 0, page_size=64, n_pages=2,
                        name="bench.cb")

    def producer():
        for _ in range(n):
            yield cb.reserve_back(1)
            cb.push_back(1)

    def consumer():
        for _ in range(n):
            yield cb.wait_front(1)
            cb.pop_front(1)

    sim.process(producer(), name="bench.cb.producer")
    sim.process(consumer(), name="bench.cb.consumer")
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    inv = {"events": sim.events_processed, "sim_now": sim.now,
           "pages": n}
    return wall, n / wall, inv


def _bench_noc_burst(smoke: bool) -> Tuple[float, float, Dict[str, object]]:
    """NoC read-burst issue rate: batched contiguous DRAM page reads."""
    from repro.arch.dram import Dram
    from repro.arch.noc import Noc, ReadJob
    from repro.sim import Simulator

    batches = 50 if smoke else 500
    jobs_per_batch = 32
    page = 1024
    sim = Simulator()
    dram = Dram(sim, bank_capacity=8 << 20)
    noc = Noc(sim, 0, dram)
    link = noc.new_link("bench")
    n_jobs = batches * jobs_per_batch

    def proc():
        for b in range(batches):
            base = (b % 64) * jobs_per_batch * page
            jobs = [ReadJob(bank_id=b % dram.n_banks,
                            addr=base + j * page, size=page)
                    for j in range(jobs_per_batch)]
            yield noc.read_burst(link, jobs)

    sim.process(proc(), name="bench.noc")
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    inv = {"events": sim.events_processed, "sim_now": sim.now,
           "read_requests": noc.stats.read_requests,
           "read_bytes": noc.stats.read_bytes}
    return wall, n_jobs / wall, inv


# --------------------------------------------------------------------------
# macro benchmarks
# --------------------------------------------------------------------------

def _grid_hash(grid_bits) -> str:
    import hashlib

    import numpy as np
    return hashlib.sha256(
        np.ascontiguousarray(grid_bits).tobytes()).hexdigest()[:16]


def _run_jacobi(nx: int, ny: int, cores_y: int, cores_x: int,
                iterations: int) -> Tuple[float, Dict[str, object]]:
    from repro.arch.device import GrayskullDevice
    from repro.core.grid import LaplaceProblem
    from repro.core.jacobi_optimized import OptimizedJacobiRunner

    dev = GrayskullDevice(dram_bank_capacity=64 << 20)
    runner = OptimizedJacobiRunner(dev, LaplaceProblem(nx=nx, ny=ny),
                                   cores_y=cores_y, cores_x=cores_x)
    t0 = time.perf_counter()
    res = runner.run(iterations)
    wall = time.perf_counter() - t0
    inv = {"events": dev.sim.events_processed, "sim_now": dev.sim.now,
           "kernel_time_s": res.kernel_time_s,
           "grid_sha": _grid_hash(res.grid_bits)}
    return wall, inv


def _bench_jacobi_single(smoke: bool) -> Tuple[float, float,
                                               Dict[str, object]]:
    """Single-core optimised Jacobi (the Table I/II workload shape).

    The smoke size is chosen so the wall time stays >~0.1 s: much
    smaller runs time mostly interpreter warm-up, and the CI regression
    gate would trip on scheduler noise rather than real slowdowns.
    """
    wall, inv = _run_jacobi(96, 96, 1, 1, 3)
    return wall, wall, inv


def _bench_jacobi_multicore(smoke: bool) -> Tuple[float, float,
                                                  Dict[str, object]]:
    """Full-grid multicore Jacobi: 12x9 = 108 workers (4x4 in smoke)."""
    if smoke:
        wall, inv = _run_jacobi(128, 128, 4, 4, 2)
    else:
        wall, inv = _run_jacobi(288, 216, 12, 9, 2)
    return wall, wall, inv


def _bench_stream_sweep(smoke: bool) -> Tuple[float, float,
                                              Dict[str, object]]:
    """Streaming sweep: async batched + sync single-row configurations."""
    from repro.streaming import StreamConfig, run_streaming

    rows = 128 if smoke else 256
    configs = [
        ("async_b64", StreamConfig(rows=rows, row_elems=1024,
                                   read_batch=64)),
        ("sync", StreamConfig(rows=rows, row_elems=1024,
                              sync_read=True, sync_write=True)),
    ]
    inv: Dict[str, object] = {}
    t0 = time.perf_counter()
    for label, cfg in configs:
        res = run_streaming(cfg)
        inv[f"{label}_runtime_s"] = res.runtime_s
        inv[f"{label}_read_bw"] = res.read_bw
    wall = time.perf_counter() - t0
    return wall, wall, inv


def _bench_serve_smoke(smoke: bool) -> Tuple[float, float,
                                             Dict[str, object]]:
    """Serve-layer macro scenario: seeded load test with armed hangs.

    One closed-loop load test with two seeded device hangs, including
    the functional solve post-pass.  The invariants pin the *entire*
    serve report byte-for-byte (its SHA-256) plus the headline numbers
    — simulated duration, request count, tail latency — so any drift in
    scheduling, batching, retry handling or the solve post-pass shows
    up as a semantic change, not noise.
    """
    import hashlib

    from repro.serve import LoadGenConfig, run_loadgen

    n = 48 if smoke else 192
    cfg = LoadGenConfig(mode="closed", seed=0, n_requests=n, n_clients=6)
    t0 = time.perf_counter()
    # jobs=1 / cache=False: the post-pass must not nest pools or touch
    # the sweep cache inside a timed benchmark repetition.
    report = run_loadgen(cfg, n_hangs=2, solve=True, jobs=1, cache=False)
    wall = time.perf_counter() - t0
    counters = report.metrics.counters
    inv = {
        "report_sha": hashlib.sha256(
            report.to_json_text().encode()).hexdigest()[:16],
        "sim_now": report.duration_s,
        "requests": len(report.outcomes),
        "completed": counters.get("completed", 0),
        "degraded": counters.get("degraded", 0),
        "shed": counters.get("shed", 0),
        "hangs": counters.get("hangs", 0),
        "batches_multi": counters.get("batches.multi", 0),
        "p99_total_s": report.latencies()["total_s"].get("p99", 0.0),
    }
    return wall, wall, inv


def _bench_chaos_smoke(smoke: bool) -> Tuple[float, float,
                                             Dict[str, object]]:
    """Chaos-serving macro scenario: full fault vocabulary at unit
    intensity.

    A fault-free baseline plus one chaos run (NoC delay/drop, ECC
    scrubs, kernel hangs, in-flight SDC, mid-launch core failures) over
    the same closed-loop load.  The invariants pin the chaos report
    byte-for-byte plus the resilience headline numbers — detected SDC,
    retries, sheds, p99 inflation — so any drift in fault consumption
    order, health-breaker transitions or retry backoff is a semantic
    change, not noise.
    """
    import hashlib

    from repro.serve import (ChaosConfig, LoadGenConfig, run_loadgen,
                             summarize_chaos_run, verify_chaos_report)

    n = 40 if smoke else 160
    cfg = LoadGenConfig(mode="closed", seed=3, n_requests=n, n_clients=6)
    chaos = ChaosConfig(seed=3, intensity=1.0)
    t0 = time.perf_counter()
    base = run_loadgen(cfg, solve=False, jobs=1, cache=False)
    report = run_loadgen(cfg, chaos=chaos, solve=False, jobs=1,
                         cache=False)
    wall = time.perf_counter() - t0
    counters = report.metrics.counters
    base_p99 = base.latencies()["total_s"].get("p99", 0.0) or 0.0
    p99 = report.latencies()["total_s"].get("p99", 0.0) or 0.0
    summary = summarize_chaos_run(report, chaos.intensity)
    inv = {
        "report_sha": summary["report_sha"],
        "sim_now": report.duration_s,
        "violations": len(verify_chaos_report(report)),
        "sdc_detected": counters.get("sdc.detected", 0),
        "hangs": counters.get("hangs", 0),
        "core_failures": counters.get("chaos.core_failure", 0),
        "shed": counters.get("shed", 0),
        "retries": counters.get("retries", 0),
        "p99_inflation": round(p99 / base_p99, 6) if base_p99 else 0.0,
    }
    return wall, wall, inv


def _bench_cluster_smoke(smoke: bool) -> Tuple[float, float,
                                               Dict[str, object]]:
    """Multi-card macro scenario: a weak-scaling sweep with the
    differential check inside every point.

    One model-timed weak sweep over 1/2/4 cards (each point solves the
    decomposed problem *and* the single-card reference, asserting
    bit-identity), rendered to the byte-stable report.  The invariants
    pin the report and JSON SHA-256 plus the headline numbers — every
    point bit-identical, total halo bytes, the 4-card wall time — so
    any drift in the decomposition, exchange order, halo cost model or
    report rendering is a semantic change, not noise.
    """
    import hashlib

    from repro.cluster import (cluster_sweep_configs, doc_to_json,
                               render_cluster_report, run_cluster_sweep,
                               sweep_to_doc)

    base = 32 if smoke else 64
    configs = cluster_sweep_configs("weak", (1, 2, 4), base_nx=base,
                                    base_ny=base, iterations=4)
    t0 = time.perf_counter()
    # jobs=1 / cache=False: no nested pools or sweep-cache hits inside
    # a timed benchmark repetition.
    points = run_cluster_sweep(configs, jobs=1, cache=False)
    wall = time.perf_counter() - t0
    report = render_cluster_report("weak", points)
    text = doc_to_json(sweep_to_doc("weak", points))
    inv = {
        "report_sha": hashlib.sha256(report.encode()).hexdigest()[:16],
        "json_sha": hashlib.sha256(text.encode()).hexdigest()[:16],
        "points": len(points),
        "bit_identical": sum(1 for p in points if p["bit_identical"]),
        "exchange_bytes": sum(p["exchange_bytes"] for p in points),
        "wall_4card_s": round(points[-1]["wall_time_s"], 12),
    }
    return wall, wall, inv


def _bench_ops_smoke(smoke: bool) -> Tuple[float, float,
                                           Dict[str, object]]:
    """Op-library macro scenario: every registered op, checked.

    One differential-checked execution per registered op (single-core in
    smoke, plus a 2x2 launch in full mode), sizes chosen to satisfy all
    three ops' constraints.  The invariants pin each op's readback
    SHA-256, tile-op count and simulated kernel time — any drift in a
    kernel schedule, reference implementation or the differential-check
    plumbing is a semantic change, not noise.
    """
    from repro import ops as opslib

    size = 32 if smoke else 64
    grids = [(1, 1)] if smoke else [(1, 1), (2, 2)]
    inv: Dict[str, object] = {}
    t0 = time.perf_counter()
    for spec in opslib.list_ops():
        problem = spec.make_problem(size, 0)
        for cores in grids:
            try:
                res = spec.run(problem, cores=cores)
            except ValueError:
                continue          # e.g. too few tiles for the core grid
            tag = f"{spec.name}_{cores[0]}x{cores[1]}"
            inv[f"{tag}_sha"] = res.output_sha
            inv[f"{tag}_fpu_ops"] = res.fpu_ops
            inv[f"{tag}_sim_s"] = res.kernel_time_s
            inv[f"{tag}_checked"] = res.checked
    wall = time.perf_counter() - t0
    return wall, wall, inv


def _bench_lint_smoke(smoke: bool) -> Tuple[float, float,
                                            Dict[str, object]]:
    """Whole-program lint wall time over the shipped Jacobi programs.

    Builds (off the clock) the optimised Jacobi launch twice — single
    core and the paper's full 12x9 = 108-core grid, 324 kernel
    instances — then times ``lint.lint_program`` over both with a cold
    symbolic-trace cache, i.e. the K/P/R passes plus the cross-core
    happens-before analysis end to end.  The invariants pin zero
    findings, the kernel-instance count and the rule-catalogue size:
    a new rule firing on shipped kernels, a lost rule, or a change in
    program assembly is a semantic change, not noise.
    """
    from repro import lint
    from repro.arch.device import GrayskullDevice
    from repro.core.grid import LaplaceProblem
    from repro.core.jacobi_optimized import OptimizedJacobiRunner
    from repro.lint import trace as lint_trace
    from repro.ttmetal import create_buffer

    programs = []
    for nx, ny, cy, cx in ((96, 96, 1, 1), (288, 216, 12, 9)):
        dev = GrayskullDevice(dram_bank_capacity=64 << 20)
        runner = OptimizedJacobiRunner(dev, LaplaceProblem(nx=nx, ny=ny),
                                       cores_y=cy, cores_x=cx)
        d1 = create_buffer(dev, runner.layout.nbytes, interleaved=True,
                           page_size=runner.config.page_size)
        d2 = create_buffer(dev, runner.layout.nbytes, interleaved=True,
                           page_size=runner.config.page_size)
        programs.append(runner.build_program(2, d1, d2))

    lint_trace._TRACE_CACHE.clear()   # cold cache: time the full analysis
    findings = kernels = 0
    t0 = time.perf_counter()
    for prog in programs:
        report = lint.lint_program(prog)
        findings += len(report)
        kernels += len(prog.kernels)
    wall = time.perf_counter() - t0
    inv = {"findings": findings, "programs": len(programs),
           "kernels": kernels, "rules": len(lint.all_rules())}
    return wall, wall, inv


# --------------------------------------------------------------------------
# runner
# --------------------------------------------------------------------------

#: name -> (kind, metric, unit, higher_is_better, callable)
BENCHMARKS: Dict[str, Tuple[str, str, str, bool, Callable]] = {
    "engine_events": ("micro", "events_per_sec", "1/s", True,
                      _bench_engine),
    "cb_roundtrip": ("micro", "roundtrips_per_sec", "1/s", True,
                     _bench_cb_roundtrip),
    "noc_burst": ("micro", "jobs_per_sec", "1/s", True, _bench_noc_burst),
    "jacobi_single": ("macro", "wall_s", "s", False, _bench_jacobi_single),
    "jacobi_multicore": ("macro", "wall_s", "s", False,
                         _bench_jacobi_multicore),
    "stream_sweep": ("macro", "wall_s", "s", False, _bench_stream_sweep),
    "serve_smoke": ("macro", "wall_s", "s", False, _bench_serve_smoke),
    "chaos_smoke": ("macro", "wall_s", "s", False, _bench_chaos_smoke),
    "cluster_smoke": ("macro", "wall_s", "s", False, _bench_cluster_smoke),
    "ops_smoke": ("macro", "wall_s", "s", False, _bench_ops_smoke),
    "lint_smoke": ("macro", "wall_s", "s", False, _bench_lint_smoke),
}


def _parallel_invariant_prepass(names: List[str], smoke: bool, jobs: int,
                                cache,
                                log: Optional[Callable[[str], None]]
                                ) -> Dict[str, Dict[str, object]]:
    """Collect the *macro* benchmarks' invariants via the sweep engine.

    Invariant collection is pure simulation — machine-independent by
    contract — so it parallelises (and caches) safely.  Perf timings
    never run here: they must stay sequential so the wall-clock numbers
    are not polluted by sibling workers, and the report says so.
    """
    from repro.parallel import JobSpec, sweep_results

    macro = [n for n in names if BENCHMARKS[n][0] == "macro"]
    if not macro:
        return {}
    if log is not None:
        log(f"  invariant prepass: {len(macro)} macro benchmark(s) "
            f"across {jobs} worker(s) (perf timings stay sequential)")
    specs = [JobSpec("bench_invariants", BenchJob(name=n, smoke=smoke))
             for n in macro]
    collected = sweep_results(specs, jobs=jobs, cache=cache)
    return dict(zip(macro, collected))


def run_benchmarks(smoke: bool = False, reps: int = 3,
                   only: Optional[List[str]] = None,
                   log: Optional[Callable[[str], None]] = None,
                   jobs: Optional[int] = None, cache=None) -> dict:
    """Run the suite and return the ``repro-bench/1`` document.

    Each benchmark runs ``reps`` times; the best perf value is kept
    (min wall / max throughput) while the invariants must be identical
    across repetitions — a mismatch raises :class:`BenchError`, because
    a nondeterministic simulator invalidates every other number in the
    file.  Every repetition's wall time is recorded (``rep_walls``), not
    just the best-of value.

    ``jobs > 1`` additionally collects the macro benchmarks' invariants
    through the parallel sweep engine *before* the timed loop and
    cross-checks them against the sequential repetitions — a
    cross-process determinism gate.  Timings themselves always run
    sequentially.
    """
    from repro.parallel import resolve_jobs
    from repro.sim.engine import _fastpath_default

    names = list(BENCHMARKS) if not only else list(only)
    unknown = [n for n in names if n not in BENCHMARKS]
    if unknown:
        raise ValueError(f"unknown benchmark(s): {', '.join(unknown)} "
                         f"(available: {', '.join(BENCHMARKS)})")
    n_jobs = resolve_jobs(jobs)
    prepass: Dict[str, Dict[str, object]] = {}
    if n_jobs > 1:
        prepass = _parallel_invariant_prepass(names, smoke, n_jobs, cache,
                                              log)
    results: List[BenchResult] = []
    for name in names:
        kind, metric, unit, higher, fn = BENCHMARKS[name]
        best: Optional[float] = None
        inv0: Optional[Dict[str, object]] = None
        rep_walls: List[float] = []
        for rep in range(max(1, reps)):
            wall, value, inv = fn(smoke)
            rep_walls.append(wall)
            if inv0 is None:
                inv0 = inv
            elif inv != inv0:
                raise BenchError(
                    f"benchmark {name!r} invariants changed between "
                    f"repetitions: {inv0!r} != {inv!r}")
            if best is None or (value > best if higher else value < best):
                best = value
        assert best is not None and inv0 is not None
        if name in prepass and prepass[name] != inv0:
            raise BenchError(
                f"benchmark {name!r} invariants differ between the "
                f"parallel prepass and the sequential run: "
                f"{prepass[name]!r} != {inv0!r}")
        results.append(BenchResult(name=name, kind=kind, metric=metric,
                                   value=best, unit=unit,
                                   higher_is_better=higher,
                                   invariants=inv0, rep_walls=rep_walls))
        if log is not None:
            log(f"  {name:<18} {metric} = {best:,.6g} {unit}")
    return {
        "schema": SCHEMA,
        "date": datetime.date.today().isoformat(),
        "smoke": bool(smoke),
        "reps": int(reps),
        "fastpath": _fastpath_default(),
        "python": platform.python_version(),
        # host context so parallel-era results stay interpretable; the
        # comparator ignores these (additive, schema-compatible keys).
        "cpu_count": os.cpu_count(),
        "timings": "sequential",
        "invariant_prepass": ({"jobs": n_jobs,
                               "benchmarks": sorted(prepass)}
                              if prepass else None),
        "results": [r.to_json() for r in results],
    }


def write_report(doc: dict, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=False)
        fh.write("\n")


def default_report_path(date: Optional[str] = None) -> str:
    return f"BENCH_{date or datetime.date.today().isoformat()}.json"


# --------------------------------------------------------------------------
# baseline comparison
# --------------------------------------------------------------------------

def compare(current: dict, baseline: dict,
            tolerance: float = 0.20,
            notes: Optional[List[str]] = None) -> List[str]:
    """Regressions of ``current`` against ``baseline``.

    Returns human-readable failure strings (empty = pass).  Perf metrics
    may drift within ``tolerance`` (relative); invariants must match
    exactly — they are machine-independent, so any drift is a semantic
    change in the simulator, not noise.

    Benchmarks present in ``current`` but absent from the baseline are
    *informational*, never failures — a fresh benchmark has no history
    to regress against.  Pass a list as ``notes`` to collect one line
    per new benchmark (e.g. a reminder to regenerate the baseline).
    """
    failures: List[str] = []
    if current.get("schema") != baseline.get("schema"):
        failures.append(
            f"schema mismatch: {current.get('schema')!r} vs baseline "
            f"{baseline.get('schema')!r}")
        return failures
    if bool(current.get("smoke")) != bool(baseline.get("smoke")):
        failures.append(
            "smoke/full mismatch: comparing a "
            f"{'smoke' if current.get('smoke') else 'full'} run against a "
            f"{'smoke' if baseline.get('smoke') else 'full'} baseline")
        return failures
    cur = {r["name"]: r for r in current.get("results", [])}
    for base in baseline.get("results", []):
        name = base["name"]
        now = cur.get(name)
        if now is None:
            failures.append(f"{name}: benchmark missing from current run")
            continue
        if now.get("invariants") != base.get("invariants"):
            failures.append(
                f"{name}: invariants changed (simulation semantics "
                f"drifted): {base.get('invariants')!r} -> "
                f"{now.get('invariants')!r}")
        b, c = float(base["value"]), float(now["value"])
        if base.get("higher_is_better"):
            if c < b * (1.0 - tolerance):
                failures.append(
                    f"{name}: {base['metric']} regressed "
                    f"{(1 - c / b) * 100:.1f}% ({b:,.6g} -> {c:,.6g}, "
                    f"tolerance {tolerance * 100:.0f}%)")
        else:
            if c > b * (1.0 + tolerance):
                failures.append(
                    f"{name}: {base['metric']} regressed "
                    f"{(c / b - 1) * 100:.1f}% ({b:,.6g} -> {c:,.6g}, "
                    f"tolerance {tolerance * 100:.0f}%)")
    if notes is not None:
        known = {r["name"] for r in baseline.get("results", [])}
        for r in current.get("results", []):
            if r["name"] not in known:
                notes.append(
                    f"{r['name']}: new benchmark (not in baseline; "
                    f"regenerate the baseline to start tracking it)")
    return failures


def render(doc: dict) -> str:
    """A small fixed-width table of the document's results."""
    lines = [f"repro bench  schema={doc['schema']}  date={doc['date']}  "
             f"smoke={doc['smoke']}  fastpath={doc['fastpath']}  "
             f"cpus={doc.get('cpu_count', '?')}  "
             f"timings={doc.get('timings', 'sequential')}",
             f"{'benchmark':<18} {'kind':<6} {'metric':<18} "
             f"{'value':>14}  invariants"]
    for r in doc["results"]:
        inv = ", ".join(f"{k}={v}" for k, v in
                        list(r["invariants"].items())[:3])
        lines.append(f"{r['name']:<18} {r['kind']:<6} {r['metric']:<18} "
                     f"{r['value']:>14,.6g}  {inv}")
    return "\n".join(lines)
