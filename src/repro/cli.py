"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``solve``    run the Jacobi solver on a chosen backend/variant
``stream``   run one streaming-benchmark configuration
``table``    regenerate one of the paper's tables (I..VIII)
``figures``  regenerate the paper's figures as text
``profile``  run the optimised kernel and print the busy/stall profile
``faults``   run a seeded fault-injection campaign (or the watchdog demo)
``lint``     statically verify every shipped kernel and program
``bench``    run the perf benchmark suite, emit BENCH_<date>.json
``sweep``    run a streaming sweep through the parallel engine
``serve``    multi-tenant solve service: load test, replay, chaos campaign
``cluster``  multi-card halo-exchange solver: one config or scaling sweep
``ops``      the repro.ops workload library: run one op, or sweep them all

Sweep-producing commands (``table``, ``sweep``, ``faults``, ``bench``)
accept a global ``-j/--jobs N`` flag that fans their independent,
deterministic sweep points out across N worker processes — output is
byte-identical to ``-j 1`` (``-j 0`` = all cores) — and cache results
content-addressed on (repro version, config, seed), so re-running an
unchanged sweep is near-free.  ``--no-cache`` (or the environment
variable ``REPRO_SWEEP_CACHE=0``) disables the cache.  See
``docs/parallel_sweeps.md``.

Examples::

    python -m repro solve --nx 64 --ny 64 --iterations 200 --backend e150
    python -m repro table 8
    python -m repro -j 4 table 7
    python -m repro table 3 --quick
    python -m repro sweep multicore -j 4 --report
    python -m repro stream --read-batch 64 --sync-read
    python -m repro profile --variant initial
    python -m repro faults --seed 7 --dram-flips 3 --core-failures 1
    python -m repro faults --seeds 0,1,2,3 -j 4
    python -m repro faults --replay-check
    python -m repro faults --hang-demo
    python -m repro lint
    python -m repro lint --list-rules
    python -m repro lint --format json
    python -m repro lint --py
    python -m repro lint --witness
    python -m repro lint --corpus R301
    python -m repro bench --smoke --check
    python -m repro serve loadgen --seed 0 --requests 64 --hangs 2
    python -m repro serve loadgen --seed 0 --record trace.jsonl
    python -m repro serve replay trace.jsonl
    python -m repro serve chaos --seed 0 --requests 48 --intensities 0.5,1,2
    python -m repro faults --seed 7 --trace-json trace.json
    python -m repro cluster solve --cards 2x2 --nx 64 --ny 64 --check
    python -m repro cluster sweep --mode weak --cards 1,2,4,8,16 -j 4
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Accelerating stencils on the "
                    "Tenstorrent Grayskull RISC-V accelerator'")
    # Global sweep-engine flags.  They are accepted both before the
    # subcommand (`repro -j4 table 7`) and after it (`repro table 7 -j4`);
    # the subcommand copies use SUPPRESS so an absent flag never clobbers
    # a value given at the top level.
    _add_parallel_args(p, top_level=True)
    par = argparse.ArgumentParser(add_help=False)
    _add_parallel_args(par, top_level=False)
    sub = p.add_subparsers(dest="command", required=True)

    s = sub.add_parser("solve", help="run the Jacobi solver")
    s.add_argument("--nx", type=int, default=64)
    s.add_argument("--ny", type=int, default=64)
    s.add_argument("--iterations", type=int, default=100)
    s.add_argument("--backend", default="auto",
                   choices=["auto", "cpu", "e150", "e150-model"])
    s.add_argument("--variant", default="optimized",
                   choices=["initial", "write_opt", "double_buffered",
                            "optimized"])
    s.add_argument("--cores", default="1x1",
                   help="core grid as YxX, e.g. 12x9")
    s.add_argument("--cards", type=int, default=1)
    s.add_argument("--threads", type=int, default=1,
                   help="CPU threads (cpu backend)")
    s.add_argument("--sim-iterations", type=int, default=None,
                   help="simulate only this many iterations and "
                        "extrapolate")

    t = sub.add_parser("table", parents=[par],
                       help="regenerate a paper table")
    t.add_argument("number", type=int, choices=range(1, 9),
                   help="table number (1-8)")
    t.add_argument("--quick", action="store_true",
                   help="reduced problem size (no paper comparison)")

    sw = sub.add_parser(
        "sweep", parents=[par],
        help="run a streaming sweep through the parallel engine",
        description="Run one of the paper's streaming sweep plans "
                    "(Tables III-VII shapes) through repro.parallel: "
                    "points fan out across -j worker processes with "
                    "byte-identical output, results are cached "
                    "content-addressed.")
    sw.add_argument("kind",
                    choices=["batch", "replication", "pages", "multicore"],
                    help="which sweep plan to run")
    sw.add_argument("--rows", type=int, default=1024)
    sw.add_argument("--row-elems", type=int, default=1024)
    sw.add_argument("--noncontiguous", action="store_true",
                    help="batch sweep only: Table IV access order")
    sw.add_argument("--report", action="store_true",
                    help="also print the per-job observability table "
                         "(worker ids, queue waits, wall times; host-"
                         "dependent, NOT byte-stable across runs)")

    sub.add_parser("figures", help="regenerate the paper's figures")

    st = sub.add_parser("stream", help="run one streaming configuration")
    st.add_argument("--rows", type=int, default=1024)
    st.add_argument("--row-elems", type=int, default=1024)
    st.add_argument("--read-batch", type=int, default=None)
    st.add_argument("--write-batch", type=int, default=None)
    st.add_argument("--sync-read", action="store_true")
    st.add_argument("--sync-write", action="store_true")
    st.add_argument("--noncontiguous", action="store_true")
    st.add_argument("--replication", type=int, default=0)
    st.add_argument("--page-size", type=int, default=None,
                    help="interleave page size in bytes")
    st.add_argument("--cores", type=int, default=1)

    pr = sub.add_parser("profile", help="run a kernel and print its profile")
    pr.add_argument("--nx", type=int, default=64)
    pr.add_argument("--ny", type=int, default=64)
    pr.add_argument("--iterations", type=int, default=5)
    pr.add_argument("--variant", default="optimized",
                    choices=["initial", "write_opt", "double_buffered",
                             "optimized"])

    f = sub.add_parser("faults", parents=[par],
                       help="run a seeded fault-injection campaign")
    f.add_argument("--seed", type=int, default=0)
    f.add_argument("--seeds", default=None,
                   help="comma-separated seed list (e.g. 0,1,2,3): run one "
                        "campaign per seed through the parallel sweep "
                        "engine and print the combined summary")
    f.add_argument("--report", action="store_true",
                   help="with --seeds: also print the per-job "
                        "observability table (not byte-stable)")
    f.add_argument("--nx", type=int, default=64)
    f.add_argument("--ny", type=int, default=64)
    f.add_argument("--iterations", type=int, default=64)
    f.add_argument("--cores", default="2x2", help="core grid as YxX")
    f.add_argument("--dram-flips", type=int, default=3,
                   help="device-phase DRAM soft errors (ECC-scrubbed)")
    f.add_argument("--noc-faults", type=int, default=2)
    f.add_argument("--pcie-corruptions", type=int, default=1)
    f.add_argument("--solver-flips", type=int, default=2,
                   help="uncorrectable strikes on solver state")
    f.add_argument("--core-failures", type=int, default=1)
    f.add_argument("--checkpoint-every", type=int, default=8)
    f.add_argument("--no-ecc", action="store_true",
                   help="disable the DRAM ECC scrub model")
    f.add_argument("--trace-out", default=None,
                   help="write the canonical fault trace to this file")
    f.add_argument("--trace-json", default=None,
                   help="write the fault trace as JSON (schema "
                        "repro-faults/1; byte-stable, round-trips via "
                        "FaultTrace.from_json)")
    f.add_argument("--replay-check", action="store_true",
                   help="run the campaign twice and diff the traces")
    f.add_argument("--hang-demo", action="store_true",
                   help="inject a kernel hang and show the Finish watchdog")

    li = sub.add_parser(
        "lint", help="statically verify the shipped kernels and programs")
    li.add_argument("--list-rules", action="store_true",
                    help="print the rule catalogue and exit")
    li.add_argument("--skip-examples", action="store_true",
                    help="do not lint the examples/ scripts")
    li.add_argument("--strict", action="store_true",
                    help="exit 1 on any finding, warnings included "
                         "(default: only error-severity findings fail)")
    li.add_argument("--format", default="text", choices=["text", "json"],
                    help="report format; json emits the repro-lint/1 "
                         "envelope (byte-stable) and nothing else")
    li.add_argument("--py", action="store_true",
                    help="audit src/repro for wall-clock imports and "
                         "unseeded RNG use instead of linting kernels")
    li.add_argument("--witness", action="store_true",
                    help="lint the seeded-violation corpus and replay "
                         "every R3xx counterexample schedule through the "
                         "simulator; exit 0 iff all confirm")
    li.add_argument("--corpus", default=None, metavar="RULE_ID",
                    help="lint one seeded-violation corpus program "
                         "(R301..R305, or P201 for the warning-only one)")

    be = sub.add_parser(
        "bench", parents=[par],
        help="run the micro/macro performance benchmark suite")
    be.add_argument("--smoke", action="store_true",
                    help="reduced problem sizes (the CI configuration)")
    be.add_argument("--out", default=None,
                    help="output JSON path (default: BENCH_<date>.json)")
    be.add_argument("--reps", type=int, default=3,
                    help="repetitions per benchmark; best value is kept")
    be.add_argument("--only", default=None,
                    help="comma-separated benchmark names to run")
    be.add_argument("--baseline", default=None,
                    help="baseline JSON to compare against (default with "
                         "--check: benchmarks/perf/baseline_smoke.json)")
    be.add_argument("--check", action="store_true",
                    help="exit 1 if any benchmark regresses beyond "
                         "--tolerance or any invariant changes")
    be.add_argument("--tolerance", type=float, default=0.20,
                    help="relative perf-regression tolerance for --check "
                         "(default 0.20; invariants always compare exact)")

    sv = sub.add_parser(
        "serve",
        help="multi-tenant solve service: seeded load test or replay",
        description="Drive the repro.serve solve service in simulated "
                    "time: a seeded open- or closed-loop load test "
                    "(loadgen) or a recorded request-trace replay "
                    "(replay).  stdout and --out JSON are byte-identical "
                    "across repeat runs and -j settings.")
    svsub = sv.add_subparsers(dest="serve_command", required=True)
    lg = svsub.add_parser("loadgen", parents=[par],
                          help="run a seeded synthetic load test")
    lg.add_argument("--mode", default="open", choices=["open", "closed"])
    lg.add_argument("--seed", type=int, default=0)
    lg.add_argument("--requests", type=int, default=64)
    lg.add_argument("--rate", type=float, default=8000.0,
                    help="open loop: Poisson arrival rate (requests/s)")
    lg.add_argument("--clients", type=int, default=4,
                    help="closed loop: concurrent tenants")
    lg.add_argument("--think-s", type=float, default=2e-3,
                    help="closed loop: mean think time (simulated s)")
    lg.add_argument("--sizes", default="32,48,64,96,128",
                    help="comma-separated grid extents to draw from")
    lg.add_argument("--workloads", default="jacobi",
                    help="comma-separated workload kinds to mix "
                         "(jacobi,matmul,fft,stencil9; default jacobi "
                         "only — sizes snap to each kind's constraint)")
    lg.add_argument("--iterations", type=int, default=32)
    lg.add_argument("--cpu-fraction", type=float, default=0.25)
    lg.add_argument("--deadline-fraction", type=float, default=0.25)
    lg.add_argument("--hangs", type=int, default=0,
                    help="arm this many seeded device hangs")
    lg.add_argument("--chaos-intensity", type=float, default=0.0,
                    help="inject a full seeded chaos plan at this "
                         "intensity (0 = off; see docs/chaos_serving.md)")
    lg.add_argument("--chaos-seed", type=int, default=None,
                    help="chaos plan seed (default: --seed)")
    lg.add_argument("--devices", type=int, default=2)
    lg.add_argument("--cpu-workers", type=int, default=1)
    lg.add_argument("--max-batch", type=int, default=4)
    lg.add_argument("--queue-capacity", type=int, default=64)
    lg.add_argument("--no-solve", action="store_true",
                    help="skip the functional solve post-pass")
    lg.add_argument("--out", default=None,
                    help="write the JSON report (schema repro-serve/2)")
    lg.add_argument("--record", default=None,
                    help="record the request trace to this JSONL file")
    rp = svsub.add_parser("replay", parents=[par],
                          help="replay a recorded request trace")
    rp.add_argument("trace", help="trace file written by loadgen --record")
    rp.add_argument("--no-solve", action="store_true",
                    help="skip the functional solve post-pass")
    rp.add_argument("--out", default=None,
                    help="write the JSON report (schema repro-serve/2)")
    ch = svsub.add_parser(
        "chaos", parents=[par],
        help="run a seeded chaos campaign against the service",
        description="Sweep seeded fault intensities (NoC delay/drop, ECC "
                    "scrubs, kernel hangs, in-flight SDC, mid-launch core "
                    "failures) over one serve configuration through "
                    "repro.parallel, and assert the zero-silent-anything "
                    "invariants: every SDC detected, every shed typed, "
                    "every request terminally accounted, p99 inflation "
                    "bounded.  Exits 1 on any violation.")
    ch.add_argument("--seed", type=int, default=0)
    ch.add_argument("--mode", default="open", choices=["open", "closed"])
    ch.add_argument("--requests", type=int, default=48)
    ch.add_argument("--rate", type=float, default=8000.0,
                    help="open loop: Poisson arrival rate (requests/s)")
    ch.add_argument("--clients", type=int, default=4,
                    help="closed loop: concurrent tenants")
    ch.add_argument("--intensities", default="0.5,1,2",
                    help="comma-separated fault-intensity multipliers; a "
                         "fault-free baseline always runs first")
    ch.add_argument("--devices", type=int, default=2)
    ch.add_argument("--cpu-workers", type=int, default=1)
    ch.add_argument("--p99-inflation-limit", type=float, default=50.0,
                    help="max allowed p99(total latency) / baseline p99")
    ch.add_argument("--out", default=None,
                    help="write the campaign JSON "
                         "(schema repro-serve-chaos/1)")
    ch.add_argument("--replay-check", action="store_true",
                    help="run the campaign twice (cache off) and require "
                         "byte-identical documents")

    cl = sub.add_parser(
        "cluster",
        help="multi-card solver with host-staged halo exchange",
        description="Partition the global grid over N simulated e150s, "
                    "exchange halos between iterations through the host "
                    "(PCIe readback, host memcpy, PCIe writeback), and "
                    "verify the stitched answer is bit-identical to the "
                    "single-card reference.  See docs/cluster.md.")
    clsub = cl.add_subparsers(dest="cluster_command", required=True)
    cs = clsub.add_parser("solve", parents=[par],
                          help="run one multi-card configuration")
    cs.add_argument("--nx", type=int, default=64)
    cs.add_argument("--ny", type=int, default=64)
    cs.add_argument("--iterations", type=int, default=16)
    cs.add_argument("--cards", default="2x1", metavar="CYxCX",
                    help="card decomposition grid (default 2x1)")
    cs.add_argument("--cores", default="1x1", metavar="CYxCX",
                    help="per-card core grid used for timing")
    cs.add_argument("--timing", default="model", choices=["model", "des"],
                    help="Tier-2 analytic model or per-card DES launches")
    cs.add_argument("--exchange", default="staged",
                    choices=["staged", "none"],
                    help="host-staged halo exchange, or the paper's "
                         "frozen-halo multi-card mode")
    cs.add_argument("--checkpoint-every", type=int, default=0,
                    help="host checkpoint cadence for card-failure "
                         "restart (0 = disabled)")
    cs.add_argument("--check", action="store_true",
                    help="verify bit-identity against the single-card "
                         "reference; exit 1 on mismatch")
    cw = clsub.add_parser("sweep", parents=[par],
                          help="weak/strong scaling over card counts")
    cw.add_argument("--mode", default="weak", choices=["weak", "strong"])
    cw.add_argument("--cards", default="1,2,4,8,16",
                    help="comma-separated card counts")
    cw.add_argument("--nx", type=int, default=64,
                    help="per-card (weak) or global (strong) width")
    cw.add_argument("--ny", type=int, default=64,
                    help="per-card (weak) or global (strong) height")
    cw.add_argument("--iterations", type=int, default=8)
    cw.add_argument("--split", default="1d", choices=["1d", "2d"],
                    help="Y-only cuts or near-square 2D card grids")
    cw.add_argument("--timing", default="model", choices=["model", "des"])
    cw.add_argument("--exchange", default="staged",
                    choices=["staged", "none"])
    cw.add_argument("--out", default=None,
                    help="write the JSON report (schema repro-cluster/1)")

    op = sub.add_parser(
        "ops",
        help="the repro.ops workload library: run one op, or sweep them",
        description="Differential-checked device executions of the "
                    "registered ops (blocked SRAM matmul, radix-2 FFT "
                    "pencils, 9-point stencil) next to their calibrated "
                    "roofline estimates.  stdout is byte-identical "
                    "across repeat runs.  See docs/ops.md.")
    opsub = op.add_subparsers(dest="ops_command", required=True)
    orn = opsub.add_parser("run", help="run one op once and check it")
    orn.add_argument("--op", default="matmul",
                     choices=["fft", "matmul", "stencil9"])
    orn.add_argument("--size", type=int, default=64,
                     help="problem extent (matmul m=k=n, fft pencil "
                          "length, stencil9 interior width)")
    orn.add_argument("--cores", default="1x1", metavar="CYxCX",
                     help="core grid of the launch (default 1x1)")
    orn.add_argument("--seed", type=int, default=0)
    orn.add_argument("--batch", type=int, default=None,
                     help="fft: pencils per batch (default 16)")
    orn.add_argument("--ny", type=int, default=None,
                     help="stencil9: interior height (default --size)")
    orn.add_argument("--iters", type=int, default=None,
                     help="stencil9: relaxation sweeps (default 2)")
    orn.add_argument("--no-check", action="store_true",
                     help="skip the host-reference differential check")
    osw = opsub.add_parser("sweep",
                           help="run every registered op over core grids")
    osw.add_argument("--only", default=None,
                     help="comma-separated op names (default: all)")
    osw.add_argument("--sizes", default="64",
                     help="comma-separated extents (fft needs powers of "
                          "two, stencil9 multiples of 32; invalid "
                          "combinations are skipped with a note)")
    osw.add_argument("--cores", default="1x1,2x2",
                     help="comma-separated core grids (default 1x1,2x2)")
    osw.add_argument("--seed", type=int, default=0)
    osw.add_argument("--out", default=None,
                     help="write the JSON report (schema repro-ops/1)")
    return p


def _add_parallel_args(p: argparse.ArgumentParser, top_level: bool) -> None:
    """The global sweep-engine flags (see docs/parallel_sweeps.md)."""
    d = None if top_level else argparse.SUPPRESS
    p.add_argument("-j", "--jobs", type=int, default=d, metavar="N",
                   help="worker processes for sweep points (default 1 = "
                        "sequential; 0 = all cores; output is byte-"
                        "identical at any -j)")
    p.add_argument("--no-cache", action="store_true",
                   default=False if top_level else argparse.SUPPRESS,
                   help="disable the content-addressed sweep result "
                        "cache (REPRO_SWEEP_CACHE=0 does the same)")


def _parallel_opts(args) -> tuple:
    """(jobs, cache) for sweep-producing handlers."""
    jobs = getattr(args, "jobs", None)
    cache = False if getattr(args, "no_cache", False) else True
    return jobs, cache


def _cmd_solve(args) -> int:
    from repro.core.grid import LaplaceProblem
    from repro.core.solver import JacobiSolver
    cy, _, cx = args.cores.partition("x")
    solver = JacobiSolver(backend=args.backend, variant=args.variant,
                          cores=(int(cy), int(cx or 1)),
                          n_cards=args.cards, n_threads=args.threads)
    problem = LaplaceProblem(nx=args.nx, ny=args.ny)
    res = solver.solve(problem, args.iterations,
                       sim_iterations=args.sim_iterations)
    print(f"backend={res.backend} variant={res.variant} "
          f"cores={res.cores} cards={res.n_cards}")
    print(f"time    {res.time_s:.6g} s")
    print(f"rate    {res.gpts:.4f} GPt/s")
    print(f"energy  {res.energy_j:.4g} J")
    if res.grid_f32 is not None:
        interior = res.interior
        print(f"answer  interior range [{interior.min():.4g}, "
              f"{interior.max():.4g}]")
    return 0


def _cmd_table(args) -> int:
    from repro.experiments import table1, table2, table34, table567, table8
    quick = args.quick
    n = args.number
    jobs, cache = _parallel_opts(args)
    pk = dict(jobs=jobs, cache=cache)
    if n == 1:
        res = table1.run(nx=64, ny=64, iterations=200, sim_iterations=2) \
            if quick else table1.run()
    elif n == 2:
        res = table2.run(nx=64, ny=64, iterations=200, sim_iterations=2) \
            if quick else table2.run()
    elif n == 3:
        res = table34.run_table3(rows=64, row_elems=1024, **pk) if quick \
            else table34.run_table3(**pk)
    elif n == 4:
        res = table34.run_table4(rows=64, row_elems=1024, **pk) if quick \
            else table34.run_table4(**pk)
    elif n == 5:
        res = table567.run_table5(rows=64, row_elems=1024, **pk) if quick \
            else table567.run_table5(**pk)
    elif n == 6:
        res = table567.run_table6(rows=64, row_elems=1024,
                                  replications=(0, 8), **pk) if quick \
            else table567.run_table6(**pk)
    elif n == 7:
        res = table567.run_table7(rows=64, row_elems=1024,
                                  core_counts=(1, 2, 4), **pk) if quick \
            else table567.run_table7(**pk)
    else:
        res = table8.run(nx=1024, ny=128, iterations=20, rows=[
            ("cpu", 1, None, None, 0, None, None),
            ("cpu", 24, None, None, 0, None, None),
            ("e150", 4, 2, 2, 1, None, None),
            ("e150", 108, 12, 9, 1, None, None),
        ], **pk) if quick else table8.run(**pk)
    print(res.render())
    return 0


def _cmd_sweep(args) -> int:
    """Run one streaming sweep plan through the parallel engine.

    stdout carries only deterministic content (configuration labels,
    simulated runtimes, event counts, sim_now) so `-j N` output diffs
    clean against `-j 1`; cache/worker/wall statistics go to stderr, and
    ``--report`` opts into the per-job observability table.
    """
    import time

    from repro.analysis.report import Table
    from repro.parallel import (JobSpec, render_job_report, run_jobs,
                                summary_line)
    from repro.streaming import StreamConfig
    from repro.streaming.sweep import (PAPER_BATCH_SIZES,
                                       batch_sweep_configs,
                                       multicore_sweep_configs,
                                       page_sweep_configs,
                                       replication_sweep_configs)

    jobs, cache = _parallel_opts(args)
    base = StreamConfig(rows=args.rows, row_elems=args.row_elems)
    if args.kind == "batch":
        sizes = [b for b in PAPER_BATCH_SIZES
                 if base.row_bytes % b == 0 and b <= base.row_bytes]
        plan = batch_sweep_configs(base, sizes,
                                   contiguous=not args.noncontiguous)
    elif args.kind == "replication":
        plan = replication_sweep_configs(base, (1, 2, 4, 8, 16, 32))
    elif args.kind == "pages":
        plan = page_sweep_configs(base, None, (0, 8, 16, 32))
    else:
        plan = multicore_sweep_configs(base, None, (1, 2, 4, 8))

    specs = [JobSpec("stream", cfg) for _, cfg in plan]
    t0 = time.perf_counter()
    outcomes = run_jobs(specs, jobs=jobs, cache=cache,
                        progress=lambda m: print(m, file=sys.stderr))
    wall = time.perf_counter() - t0

    table = Table(
        f"sweep {args.kind}: {args.rows}x{args.row_elems} int32, "
        f"{len(plan)} points",
        ["configuration", "runtime s", "events", "sim_now"])
    failed = 0
    for (label, _cfg), out in zip(plan, outcomes):
        r = out.record
        if r.ok:
            table.add_row(label, f"{out.result.runtime_s:.9g}",
                          r.obs.get("events", "-"),
                          f"{r.obs.get('sim_now', 0.0):.9g}")
        else:
            failed += 1
            table.add_row(label, "FAILED", "-", "-")
    print(table.render())
    print(summary_line(outcomes, wall, jobs), file=sys.stderr)
    if args.report:
        print()
        print(render_job_report(outcomes))
    return 1 if failed else 0


def _cmd_figures(_args) -> int:
    from repro.experiments.figures import all_figures
    for fig_id, text in all_figures().items():
        print(f"--- {fig_id} " + "-" * 50)
        print(text)
        print()
    return 0


def _cmd_stream(args) -> int:
    from repro.streaming import StreamConfig, run_streaming
    cfg = StreamConfig(
        rows=args.rows, row_elems=args.row_elems,
        read_batch=args.read_batch, write_batch=args.write_batch,
        sync_read=args.sync_read, sync_write=args.sync_write,
        contiguous=not args.noncontiguous,
        replication=args.replication, page_size=args.page_size,
        n_cores=args.cores)
    res = run_streaming(cfg)
    print(f"moved {cfg.total_bytes >> 20} MiB in {res.runtime_s:.6f} s "
          f"({res.read_bw / 1e9:.2f} GB/s read, "
          f"{res.write_bw / 1e9:.2f} GB/s write)")
    print(f"requests: {res.read_requests} reads, "
          f"{res.write_requests} writes")
    return 0


def _cmd_profile(args) -> int:
    from repro.analysis.profile import profile_device
    from repro.arch.device import GrayskullDevice
    from repro.core.grid import LaplaceProblem
    from repro.core.jacobi_initial import InitialConfig, InitialJacobiRunner
    from repro.core.jacobi_optimized import OptimizedJacobiRunner
    dev = GrayskullDevice(dram_bank_capacity=64 << 20)
    problem = LaplaceProblem(nx=args.nx, ny=args.ny)
    if args.variant == "optimized":
        OptimizedJacobiRunner(dev, problem).run(args.iterations,
                                                read_back=False)
    else:
        cfg = {"initial": InitialConfig.initial,
               "write_opt": InitialConfig.write_optimised,
               "double_buffered": InitialConfig.double_buffered_cfg,
               }[args.variant]()
        InitialJacobiRunner(dev, problem, cfg).run(args.iterations,
                                                   read_back=False)
    print(profile_device(dev).render())
    return 0


def _cmd_faults(args) -> int:
    from dataclasses import replace

    from repro.faults import (CampaignConfig, render_campaign_sweep,
                              run_campaign, run_campaign_sweep, run_hang_demo)
    if args.hang_demo:
        err = run_hang_demo(seed=args.seed)
        print("watchdog fired:")
        print(err)
        return 0
    cy, _, cx = args.cores.partition("x")
    cfg = CampaignConfig(
        seed=args.seed, nx=args.nx, ny=args.ny,
        iterations=args.iterations, cores=(int(cy), int(cx or 1)),
        dram_flips=args.dram_flips, noc_faults=args.noc_faults,
        pcie_corruptions=args.pcie_corruptions,
        solver_flips=args.solver_flips, core_failures=args.core_failures,
        checkpoint_every=args.checkpoint_every, ecc=not args.no_ecc)

    if args.seeds is not None:
        from repro.parallel import render_job_report, summary_line
        import time

        jobs, cache = _parallel_opts(args)
        seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
        configs = [replace(cfg, seed=s) for s in seeds]
        t0 = time.perf_counter()
        outcomes = run_campaign_sweep(
            configs, jobs=jobs, cache=cache,
            progress=lambda m: print(m, file=sys.stderr))
        wall = time.perf_counter() - t0
        print(render_campaign_sweep(outcomes))
        print(summary_line(outcomes, wall, jobs), file=sys.stderr)
        if args.report:
            print()
            print(render_job_report(outcomes))
        return 1 if any(not o.record.ok for o in outcomes) else 0

    report = run_campaign(cfg)
    if args.replay_check:
        replay = run_campaign(cfg)
        if replay.trace.to_text() != report.trace.to_text():
            print("REPLAY MISMATCH: traces differ between identical runs")
            return 1
        print(f"replay check: {len(report.trace)} trace events, "
              "byte-identical")
    print(report.render())
    if args.trace_out:
        report.trace.write(args.trace_out)
        # status, not report content: keep stdout byte-comparable across
        # runs that write their traces to different paths
        print(f"trace written to {args.trace_out}", file=sys.stderr)
    if args.trace_json:
        report.trace.write_json(args.trace_json)
        print(f"trace JSON written to {args.trace_json}", file=sys.stderr)
    return 0


def _lint_exit_code(report, strict: bool) -> int:
    """0 on clean or warnings-only; 1 on errors, or any finding in strict."""
    if report.errors:
        return 1
    if strict and report:
        return 1
    return 0


def _emit_lint_report(report, args, ok_line: str) -> int:
    """Render one lint report in the chosen format and exit-code it."""
    from repro.lint.export import report_to_json, to_json_text

    code = _lint_exit_code(report, args.strict)
    if args.format == "json":
        sys.stdout.write(to_json_text(report_to_json(report)))
        return code
    if report:
        print(report.render())
        print(f"{'FAILED' if code else 'OK'}: {len(report.errors)} "
              f"error(s), {len(report.warnings)} warning(s)")
    else:
        print(ok_line)
    return code


def _cmd_lint_py(args) -> int:
    """Audit src/repro for wall-clock imports and unseeded RNG use."""
    import json

    from repro.lint.pysource import WALL_CLOCK_WAIVERS, audit_repro

    found = audit_repro()
    if args.format == "json":
        doc = {"schema": "repro-lint-py/1", "violations": found,
               "wall_clock_waivers": dict(sorted(WALL_CLOCK_WAIVERS.items()))}
        sys.stdout.write(json.dumps(doc, sort_keys=True, indent=1) + "\n")
        return 1 if found else 0
    for v in found:
        print(v)
    if found:
        print(f"FAILED: {len(found)} determinism violation(s) in src/repro")
        return 1
    print("OK: src/repro is wall-clock/RNG clean "
          f"({len(WALL_CLOCK_WAIVERS)} documented wall-clock waiver(s))")
    return 0


def _cmd_lint_witness(args) -> int:
    """Lint the corpus and dynamically replay every R3xx witness."""
    from repro import lint
    from repro.lint import corpus_concurrency as corpus

    failures = 0
    for rule_id, builder in corpus.CORPUS.items():
        _dev, prog = builder()
        report = lint.lint_program(prog)
        if report.rule_ids() != [rule_id]:
            print(f"{rule_id}: corpus program flagged "
                  f"{report.rule_ids() or 'nothing'} instead of [{rule_id}]")
            failures += 1
            continue
        for finding in report.findings:
            res = lint.replay_witness(builder, finding.witness)
            verdict = "confirmed" if res.confirmed else "UNCONFIRMED"
            print(f"{rule_id}: witness {finding.witness.digest()} -> "
                  f"{verdict} ({res.detail})")
            if not res.confirmed:
                failures += 1
    if failures:
        print(f"FAILED: {failures} witness(es) did not confirm")
        return 1
    print("OK: every corpus finding's counterexample schedule confirmed "
          "dynamically")
    return 0


def _cmd_lint(args) -> int:
    """Statically lint every shipped kernel/program and the examples.

    Builds each shipped program exactly as the runners do (the
    ``lint.capture()`` context collects findings instead of warning) —
    the CI gate promised in ``docs/lint_rules.md``.  Exit code: 0 when
    clean or warnings-only, 1 on any error-severity finding (or on any
    finding at all with ``--strict``).
    """
    from repro import lint

    if args.list_rules:
        for rule in lint.all_rules():
            sev = "E" if rule.severity == lint.Severity.ERROR else "W"
            print(f"{sev} {rule.rule_id} {rule.name:<28} {rule.summary}")
        return 0
    if args.py:
        return _cmd_lint_py(args)
    if args.witness:
        return _cmd_lint_witness(args)
    if args.corpus:
        from repro.lint import corpus_concurrency as corpus
        try:
            _dev, prog = corpus.build(args.corpus)
        except KeyError as exc:
            print(f"lint --corpus: {exc.args[0]}", file=sys.stderr)
            return 2
        report = lint.lint_program(prog)
        return _emit_lint_report(
            report, args, f"OK: no findings in corpus {args.corpus}")

    from repro.arch.device import GrayskullDevice
    from repro.core.grid import LaplaceProblem
    from repro.core.jacobi_initial import InitialConfig, InitialJacobiRunner
    from repro.core.jacobi_optimized import OptimizedJacobiRunner
    from repro.core.jacobi_sram import SramJacobiRunner
    from repro.streaming import StreamConfig, run_streaming

    problem = LaplaceProblem(nx=64, ny=64)
    with lint.capture() as report:
        for cfg in (InitialConfig.initial(), InitialConfig.write_optimised(),
                    InitialConfig.double_buffered_cfg()):
            dev = GrayskullDevice(dram_bank_capacity=64 << 20)
            InitialJacobiRunner(dev, problem, cfg).run(2, read_back=False)
        dev = GrayskullDevice(dram_bank_capacity=64 << 20)
        OptimizedJacobiRunner(dev, problem).run(2, read_back=False)
        dev = GrayskullDevice(dram_bank_capacity=64 << 20)
        OptimizedJacobiRunner(dev, problem, cores_y=2, cores_x=2).run(
            2, read_back=False)
        dev = GrayskullDevice(dram_bank_capacity=64 << 20)
        SramJacobiRunner(dev, problem).run(2, read_back=False)
        from repro import ops as opslib
        for op_spec in opslib.list_ops():
            op_problem = op_spec.make_problem(64, 0)
            op_spec.run(op_problem, cores=(1, 1))
            op_spec.run(op_problem, cores=(2, 2))
        run_streaming(StreamConfig(rows=64, row_elems=1024))
        run_streaming(StreamConfig(rows=64, row_elems=1024, sync_read=True,
                                   sync_write=True, contiguous=False,
                                   replication=2, page_size=2048))
        if not args.skip_examples:
            _lint_examples()
    n_programs = "shipped kernels and examples" if not args.skip_examples \
        else "shipped kernels"
    return _emit_lint_report(report, args,
                             f"OK: no findings across {n_programs}")


def _lint_examples() -> None:
    """Run the examples/ scripts so their programs reach the linter."""
    import contextlib
    import importlib.util
    import io
    import pathlib

    root = pathlib.Path(__file__).resolve().parents[2]
    for path in sorted((root / "examples").glob("*.py")):
        spec = importlib.util.spec_from_file_location(
            f"_lint_example_{path.stem}", path)
        if spec is None or spec.loader is None:  # pragma: no cover
            continue
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        if hasattr(module, "main"):
            with contextlib.redirect_stdout(io.StringIO()):
                module.main()


def _cmd_bench(args) -> int:
    import json
    import os

    from repro import bench

    jobs, cache = _parallel_opts(args)
    only = [s.strip() for s in args.only.split(",")] if args.only else None
    print(f"running {'smoke' if args.smoke else 'full'} benchmark suite "
          f"({args.reps} rep(s) each)...")
    doc = bench.run_benchmarks(smoke=args.smoke, reps=args.reps,
                               only=only, log=print, jobs=jobs, cache=cache)
    out = args.out or bench.default_report_path()
    bench.write_report(doc, out)
    print(bench.render(doc))
    print(f"report written to {out}")
    if not args.check:
        return 0
    baseline_path = args.baseline or bench.SMOKE_BASELINE
    if not os.path.exists(baseline_path):
        print(f"FAILED: baseline {baseline_path} not found")
        return 1
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    notes: list = []
    failures = bench.compare(doc, baseline, tolerance=args.tolerance,
                             notes=notes)
    for note in notes:
        print(f"note: {note}")
    if failures:
        print(f"FAILED: {len(failures)} regression(s) vs {baseline_path}:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"OK: no regressions vs {baseline_path} "
          f"(tolerance {args.tolerance * 100:.0f}%)")
    return 0


def _cmd_serve(args) -> int:
    """Run the solve service: loadgen or trace replay.

    stdout carries only deterministic simulated-time content (the serve
    report tables; the --out JSON likewise) so repeat runs and `-j N`
    runs diff clean; cache statistics and file-path status lines go to
    stderr.
    """
    from repro.serve import (LoadGenConfig, PoolConfig, SchedulerConfig,
                             render_serve_report, replay_trace,
                             run_loadgen, write_trace)

    jobs, cache = _parallel_opts(args)
    progress = lambda m: print(m, file=sys.stderr)  # noqa: E731
    if args.serve_command == "chaos":
        return _cmd_serve_chaos(args, jobs, cache, progress)
    solve = not args.no_solve
    if args.serve_command == "replay":
        try:
            report = replay_trace(args.trace, solve=solve, jobs=jobs,
                                  cache=cache, progress=progress)
        except (OSError, ValueError) as exc:
            print(f"serve replay: {exc}", file=sys.stderr)
            return 2
    else:
        sizes = tuple(int(s) for s in args.sizes.split(",") if s.strip())
        workloads = tuple(w.strip() for w in args.workloads.split(",")
                          if w.strip())
        cfg = LoadGenConfig(
            mode=args.mode, seed=args.seed, n_requests=args.requests,
            arrival_rate_rps=args.rate, n_clients=args.clients,
            think_s=args.think_s, sizes=sizes, workloads=workloads,
            iterations=args.iterations, cpu_fraction=args.cpu_fraction,
            deadline_fraction=args.deadline_fraction)
        chaos = None
        if args.chaos_intensity > 0:
            from repro.serve import ChaosConfig
            seed = args.seed if args.chaos_seed is None else args.chaos_seed
            chaos = ChaosConfig(seed=seed, intensity=args.chaos_intensity)
        report = run_loadgen(
            cfg,
            scheduler=SchedulerConfig(max_batch=args.max_batch,
                                      queue_capacity=args.queue_capacity),
            pool=PoolConfig(n_devices=args.devices,
                            n_cpu_workers=args.cpu_workers),
            n_hangs=args.hangs, chaos=chaos, solve=solve, jobs=jobs,
            cache=cache, progress=progress)
        if args.record:
            write_trace(report, args.record)
            print(f"trace written to {args.record}", file=sys.stderr)
    print(render_serve_report(report))
    if args.out:
        report.write(args.out)
        print(f"report written to {args.out}", file=sys.stderr)
    return 0


def _cmd_serve_chaos(args, jobs, cache, progress) -> int:
    """Seeded chaos campaign: fault intensities swept over the service.

    stdout (the campaign table and the --out JSON) is byte-identical
    across repeat runs and -j settings; exits 1 if any run violates the
    zero-silent-corruption / typed-shed / bounded-p99 invariants.
    """
    import json

    from repro.serve import (ChaosConfig, LoadGenConfig, PoolConfig,
                             render_chaos_campaign, run_chaos_campaign)

    intensities = tuple(float(s) for s in args.intensities.split(",")
                        if s.strip())
    loadgen = LoadGenConfig(
        mode=args.mode, seed=args.seed, n_requests=args.requests,
        arrival_rate_rps=args.rate, n_clients=args.clients)
    pool = PoolConfig(n_devices=args.devices,
                      n_cpu_workers=args.cpu_workers)
    chaos = ChaosConfig(seed=args.seed)
    if args.replay_check:
        cache = False  # a cache hit would make the repeat-run check vacuous
    doc = run_chaos_campaign(
        loadgen, pool=pool, chaos=chaos, intensities=intensities,
        p99_inflation_limit=args.p99_inflation_limit,
        jobs=jobs, cache=cache, progress=progress)
    text = json.dumps(doc, sort_keys=True, indent=1) + "\n"
    if args.replay_check:
        again = run_chaos_campaign(
            loadgen, pool=pool, chaos=chaos, intensities=intensities,
            p99_inflation_limit=args.p99_inflation_limit,
            jobs=jobs, cache=False, progress=progress)
        if json.dumps(again, sort_keys=True, indent=1) + "\n" != text:
            print("REPLAY MISMATCH: campaign documents differ between "
                  "identical runs")
            return 1
        print(f"replay check: {1 + len(intensities)} run(s), "
              "byte-identical")
    print(render_chaos_campaign(doc))
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"campaign written to {args.out}", file=sys.stderr)
    return 1 if doc["violations_total"] else 0


def _parse_core_grid(text: str):
    cy, _, cx = text.partition("x")
    return (int(cy), int(cx or 1))


def _cmd_ops(args) -> int:
    """Run repro.ops workloads on the simulated device.

    Every execution is differentially checked against its host NumPy
    reference at readback unless --no-check; exit 1 on any mismatch.
    stdout carries only deterministic simulated-time content.
    """
    from repro import ops as opslib
    from repro.perfmodel.calibration import DEFAULT_COSTS

    if args.ops_command == "run":
        spec = opslib.get_op(args.op)
        kw = {}
        if args.batch is not None:
            kw["batch"] = args.batch
        if args.ny is not None:
            kw["ny"] = args.ny
        if args.iters is not None:
            kw["iters"] = args.iters
        cores = _parse_core_grid(args.cores)
        try:
            problem = spec.make_problem(args.size, args.seed, **kw)
            res = spec.run(problem, cores=cores, check=not args.no_check)
        except ValueError as exc:
            print(f"ops run: {exc}", file=sys.stderr)
            return 2
        except opslib.OpCheckError as exc:
            print(f"CHECK FAILED: {exc}")
            return 1
        est = spec.estimate(problem, cores, DEFAULT_COSTS)
        params = " ".join(f"{k}={v}" for k, v in sorted(res.params.items()))
        achieved = spec.flops(problem) / res.kernel_time_s / 1e9 \
            if res.kernel_time_s else 0.0
        print(f"op={res.op} cores={cores[0]}x{cores[1]} {params}")
        print(f"kernel   {res.kernel_time_s:.6g} s simulated "
              f"({achieved:.4g} GFLOP/s)")
        print(f"transfer {res.transfer_time_s:.6g} s PCIe")
        print(f"model    {est.time_s:.6g} s ({est.gflops:.4g} GFLOP/s, "
              f"{100 * est.roofline_frac:.1f}% of roofline)")
        print(f"energy   {res.energy_j:.4g} J device "
              f"(model {est.energy_j:.4g} J)")
        print(f"check    {res.check_detail}, sha {res.output_sha}")
        return 0
    return _cmd_ops_sweep(args, opslib, DEFAULT_COSTS)


def _cmd_ops_sweep(args, opslib, costs) -> int:
    import json

    from repro.analysis.report import Table

    names = [s.strip() for s in args.only.split(",") if s.strip()] \
        if args.only else [s.name for s in opslib.list_ops()]
    sizes = [int(s) for s in args.sizes.split(",") if s.strip()]
    grids = [_parse_core_grid(c) for c in args.cores.split(",")
             if c.strip()]
    table = Table(
        f"ops sweep: {len(names)} op(s), sizes {args.sizes}, seed "
        f"{args.seed} (differential check on every run)",
        ["op", "params", "cores", "kernel s", "model s", "GFLOP/s",
         "% roofline", "energy J", "check"])
    rows, failures = [], 0
    for name in names:
        spec = opslib.get_op(name)
        for size in sizes:
            try:
                problem = spec.make_problem(size, args.seed)
            except ValueError as exc:
                print(f"skip {name} size={size}: {exc}", file=sys.stderr)
                continue
            for cores in grids:
                try:
                    res = spec.run(problem, cores=cores)
                except opslib.OpCheckError as exc:
                    failures += 1
                    print(f"CHECK FAILED {name} size={size} "
                          f"cores={cores[0]}x{cores[1]}: {exc}")
                    continue
                except ValueError as exc:
                    print(f"skip {name} size={size} "
                          f"cores={cores[0]}x{cores[1]}: {exc}",
                          file=sys.stderr)
                    continue
                est = spec.estimate(problem, cores, costs)
                achieved = spec.flops(problem) / res.kernel_time_s / 1e9 \
                    if res.kernel_time_s else 0.0
                pct = 100 * achieved / est.roofline_gflops \
                    if est.roofline_gflops else 0.0
                params = ",".join(f"{k}={v}" for k, v
                                  in sorted(res.params.items()))
                table.add_row(name, params, f"{cores[0]}x{cores[1]}",
                              f"{res.kernel_time_s:.6g}",
                              f"{est.time_s:.6g}", f"{achieved:.4g}",
                              f"{pct:.1f}", f"{res.energy_j:.4g}",
                              res.check_detail)
                rows.append({**res.to_row(), "model": est.to_row()})
    print(table.render())
    if args.out:
        doc = {"schema": "repro-ops/1", "seed": args.seed, "rows": rows}
        with open(args.out, "w") as fh:
            fh.write(json.dumps(doc, sort_keys=True, indent=1) + "\n")
        print(f"report written to {args.out}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_cluster(args) -> int:
    if args.cluster_command == "solve":
        return _cmd_cluster_solve(args)
    return _cmd_cluster_sweep(args)


def _cmd_cluster_solve(args) -> int:
    import numpy as np

    from repro.cluster import ClusterConfig, ClusterSolver

    cy, _, cx = args.cards.partition("x")
    ky, _, kx = args.cores.partition("x")
    cfg = ClusterConfig(
        nx=args.nx, ny=args.ny, iterations=args.iterations,
        cards_y=int(cy), cards_x=int(cx or 1),
        cores_y=int(ky), cores_x=int(kx or 1),
        timing=args.timing, exchange=args.exchange,
        checkpoint_every=args.checkpoint_every)
    res = ClusterSolver(cfg).solve()
    print(f"cards   {cfg.cards_y}x{cfg.cards_x} ({cfg.n_cards} card(s)), "
          f"cores {cfg.cores_y}x{cfg.cores_x}/card, "
          f"timing {cfg.timing}, exchange {cfg.exchange}")
    print(f"wall    {res.wall_time_s:.6g} s")
    print(f"rate    {res.gpts:.4f} GPt/s")
    print(f"energy  {res.energy_j:.4g} J")
    print(f"stall   {sum(res.stall_s):.6g} s summed over cards "
          f"(host staging {res.host_stage_s:.6g} s)")
    ex = res.exchange
    print(f"halo    {ex.n_strips} strip(s), {ex.bytes_moved} B staged: "
          f"readback {ex.readback_s:.6g} s, memcpy {ex.memcpy_s:.6g} s, "
          f"writeback {ex.writeback_s:.6g} s")
    if res.restarts:
        print(f"faults  {res.restarts} restart(s), failed cards "
              f"{list(res.failed_cards)}")
    if args.check:
        from repro.core.grid import LaplaceProblem
        from repro.cpu.jacobi import jacobi_solve_bf16

        ref = jacobi_solve_bf16(
            LaplaceProblem(nx=cfg.nx, ny=cfg.ny).initial_grid_bf16(),
            cfg.iterations)
        ok = bool(np.array_equal(res.grid_bits, ref))
        print(f"check   multi-card vs single-card reference: "
              f"{'bit-identical' if ok else 'MISMATCH'}")
        if not ok:
            return 1
    return 0


def _cmd_cluster_sweep(args) -> int:
    import time

    from repro.cluster import (cluster_sweep_configs, doc_to_json,
                               render_cluster_report, sweep_to_doc)
    from repro.parallel import JobSpec, SweepJobError, run_jobs, summary_line

    jobs, cache = _parallel_opts(args)
    cards = [int(c) for c in args.cards.split(",") if c]
    configs = cluster_sweep_configs(
        args.mode, cards, base_nx=args.nx, base_ny=args.ny,
        iterations=args.iterations, split=args.split, timing=args.timing,
        exchange=args.exchange)
    specs = [JobSpec("cluster", cfg) for cfg in configs]
    t0 = time.perf_counter()
    outcomes = run_jobs(specs, jobs=jobs, cache=cache,
                        progress=lambda m: print(m, file=sys.stderr))
    wall = time.perf_counter() - t0
    failures = [o for o in outcomes if not o.record.ok]
    if failures:
        raise SweepJobError(failures)
    points = [o.result for o in outcomes]
    print(render_cluster_report(args.mode, points))
    print(summary_line(outcomes, wall), file=sys.stderr)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(doc_to_json(sweep_to_doc(args.mode, points)))
        print(f"wrote {args.out}", file=sys.stderr)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    jobs = getattr(args, "jobs", None)
    if jobs is not None:
        # Session default so library code reached without an explicit
        # jobs= argument (e.g. nested sweeps) resolves to the same -j.
        from repro.parallel import set_default_jobs
        set_default_jobs(jobs)
    handler = {
        "solve": _cmd_solve,
        "table": _cmd_table,
        "sweep": _cmd_sweep,
        "figures": _cmd_figures,
        "stream": _cmd_stream,
        "profile": _cmd_profile,
        "faults": _cmd_faults,
        "lint": _cmd_lint,
        "bench": _cmd_bench,
        "serve": _cmd_serve,
        "cluster": _cmd_cluster,
        "ops": _cmd_ops,
    }[args.command]
    try:
        return handler(args)
    finally:
        if jobs is not None:
            set_default_jobs(None)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
