"""``repro.cluster`` — real multi-card domain decomposition with halo exchange.

The paper runs its four-card experiment *without* inter-card halo
exchange ("strictly speaking this will not provide the correct answer"),
because Grayskull cards cannot reach each other's memory.  This package
adds the missing piece as a host-staged exchange: between Jacobi
iterations the host reads each card's cut-face strips back over PCIe,
memcpys them into the neighbouring card's staging buffer, and writes
them down again — the same card→host→card pattern Brown et al. use for
multi-card FFTs.  With halos refreshed every iteration the multi-card
sweep is **bit-identical** to the single-card BF16 reference, for every
decomposition shape (``tests/cluster/`` is the differential proof).

Layers:

* :mod:`repro.cluster.topology` — card grids, block extraction, face
  strips, reassembly (pure functions over :func:`split_domain`);
* :mod:`repro.cluster.halo` — the calibrated PCIe/host staging cost
  model for one exchange round;
* :mod:`repro.cluster.solver` — :class:`ClusterSolver`: functional
  per-card blocks + staged exchange, timed either by the Tier-2 scaling
  model or by per-card DES launches, with barrier-stall/energy
  accounting and card-failure checkpoint/restart;
* :mod:`repro.cluster.sweep` — weak/strong scaling sweeps through
  :mod:`repro.parallel` with schema-stable, byte-identical reports.
"""

from repro.cluster.halo import HaloCosts, HaloExchangeModel
from repro.cluster.solver import (
    CardFailedError,
    ClusterConfig,
    ClusterError,
    ClusterResult,
    ClusterSolver,
)
from repro.cluster.sweep import (
    SWEEP_SCHEMA,
    cluster_sweep_configs,
    doc_to_json,
    render_cluster_report,
    run_cluster_sweep,
    sweep_to_doc,
)
from repro.cluster.topology import (
    FaceStrip,
    apply_exchange,
    card_splits,
    exchange_strips,
    extract_block,
    insert_block,
    plan_cards,
    reassemble,
)

__all__ = [
    "CardFailedError",
    "ClusterConfig",
    "ClusterError",
    "ClusterResult",
    "ClusterSolver",
    "FaceStrip",
    "HaloCosts",
    "HaloExchangeModel",
    "SWEEP_SCHEMA",
    "apply_exchange",
    "card_splits",
    "cluster_sweep_configs",
    "doc_to_json",
    "exchange_strips",
    "extract_block",
    "insert_block",
    "plan_cards",
    "reassemble",
    "render_cluster_report",
    "run_cluster_sweep",
    "sweep_to_doc",
]
