"""Host-staged halo exchange: the calibrated PCIe/host-memcpy cost model.

Grayskull has no card-to-card fabric, so every halo strip travels
card → host → card:

1. **readback** — the source card's face strip is read over PCIe into a
   host staging buffer (``pcie_latency + bytes / pcie_bw``);
2. **memcpy** — the host copies the strip into the destination card's
   staging buffer (``host_memcpy_call + bytes / host_memcpy_bw``);
3. **writeback** — the strip is written over PCIe into the destination
   card's DRAM ring (``pcie_latency + bytes / pcie_bw``).

All three phases serialise on the single host thread and the shared PCIe
root complex, so one exchange round costs the *sum* over every directed
strip — the cards sit at the barrier drawing idle power for the whole
round.  That serialisation is the pessimistic end of what the FFT-style
staging measurements support, and it is the model the scaling sweeps and
the serve layer charge.

In DES timing mode the PCIe phases happen *inside* the per-card
simulation (each per-iteration launch re-uploads the block with its
refreshed ring and reads the result back), so only the host memcpy phase
is charged between iterations — :meth:`HaloExchangeModel.round_cost`
takes the phases to include.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.cluster.topology import FaceStrip
from repro.perfmodel.calibration import DEFAULT_COSTS, CostModel

__all__ = ["HaloCosts", "HaloExchangeModel"]

_BF16 = 2  # bytes per element


@dataclass(frozen=True)
class HaloCosts:
    """Breakdown of one halo-exchange round (seconds / bytes / strips)."""

    readback_s: float
    memcpy_s: float
    writeback_s: float
    bytes_moved: int
    n_strips: int

    @property
    def total_s(self) -> float:
        return self.readback_s + self.memcpy_s + self.writeback_s


class HaloExchangeModel:
    """Timing for host-staged halo rounds and block scatter/gather."""

    def __init__(self, costs: CostModel = DEFAULT_COSTS,
                 elem_bytes: int = _BF16):
        self.costs = costs
        self.elem_bytes = elem_bytes

    # -- one exchange round ------------------------------------------------
    def round_cost(self, strips: Iterable[FaceStrip],
                   phases: tuple = ("readback", "memcpy", "writeback")
                   ) -> HaloCosts:
        """Cost of staging every directed strip through the host.

        ``phases`` selects which legs to charge: the model-timed solver
        charges all three; the DES-timed solver charges only ``memcpy``
        because the PCIe legs are simulated on-card by the per-iteration
        launches.
        """
        c = self.costs
        readback = memcpy = writeback = 0.0
        nbytes = 0
        n = 0
        for strip in strips:
            b = strip.elems * self.elem_bytes
            nbytes += b
            n += 1
            if "readback" in phases:
                readback += c.pcie_latency + b / c.pcie_bw
            if "memcpy" in phases:
                memcpy += c.host_memcpy_call + b / c.host_memcpy_bw
            if "writeback" in phases:
                writeback += c.pcie_latency + b / c.pcie_bw
        return HaloCosts(readback_s=readback, memcpy_s=memcpy,
                         writeback_s=writeback, bytes_moved=nbytes,
                         n_strips=n)

    # -- whole-block staging (start / end of a solve) ----------------------
    def block_transfer_s(self, block_elems: List[int]) -> float:
        """PCIe time to move one full halo block per card, serialised.

        Used for the initial scatter (host → every card) and the final
        gather (every card → host); each direction costs this once.
        """
        c = self.costs
        t = 0.0
        for elems in block_elems:
            t += c.pcie_latency + elems * self.elem_bytes / c.pcie_bw
        return t
