"""Multi-card Jacobi with real halo exchange: bit-identical, accounted.

:class:`ClusterSolver` partitions the global grid over a
``cards_y × cards_x`` grid of simulated e150s, steps every card's private
block with the bit-exact BF16 kernel, and refreshes the cut halos between
iterations through the host-staged PCIe model
(:mod:`repro.cluster.halo`).  Because the exchange runs every iteration,
each block step reads exactly the previous global iterate at its cuts —
so the stitched multi-card answer is **bit-identical to the single-card
reference** (:func:`jacobi_solve_bf16`), for every decomposition shape.
``exchange="none"`` reproduces the paper's stale-halo multi-card runs
instead (equal to :func:`run_multicard_functional` for a 1D Y split).

Timing comes in two modes:

* ``timing="model"`` — per-block iteration times from the Tier-2
  :class:`JacobiScalingModel`; scales to dozens of cards.
* ``timing="des"`` — every card is a full discrete-event simulation: one
  :class:`OptimizedJacobiRunner` launch per card per iteration, the
  block (with refreshed ring) re-uploaded each time, so the PCIe legs of
  the exchange are simulated on-card and only the host memcpy leg is
  charged between iterations.

Accounting: every iteration ends at a barrier.  Cards that finish early
stall until the slowest card arrives, then the whole cluster idles
through the host staging round — stalled cards draw
``card_power_idle_w``.  The ledger is explicit
(:attr:`ClusterResult.busy_s` / :attr:`ClusterResult.stall_s`) and the
energy identity

    ``energy_j == Σ busy_energy_i + Σ stall_i · idle_w``

holds exactly by construction (pinned by ``tests/cluster/test_accounting``).

Card failures (``FaultPlan.card_failures``) follow the solver-level
resilience pattern: with ``checkpoint_every`` set the solve rolls back to
the last host-held checkpoint, remaps the dead card's block onto a
survivor (:func:`remap_failed` at card granularity) and recomputes —
still bit-identical, just slower; without checkpoints it sheds loudly
with the typed :class:`CardFailedError`.  Never a silent wrong answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.halo import HaloCosts, HaloExchangeModel
from repro.cluster.topology import (
    apply_exchange,
    exchange_strips,
    extract_block,
    plan_cards,
    reassemble,
)
from repro.core.decomposition import remap_failed
from repro.core.grid import LaplaceProblem
from repro.cpu.jacobi import jacobi_step_bf16
from repro.perfmodel.calibration import DEFAULT_COSTS, CostModel

__all__ = [
    "CardFailedError",
    "ClusterConfig",
    "ClusterError",
    "ClusterResult",
    "ClusterSolver",
]

#: per-card DES launches stay within the same core budget as the
#: single-card auto backend (beyond it the Tier-2 model is the tool).
_DES_CORE_LIMIT = 8
_DES_ALIGN = 32  # AlignedDomain: per-card interior width must be 32-aligned


class ClusterError(RuntimeError):
    """A cluster solve could not produce a trustworthy answer."""


class CardFailedError(ClusterError):
    """A card died mid-solve and no checkpoint/remap path was enabled.

    Carries the failed card coordinate and the iteration it died at, so
    the shed is attributable — the loud alternative to a silent wrong
    answer.
    """

    def __init__(self, card: Tuple[int, int], iteration: int):
        self.card = card
        self.iteration = iteration
        super().__init__(
            f"card {card} failed at iteration {iteration} and "
            f"checkpointing is disabled (checkpoint_every=0); enable "
            f"checkpoints to remap onto a survivor")


@dataclass(frozen=True)
class ClusterConfig:
    """One multi-card solve configuration (JSON-canonical, cacheable)."""

    nx: int
    ny: int
    iterations: int
    cards_y: int = 1
    cards_x: int = 1
    cores_y: int = 1            #: per-card core grid (timing only)
    cores_x: int = 1
    timing: str = "model"       #: "model" (Tier-2) or "des" (per-card DES)
    exchange: str = "staged"    #: "staged" (correct) or "none" (paper mode)
    checkpoint_every: int = 0   #: host checkpoint cadence; 0 disables

    def __post_init__(self):
        if self.nx <= 0 or self.ny <= 0:
            raise ValueError("domain dimensions must be positive")
        if self.iterations <= 0:
            raise ValueError("iterations must be positive")
        if self.cards_y <= 0 or self.cards_x <= 0:
            raise ValueError("card grid dimensions must be positive")
        if self.timing not in ("model", "des"):
            raise ValueError(f"timing must be 'model' or 'des', "
                             f"got {self.timing!r}")
        if self.exchange not in ("staged", "none"):
            raise ValueError(f"exchange must be 'staged' or 'none', "
                             f"got {self.exchange!r}")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be non-negative")

    @property
    def n_cards(self) -> int:
        return self.cards_y * self.cards_x


@dataclass(frozen=True)
class ClusterResult:
    """Outcome of one cluster solve, with the full time/energy ledger."""

    config: ClusterConfig
    grid_bits: np.ndarray          #: stitched global halo grid (BF16 bits)
    wall_time_s: float
    energy_j: float
    gpts: float
    busy_s: Tuple[float, ...]      #: per-card computing time
    stall_s: Tuple[float, ...]     #: per-card barrier + staging idle time
    busy_energy_j: Tuple[float, ...]
    host_stage_s: float            #: scatter + gather + all exchange rounds
    exchange: HaloCosts            #: summed over all rounds
    power_active_w: float          #: per-card power while computing
    power_idle_w: float            #: per-card power while stalled
    restarts: int = 0
    failed_cards: Tuple[Tuple[int, int], ...] = ()
    remap: Tuple[Tuple[Tuple[int, int], Tuple[int, int]], ...] = ()

    @property
    def n_cards(self) -> int:
        return self.config.n_cards

    def energy_identity_j(self) -> float:
        """The accounting identity, recomputed from the ledger fields.

        ``tests/cluster/test_accounting.py`` pins
        ``energy_j == energy_identity_j()`` exactly: all stall time —
        barrier waits, host staging, post-failure idling — is charged at
        idle power, nothing more, nothing less.
        """
        total = 0.0
        for busy_e, stall in zip(self.busy_energy_j, self.stall_s):
            total += busy_e + stall * self.power_idle_w
        return total


class ClusterSolver:
    """Domain-decomposed Jacobi over N simulated cards (see module doc)."""

    def __init__(self, config: ClusterConfig,
                 costs: CostModel = DEFAULT_COSTS):
        self.config = config
        self.costs = costs
        self.halo = HaloExchangeModel(costs)
        #: the arch-level Cluster behind the last DES-timed solve
        self.last_des_cluster = None
        cfg = config
        if cfg.cores_y * cfg.cores_x > costs.n_worker_cores:
            raise ClusterError(
                f"per-card core grid {cfg.cores_y}x{cfg.cores_x} exceeds "
                f"{costs.n_worker_cores} worker cores")
        if cfg.timing == "des":
            if cfg.cores_y * cfg.cores_x > _DES_CORE_LIMIT:
                raise ClusterError(
                    f"DES timing is limited to {_DES_CORE_LIMIT} cores per "
                    f"card; use timing='model' for "
                    f"{cfg.cores_y}x{cfg.cores_x}")
        try:
            self.cards = plan_cards(cfg.nx, cfg.ny, cfg.cards_y, cfg.cards_x)
        except ValueError as e:
            raise ClusterError(str(e)) from None
        if cfg.timing == "des":
            for row in self.cards:
                for sub in row:
                    if sub.nx % _DES_ALIGN:
                        raise ClusterError(
                            f"DES timing needs every card block width to be "
                            f"a multiple of {_DES_ALIGN} (Fig.-5 aligned "
                            f"layout); card {(sub.iy, sub.ix)} got {sub.nx}")

    # -- timing helpers ----------------------------------------------------
    def _model_block_times(self) -> Dict[Tuple[int, int], float]:
        """Per-iteration compute time of each card's own block (Tier-2)."""
        from repro.perfmodel.scaling import JacobiScalingModel

        model = JacobiScalingModel(self.costs)
        cfg = self.config
        by_shape: Dict[Tuple[int, int], float] = {}
        times: Dict[Tuple[int, int], float] = {}
        for row in self.cards:
            for sub in row:
                shape = (sub.ny, sub.nx)
                if shape not in by_shape:
                    by_shape[shape] = model.run(
                        sub.nx, sub.ny, 1, cfg.cores_y,
                        cfg.cores_x).solve_time_s
                times[(sub.iy, sub.ix)] = by_shape[shape]
        return times

    # -- the solve ---------------------------------------------------------
    def solve(self, problem: Optional[LaplaceProblem] = None,
              plan=None) -> ClusterResult:
        """Run the decomposed solve; ``plan`` may carry ``card_failures``.

        ``problem`` defaults to the standard left-hot Laplace problem on
        the configured dimensions; when given, its interior must match
        the config.
        """
        cfg = self.config
        if problem is None:
            problem = LaplaceProblem(nx=cfg.nx, ny=cfg.ny)
        if (problem.nx, problem.ny) != (cfg.nx, cfg.ny):
            raise ClusterError(
                f"problem interior {problem.ny}x{problem.nx} does not match "
                f"config {cfg.ny}x{cfg.nx}")
        failures = _failures_by_iteration(plan, cfg)

        grid0 = problem.initial_grid_bf16()
        coords = [(s.iy, s.ix) for row in self.cards for s in row]
        subs = {(s.iy, s.ix): s for row in self.cards for s in row}
        blocks = {c: extract_block(grid0, subs[c]) for c in coords}
        #: which card computes which blocks (remap rewrites this)
        owners: Dict[Tuple[int, int], List[Tuple[int, int]]] = {
            c: [c] for c in coords}
        alive = set(coords)
        failed: List[Tuple[int, int]] = []
        remap_pairs: List[Tuple[Tuple[int, int], Tuple[int, int]]] = []
        restarts = 0

        ledger = _Ledger(coords)
        strips = exchange_strips(self.cards)
        block_elems = [(s.ny + 2) * (s.nx + 2) for s in subs.values()]

        des = _DesBackend(self, subs, problem) if cfg.timing == "des" else None
        model_times = self._model_block_times() if des is None else None

        # Initial scatter: host → cards, everyone idle while it streams.
        scatter_s = self.halo.block_transfer_s(block_elems)
        ledger.host_stage(scatter_s)

        # Host-held checkpoint: (iteration, deep-copied blocks).
        ckpt_it = 0
        ckpt_blocks = {c: b.copy() for c, b in blocks.items()}

        exchange_total = HaloCosts(0.0, 0.0, 0.0, 0, 0)
        it = 0
        while it < cfg.iterations:
            # Cards scheduled to die at this iteration fail before
            # producing it.
            if it in failures:
                for coord in failures.pop(it):
                    if coord not in alive:
                        continue
                    if cfg.checkpoint_every <= 0:
                        raise CardFailedError(coord, it)
                    alive.discard(coord)
                    failed.append(coord)
                try:
                    assignment = remap_failed(
                        self.cards, [c for c in coords if c not in alive])
                except ValueError as e:
                    raise ClusterError(
                        f"no surviving cards to remap onto at iteration "
                        f"{it}: {e}") from None
                owners = {c: [c] for c in sorted(alive)}
                for dead, survivor in sorted(assignment.items()):
                    owners[survivor].append(dead)
                # Roll back to the host checkpoint and re-stage the
                # remapped blocks down to their new owners.
                it = ckpt_it
                blocks = {c: b.copy() for c, b in ckpt_blocks.items()}
                restarts += 1
                remap_pairs = sorted(assignment.items())
                restage = [(subs[d].ny + 2) * (subs[d].nx + 2)
                           for d in assignment]
                ledger.host_stage(self.halo.block_transfer_s(restage))

            # One iteration: every card steps its owned blocks serially.
            arrivals = {}
            for card, owned in owners.items():
                if des is not None:
                    t = des.step_blocks(card, owned, blocks)
                else:
                    t = 0.0
                    for b in owned:
                        blocks[b] = jacobi_step_bf16(blocks[b])
                        t += model_times[b]
                arrivals[card] = t
            ledger.barrier(arrivals)

            # Halo exchange through the host (all cards idle).
            if cfg.exchange == "staged":
                apply_exchange(self.cards, blocks)
                phases = (("memcpy",) if des is not None
                          else ("readback", "memcpy", "writeback"))
                round_cost = self.halo.round_cost(strips, phases=phases)
                exchange_total = _add_costs(exchange_total, round_cost)
                ledger.host_stage(round_cost.total_s)

            it += 1
            if cfg.checkpoint_every > 0 and it % cfg.checkpoint_every == 0:
                ckpt_it = it
                ckpt_blocks = {c: b.copy() for c, b in blocks.items()}

        # Final gather: cards → host.
        ledger.host_stage(self.halo.block_transfer_s(block_elems))

        grid = reassemble(grid0, self.cards, blocks)
        return self._finish(ledger, grid, exchange_total, des,
                            restarts, failed, remap_pairs)

    # -- result assembly ---------------------------------------------------
    def _finish(self, ledger: "_Ledger", grid: np.ndarray,
                exchange_total: HaloCosts, des, restarts: int,
                failed: List[Tuple[int, int]],
                remap_pairs) -> ClusterResult:
        cfg = self.config
        c = self.costs
        wall = ledger.wall()
        busy = ledger.busy_tuple()
        stall = tuple(wall - b for b in busy)
        p_active = c.card_power_w(cfg.cores_y * cfg.cores_x)
        if des is not None:
            busy_energy = des.busy_energy(ledger.coords)
            # Mirror barrier stalls and host staging into the arch-level
            # Cluster so its own wall/energy ledger shows the exchange too.
            for coord in ledger.coords:
                des.cluster.record_stall(des.card_index[coord],
                                         ledger.bstall[coord])
            des.cluster.record_host_stage(ledger.host_s)
            self.last_des_cluster = des.cluster
        else:
            busy_energy = tuple(b * p_active for b in busy)
        energy = 0.0
        for be, st in zip(busy_energy, stall):
            energy += be + st * c.card_power_idle_w
        points = cfg.nx * cfg.ny
        gpts = points * cfg.iterations / wall / 1e9 if wall > 0 else 0.0
        return ClusterResult(
            config=cfg, grid_bits=grid, wall_time_s=wall, energy_j=energy,
            gpts=gpts, busy_s=busy, stall_s=stall,
            busy_energy_j=busy_energy, host_stage_s=ledger.host_s,
            exchange=exchange_total, power_active_w=p_active,
            power_idle_w=c.card_power_idle_w, restarts=restarts,
            failed_cards=tuple(failed), remap=tuple(remap_pairs))


# --------------------------------------------------------------------------
# ledger
# --------------------------------------------------------------------------

class _Ledger:
    """Wall/busy/stall bookkeeping around the per-iteration barrier."""

    def __init__(self, coords):
        self.coords = list(coords)
        self.busy = {c: 0.0 for c in coords}
        #: barrier-only stalls (excludes host staging), for mirroring
        #: into the arch-level Cluster ledger
        self.bstall = {c: 0.0 for c in coords}
        self.host_s = 0.0
        self._wall = 0.0

    def barrier(self, arrivals: Dict[Tuple[int, int], float]) -> None:
        """Advance the wall to the slowest card's arrival."""
        top = max(arrivals.values())
        for card, t in arrivals.items():
            self.busy[card] += t
            self.bstall[card] += top - t
        self._wall += top

    def host_stage(self, dt: float) -> None:
        """Host-serialised staging: every card idles for ``dt``."""
        self.host_s += dt
        self._wall += dt

    def wall(self) -> float:
        return self._wall

    def busy_tuple(self) -> Tuple[float, ...]:
        return tuple(self.busy[c] for c in self.coords)


def _add_costs(a: HaloCosts, b: HaloCosts) -> HaloCosts:
    return HaloCosts(
        readback_s=a.readback_s + b.readback_s,
        memcpy_s=a.memcpy_s + b.memcpy_s,
        writeback_s=a.writeback_s + b.writeback_s,
        bytes_moved=a.bytes_moved + b.bytes_moved,
        n_strips=a.n_strips + b.n_strips)


def _failures_by_iteration(plan, cfg: ClusterConfig
                           ) -> Dict[int, List[Tuple[int, int]]]:
    """Index a FaultPlan's ``card_failures`` by trigger iteration."""
    out: Dict[int, List[Tuple[int, int]]] = {}
    for f in getattr(plan, "card_failures", ()) or ():
        if not (0 <= f.iy < cfg.cards_y and 0 <= f.ix < cfg.cards_x):
            raise ClusterError(
                f"card failure target ({f.iy},{f.ix}) outside the "
                f"{cfg.cards_y}x{cfg.cards_x} card grid")
        out.setdefault(min(f.iteration, cfg.iterations - 1),
                       []).append((f.iy, f.ix))
    for lst in out.values():
        lst.sort()
    return out


# --------------------------------------------------------------------------
# DES timing backend
# --------------------------------------------------------------------------

class _DesBackend:
    """Per-card discrete-event launches behind the cluster solve.

    Each physical card is a persistent :class:`GrayskullDevice` whose
    simulated clock accumulates across the per-iteration launches; block
    step times are clock deltas, so transfer and kernel time are both
    on-card.  Stalls and host staging are mirrored into the
    :class:`repro.arch.cluster.Cluster` ledger so its ``wall_time_s`` /
    ``energy_j`` reflect the exchange barriers too.
    """

    def __init__(self, solver: ClusterSolver, subs, problem: LaplaceProblem):
        from repro.arch.cluster import Cluster

        self.solver = solver
        self.subs = subs
        self.problem = problem
        self.cluster = Cluster(len(subs), costs=solver.costs)
        self.card_index = {c: i for i, c in enumerate(sorted(subs))}
        self._runners: Dict[Tuple[Tuple[int, int], Tuple[int, int]], object] = {}

    def _runner(self, card: Tuple[int, int], block: Tuple[int, int]):
        from repro.core.jacobi_optimized import OptimizedJacobiRunner

        key = (card, block)
        if key not in self._runners:
            cfg = self.solver.config
            sub = self.subs[block]
            p = self.problem
            sub_problem = LaplaceProblem(
                nx=sub.nx, ny=sub.ny, left=p.left, right=p.right,
                top=p.top, bottom=p.bottom, initial=p.initial)
            device = self.cluster[self.card_index[card]]
            self._runners[key] = OptimizedJacobiRunner(
                device, sub_problem, cores_y=cfg.cores_y,
                cores_x=cfg.cores_x)
        return self._runners[key]

    def step_blocks(self, card: Tuple[int, int],
                    owned: List[Tuple[int, int]], blocks) -> float:
        """One launch per owned block; returns the card's clock delta."""
        device = self.cluster[self.card_index[card]]
        before = device.sim.now
        for b in owned:
            # One launch per block per iteration on a persistent device:
            # tear down the previous program's CBs/buffers first.
            device.release_launch_state()
            res = self._runner(card, b).run(1, initial_grid=blocks[b])
            blocks[b] = res.grid_bits
        return device.sim.now - before

    def busy_energy(self, coords) -> Tuple[float, ...]:
        return tuple(self.cluster[self.card_index[c]].energy.energy_j
                     for c in coords)
