"""Weak/strong scaling sweeps over simulated card counts.

Every sweep point is one :class:`ClusterConfig` run through the
``"cluster"`` job kind of :mod:`repro.parallel`, so points fan out over
worker processes (``-j N`` byte-identical to ``-j 1``), land in the
content-addressed cache, and come back in submission order.  Each point
also re-solves the single-card BF16 reference and records whether the
multi-card answer matched it **to the bit** — the differential check
rides inside every scaling run, not just the test suite.

Reports are schema-stable (``repro-cluster/1``) and contain only
simulated quantities — no wall-clock, no dates — so repeat runs are
byte-identical (the CI ``cluster-smoke`` job ``cmp``-gates this).
"""

from __future__ import annotations

import json
from typing import Iterable, List, Optional

from repro.cluster.solver import ClusterConfig
from repro.cluster.topology import card_splits

__all__ = [
    "SWEEP_SCHEMA",
    "cluster_sweep_configs",
    "doc_to_json",
    "render_cluster_report",
    "run_cluster_sweep",
    "sweep_to_doc",
]

SWEEP_SCHEMA = "repro-cluster/1"


def cluster_sweep_configs(mode: str, cards: Iterable[int], *,
                          base_nx: int = 64, base_ny: int = 64,
                          iterations: int = 8, split: str = "1d",
                          timing: str = "model",
                          cores: tuple = (1, 1),
                          exchange: str = "staged") -> List[ClusterConfig]:
    """Build the configs of one scaling sweep.

    ``mode="weak"`` holds the per-card block at ``base_ny × base_nx`` and
    grows the global domain with the card count; ``mode="strong"`` holds
    the global domain fixed at ``base_ny × base_nx``.  ``split="1d"``
    cuts in Y only; ``split="2d"`` uses the near-square factorisation of
    each card count.
    """
    if mode not in ("weak", "strong"):
        raise ValueError(f"mode must be 'weak' or 'strong', got {mode!r}")
    if split not in ("1d", "2d"):
        raise ValueError(f"split must be '1d' or '2d', got {split!r}")
    configs = []
    for n in cards:
        cy, cx = (n, 1) if split == "1d" else card_splits(n)
        if mode == "weak":
            nx, ny = base_nx * cx, base_ny * cy
        else:
            nx, ny = base_nx, base_ny
        configs.append(ClusterConfig(
            nx=nx, ny=ny, iterations=iterations, cards_y=cy, cards_x=cx,
            cores_y=cores[0], cores_x=cores[1], timing=timing,
            exchange=exchange))
    return configs


def run_cluster_sweep(configs: List[ClusterConfig],
                      jobs: Optional[int] = None,
                      cache=None, progress=None) -> List[dict]:
    """Run the sweep through the parallel engine; returns point payloads."""
    from repro.parallel import JobSpec, sweep_results

    specs = [JobSpec("cluster", cfg) for cfg in configs]
    return sweep_results(specs, jobs=jobs, cache=cache, progress=progress)


def sweep_to_doc(mode: str, points: List[dict]) -> dict:
    """Schema-stable JSON document for one sweep (no wall-clock fields)."""
    return {"schema": SWEEP_SCHEMA, "mode": mode, "points": points}


def doc_to_json(doc: dict) -> str:
    """Canonical rendering: sorted keys, newline-terminated."""
    return json.dumps(doc, sort_keys=True, indent=2) + "\n"


def _efficiency(mode: str, point: dict, base: dict) -> float:
    """Scaling efficiency vs the smallest-card-count point.

    Weak scaling: ideal keeps the wall flat while the problem grows, so
    ``eff = wall_base / wall_n``.  Strong scaling: ideal divides the wall
    by the card ratio, so ``eff = wall_base / (ratio · wall_n)``.
    """
    ratio = point["n_cards"] / base["n_cards"]
    if point["wall_time_s"] <= 0:
        return 0.0
    if mode == "weak":
        return base["wall_time_s"] / point["wall_time_s"]
    return base["wall_time_s"] / (ratio * point["wall_time_s"])


def render_cluster_report(mode: str, points: List[dict]) -> str:
    """Text table of one scaling sweep (byte-stable)."""
    lines = [f"{mode}-scaling sweep over {len(points)} card configuration(s) "
             f"(halo exchange: {points[0]['exchange'] if points else '-'}, "
             f"timing: {points[0]['timing'] if points else '-'})",
             f"{'cards':>7} {'grid':>12} {'wall (ms)':>11} {'GPt/s':>8} "
             f"{'eff %':>6} {'stall %':>8} {'exch %':>7} {'energy (J)':>11} "
             f"bit-identical"]
    base = points[0] if points else None
    for p in points:
        wall = p["wall_time_s"]
        stall_frac = (p["stall_total_s"] / (wall * p["n_cards"]) * 100
                      if wall > 0 else 0.0)
        exch_frac = (p["exchange_total_s"] / wall * 100 if wall > 0 else 0.0)
        eff = _efficiency(mode, p, base) * 100
        lines.append(
            f"{p['cards_y']}x{p['cards_x']:<4}".rjust(7)
            + f" {p['ny']}x{p['nx']}".rjust(13)
            + f" {wall * 1e3:>11.4f} {p['gpts']:>8.3f} {eff:>6.1f} "
            + f"{stall_frac:>8.2f} {exch_frac:>7.2f} "
            + f"{p['energy_j']:>11.4f} "
            + ("yes" if p["bit_identical"] else "NO"))
    identical = sum(1 for p in points if p["bit_identical"])
    lines.append(f"differential check: {identical}/{len(points)} point(s) "
                 f"bit-identical to the single-card reference")
    return "\n".join(lines)
