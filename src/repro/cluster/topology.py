"""Card-level domain decomposition: blocks, face strips, reassembly.

A cluster decomposition reuses :func:`repro.core.decomposition.split_domain`
at the *card* level: the global ``ny × nx`` interior is cut into a
``cards_y × cards_x`` grid of :class:`SubDomain` blocks.  Each card owns a
private halo grid of shape ``(ny_c + 2, nx_c + 2)`` — its interior block
plus one ring — exactly the layout the single-card kernels use.

Halo exchange moves **face strips** only.  The 5-point stencil at interior
point ``(1, 1)`` of a block reads ``(0, 1)``, ``(2, 1)``, ``(1, 0)`` and
``(1, 2)`` but never the ring corner ``(0, 0)``, so refreshing the N/S/E/W
faces (and leaving corners stale) is sufficient for the decomposed sweep
to be bit-identical to the global one — 2D card grids included.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.decomposition import SubDomain, split_domain

__all__ = [
    "FaceStrip",
    "apply_exchange",
    "card_splits",
    "exchange_strips",
    "extract_block",
    "insert_block",
    "plan_cards",
    "reassemble",
]


def plan_cards(nx: int, ny: int, cards_y: int, cards_x: int
               ) -> List[List[SubDomain]]:
    """Card decomposition of the global interior (``grid[iy][ix]``).

    Raises ``ValueError`` when there are more cards than rows/columns —
    the same contract as the core-level split.
    """
    return split_domain(nx, ny, cards_y, cards_x)


def card_splits(n_cards: int) -> Tuple[int, int]:
    """Near-square ``(cards_y, cards_x)`` factorisation of ``n_cards``.

    Prefers the factor pair closest to square with ``cards_y >= cards_x``
    (cuts in Y are cheaper: face strips are contiguous rows).  Prime
    counts degrade to a 1D Y split.
    """
    if n_cards <= 0:
        raise ValueError("n_cards must be positive")
    best = (n_cards, 1)
    for cx in range(1, int(n_cards ** 0.5) + 1):
        if n_cards % cx == 0:
            best = (n_cards // cx, cx)
    return best


def extract_block(grid: np.ndarray, sub: SubDomain) -> np.ndarray:
    """One card's private halo grid: its block plus one ring, copied.

    ``grid`` is the global halo grid ``(ny+2, nx+2)``; the slice below is
    exactly the block interior with the surrounding ring (global
    boundaries where the block touches the domain edge, neighbouring
    cards' rows elsewhere).
    """
    return grid[sub.y0:sub.y0 + sub.ny + 2,
                sub.x0:sub.x0 + sub.nx + 2].copy()


def insert_block(out: np.ndarray, sub: SubDomain, block: np.ndarray) -> None:
    """Write a card block's interior back into the global halo grid."""
    if block.shape != (sub.ny + 2, sub.nx + 2):
        raise ValueError(
            f"block shape {block.shape} does not match sub-domain "
            f"({sub.ny + 2}, {sub.nx + 2})")
    out[sub.y0 + 1:sub.y0 + sub.ny + 1,
        sub.x0 + 1:sub.x0 + sub.nx + 1] = block[1:-1, 1:-1]


def reassemble(grid0: np.ndarray, cards: List[List[SubDomain]],
               blocks: Dict[Tuple[int, int], np.ndarray]) -> np.ndarray:
    """Stitch per-card blocks into a full halo grid (boundaries from
    ``grid0``)."""
    out = np.asarray(grid0).copy()
    for row in cards:
        for sub in row:
            insert_block(out, sub, blocks[(sub.iy, sub.ix)])
    return out


@dataclass(frozen=True)
class FaceStrip:
    """One directed halo transfer: ``src`` card's face → ``dst`` card's ring.

    ``face`` names the side *of the destination ring* being refreshed
    ("n", "s", "w", "e"); ``elems`` is the strip length in elements.  The
    strip carries interior values only — ring corners are never read by
    the 5-point stencil, so they are never shipped.
    """

    src: Tuple[int, int]
    dst: Tuple[int, int]
    face: str
    elems: int


def exchange_strips(cards: List[List[SubDomain]]) -> List[FaceStrip]:
    """Every directed face strip one halo-exchange round must move.

    Deterministic order: row-major over destination cards, faces in
    n/s/w/e order — the order the host stages the copies in, and the
    order every report renders.
    """
    cy, cx = len(cards), len(cards[0])
    strips: List[FaceStrip] = []
    for iy in range(cy):
        for ix in range(cx):
            sub = cards[iy][ix]
            if iy > 0:
                strips.append(FaceStrip((iy - 1, ix), (iy, ix), "n", sub.nx))
            if iy < cy - 1:
                strips.append(FaceStrip((iy + 1, ix), (iy, ix), "s", sub.nx))
            if ix > 0:
                strips.append(FaceStrip((iy, ix - 1), (iy, ix), "w", sub.ny))
            if ix < cx - 1:
                strips.append(FaceStrip((iy, ix + 1), (iy, ix), "e", sub.ny))
    return strips


def apply_exchange(cards: List[List[SubDomain]],
                   blocks: Dict[Tuple[int, int], np.ndarray]) -> int:
    """Refresh every block's ring faces from its neighbours' interiors.

    Returns the number of elements moved (for the cost model).  This is
    the functional half of the halo exchange; the timing half lives in
    :mod:`repro.cluster.halo`.
    """
    moved = 0
    for strip in exchange_strips(cards):
        src = blocks[strip.src]
        dst = blocks[strip.dst]
        if strip.face == "n":
            dst[0, 1:-1] = src[-2, 1:-1]     # neighbour's last interior row
        elif strip.face == "s":
            dst[-1, 1:-1] = src[1, 1:-1]     # neighbour's first interior row
        elif strip.face == "w":
            dst[1:-1, 0] = src[1:-1, -2]     # neighbour's last interior col
        else:
            dst[1:-1, -1] = src[1:-1, 1]     # neighbour's first interior col
        moved += strip.elems
    return moved
