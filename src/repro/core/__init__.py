"""The paper's contribution: stencil kernels for the Grayskull.

* :mod:`repro.core.grid` — the Laplace problem, boundary conditions and
  the 256-bit-aligned DRAM layout of Fig. 5.
* :mod:`repro.core.decomposition` — 32×32 tile batches (Fig. 4),
  1024-element row batches (Fig. 6) and multi-core domain splits.
* :mod:`repro.core.jacobi_initial` — the Section-IV kernel generation
  (non-contiguous 34×34 reads, 4-CB memcpy extraction, Listing-2 compute,
  Listing-4 aligned reads) with the write-sync and double-buffering
  variants of Table I and the component toggles of Table II.
* :mod:`repro.core.jacobi_optimized` — the Section-VI kernel generation
  (contiguous row reads, rotating 4-row buffer, ``cb_set_rd_ptr``
  zero-copy).
* :mod:`repro.core.multicore` — functional multi-core / multi-card
  execution (including the paper's missing inter-card halos).
* :mod:`repro.core.solver` — the :class:`JacobiSolver` facade.
"""

from repro.core.grid import AlignedDomain, LaplaceProblem
from repro.core.jacobi_sram import SramJacobiRunner
from repro.core.refinement import solve_defect_correction
from repro.core.solver import (JacobiResult, JacobiSolver, ResilienceConfig,
                               ResilientJacobiResult, solve_resilient)
from repro.core.stencil import StencilRunner, StencilSpec

__all__ = [
    "AlignedDomain",
    "JacobiResult",
    "JacobiSolver",
    "LaplaceProblem",
    "ResilienceConfig",
    "ResilientJacobiResult",
    "SramJacobiRunner",
    "StencilRunner",
    "StencilSpec",
    "solve_defect_correction",
    "solve_resilient",
]
