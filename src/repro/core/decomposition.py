"""Domain decompositions: tile batches, row batches, core grids.

Three decompositions from the paper:

* :class:`TileBatches` — Fig. 4: the initial kernel cuts the domain into
  32×32-element batches (one FPU tile each); every batch needs a 34×34
  read including halos.
* :class:`RowBatches` — Fig. 6: the optimised kernel works in
  1024-element-wide chunks, sweeping *down* each chunk column so that
  every DRAM read is one contiguous 1026-element row.
* :func:`split_domain` — Table VIII: the multi-core systolic split of the
  global domain over a ``cores_y × cores_x`` grid.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List

from repro.dtypes.tiles import TILE_DIM, TILE_ELEMS

__all__ = [
    "TileBatch",
    "TileBatches",
    "RowBatch",
    "RowBatches",
    "split_extent",
    "split_domain",
    "SubDomain",
    "remap_failed",
]


@dataclass(frozen=True)
class TileBatch:
    """One 32×32 batch: interior origin ``(y0, x0)`` (Fig. 4)."""

    by: int
    bx: int
    y0: int
    x0: int

    @property
    def height(self) -> int:
        return TILE_DIM

    @property
    def width(self) -> int:
        return TILE_DIM


class TileBatches:
    """Row-major 32×32 batching of an ``ny × nx`` interior (Fig. 4)."""

    def __init__(self, nx: int, ny: int):
        if nx % TILE_DIM or ny % TILE_DIM:
            raise ValueError(
                f"the tile-batch kernel needs the domain to be a multiple "
                f"of {TILE_DIM} in both dimensions; got {ny}x{nx}")
        self.nx = nx
        self.ny = ny
        self.batches_x = nx // TILE_DIM
        self.batches_y = ny // TILE_DIM

    def __len__(self) -> int:
        return self.batches_x * self.batches_y

    def __iter__(self) -> Iterator[TileBatch]:
        for by in range(self.batches_y):
            for bx in range(self.batches_x):
                yield TileBatch(by, bx, by * TILE_DIM, bx * TILE_DIM)

    def render(self, max_batches: int = 4) -> str:
        """Text rendering of the batch grid (regenerates Fig. 4)."""
        n = min(self.batches_x, max_batches)
        m = min(self.batches_y, max_batches)
        cell = "+--------" * n + "+"
        lines = [f"{self.ny}x{self.nx} domain as "
                 f"{self.batches_y}x{self.batches_x} batches of "
                 f"{TILE_DIM}x{TILE_DIM} BF16 elements:"]
        for by in range(m):
            lines.append(cell)
            lines.append("".join(
                f"| b{by},{bx:<4}" for bx in range(n)) + "|")
        lines.append(cell)
        return "\n".join(lines)


@dataclass(frozen=True)
class RowBatch:
    """One optimised-kernel batch: a row segment (Fig. 6).

    ``y`` is the interior row, ``x0`` the interior start column, ``width``
    the chunk width in elements (≤ 1024).
    """

    index: int
    y: int
    x0: int
    width: int


class RowBatches:
    """Column-of-rows batching of a sub-domain (Fig. 6).

    Batches sweep *down* each chunk column (batch 0..h−1 in the first
    1024-wide column, then the next column), so consecutive reads walk
    forward through DRAM one row at a time.
    """

    def __init__(self, nx: int, ny: int, x0: int = 0, y0: int = 0,
                 chunk: int = TILE_ELEMS):
        if nx <= 0 or ny <= 0:
            raise ValueError("sub-domain must be non-empty")
        if chunk <= 0:
            raise ValueError("chunk width must be positive")
        self.nx = nx
        self.ny = ny
        self.x0 = x0
        self.y0 = y0
        self.chunk = chunk
        self.columns: List[tuple[int, int]] = []
        x = 0
        while x < nx:
            w = min(chunk, nx - x)
            self.columns.append((x0 + x, w))
            x += w

    def __len__(self) -> int:
        return len(self.columns) * self.ny

    def __iter__(self) -> Iterator[RowBatch]:
        i = 0
        for cx, w in self.columns:
            for r in range(self.ny):
                yield RowBatch(i, self.y0 + r, cx, w)
                i += 1

    def render(self, max_rows: int = 6) -> str:
        """Text rendering of the column-sweep order (regenerates Fig. 6)."""
        rows = min(self.ny, max_rows)
        lines = [f"{self.ny}x{self.nx} sub-domain as {len(self)} row "
                 f"batches of up to {self.chunk} elements "
                 f"({len(self.columns)} chunk column(s)):"]
        for r in range(rows):
            cells = []
            for c, (cx, w) in enumerate(self.columns):
                cells.append(f" batch {c * self.ny + r:<4}")
            lines.append("|" + "|".join(cells) + "|")
        if self.ny > rows:
            lines.append("| ... " * len(self.columns) + "|")
        return "\n".join(lines)


def split_extent(n: int, parts: int) -> List[tuple[int, int]]:
    """Split ``n`` elements into ``parts`` near-equal ``(start, size)`` runs."""
    if n <= 0 or parts <= 0:
        raise ValueError("n and parts must be positive")
    if parts > n:
        raise ValueError(f"cannot split {n} elements into {parts} parts")
    base, extra = divmod(n, parts)
    out = []
    start = 0
    for p in range(parts):
        size = base + (1 if p < extra else 0)
        out.append((start, size))
        start += size
    return out


@dataclass(frozen=True)
class SubDomain:
    """One core's share of the global interior."""

    iy: int
    ix: int
    y0: int
    x0: int
    ny: int
    nx: int


def split_domain(nx: int, ny: int, cores_y: int, cores_x: int
                 ) -> List[List[SubDomain]]:
    """Table-VIII systolic decomposition: ``grid[iy][ix]`` of sub-domains."""
    ys = split_extent(ny, cores_y)
    xs = split_extent(nx, cores_x)
    return [[SubDomain(iy, ix, y0, x0, h, w)
             for ix, (x0, w) in enumerate(xs)]
            for iy, (y0, h) in enumerate(ys)]


def remap_failed(grid: List[List[SubDomain]],
                 failed) -> dict[tuple[int, int], tuple[int, int]]:
    """Reassign failed cores' sub-domains to surviving cores.

    ``grid`` is a :func:`split_domain` result; ``failed`` an iterable of
    ``(iy, ix)`` decomposition coordinates.  Returns
    ``{failed_coord: survivor_coord}``.  The assignment is deterministic:
    failed coordinates are processed in sorted order, each going to the
    survivor with (1) the lowest accumulated element load, (2) the
    smallest Manhattan distance, (3) the smallest coordinate — so a
    degraded run replays identically.  Raises ``ValueError`` when every
    core failed.
    """
    owners = {(s.iy, s.ix): s for row in grid for s in row}
    failed_set = {tuple(f) for f in failed}
    for f in failed_set:
        if f not in owners:
            raise ValueError(f"unknown decomposition coordinate {f}")
    survivors = sorted(k for k in owners if k not in failed_set)
    if not survivors:
        raise ValueError("no surviving cores to remap onto")
    load = {k: owners[k].ny * owners[k].nx for k in survivors}
    assignment: dict[tuple[int, int], tuple[int, int]] = {}
    for f in sorted(failed_set):
        best = min(survivors, key=lambda k: (
            load[k], abs(k[0] - f[0]) + abs(k[1] - f[1]), k))
        assignment[f] = best
        load[best] += owners[f].ny * owners[f].nx
    return assignment
