"""The Laplace diffusion problem and its DRAM layout on the Grayskull.

:class:`LaplaceProblem` describes the 2-D domain with Dirichlet boundary
conditions (the paper's setup: high values on one side diffusing across).

:class:`AlignedDomain` is the Fig.-5 memory layout: every row is padded on
the left and right with a 256-bit (16 BF16 element) region that is empty
except for the boundary-condition value adjacent to the interior.  The
padding guarantees that every 32-element output tile write starts on a
256-bit boundary — the fix the authors adopted after discovering that
non-contiguous unaligned DRAM writes corrupt memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.dtypes.bf16 import BF16_BYTES, bf16_round, bits_to_f32, f32_to_bits

__all__ = ["LaplaceProblem", "AlignedDomain", "PAD_ELEMS"]

#: 256 bits of BF16 elements: the alignment pad on each side of a row.
PAD_ELEMS = 16


@dataclass(frozen=True)
class LaplaceProblem:
    """Laplace's equation ∇²u = 0 on an ``ny`` × ``nx`` interior grid.

    Dirichlet boundaries: constant values on each side (the paper's
    example diffuses high values from the left toward low values on the
    right).  The initial interior guess is constant.
    """

    nx: int
    ny: int
    left: float = 1.0
    right: float = 0.0
    top: float = 0.0
    bottom: float = 0.0
    initial: float = 0.0

    def __post_init__(self):
        if self.nx <= 0 or self.ny <= 0:
            raise ValueError("domain dimensions must be positive")

    # -- float32 state ------------------------------------------------------
    def initial_grid_f32(self) -> np.ndarray:
        """Full ``(ny+2, nx+2)`` float32 grid with halo boundary rows/cols."""
        g = np.full((self.ny + 2, self.nx + 2), self.initial, dtype=np.float32)
        g[:, 0] = self.left
        g[:, -1] = self.right
        g[0, :] = self.top
        g[-1, :] = self.bottom
        # Corners: take the horizontal boundary (never read by the 5-point
        # stencil, but keep them deterministic).
        g[0, 0] = g[0, -1] = self.top
        g[-1, 0] = g[-1, -1] = self.bottom
        return g

    def initial_grid_bf16(self) -> np.ndarray:
        """Same grid as BF16 bit patterns (``uint16``)."""
        return f32_to_bits(self.initial_grid_f32())

    def boundary_extrema(self) -> tuple[float, float]:
        """(min, max) over the boundary data and the initial guess.

        By the discrete maximum principle every Jacobi iterate stays inside
        this interval — a key solver invariant the tests enforce.  (The
        exact converged solution oracle lives in
        :func:`repro.cpu.jacobi.solve_direct`.)
        """
        vals = (self.left, self.right, self.top, self.bottom, self.initial)
        return (min(vals), max(vals))

    def render(self, max_cells: int = 12) -> str:
        """Text rendering of the bounded domain (regenerates Fig. 2)."""
        nx = min(self.nx, max_cells)
        ny = min(self.ny, max_cells)
        lines = ["B " * (nx + 2)]
        for _ in range(ny):
            lines.append("B " + ". " * nx + "B")
        lines.append("B " * (nx + 2))
        legend = (f"B = boundary condition (left={self.left:g}, "
                  f"right={self.right:g}, top={self.top:g}, "
                  f"bottom={self.bottom:g}); . = grid cell")
        return "\n".join(lines) + "\n" + legend


class AlignedDomain:
    """The Fig.-5 padded DRAM image of a problem state.

    Layout (all BF16, row-major):

    ``[16-elem left pad | nx interior elems | 16-elem right pad]`` × (ny+2)
    rows, where row 0 and row ny+1 hold the top/bottom boundary values and
    the pads are empty except for their innermost element, which carries
    the left/right boundary condition.

    Byte geometry: row stride = ``(nx + 32) · 2`` bytes; the interior of
    each row starts 32 bytes into the row — always 256-bit aligned, which
    is what makes the 32-element tile writes of both kernel generations
    legal.
    """

    #: both pads are one 256-bit DRAM access wide, whatever the element.
    PAD_BYTES = 32

    def __init__(self, problem: LaplaceProblem, elem_bytes: int = BF16_BYTES):
        if problem.nx % 32:
            raise ValueError(
                f"the Grayskull kernels need nx to be a multiple of 32 "
                f"(tile width); got {problem.nx}")
        if elem_bytes not in (2, 4):
            raise ValueError("elem_bytes must be 2 (BF16) or 4 (FP32)")
        self.problem = problem
        self.elem_bytes = elem_bytes
        #: NumPy dtype of the raw bit patterns (uint16 for BF16, uint32
        #: for FP32 — the Wormhole-precision mode of the stencil kernels).
        self.bits_dtype = np.uint16 if elem_bytes == 2 else np.uint32
        self.pad_elems = self.PAD_BYTES // elem_bytes
        self.nx = problem.nx
        self.ny = problem.ny
        self.row_elems = self.nx + 2 * self.pad_elems
        self.row_bytes = self.row_elems * elem_bytes
        self.n_rows = self.ny + 2
        self.nbytes = self.n_rows * self.row_bytes

    # -- packing ------------------------------------------------------------
    def pack(self, grid_bits: Optional[np.ndarray] = None) -> np.ndarray:
        """Build the padded BF16 image (``uint16`` of shape (rows, row_elems)).

        ``grid_bits`` is a full ``(ny+2, nx+2)`` halo grid; defaults to the
        problem's initial state.
        """
        if grid_bits is None:
            if self.elem_bytes == 2:
                grid_bits = self.problem.initial_grid_bf16()
            else:
                grid_bits = self.problem.initial_grid_f32().view(np.uint32)
        g = np.asarray(grid_bits, dtype=self.bits_dtype)
        if g.shape != (self.ny + 2, self.nx + 2):
            raise ValueError(
                f"expected halo grid ({self.ny + 2},{self.nx + 2}), "
                f"got {g.shape}")
        pe = self.pad_elems
        img = np.zeros((self.n_rows, self.row_elems), dtype=self.bits_dtype)
        # interior columns (and top/bottom boundary rows) land after the pad
        img[:, pe:pe + self.nx] = g[:, 1:-1]
        # boundary-condition values sit in the innermost pad element
        img[:, pe - 1] = g[:, 0]
        img[:, pe + self.nx] = g[:, -1]
        return img

    def unpack(self, img: np.ndarray) -> np.ndarray:
        """Extract the full halo grid back out of a padded image."""
        img = np.asarray(img, dtype=self.bits_dtype).reshape(
            self.n_rows, self.row_elems)
        pe = self.pad_elems
        g = np.zeros((self.ny + 2, self.nx + 2), dtype=self.bits_dtype)
        g[:, 1:-1] = img[:, pe:pe + self.nx]
        g[:, 0] = img[:, pe - 1]
        g[:, -1] = img[:, pe + self.nx]
        return g

    # -- addressing (byte offsets into the DRAM buffer) -----------------------
    def row_offset(self, halo_row: int) -> int:
        """Byte offset of padded row ``halo_row`` (0 = top boundary row)."""
        if not 0 <= halo_row < self.n_rows:
            raise IndexError(f"row {halo_row} outside [0,{self.n_rows})")
        return halo_row * self.row_bytes

    def elem_offset(self, halo_row: int, interior_x: int) -> int:
        """Byte offset of interior element ``interior_x`` in ``halo_row``."""
        if not 0 <= interior_x < self.nx:
            raise IndexError(f"x {interior_x} outside [0,{self.nx})")
        return self.row_offset(halo_row) \
            + (self.pad_elems + interior_x) * self.elem_bytes

    def stencil_row_offset(self, halo_row: int, interior_x: int) -> int:
        """Byte offset of the x−1 halo element (read start for a chunk)."""
        return self.elem_offset(halo_row, interior_x) - self.elem_bytes

    def render(self, max_cols: int = 8) -> str:
        """Text rendering of the padded layout (regenerates Fig. 5)."""
        n = min(self.nx, max_cols)
        pad = "p" * 3 + "B"
        row = f"|{pad}|" + "." * n + ("…" if self.nx > n else "") + f"|B{'p' * 3}|"
        return "\n".join([
            f"AlignedDomain: {self.ny}x{self.nx} interior, "
            f"row stride {self.row_bytes} B (interior starts at byte 32)",
            row, row, " ...",
            "p = empty 256-bit pad element, B = boundary condition, "
            ". = interior cell",
        ])
