"""The initial Jacobi port (Section IV): tile batches and 4-CB extraction.

Dataflow per 32×32 batch (the paper's Fig. 3):

* **reader (dm0)** fetches the batch's 34×34 element neighbourhood as 34
  non-contiguous 68-byte row reads, using the Listing-4 aligned-read
  helper (every read is misaligned by 30 bytes because of the x−1 halo),
  then *copies* four shifted 32×32 tiles out of the local buffer into the
  four input CBs — 128 strided 64-byte memcpy calls per batch, the
  bottleneck Table II exposes;
* **compute** runs Listing 2: three ``add_tiles`` + one ``mul_tiles`` by
  the 0.25-constant CB, with a ``pack_tile`` after each op;
* **writer (dm1)** stores the output tile as 32 non-contiguous 64-byte row
  writes (always aligned thanks to the Fig.-5 padding), then bumps the
  iteration semaphore the reader blocks on.

Variants (Table I):

* ``initial`` — a write barrier after *every* row write and the
  Listing-4 read barrier after every read;
* ``write_opt`` — write barrier once per batch;
* ``double_buffered`` — additionally, reads for batch *i+1* are issued
  before the memcpy of batch *i* so transfer and copy overlap.

Component toggles (Table II): ``enable_read`` / ``enable_memcpy`` /
``enable_compute`` / ``enable_write`` switch the work off while keeping
the CB structure and synchronisation intact, exactly as the paper's
retiming experiment does (results are functionally wrong when anything is
disabled — these runs measure time only).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

import numpy as np

from repro.arch.device import GrayskullDevice
from repro.arch.tensix import COMPUTE, DATA_MOVER_0, DATA_MOVER_1, TensixCore
from repro.core.decomposition import TileBatch, TileBatches
from repro.core.grid import AlignedDomain, LaplaceProblem
from repro.dtypes.bf16 import BF16_BYTES, f32_to_bits
from repro.dtypes.tiles import TILE_DIM, TILE_NBYTES
from repro.ttmetal import (
    CreateCircularBuffer,
    CreateKernel,
    CreateSemaphore,
    EnqueueProgram,
    EnqueueReadBuffer,
    EnqueueWriteBuffer,
    Finish,
    Program,
    create_buffer,
)

__all__ = ["InitialConfig", "InitialJacobiRunner", "DeviceRunResult",
           "describe_dataflow", "CB_IN0", "CB_IN1", "CB_IN2", "CB_IN3",
           "CB_SCALAR", "CB_INTERMED", "CB_OUT0"]

# CB indices (mirroring tt-metal's c_in0.. / c_intermed0 / c_out0 spaces).
CB_IN0, CB_IN1, CB_IN2, CB_IN3 = 0, 1, 2, 3
CB_SCALAR = 4
CB_OUT0 = 16
CB_INTERMED = 24
SEM_ITER = 0

_HALO = TILE_DIM + 2          # 34-element neighbourhood edge
_ROW_BYTES = _HALO * BF16_BYTES   # 68-byte row read


@dataclass(frozen=True)
class InitialConfig:
    """Which Section-IV variant to run."""

    write_sync_per_batch: bool = False   #: Table I "Data write optimised"
    double_buffered: bool = False        #: Table I "Double buffering"
    aligned_reads: bool = True           #: False demonstrates the corruption
    read_sync_per_request: bool = True   #: Listing 4 barriers every read
    enable_read: bool = True
    enable_memcpy: bool = True
    enable_compute: bool = True
    enable_write: bool = True

    @classmethod
    def initial(cls) -> "InitialConfig":
        return cls()

    @classmethod
    def write_optimised(cls) -> "InitialConfig":
        return cls(write_sync_per_batch=True)

    @classmethod
    def double_buffered_cfg(cls) -> "InitialConfig":
        return cls(write_sync_per_batch=True, double_buffered=True)

    def with_toggles(self, read: bool, memcpy: bool, compute: bool,
                     write: bool) -> "InitialConfig":
        return replace(self, enable_read=read, enable_memcpy=memcpy,
                       enable_compute=compute, enable_write=write)


@dataclass(frozen=True)
class DeviceRunResult:
    """Outcome of a simulated device Jacobi run."""

    grid_bits: Optional[np.ndarray]   #: final halo grid (uint16), if read back
    iterations: int                   #: iterations the result is reported for
    simulated_iterations: int         #: iterations actually simulated
    kernel_time_s: float              #: extrapolated kernel wall time
    transfer_time_s: float            #: PCIe in+out
    energy_j: float
    points: int

    @property
    def total_time_s(self) -> float:
        return self.kernel_time_s + self.transfer_time_s

    @property
    def points_per_s(self) -> float:
        """Points/second including transfer overhead (as the paper reports)."""
        return self.points * self.iterations / self.total_time_s

    @property
    def gpts(self) -> float:
        """Billion points per second — the paper's headline metric."""
        return self.points_per_s / 1e9


def _aligned_range(offset: int, size: int, alignment: int) -> tuple[int, int, int]:
    """Listing 4: extend ``[offset, offset+size)`` down to an aligned start.

    Returns ``(aligned_offset, read_size, slack)`` where ``slack`` is the
    number of preliminary bytes the caller must skip.
    """
    slack = offset % alignment
    return offset - slack, size + slack, slack


# --------------------------------------------------------------------------
# kernels
# --------------------------------------------------------------------------

def _reader_kernel(ctx):
    layout: AlignedDomain = ctx.arg("layout")
    cfg: InitialConfig = ctx.arg("config")
    buffers = ctx.arg("buffers")          # [d1, d2]
    iterations: int = ctx.arg("iterations")
    batches: List[TileBatch] = ctx.arg("batches")
    align = ctx.costs.dram_alignment

    # Fill the 0.25 scalar CB once at program start (paper: "a CB filled
    # by a data mover core on program initialisation").
    yield from ctx.cb_reserve_back(CB_SCALAR, 1)
    quarter = np.full(TILE_DIM * TILE_DIM, f32_to_bits(0.25), dtype=np.uint16)
    yield from ctx.l1_store_u16(ctx.cb_write_ptr(CB_SCALAR), quarter)
    yield from ctx.cb_push_back(CB_SCALAR, 1)

    # Local neighbourhood buffers (double buffering uses two).
    slack_max = align - 2
    slot_bytes = _HALO * (_ROW_BYTES + slack_max)
    n_bufs = 2 if cfg.double_buffered else 1
    local = [ctx.core.sram.allocate(slot_bytes, align=32) for _ in range(n_bufs)]

    def batch_ranges(batch: TileBatch) -> tuple[list, int]:
        """The 34 row reads of a batch as (offset, size) ranges + slack."""
        ranges = []
        slack0 = None
        for j in range(_HALO):
            off = layout.stencil_row_offset(batch.y0 + j, batch.x0)
            if cfg.aligned_reads:
                aoff, rsize, slack = _aligned_range(off, _ROW_BYTES, align)
            else:
                aoff, rsize, slack = off, _ROW_BYTES, 0
            if slack0 is None:
                slack0 = slack
            elif slack != slack0:
                raise AssertionError("row misalignment varies within a batch")
            ranges.append((aoff, rsize))
        return ranges, slack0

    def do_memcpy(batch_buf: int, slack: int, row_span: int):
        """Extract the four shifted 32x32 tiles into the input CBs."""
        # local row j starts at j*row_span; payload begins after `slack`.
        for cb_id, (row0, col0) in ((CB_IN0, (1, 0)), (CB_IN1, (1, 2)),
                                    (CB_IN2, (0, 1)), (CB_IN3, (2, 1))):
            yield from ctx.cb_reserve_back(cb_id, 1)
            if cfg.enable_memcpy:
                src = batch_buf + row0 * row_span + slack + col0 * BF16_BYTES
                yield from ctx.memcpy_rows(
                    dst_l1=ctx.cb_write_ptr(cb_id),
                    dst_stride=TILE_DIM * BF16_BYTES,
                    src_l1=src,
                    src_stride=row_span,
                    row_bytes=TILE_DIM * BF16_BYTES,
                    rows=TILE_DIM)
            yield from ctx.cb_push_back(cb_id, 1)

    for it in range(iterations):
        # Block on the writer's semaphore before re-reading (Fig. 3).
        yield from ctx.semaphore_wait(SEM_ITER, it)
        src_buf = buffers[it % 2]

        if cfg.double_buffered and cfg.enable_read:
            # Prime the pipeline: fetch batch 0 into buffer 0.
            ranges, slack = batch_ranges(batches[0])
            yield from ctx.noc_read_buffer_burst(src_buf, ranges, local[0])
            row_span = ranges[0][1]
            for i, batch in enumerate(batches):
                yield from ctx.noc_async_read_barrier()
                if i + 1 < len(batches):
                    nxt, nslack = batch_ranges(batches[i + 1])
                    yield from ctx.noc_read_buffer_burst(
                        src_buf, nxt, local[(i + 1) % 2])
                yield from do_memcpy(local[i % 2], slack, row_span)
                slack = nslack if i + 1 < len(batches) else slack
        else:
            for batch in batches:
                slack, row_span = 0, _ROW_BYTES
                if cfg.enable_read:
                    ranges, slack = batch_ranges(batch)
                    row_span = ranges[0][1]
                    # Listing 4 issues a barrier inside every read call;
                    # the Table-II retiming build synchronises per batch.
                    yield from ctx.noc_read_buffer_burst(
                        src_buf, ranges, local[0],
                        sync=cfg.read_sync_per_request)
                    yield from ctx.noc_async_read_barrier()
                yield from do_memcpy(local[0], slack, row_span)


def _compute_kernel(ctx):
    cfg: InitialConfig = ctx.arg("config")
    iterations: int = ctx.arg("iterations")
    n_batches: int = ctx.arg("n_batches")
    dst0 = 0

    yield from ctx.cb_wait_front(CB_SCALAR, 1)
    yield from ctx.tile_regs_acquire()
    for _ in range(iterations):
        for _ in range(n_batches):
            # Listing 2, faithfully.
            yield from ctx.cb_wait_front(CB_IN0, 1)
            yield from ctx.cb_wait_front(CB_IN1, 1)
            if cfg.enable_compute:
                yield from ctx.add_tiles(CB_IN0, CB_IN1, 0, 0, dst0)
            yield from ctx.cb_pop_front(CB_IN1, 1)
            yield from ctx.cb_pop_front(CB_IN0, 1)

            yield from ctx.cb_reserve_back(CB_INTERMED, 1)
            if cfg.enable_compute:
                yield from ctx.pack_tile(dst0, CB_INTERMED)
            yield from ctx.cb_push_back(CB_INTERMED, 1)

            yield from ctx.cb_wait_front(CB_IN2, 1)
            yield from ctx.cb_wait_front(CB_INTERMED, 1)
            if cfg.enable_compute:
                yield from ctx.add_tiles(CB_IN2, CB_INTERMED, 0, 0, dst0)
            yield from ctx.cb_pop_front(CB_INTERMED, 1)
            yield from ctx.cb_pop_front(CB_IN2, 1)

            yield from ctx.cb_reserve_back(CB_INTERMED, 1)
            if cfg.enable_compute:
                yield from ctx.pack_tile(dst0, CB_INTERMED)
            yield from ctx.cb_push_back(CB_INTERMED, 1)

            # "Undertaking the same addition for the third CB"
            yield from ctx.cb_wait_front(CB_IN3, 1)
            yield from ctx.cb_wait_front(CB_INTERMED, 1)
            if cfg.enable_compute:
                yield from ctx.add_tiles(CB_IN3, CB_INTERMED, 0, 0, dst0)
            yield from ctx.cb_pop_front(CB_INTERMED, 1)
            yield from ctx.cb_pop_front(CB_IN3, 1)

            yield from ctx.cb_reserve_back(CB_INTERMED, 1)
            if cfg.enable_compute:
                yield from ctx.pack_tile(dst0, CB_INTERMED)
            yield from ctx.cb_push_back(CB_INTERMED, 1)

            yield from ctx.cb_wait_front(CB_INTERMED, 1)
            if cfg.enable_compute:
                yield from ctx.mul_tiles(CB_SCALAR, CB_INTERMED, 0, 0, dst0)
            yield from ctx.cb_pop_front(CB_INTERMED, 1)

            yield from ctx.cb_reserve_back(CB_OUT0, 1)
            if cfg.enable_compute:
                yield from ctx.pack_tile(dst0, CB_OUT0)
            yield from ctx.cb_push_back(CB_OUT0, 1)
    yield from ctx.tile_regs_release()


def _writer_kernel(ctx):
    layout: AlignedDomain = ctx.arg("layout")
    cfg: InitialConfig = ctx.arg("config")
    buffers = ctx.arg("buffers")
    iterations: int = ctx.arg("iterations")
    batches: List[TileBatch] = ctx.arg("batches")

    for it in range(iterations):
        dst_buf = buffers[(it + 1) % 2]
        for batch in batches:
            yield from ctx.cb_wait_front(CB_OUT0, 1)
            if cfg.enable_write:
                ptr = ctx.cb_read_ptr(CB_OUT0)
                for r in range(TILE_DIM):
                    off = layout.elem_offset(batch.y0 + 1 + r, batch.x0)
                    yield from ctx.noc_write_buffer(
                        dst_buf, off, ptr + r * TILE_DIM * BF16_BYTES,
                        TILE_DIM * BF16_BYTES)
                    if not cfg.write_sync_per_batch:
                        yield from ctx.noc_async_write_barrier()
                if cfg.write_sync_per_batch:
                    yield from ctx.noc_async_write_barrier()
            yield from ctx.cb_pop_front(CB_OUT0, 1)
        # Release the reader into the next iteration.
        yield from ctx.semaphore_inc(SEM_ITER, 1)


# --------------------------------------------------------------------------
# runner
# --------------------------------------------------------------------------

class InitialJacobiRunner:
    """Host-side driver for the Section-IV kernels on one Tensix core."""

    def __init__(self, device: GrayskullDevice, problem: LaplaceProblem,
                 config: Optional[InitialConfig] = None,
                 core: Optional[TensixCore] = None):
        self.device = device
        self.problem = problem
        self.config = config or InitialConfig()
        self.core = core or device.core(0, 0)
        self.layout = AlignedDomain(problem)
        if problem.ny % TILE_DIM:
            raise ValueError(
                f"the initial kernel needs ny to be a multiple of "
                f"{TILE_DIM}; got {problem.ny}")

    def run(self, iterations: int,
            sim_iterations: Optional[int] = None,
            read_back: bool = True,
            initial_grid: Optional[np.ndarray] = None) -> DeviceRunResult:
        """Execute the solver.

        ``sim_iterations`` (default: ``iterations``) bounds how many
        iterations the DES actually executes; the kernel time is scaled to
        ``iterations`` from the steady-state per-iteration time — the
        standard practice for the paper's 10000-iteration runs.  Functional
        results are only read back when all iterations were simulated.
        ``initial_grid`` (a full ``(ny+2, nx+2)`` BF16 halo grid) overrides
        the problem's default initial state.
        """
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        sim_iters = sim_iterations if sim_iterations is not None else iterations
        sim_iters = min(sim_iters, iterations)
        if sim_iters <= 0:
            raise ValueError("sim_iterations must be positive")

        dev = self.device
        img = self.layout.pack(initial_grid)
        # The paper's initial code keeps everything in a single DRAM bank.
        d1 = create_buffer(dev, self.layout.nbytes, bank_id=0)
        d2 = create_buffer(dev, self.layout.nbytes, bank_id=0)
        t_in = EnqueueWriteBuffer(dev, d1, img)
        t_in += EnqueueWriteBuffer(dev, d2, img)

        prog = Program(dev)
        core = self.core
        for cb_id in (CB_IN0, CB_IN1, CB_IN2, CB_IN3):
            CreateCircularBuffer(prog, core, cb_id, TILE_NBYTES, 4)
        CreateCircularBuffer(prog, core, CB_SCALAR, TILE_NBYTES, 1)
        CreateCircularBuffer(prog, core, CB_INTERMED, TILE_NBYTES, 2)
        CreateCircularBuffer(prog, core, CB_OUT0, TILE_NBYTES, 4)
        CreateSemaphore(prog, core, SEM_ITER, 0)

        batches = list(TileBatches(self.problem.nx, self.problem.ny))
        common = dict(layout=self.layout, config=self.config,
                      buffers=[d1, d2], iterations=sim_iters,
                      batches=batches, n_batches=len(batches))
        CreateKernel(prog, _reader_kernel, core, DATA_MOVER_0, common)
        CreateKernel(prog, _compute_kernel, core, COMPUTE, common)
        CreateKernel(prog, _writer_kernel, core, DATA_MOVER_1, common)

        EnqueueProgram(dev, prog)
        kernel_time = Finish(dev)
        per_iter = kernel_time / sim_iters
        full_time = per_iter * iterations

        grid_bits = None
        t_out = 0.0
        if read_back and sim_iters == iterations:
            final = d1 if iterations % 2 == 0 else d2
            t0 = dev.sim.now
            raw = EnqueueReadBuffer(dev, final)
            t_out = dev.sim.now - t0
            grid_bits = self.layout.unpack(raw.view("<u2"))

        points = self.problem.nx * self.problem.ny
        energy = (dev.energy.energy_j / (kernel_time or 1.0)) * full_time \
            if sim_iters != iterations else dev.energy.energy_j
        return DeviceRunResult(
            grid_bits=grid_bits,
            iterations=iterations,
            simulated_iterations=sim_iters,
            kernel_time_s=full_time,
            transfer_time_s=t_in + t_out,
            energy_j=energy,
            points=points,
        )


def describe_dataflow() -> str:
    """Text rendering of the Fig.-3 dataflow design."""
    return "\n".join([
        "Initial design (Fig. 3): one Tensix core",
        "",
        "  DRAM d1/d2  --NoC0-->  [dm0 reader]",
        "      34 x 68B non-contiguous row reads (Listing 3/4, aligned)",
        "      local 34x34 buffer --memcpy--> CB in0..in3 (x-1, x+1, y-1, y+1)",
        "  [compute: unpack -> FPU -> pack]   (Listing 2)",
        "      (in0+in1) -> intermed; (+in2) -> intermed; (+in3) -> intermed;",
        "      (x 0.25 from scalar CB) -> CB out0",
        "  [dm1 writer]  --NoC1-->  DRAM d2/d1",
        "      32 x 64B non-contiguous aligned row writes",
        "  writer --semaphore--> reader  (iteration hand-off; d1/d2 swap)",
    ])
