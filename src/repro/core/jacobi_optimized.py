"""The optimised Jacobi kernel (Section VI): row batches and zero-copy CBs.

Redesign driven by the Section-V lessons:

* **fewer, larger, contiguous reads** — the domain is swept in
  1024-element row chunks (Fig. 6); each batch is one contiguous read of
  ``width+2`` elements (the chunk plus its x halos), aligned with the
  Listing-4 helper;
* **no replicated reads** — a rotating 4-row local buffer holds the
  current, previous and next rows, so every DRAM row is fetched once per
  column sweep;
* **no memcpy** — the compute kernel re-points each input CB's read
  pointer into the rotating buffer with the paper's ``cb_set_rd_ptr``
  extension: the x−1 / x+1 tiles are just the same row at element offsets
  0 / 2, and y−1 / y+1 are the neighbouring slots.

Multi-core (Section VII): the global domain is decomposed over a
``cores_y × cores_x`` grid (Table VIII); cores exchange halos implicitly
through the shared DRAM images, with a global semaphore barrier per
iteration.  Buffers are interleaved across the 8 banks (32 KB pages — the
Table-VI sweet spot).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.arch.device import GrayskullDevice
from repro.arch.tensix import COMPUTE, DATA_MOVER_0, DATA_MOVER_1, TensixCore
from repro.core.decomposition import SubDomain, split_domain
from repro.core.grid import AlignedDomain, LaplaceProblem
from repro.core.jacobi_initial import DeviceRunResult
from repro.dtypes.bf16 import BF16_BYTES, f32_to_bits
from repro.dtypes.tiles import TILE_ELEMS
from repro.sim.resources import Semaphore
from repro.ttmetal import (
    CreateCircularBuffer,
    CreateKernel,
    CreateSemaphore,
    EnqueueProgram,
    EnqueueReadBuffer,
    EnqueueWriteBuffer,
    Finish,
    Program,
    create_buffer,
)

__all__ = ["OptimizedConfig", "OptimizedJacobiRunner"]

CB_IN0, CB_IN1, CB_IN2, CB_IN3 = 0, 1, 2, 3
CB_SCALAR = 4
CB_OUT0 = 16
CB_INTERMED = 24
SEM_ITER = 0
#: compute increments this after finishing each chunk column; the reader
#: waits on it before priming the next column's rows into the rotating
#: buffer (otherwise the prime could overwrite slots the consumer is
#: still aliasing on the previous column's final rows).
SEM_COLUMN = 1

#: rotating local-buffer depth (the paper allocates four batches).
N_SLOTS = 4
#: in-CB pages: 2 ⇒ the reader prefetches one row ahead of the consumer,
#: which is exactly the slot-reuse safety margin of the 4-deep buffer.
IN_PAGES = 2


@dataclass(frozen=True)
class OptimizedConfig:
    """Section-VI variant knobs."""

    chunk: int = TILE_ELEMS          #: row-batch width in elements
    interleaved: bool = True         #: spread d1/d2 over the 8 banks
    page_size: int = 32 << 10        #: interleave page (Table VI optimum)
    accumulate_in_dst: bool = False  #: the paper's rejected FPU ablation


def _chunk_columns(sub: SubDomain, chunk: int) -> List[tuple[int, int]]:
    cols = []
    x = 0
    while x < sub.nx:
        w = min(chunk, sub.nx - x)
        cols.append((sub.x0 + x, w))
        x += w
    return cols


# --------------------------------------------------------------------------
# kernels (one triple per core; `sub` is the core's SubDomain)
# --------------------------------------------------------------------------

def _reader_kernel(ctx):
    layout: AlignedDomain = ctx.arg("layout")
    cfg: OptimizedConfig = ctx.arg("config")
    buffers = ctx.arg("buffers")
    iterations: int = ctx.arg("iterations")
    sub: SubDomain = ctx.arg("sub")
    barrier: Semaphore = ctx.arg("barrier")
    n_cores: int = ctx.arg("n_cores")
    align = ctx.costs.dram_alignment

    # 0.25-constant CB, filled once.
    yield from ctx.cb_reserve_back(CB_SCALAR, 1)
    page_elems = ctx.core.cbs[CB_SCALAR].page_size // 2
    quarter = np.full(page_elems, f32_to_bits(0.25), dtype=np.uint16)
    yield from ctx.l1_store_u16(ctx.cb_write_ptr(CB_SCALAR), quarter)
    yield from ctx.cb_push_back(CB_SCALAR, 1)

    cols = _chunk_columns(sub, cfg.chunk)
    max_w = max(w for _, w in cols)
    slack_max = align - 2
    slot_bytes = (max_w + 2) * BF16_BYTES + slack_max
    slot_bytes = (slot_bytes + 31) // 32 * 32
    slots = ctx.core.sram.allocate(N_SLOTS * slot_bytes, align=32)
    # Tell the compute kernel where the rotating buffer lives (the paper
    # passes it as a compile argument).
    ctx.arg("shared")["slots"] = slots
    ctx.arg("shared")["slot_bytes"] = slot_bytes

    def read_row(buf, x0, w, halo_row, slot):
        """One contiguous (w+2)-element aligned row read into a slot."""
        off = layout.stencil_row_offset(halo_row, x0)
        slack = off % align
        yield from ctx.noc_read_buffer(
            buf, off - slack, slots + slot * slot_bytes,
            (w + 2) * BF16_BYTES + slack)
        return slack

    for it in range(iterations):
        yield from ctx.semaphore_wait(barrier, n_cores * it)
        src_buf = buffers[it % 2]
        for ci, (x0, w) in enumerate(cols):
            # Drain gate: the consumer must have finished the previous
            # column before its slots are overwritten by this prime.
            if ci > 0:
                yield from ctx.semaphore_wait(
                    SEM_COLUMN, it * len(cols) + ci)
            for cb in (CB_IN0, CB_IN1, CB_IN2, CB_IN3):
                yield from ctx.cb_reserve_back(cb, 1)
            slack = 0
            for k in range(3):
                slack = yield from read_row(
                    src_buf, x0, w, sub.y0 + k, k % N_SLOTS)
            ctx.arg("shared")["slack"] = slack
            for r in range(sub.ny):
                # Synchronise outstanding reads at the start of the batch,
                # hand the three-row window to compute, then prefetch two
                # batches ahead.
                yield from ctx.noc_async_read_barrier()
                for cb in (CB_IN0, CB_IN1, CB_IN2, CB_IN3):
                    yield from ctx.cb_push_back(cb, 1)
                if r + 1 < sub.ny:
                    # The reserve gates slot reuse: with 2-page CBs it
                    # succeeds only once the consumer has popped row r-1,
                    # so overwriting slot (r+3) mod 4 (= halo row r-1's
                    # slot) is provably safe.
                    for cb in (CB_IN0, CB_IN1, CB_IN2, CB_IN3):
                        yield from ctx.cb_reserve_back(cb, 1)
                    yield from read_row(src_buf, x0, w, sub.y0 + r + 3,
                                        (r + 3) % N_SLOTS)


def _compute_kernel(ctx):
    cfg: OptimizedConfig = ctx.arg("config")
    iterations: int = ctx.arg("iterations")
    sub: SubDomain = ctx.arg("sub")
    shared = ctx.arg("shared")
    dst0 = 0

    cols = _chunk_columns(sub, cfg.chunk)
    yield from ctx.cb_wait_front(CB_SCALAR, 1)
    yield from ctx.tile_regs_acquire()
    for _ in range(iterations):
        for _x0, _w in cols:
            for r in range(sub.ny):
                # The fused charge region opens before the input waits:
                # a wait only *reads* shared CB state, so its charge can
                # coalesce with the pipeline's (a wait that actually
                # blocks flushes first and blocks at the exact unfused
                # instant — see _CtxBase.fused_begin).
                ctx.fused_begin()
                yield from ctx.cb_wait_front(CB_IN0, 1)
                yield from ctx.cb_wait_front(CB_IN1, 1)
                yield from ctx.cb_wait_front(CB_IN2, 1)
                yield from ctx.cb_wait_front(CB_IN3, 1)
                # Zero-copy: point each CB's unpacker at the rotating buffer.
                base = shared["slots"]
                sb = shared["slot_bytes"]
                slack = shared["slack"]
                centre = base + ((r + 1) % N_SLOTS) * sb + slack
                above = base + (r % N_SLOTS) * sb + slack
                below = base + ((r + 2) % N_SLOTS) * sb + slack
                yield from ctx.cb_set_rd_ptrs(
                    (CB_IN0, centre),                        # x-1
                    (CB_IN1, centre + 2 * BF16_BYTES),       # x+1
                    (CB_IN2, above + BF16_BYTES),            # y-1
                    (CB_IN3, below + BF16_BYTES))            # y+1

                if cfg.accumulate_in_dst:
                    # The rejected ablation (Section IV): accumulate in the
                    # destination registers to skip intermediate CB packs.
                    # Real hardware pays FPU reconfiguration between
                    # accumulate and multiply passes, which the paper found
                    # made this *slower*; we charge two reconfiguration ops
                    # to model it.
                    yield from ctx.copy_tile(CB_IN0, 0, dst0)
                    yield from ctx.add_tile_to_dst(CB_IN1, 0, dst0)
                    yield from ctx.add_tile_to_dst(CB_IN2, 0, dst0)
                    yield from ctx.add_tile_to_dst(CB_IN3, 0, dst0)
                    # Switching the FPU from the accumulate configuration
                    # to the scale pass re-programs unpacker and math
                    # threads — ~6 op-times of dead pipeline, which is what
                    # made this variant a net loss on silicon.
                    yield from ctx._elapse(6 * ctx.costs.fpu_op)
                    ctx.fpu._dst[dst0] = (
                        ctx.fpu._dst[dst0] * np.float32(0.25)).astype(np.float32)
                    # The pops wake the reader: they must leave the
                    # fused region.
                    yield from ctx.fused_end()
                    yield from ctx.cb_pop_front(CB_IN0, 1)
                    yield from ctx.cb_pop_front(CB_IN1, 1)
                    yield from ctx.cb_pop_front(CB_IN2, 1)
                    yield from ctx.cb_pop_front(CB_IN3, 1)
                    yield from ctx.cb_reserve_back(CB_OUT0, 1)
                    yield from ctx.pack_tile(dst0, CB_OUT0)
                    yield from ctx.cb_push_back(CB_OUT0, 1)
                    continue

                # Listing-2 pipeline on the aliased rows.  The whole chain
                # is core-private (FPU registers plus the self-looped
                # INTERMED ping-pong buffer), so its per-op charges stay
                # in the fused region opened above — one simulator event
                # for the row's waits + pipeline + output pack.
                yield from ctx.add_tiles(CB_IN0, CB_IN1, 0, 0, dst0)
                yield from ctx.cb_reserve_back(CB_INTERMED, 1)
                yield from ctx.pack_tile(dst0, CB_INTERMED)
                yield from ctx.cb_push_back(CB_INTERMED, 1)

                yield from ctx.cb_wait_front(CB_INTERMED, 1)
                yield from ctx.add_tiles(CB_IN2, CB_INTERMED, 0, 0, dst0)
                yield from ctx.cb_pop_front(CB_INTERMED, 1)
                yield from ctx.cb_reserve_back(CB_INTERMED, 1)
                yield from ctx.pack_tile(dst0, CB_INTERMED)
                yield from ctx.cb_push_back(CB_INTERMED, 1)

                yield from ctx.cb_wait_front(CB_INTERMED, 1)
                yield from ctx.add_tiles(CB_IN3, CB_INTERMED, 0, 0, dst0)
                yield from ctx.cb_pop_front(CB_INTERMED, 1)
                yield from ctx.cb_reserve_back(CB_INTERMED, 1)
                yield from ctx.pack_tile(dst0, CB_INTERMED)
                yield from ctx.cb_push_back(CB_INTERMED, 1)

                yield from ctx.cb_wait_front(CB_INTERMED, 1)
                yield from ctx.mul_tiles(CB_SCALAR, CB_INTERMED, 0, 0, dst0)
                yield from ctx.cb_pop_front(CB_INTERMED, 1)

                # OUT0 reserve + pack only mutate state the writer never
                # reads (the page commits at push), so they fuse too; the
                # push itself wakes the writer and must not.
                yield from ctx.cb_reserve_back(CB_OUT0, 1)
                yield from ctx.pack_tile(dst0, CB_OUT0)
                yield from ctx.fused_end()
                yield from ctx.cb_push_back(CB_OUT0, 1)

                yield from ctx.cb_pop_front(CB_IN0, 1)
                yield from ctx.cb_pop_front(CB_IN1, 1)
                yield from ctx.cb_pop_front(CB_IN2, 1)
                yield from ctx.cb_pop_front(CB_IN3, 1)
            yield from ctx.semaphore_inc(SEM_COLUMN, 1)
    yield from ctx.tile_regs_release()


def _writer_kernel(ctx):
    layout: AlignedDomain = ctx.arg("layout")
    cfg: OptimizedConfig = ctx.arg("config")
    buffers = ctx.arg("buffers")
    iterations: int = ctx.arg("iterations")
    sub: SubDomain = ctx.arg("sub")
    barrier: Semaphore = ctx.arg("barrier")

    cols = _chunk_columns(sub, cfg.chunk)
    for _it in range(iterations):
        dst_buf = buffers[(_it + 1) % 2]
        for x0, w in cols:
            for r in range(sub.ny):
                yield from ctx.cb_wait_front(CB_OUT0, 1)
                off = layout.elem_offset(sub.y0 + r + 1, x0)
                yield from ctx.noc_write_buffer(
                    dst_buf, off, ctx.cb_read_ptr(CB_OUT0), w * BF16_BYTES)
                yield from ctx.noc_async_write_barrier()
                yield from ctx.cb_pop_front(CB_OUT0, 1)
        # Global iteration barrier: every writer increments once.
        yield from ctx.semaphore_inc(barrier, 1)


# --------------------------------------------------------------------------
# runner
# --------------------------------------------------------------------------

class OptimizedJacobiRunner:
    """Host driver for the Section-VI kernels over a core grid."""

    def __init__(self, device: GrayskullDevice, problem: LaplaceProblem,
                 config: Optional[OptimizedConfig] = None,
                 cores_y: int = 1, cores_x: int = 1):
        self.device = device
        self.problem = problem
        self.config = config or OptimizedConfig()
        self.cores_y = cores_y
        self.cores_x = cores_x
        self.layout = AlignedDomain(problem)

    def build_program(self, sim_iters: int, d1, d2) -> Program:
        """Assemble the multi-core Program over the two DRAM buffers.

        Exactly the launch :meth:`run` enqueues (same CB/semaphore/kernel
        creation order, so lint findings and bench invariants match a
        real run); callers that only need the static program — the lint
        sweep, the ``lint_smoke`` benchmark — build it without paying
        for simulation.
        """
        dev = self.device
        cfg = self.config
        grid = dev.worker_grid(self.cores_y, self.cores_x)
        subs = split_domain(self.problem.nx, self.problem.ny,
                            self.cores_y, self.cores_x)
        n_cores = self.cores_y * self.cores_x
        barrier = Semaphore(dev.sim, value=0, name="iter_barrier")

        prog = Program(dev)
        for iy in range(self.cores_y):
            for ix in range(self.cores_x):
                core = grid[iy][ix]
                sub = subs[iy][ix]
                w = min(cfg.chunk, sub.nx)
                page = w * BF16_BYTES
                for cb in (CB_IN0, CB_IN1, CB_IN2, CB_IN3):
                    CreateCircularBuffer(prog, core, cb, page, IN_PAGES)
                CreateCircularBuffer(prog, core, CB_SCALAR, page, 1)
                CreateCircularBuffer(prog, core, CB_INTERMED, page, 2)
                CreateCircularBuffer(prog, core, CB_OUT0, page, 4)
                CreateSemaphore(prog, core, SEM_ITER, 0)
                CreateSemaphore(prog, core, SEM_COLUMN, 0)
                shared: dict = {}
                common = dict(layout=self.layout, config=cfg,
                              buffers=[d1, d2], iterations=sim_iters,
                              sub=sub, barrier=barrier, n_cores=n_cores,
                              shared=shared)
                CreateKernel(prog, _reader_kernel, core, DATA_MOVER_0, common)
                CreateKernel(prog, _compute_kernel, core, COMPUTE, common)
                CreateKernel(prog, _writer_kernel, core, DATA_MOVER_1, common)
        return prog

    def run(self, iterations: int,
            sim_iterations: Optional[int] = None,
            read_back: bool = True,
            initial_grid: Optional[np.ndarray] = None) -> DeviceRunResult:
        """Execute; see :meth:`InitialJacobiRunner.run` for the contract.

        ``initial_grid`` (a full ``(ny+2, nx+2)`` BF16 halo grid)
        overrides the problem's default initial state.
        """
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        sim_iters = min(sim_iterations or iterations, iterations)
        if sim_iters <= 0:
            raise ValueError("sim_iterations must be positive")
        dev = self.device
        cfg = self.config

        img = self.layout.pack(initial_grid)
        mk = dict(interleaved=True, page_size=cfg.page_size) \
            if cfg.interleaved else dict(bank_id=0)
        d1 = create_buffer(dev, self.layout.nbytes, **mk)
        d2 = create_buffer(dev, self.layout.nbytes, **mk)
        t_in = EnqueueWriteBuffer(dev, d1, img)
        t_in += EnqueueWriteBuffer(dev, d2, img)

        prog = self.build_program(sim_iters, d1, d2)

        EnqueueProgram(dev, prog)
        kernel_time = Finish(dev)
        per_iter = kernel_time / sim_iters
        full_time = per_iter * iterations

        grid_bits = None
        t_out = 0.0
        if read_back and sim_iters == iterations:
            final = d1 if iterations % 2 == 0 else d2
            t0 = dev.sim.now
            raw = EnqueueReadBuffer(dev, final)
            t_out = dev.sim.now - t0
            grid_bits = self.layout.unpack(raw.view("<u2"))

        points = self.problem.nx * self.problem.ny
        return DeviceRunResult(
            grid_bits=grid_bits,
            iterations=iterations,
            simulated_iterations=sim_iters,
            kernel_time_s=full_time,
            transfer_time_s=t_in + t_out,
            energy_j=dev.energy.energy_j if sim_iters == iterations
            else dev.energy.energy_j * (full_time / (kernel_time or 1.0)),
            points=points,
        )
