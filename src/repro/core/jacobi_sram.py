"""SRAM-resident Jacobi: the paper's sketched next architecture.

Section VIII: "We might also be able to obtain improved scaling across
the Tensix cores by first copying the domain into local SRAM and
operating from there, although this would limit the size of the domain
and require direct neighbour to neighbour communications."

This module builds exactly that:

* each core holds its sub-domain **entirely in L1** as two ping-pong
  slabs (u^k / u^{k+1});
* per iteration the compute core sweeps its slab with the usual
  Listing-2 FPU chain, reading via ``cb_set_rd_ptr`` aliases and packing
  *straight into the other slab* via the ``cb_set_wr_ptr`` alias — the
  CB-aliasing flexibility the paper's conclusions recommend adding to
  tt-metal;
* halo rows travel core-to-core over the NoC (``noc_sram_write``), never
  touching DRAM;
* DRAM is used exactly twice: the initial load and the final write-back.

The domain is decomposed across cores in Y (the configuration the paper
sketches).  Capacity: two slabs of ``(ny_local+2) x (nx+2)`` BF16
elements must fit the 1 MB L1, e.g. 108 cores hold up to ~25 M elements
card-wide.

Synchronisation: a global semaphore counts core milestones (initial load
+ each finished iteration); per-core halo semaphores count deliveries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.arch.device import GrayskullDevice
from repro.arch.sram import SramExhausted
from repro.arch.tensix import COMPUTE, DATA_MOVER_0, DATA_MOVER_1
from repro.core.decomposition import split_extent
from repro.core.grid import AlignedDomain, LaplaceProblem
from repro.core.jacobi_initial import DeviceRunResult
from repro.dtypes.bf16 import BF16_BYTES, f32_to_bits
from repro.dtypes.tiles import TILE_ELEMS
from repro.sim.resources import Semaphore
from repro.ttmetal import (
    CreateCircularBuffer,
    CreateKernel,
    EnqueueProgram,
    EnqueueReadBuffer,
    EnqueueWriteBuffer,
    Finish,
    Program,
    create_buffer,
)

__all__ = ["SramJacobiRunner"]

CB_IN0, CB_IN1, CB_IN2, CB_IN3 = 0, 1, 2, 3
CB_SCALAR = 4
CB_OUT0 = 16
CB_INTERMED = 24


@dataclass
class _CorePlan:
    """Per-core geometry: slab addresses and neighbour wiring."""

    index: int
    y0: int               #: first interior row (global)
    ny: int               #: interior rows held
    slab: List[int]       #: two slab base addresses
    row_stride: int       #: bytes between slab rows
    halo_sem: Semaphore   #: counts halo deliveries to this core
    up: Optional["_CorePlan"] = None
    down: Optional["_CorePlan"] = None

    @property
    def n_neighbors(self) -> int:
        return (self.up is not None) + (self.down is not None)

    def row_addr(self, k: int, local_halo_row: int) -> int:
        return self.slab[k % 2] + local_halo_row * self.row_stride


def _reader_kernel(ctx):
    """dm0: fill scalar CB, load the slab from DRAM, send halos per iter."""
    layout: AlignedDomain = ctx.arg("layout")
    plan: _CorePlan = ctx.arg("plan")
    src = ctx.arg("src")
    iterations: int = ctx.arg("iterations")
    barrier: Semaphore = ctx.arg("barrier")
    n_cores: int = ctx.arg("n_cores")
    nx: int = ctx.arg("nx")
    align = ctx.costs.dram_alignment
    row_bytes = (nx + 2) * BF16_BYTES

    # 0.25 constant
    yield from ctx.cb_reserve_back(CB_SCALAR, 1)
    page_elems = ctx.core.cbs[CB_SCALAR].page_size // 2
    yield from ctx.l1_store_u16(
        ctx.cb_write_ptr(CB_SCALAR),
        np.full(page_elems, f32_to_bits(0.25), dtype=np.uint16))
    yield from ctx.cb_push_back(CB_SCALAR, 1)

    # Initial load: every halo row of the sub-domain into BOTH slabs (the
    # fixed x-boundary columns and global top/bottom rows must exist in
    # each; interior rows of slab 1 are overwritten by iteration 1).
    scratch = ctx.core.sram.allocate(row_bytes + align, align=32)
    for r in range(plan.ny + 2):
        off = layout.stencil_row_offset(plan.y0 + r, 0)
        slack = off % align
        yield from ctx.noc_read_buffer(src, off - slack, scratch,
                                       row_bytes + slack)
        yield from ctx.noc_async_read_barrier()
        for k in (0, 1):
            yield from ctx.memcpy(plan.row_addr(k, r), scratch + slack,
                                  row_bytes)
    yield from ctx.semaphore_inc(barrier, 1)  # "loaded" milestone

    # Per iteration: once everyone has u^{k-1}, ship edge rows of
    # slab(k-1) into the neighbours' slab(k-1) halo rows.
    for k in range(1, iterations + 1):
        yield from ctx.semaphore_wait(barrier, n_cores * k)
        if plan.up is not None:
            yield from ctx.noc_sram_write(
                ctx.arg("cores")[plan.up.index],
                plan.up.row_addr(k - 1, plan.up.ny + 1),
                plan.row_addr(k - 1, 1), row_bytes)
            yield from ctx.noc_async_write_barrier()
            yield from ctx.semaphore_inc(plan.up.halo_sem, 1)
        if plan.down is not None:
            yield from ctx.noc_sram_write(
                ctx.arg("cores")[plan.down.index],
                plan.down.row_addr(k - 1, 0),
                plan.row_addr(k - 1, plan.ny), row_bytes)
            yield from ctx.noc_async_write_barrier()
            yield from ctx.semaphore_inc(plan.down.halo_sem, 1)


def _compute_kernel(ctx):
    """Sweep the slab with the Listing-2 chain; output via wr-ptr alias."""
    plan: _CorePlan = ctx.arg("plan")
    iterations: int = ctx.arg("iterations")
    barrier: Semaphore = ctx.arg("barrier")
    nx: int = ctx.arg("nx")
    dst0 = 0
    chunks = []
    x = 0
    while x < nx:
        w = min(TILE_ELEMS, nx - x)
        chunks.append((x, w))
        x += w

    n_cores: int = ctx.arg("n_cores")
    yield from ctx.cb_wait_front(CB_SCALAR, 1)
    yield from ctx.tile_regs_acquire()
    for k in range(1, iterations + 1):
        # everyone (including this core's own dm0 load) done with u^{k-1}?
        yield from ctx.semaphore_wait(barrier, n_cores * k)
        # halos of u^{k-1} delivered?
        yield from ctx.semaphore_wait(plan.halo_sem,
                                      plan.n_neighbors * k)
        for r in range(plan.ny):
            prev = plan.row_addr(k - 1, r)
            cur = plan.row_addr(k - 1, r + 1)
            nxt = plan.row_addr(k - 1, r + 2)
            out = plan.row_addr(k, r + 1)
            for x0, w in chunks:
                xb = x0 * BF16_BYTES
                yield from ctx.cb_set_rd_ptr(CB_IN0, cur + xb)          # x-1
                yield from ctx.cb_set_rd_ptr(CB_IN1, cur + xb + 4)      # x+1
                yield from ctx.cb_set_rd_ptr(CB_IN2, prev + xb + 2)     # y-1
                yield from ctx.cb_set_rd_ptr(CB_IN3, nxt + xb + 2)      # y+1
                yield from ctx.cb_set_wr_ptr(CB_OUT0, out + xb + 2)

                yield from ctx.add_tiles(CB_IN0, CB_IN1, 0, 0, dst0)
                yield from ctx.cb_reserve_back(CB_INTERMED, 1)
                yield from ctx.pack_tile(dst0, CB_INTERMED)
                yield from ctx.cb_push_back(CB_INTERMED, 1)
                yield from ctx.cb_wait_front(CB_INTERMED, 1)
                yield from ctx.add_tiles(CB_IN2, CB_INTERMED, 0, 0, dst0)
                yield from ctx.cb_pop_front(CB_INTERMED, 1)
                yield from ctx.cb_reserve_back(CB_INTERMED, 1)
                yield from ctx.pack_tile(dst0, CB_INTERMED)
                yield from ctx.cb_push_back(CB_INTERMED, 1)
                yield from ctx.cb_wait_front(CB_INTERMED, 1)
                yield from ctx.add_tiles(CB_IN3, CB_INTERMED, 0, 0, dst0)
                yield from ctx.cb_pop_front(CB_INTERMED, 1)
                yield from ctx.cb_reserve_back(CB_INTERMED, 1)
                yield from ctx.pack_tile(dst0, CB_INTERMED)
                yield from ctx.cb_push_back(CB_INTERMED, 1)
                yield from ctx.cb_wait_front(CB_INTERMED, 1)
                yield from ctx.mul_tiles(CB_SCALAR, CB_INTERMED, 0, 0, dst0)
                yield from ctx.cb_pop_front(CB_INTERMED, 1)
                yield from ctx.pack_tile(dst0, CB_OUT0)  # straight to slab
        yield from ctx.semaphore_inc(barrier, 1)
    yield from ctx.tile_regs_release()


def _writer_kernel(ctx):
    """dm1: after the last iteration, write the slab interior to DRAM."""
    layout: AlignedDomain = ctx.arg("layout")
    plan: _CorePlan = ctx.arg("plan")
    dst = ctx.arg("dst")
    iterations: int = ctx.arg("iterations")
    barrier: Semaphore = ctx.arg("barrier")
    n_cores: int = ctx.arg("n_cores")
    nx: int = ctx.arg("nx")

    yield from ctx.semaphore_wait(barrier, n_cores * (iterations + 1))
    for r in range(plan.ny):
        src_l1 = plan.row_addr(iterations, r + 1) + 2  # skip x halo
        off = layout.elem_offset(plan.y0 + r + 1, 0)
        yield from ctx.noc_write_buffer(dst, off, src_l1, nx * BF16_BYTES)
    yield from ctx.noc_async_write_barrier()


class SramJacobiRunner:
    """Host driver for the SRAM-resident, neighbour-communicating solver."""

    def __init__(self, device: GrayskullDevice, problem: LaplaceProblem,
                 cores_y: int = 1):
        self.device = device
        self.problem = problem
        self.cores_y = cores_y
        self.layout = AlignedDomain(problem)
        if cores_y <= 0:
            raise ValueError("cores_y must be positive")
        if cores_y > problem.ny:
            raise ValueError("more cores than rows")
        if problem.nx > TILE_ELEMS and problem.nx % TILE_ELEMS:
            raise ValueError(
                f"nx must be <= {TILE_ELEMS} or a multiple of it (ragged "
                "chunks cannot share the fixed CB page size)")
        # capacity check: two slabs must fit beside the CBs
        max_rows = math.ceil(problem.ny / cores_y) + 2
        stride = ((problem.nx + 2) * BF16_BYTES + 31) // 32 * 32
        need = 2 * max_rows * stride
        budget = device.costs.sram_bytes - 96 * 1024  # CBs + reserved
        if need > budget:
            raise SramExhausted(
                f"sub-domain needs {need} B of L1 for two slabs; only "
                f"~{budget} B available — use more cores or a smaller "
                "domain (the limitation the paper predicts)")

    def run(self, iterations: int,
            sim_iterations: Optional[int] = None,
            read_back: bool = True) -> DeviceRunResult:
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        sim_iters = min(sim_iterations or iterations, iterations)
        dev = self.device
        nx, ny = self.problem.nx, self.problem.ny
        img = self.layout.pack()
        d1 = create_buffer(dev, self.layout.nbytes, interleaved=True,
                           page_size=32 << 10)
        t_in = EnqueueWriteBuffer(dev, d1, img)

        grid = dev.worker_grid(self.cores_y, 1)
        cores = [grid[i][0] for i in range(self.cores_y)]
        stride = ((nx + 2) * BF16_BYTES + 31) // 32 * 32
        barrier = Semaphore(dev.sim, value=0, name="sram_barrier")

        # build plans + wiring
        plans: List[_CorePlan] = []
        for i, (y0, h) in enumerate(split_extent(ny, self.cores_y)):
            core = cores[i]
            slabs = [core.allocate_l1((h + 2) * stride, align=32)
                     for _ in range(2)]
            plans.append(_CorePlan(
                index=i, y0=y0, ny=h, slab=slabs, row_stride=stride,
                halo_sem=Semaphore(dev.sim, 0, name=f"halo{i}")))
        for i, p in enumerate(plans):
            p.up = plans[i - 1] if i > 0 else None
            p.down = plans[i + 1] if i + 1 < len(plans) else None

        page = min(nx, TILE_ELEMS) * BF16_BYTES
        prog = Program(dev)
        for core, plan in zip(cores, plans):
            for cb in (CB_IN0, CB_IN1, CB_IN2, CB_IN3):
                CreateCircularBuffer(prog, core, cb, page, 1)
            CreateCircularBuffer(prog, core, CB_SCALAR, page, 1)
            CreateCircularBuffer(prog, core, CB_INTERMED, page, 2)
            CreateCircularBuffer(prog, core, CB_OUT0, page, 1)
            common = dict(layout=self.layout, plan=plan, src=d1, dst=d1,
                          iterations=sim_iters, barrier=barrier,
                          n_cores=self.cores_y, nx=nx, cores=cores)
            CreateKernel(prog, _reader_kernel, core, DATA_MOVER_0, common)
            CreateKernel(prog, _compute_kernel, core, COMPUTE, common)
            CreateKernel(prog, _writer_kernel, core, DATA_MOVER_1, common)

        # Watch for the end of the one-time load phase so extrapolation
        # scales only the steady-state iteration time.
        marks = {}

        def _watch_load():
            yield barrier.wait_at_least(self.cores_y)
            marks["loaded"] = dev.sim.now

        t0 = dev.sim.now
        dev.sim.process(_watch_load(), name="load_watch")
        EnqueueProgram(dev, prog)
        Finish(dev)
        t_end = dev.sim.now
        load_time = marks.get("loaded", t0) - t0
        per_iter = (t_end - t0 - load_time) / sim_iters
        full_time = load_time + per_iter * iterations

        grid_bits = None
        t_out = 0.0
        if read_back and sim_iters == iterations:
            t0 = dev.sim.now
            raw = EnqueueReadBuffer(dev, d1)
            t_out = dev.sim.now - t0
            grid_bits = self.layout.unpack(raw.view("<u2"))

        return DeviceRunResult(
            grid_bits=grid_bits,
            iterations=iterations,
            simulated_iterations=sim_iters,
            kernel_time_s=full_time,
            transfer_time_s=t_in + t_out,
            energy_j=dev.energy.energy_j,
            points=nx * ny,
        )
