"""Functional multi-core / multi-card execution.

Timing for large core counts comes from the Tier-2 model
(:mod:`repro.perfmodel.scaling`); the *answers* come from here.

* **Multi-core, one card** — cores exchange halos through the shared DRAM
  images with a barrier per iteration, so the decomposed sweep is
  bit-identical to the global BF16 sweep.  :func:`run_multicore_functional`
  computes it block-by-block anyway (and the tests assert the equivalence)
  so the decomposition logic itself is exercised.
* **Multi-card** — Grayskull cards cannot reach each other's memory, and
  the paper runs the multi-card experiment *without* inter-card halo
  exchange ("strictly speaking this will not provide the correct answer").
  :func:`run_multicard_functional` reproduces that: each card's block keeps
  its initial values as frozen halos at the card cuts, so the multi-card
  answer measurably deviates from the true solution — exactly the caveat
  the paper documents.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.decomposition import split_domain, split_extent
from repro.cpu.jacobi import jacobi_step_bf16

__all__ = ["run_multicore_functional", "run_multicard_functional"]


def run_multicore_functional(grid_bits: np.ndarray, iterations: int,
                             cores_y: int, cores_x: int) -> np.ndarray:
    """Jacobi on a halo grid, computed block-by-block per iteration.

    Each core's block is updated from the *previous* iterate including the
    neighbouring blocks' rows (the DRAM halo exchange), then all blocks are
    merged — one global barrier per iteration, as the device does.
    """
    u = np.asarray(grid_bits, dtype=np.uint16).copy()
    ny, nx = u.shape[0] - 2, u.shape[1] - 2
    subs = [s for row in split_domain(nx, ny, cores_y, cores_x) for s in row]
    for _ in range(iterations):
        unew = u.copy()
        for s in subs:
            # Block with one halo ring taken from the previous iterate.
            block = u[s.y0:s.y0 + s.ny + 2, s.x0:s.x0 + s.nx + 2]
            stepped = jacobi_step_bf16(block)
            unew[s.y0 + 1:s.y0 + s.ny + 1,
                 s.x0 + 1:s.x0 + s.nx + 1] = stepped[1:-1, 1:-1]
        u = unew
    return u


def run_multicard_functional(grid_bits: np.ndarray, iterations: int,
                             n_cards: int) -> np.ndarray:
    """The paper's multi-card run: per-card blocks with *frozen* cut halos.

    The domain is split across cards in Y.  Each card evolves its block
    independently; the rows just outside a card's block never update (no
    inter-card communication), so boundary information cannot propagate
    across cuts.
    """
    u = np.asarray(grid_bits, dtype=np.uint16).copy()
    ny = u.shape[0] - 2
    if n_cards <= 0:
        raise ValueError("n_cards must be positive")
    blocks: List[np.ndarray] = []
    cuts = split_extent(ny, n_cards)
    for y0, h in cuts:
        # Copy: the card owns a private image including frozen halos.
        blocks.append(u[y0:y0 + h + 2, :].copy())
    for _ in range(iterations):
        for i, b in enumerate(blocks):
            stepped = jacobi_step_bf16(b)
            # Interior update only; the halo rows stay at their initial
            # values (stale) because no card ever sends them.
            b[1:-1, 1:-1] = stepped[1:-1, 1:-1]
    out = u.copy()
    for (y0, h), b in zip(cuts, blocks):
        out[y0 + 1:y0 + h + 1, 1:-1] = b[1:-1, 1:-1]
    return out
