"""Mixed-precision defect correction: curing the BF16 convergence stall.

A reproduction *finding* (not evaluated in the paper): BF16 Jacobi stops
converging once per-iteration updates drop below half a BF16 ULP — on a
32×32 unit problem the error plateaus near 0.17, far above FP32's
convergence (see ``tests/integration`` and ``examples/heat_spreader.py``).
Since the paper's motivation is using BF16 accelerators for HPC, the
natural fix matters: **defect correction**.  Keep the solution in FP32 on
the host; use the device only to *solve correction equations*, whose
dynamic range is always re-centred around zero:

    repeat:
        r   = b − A·u                (host, FP32 — one residual pass)
        s   = ‖r‖∞;  r̂ = r / s       (scale into BF16's sweet spot)
        ê   ≈ A⁻¹ r̂                  (device: K BF16 Jacobi sweeps with
                                      the RHS field, zero boundaries)
        u  += s·ê                     (host, FP32)

For the 5-point Laplacian, the inner solve's sweep is exactly the
paper's kernel plus the RHS term the generic stencil framework provides:
``e ← 0.25·(eW+eE+eN+eS) + 0.25·r̂``.

The result: device-precision-limited ~2e-1 error becomes ~1e-5 after a
handful of outer cycles, while >95 % of the floating-point work stays on
the accelerator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.grid import LaplaceProblem
from repro.core.stencil import StencilSpec, stencil_solve_bf16
from repro.dtypes.bf16 import bits_to_f32, f32_to_bits

__all__ = ["RefinementResult", "solve_defect_correction", "residual"]


def residual(u: np.ndarray) -> np.ndarray:
    """FP32 residual of the discrete Laplace system on a halo grid.

    ``r[y,x] = 0.25·(W+E+N+S) − u`` over the interior (the fixed-point
    form of the paper's Listing 1: zero exactly at convergence).
    """
    u = np.asarray(u, dtype=np.float32)
    return (np.float32(0.25) * (u[1:-1, :-2] + u[1:-1, 2:]
                                + u[:-2, 1:-1] + u[2:, 1:-1])
            - u[1:-1, 1:-1])


@dataclass
class RefinementResult:
    """Converged field plus the outer-iteration history."""

    grid_f32: np.ndarray
    outer_cycles: int
    inner_iterations: int
    history: List[float] = field(default_factory=list)  #: ‖r‖∞ per cycle

    @property
    def final_residual(self) -> float:
        return self.history[-1] if self.history else float("inf")


def solve_defect_correction(
    problem: LaplaceProblem,
    outer_cycles: int = 10,
    inner_iterations: int = 200,
    tol: Optional[float] = None,
    device_sweep=None,
) -> RefinementResult:
    """Solve Laplace to FP32 accuracy using BF16 device sweeps.

    ``device_sweep(rhs_bits, iterations) -> interior_bits`` performs the
    inner correction solve (zero Dirichlet boundaries, zero initial
    guess, the given RHS).  The default uses the bit-exact functional
    sweep of the generic stencil kernel — tests substitute the full DES
    runner to prove the device path is identical.
    """
    if outer_cycles <= 0 or inner_iterations <= 0:
        raise ValueError("outer_cycles and inner_iterations must be positive")
    spec = StencilSpec.jacobi()
    corr_problem = LaplaceProblem(nx=problem.nx, ny=problem.ny,
                                  left=0.0, right=0.0, top=0.0, bottom=0.0,
                                  initial=0.0)

    if device_sweep is None:
        def device_sweep(rhs_bits: np.ndarray, iterations: int) -> np.ndarray:
            out = stencil_solve_bf16(corr_problem.initial_grid_bf16(),
                                     spec, iterations, rhs_bits=rhs_bits)
            return out[1:-1, 1:-1]

    u = problem.initial_grid_f32()
    history: List[float] = []
    cycles = 0
    for _ in range(outer_cycles):
        r = residual(u)
        rmax = float(np.abs(r).max())
        history.append(rmax)
        if tol is not None and rmax <= tol:
            break
        cycles += 1
        # scale the residual into BF16's comfortable range around 1
        scale = rmax if rmax > 0 else 1.0
        # Error equation of the fixed-point iteration G(u) = 0.25·N u + c:
        # with r = G(u) − u, the correction satisfies e = 0.25·N e + r, so
        # the inner sweep's RHS field is the (scaled) residual itself.
        rhs_bits = f32_to_bits(r / np.float32(scale))
        e_hat = bits_to_f32(device_sweep(rhs_bits, inner_iterations))
        u[1:-1, 1:-1] += np.float32(scale) * e_hat
    history.append(float(np.abs(residual(u)).max()))
    return RefinementResult(grid_f32=u, outer_cycles=cycles,
                            inner_iterations=inner_iterations,
                            history=history)
