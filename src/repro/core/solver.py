"""The public solver facade: one entry point for every configuration.

:class:`JacobiSolver` routes a :class:`~repro.core.grid.LaplaceProblem`
to the right execution engine:

=============== ==================================== =========================
backend          functional answer                    timing / energy
=============== ==================================== =========================
``cpu``          NumPy FP32 sweep                     calibrated Xeon model
``e150``         discrete-event simulation (bytes     emergent from the DES
                 through DRAM/NoC/CB/FPU)
``e150-model``   vectorised BF16 block execution      Tier-2 scaling model
=============== ==================================== =========================

``backend="auto"`` picks the DES for small core counts and the scaling
model beyond (per-request simulation of 108 cores is possible but
pointless).  Results carry the answer, wall time, GPt/s and Joules so the
experiment drivers can print the paper's tables directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.arch.device import GrayskullDevice
from repro.core.grid import LaplaceProblem
from repro.core.jacobi_initial import InitialConfig, InitialJacobiRunner
from repro.core.jacobi_optimized import OptimizedConfig, OptimizedJacobiRunner
from repro.core.multicore import run_multicard_functional, run_multicore_functional
from repro.cpu.openmp import CpuJacobiRunner
from repro.dtypes.bf16 import bits_to_f32
from repro.perfmodel.calibration import DEFAULT_COSTS, CostModel
from repro.perfmodel.scaling import JacobiScalingModel

__all__ = ["JacobiSolver", "JacobiResult"]

#: DES is used up to this many cores under ``backend="auto"``.
_DES_CORE_LIMIT = 8


@dataclass(frozen=True)
class JacobiResult:
    """Uniform result: answer + performance, whatever the engine."""

    grid_f32: Optional[np.ndarray]   #: final halo grid as float32 (None if not computed)
    backend: str
    variant: str
    cores: tuple[int, int]
    n_cards: int
    iterations: int
    time_s: float
    gpts: float                      #: billion points per second
    energy_j: float

    @property
    def interior(self) -> np.ndarray:
        if self.grid_f32 is None:
            raise ValueError("this run did not produce a functional answer")
        return self.grid_f32[1:-1, 1:-1]


class JacobiSolver:
    """Solve Laplace's equation the way the paper does, on your choice of
    engine.

    Examples
    --------
    >>> from repro.core import JacobiSolver, LaplaceProblem
    >>> problem = LaplaceProblem(nx=64, ny=64)
    >>> result = JacobiSolver(backend="e150").solve(problem, iterations=20)
    >>> result.gpts > 0
    True
    """

    VARIANTS = ("initial", "write_opt", "double_buffered", "optimized",
                "sram")

    def __init__(self, backend: str = "auto", variant: str = "optimized",
                 cores: tuple[int, int] = (1, 1), n_cards: int = 1,
                 n_threads: int = 1,
                 costs: CostModel = DEFAULT_COSTS):
        if variant not in self.VARIANTS:
            raise ValueError(f"variant must be one of {self.VARIANTS}")
        if backend not in ("auto", "cpu", "e150", "e150-model"):
            raise ValueError(f"unknown backend {backend!r}")
        if n_cards > 1 and variant != "optimized":
            raise ValueError("multi-card runs require the optimised variant")
        if variant == "sram" and cores[1] != 1:
            raise ValueError("the SRAM-resident variant decomposes in Y "
                             "only (cores=(cy, 1))")
        if variant not in ("optimized", "sram") and cores != (1, 1):
            raise ValueError("the Section-IV variants run on a single core")
        self.backend = backend
        self.variant = variant
        self.cores = cores
        self.n_cards = n_cards
        self.n_threads = n_threads
        self.costs = costs

    # -- routing -----------------------------------------------------------
    def _effective_backend(self) -> str:
        if self.backend != "auto":
            return self.backend
        if self.variant == "sram":
            return "e150"  # SRAM residence only exists as real kernels
        n = self.cores[0] * self.cores[1]
        if self.n_cards > 1 or n > _DES_CORE_LIMIT:
            return "e150-model"
        return "e150"

    def solve(self, problem: LaplaceProblem, iterations: int, *,
              sim_iterations: Optional[int] = None,
              device: Optional[GrayskullDevice] = None,
              compute_answer: bool = True) -> JacobiResult:
        """Run ``iterations`` Jacobi sweeps.

        ``sim_iterations`` (DES backends only) limits how many iterations
        are simulated per-event; timing is extrapolated to ``iterations``
        and no functional answer is read back unless all iterations ran.
        ``compute_answer=False`` skips the functional sweep on modelled
        backends (useful for huge Table-VIII configurations).
        """
        backend = self._effective_backend()
        if backend == "cpu":
            return self._solve_cpu(problem, iterations, compute_answer)
        if backend == "e150":
            return self._solve_des(problem, iterations, sim_iterations, device)
        if self.variant == "sram":
            raise ValueError(
                "the SRAM-resident variant has no analytic model; use "
                "backend='e150' (or 'auto')")
        return self._solve_model(problem, iterations, compute_answer)

    # -- engines ------------------------------------------------------------
    def _solve_cpu(self, problem: LaplaceProblem, iterations: int,
                   compute_answer: bool) -> JacobiResult:
        from repro.perfmodel.cpumodel import XeonModel
        if compute_answer:
            res = CpuJacobiRunner().run(problem.initial_grid_f32(),
                                        iterations, n_threads=self.n_threads)
            grid, time_s = res.grid, res.time_s
            gpts, energy = res.gpts, res.energy_j
        else:
            # timing/energy only (huge Table-VIII style sweeps)
            model = XeonModel()
            points = problem.nx * problem.ny
            grid = None
            time_s = model.solve_time_s(points, iterations, self.n_threads)
            gpts = points * iterations / time_s / 1e9
            energy = model.energy_j(points, iterations, self.n_threads)
        return JacobiResult(
            grid_f32=grid, backend="cpu", variant="listing1-fp32",
            cores=(1, self.n_threads), n_cards=0, iterations=iterations,
            time_s=time_s, gpts=gpts, energy_j=energy)

    def _solve_des(self, problem: LaplaceProblem, iterations: int,
                   sim_iterations: Optional[int],
                   device: Optional[GrayskullDevice]) -> JacobiResult:
        dev = device or GrayskullDevice(self.costs)
        if self.variant == "sram":
            from repro.core.jacobi_sram import SramJacobiRunner
            runner = SramJacobiRunner(dev, problem, cores_y=self.cores[0])
        elif self.variant == "optimized":
            runner = OptimizedJacobiRunner(
                dev, problem, OptimizedConfig(),
                cores_y=self.cores[0], cores_x=self.cores[1])
        else:
            cfg = {"initial": InitialConfig.initial,
                   "write_opt": InitialConfig.write_optimised,
                   "double_buffered": InitialConfig.double_buffered_cfg,
                   }[self.variant]()
            runner = InitialJacobiRunner(dev, problem, cfg)
        res = runner.run(iterations, sim_iterations=sim_iterations)
        grid = bits_to_f32(res.grid_bits) if res.grid_bits is not None else None
        return JacobiResult(
            grid_f32=grid, backend="e150", variant=self.variant,
            cores=self.cores, n_cards=1, iterations=iterations,
            time_s=res.total_time_s,
            gpts=res.gpts,
            energy_j=res.energy_j)

    def _solve_model(self, problem: LaplaceProblem, iterations: int,
                     compute_answer: bool) -> JacobiResult:
        model = JacobiScalingModel(self.costs)
        cy, cx = self.cores
        if self.n_cards > 1:
            perf = model.run_cards(problem.nx, problem.ny, iterations,
                                   cy, cx, self.n_cards)
        else:
            perf = model.run(problem.nx, problem.ny, iterations, cy, cx)
        grid = None
        if compute_answer:
            bits = problem.initial_grid_bf16()
            if self.n_cards > 1:
                bits = run_multicard_functional(bits, iterations, self.n_cards)
            else:
                bits = run_multicore_functional(bits, iterations, cy, cx)
            grid = bits_to_f32(bits)
        return JacobiResult(
            grid_f32=grid, backend="e150-model", variant=self.variant,
            cores=self.cores, n_cards=self.n_cards, iterations=iterations,
            time_s=perf.solve_time_s, gpts=perf.gpts, energy_j=perf.energy_j)
