"""The public solver facade: one entry point for every configuration.

:class:`JacobiSolver` routes a :class:`~repro.core.grid.LaplaceProblem`
to the right execution engine:

=============== ==================================== =========================
backend          functional answer                    timing / energy
=============== ==================================== =========================
``cpu``          NumPy FP32 sweep                     calibrated Xeon model
``e150``         discrete-event simulation (bytes     emergent from the DES
                 through DRAM/NoC/CB/FPU)
``e150-model``   vectorised BF16 block execution      Tier-2 scaling model
=============== ==================================== =========================

``backend="auto"`` picks the DES for small core counts and the scaling
model beyond (per-request simulation of 108 cores is possible but
pointless).  Results carry the answer, wall time, GPt/s and Joules so the
experiment drivers can print the paper's tables directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.resilience import FaultTrace
from repro.arch.device import GrayskullDevice
from repro.core.decomposition import remap_failed, split_domain
from repro.core.grid import LaplaceProblem
from repro.core.jacobi_initial import InitialConfig, InitialJacobiRunner
from repro.core.jacobi_optimized import OptimizedConfig, OptimizedJacobiRunner
from repro.core.multicore import run_multicard_functional, run_multicore_functional
from repro.cpu.jacobi import jacobi_step_bf16, residual_f32
from repro.cpu.openmp import CpuJacobiRunner
from repro.dtypes.bf16 import bits_to_f32
from repro.perfmodel.calibration import DEFAULT_COSTS, CostModel
from repro.perfmodel.scaling import JacobiScalingModel

__all__ = ["JacobiSolver", "JacobiResult", "ResilienceConfig",
           "ResilientJacobiResult", "solve_resilient"]

#: DES is used up to this many cores under ``backend="auto"``.
_DES_CORE_LIMIT = 8


@dataclass(frozen=True)
class JacobiResult:
    """Uniform result: answer + performance, whatever the engine."""

    grid_f32: Optional[np.ndarray]   #: final halo grid as float32 (None if not computed)
    backend: str
    variant: str
    cores: tuple[int, int]
    n_cards: int
    iterations: int
    time_s: float
    gpts: float                      #: billion points per second
    energy_j: float

    @property
    def interior(self) -> np.ndarray:
        if self.grid_f32 is None:
            raise ValueError("this run did not produce a functional answer")
        return self.grid_f32[1:-1, 1:-1]


class JacobiSolver:
    """Solve Laplace's equation the way the paper does, on your choice of
    engine.

    Examples
    --------
    >>> from repro.core import JacobiSolver, LaplaceProblem
    >>> problem = LaplaceProblem(nx=64, ny=64)
    >>> result = JacobiSolver(backend="e150").solve(problem, iterations=20)
    >>> result.gpts > 0
    True
    """

    VARIANTS = ("initial", "write_opt", "double_buffered", "optimized",
                "sram")

    def __init__(self, backend: str = "auto", variant: str = "optimized",
                 cores: tuple[int, int] = (1, 1), n_cards: int = 1,
                 n_threads: int = 1,
                 costs: CostModel = DEFAULT_COSTS):
        if variant not in self.VARIANTS:
            raise ValueError(f"variant must be one of {self.VARIANTS}")
        if backend not in ("auto", "cpu", "e150", "e150-model"):
            raise ValueError(f"unknown backend {backend!r}")
        if n_cards > 1 and variant != "optimized":
            raise ValueError("multi-card runs require the optimised variant")
        if variant == "sram" and cores[1] != 1:
            raise ValueError("the SRAM-resident variant decomposes in Y "
                             "only (cores=(cy, 1))")
        if variant not in ("optimized", "sram") and cores != (1, 1):
            raise ValueError("the Section-IV variants run on a single core")
        self.backend = backend
        self.variant = variant
        self.cores = cores
        self.n_cards = n_cards
        self.n_threads = n_threads
        self.costs = costs

    # -- routing -----------------------------------------------------------
    def _effective_backend(self) -> str:
        if self.backend != "auto":
            return self.backend
        if self.variant == "sram":
            return "e150"  # SRAM residence only exists as real kernels
        n = self.cores[0] * self.cores[1]
        if self.n_cards > 1 or n > _DES_CORE_LIMIT:
            return "e150-model"
        return "e150"

    def solve(self, problem: LaplaceProblem, iterations: int, *,
              sim_iterations: Optional[int] = None,
              device: Optional[GrayskullDevice] = None,
              compute_answer: bool = True) -> JacobiResult:
        """Run ``iterations`` Jacobi sweeps.

        ``sim_iterations`` (DES backends only) limits how many iterations
        are simulated per-event; timing is extrapolated to ``iterations``
        and no functional answer is read back unless all iterations ran.
        ``compute_answer=False`` skips the functional sweep on modelled
        backends (useful for huge Table-VIII configurations).
        """
        backend = self._effective_backend()
        if backend == "cpu":
            return self._solve_cpu(problem, iterations, compute_answer)
        if backend == "e150":
            return self._solve_des(problem, iterations, sim_iterations, device)
        if self.variant == "sram":
            raise ValueError(
                "the SRAM-resident variant has no analytic model; use "
                "backend='e150' (or 'auto')")
        return self._solve_model(problem, iterations, compute_answer)

    # -- engines ------------------------------------------------------------
    def _solve_cpu(self, problem: LaplaceProblem, iterations: int,
                   compute_answer: bool) -> JacobiResult:
        from repro.perfmodel.cpumodel import XeonModel
        if compute_answer:
            res = CpuJacobiRunner().run(problem.initial_grid_f32(),
                                        iterations, n_threads=self.n_threads)
            grid, time_s = res.grid, res.time_s
            gpts, energy = res.gpts, res.energy_j
        else:
            # timing/energy only (huge Table-VIII style sweeps)
            model = XeonModel()
            points = problem.nx * problem.ny
            grid = None
            time_s = model.solve_time_s(points, iterations, self.n_threads)
            gpts = points * iterations / time_s / 1e9
            energy = model.energy_j(points, iterations, self.n_threads)
        return JacobiResult(
            grid_f32=grid, backend="cpu", variant="listing1-fp32",
            cores=(1, self.n_threads), n_cards=0, iterations=iterations,
            time_s=time_s, gpts=gpts, energy_j=energy)

    def _solve_des(self, problem: LaplaceProblem, iterations: int,
                   sim_iterations: Optional[int],
                   device: Optional[GrayskullDevice]) -> JacobiResult:
        dev = device or GrayskullDevice(self.costs)
        if self.variant == "sram":
            from repro.core.jacobi_sram import SramJacobiRunner
            runner = SramJacobiRunner(dev, problem, cores_y=self.cores[0])
        elif self.variant == "optimized":
            runner = OptimizedJacobiRunner(
                dev, problem, OptimizedConfig(),
                cores_y=self.cores[0], cores_x=self.cores[1])
        else:
            cfg = {"initial": InitialConfig.initial,
                   "write_opt": InitialConfig.write_optimised,
                   "double_buffered": InitialConfig.double_buffered_cfg,
                   }[self.variant]()
            runner = InitialJacobiRunner(dev, problem, cfg)
        res = runner.run(iterations, sim_iterations=sim_iterations)
        grid = bits_to_f32(res.grid_bits) if res.grid_bits is not None else None
        return JacobiResult(
            grid_f32=grid, backend="e150", variant=self.variant,
            cores=self.cores, n_cards=1, iterations=iterations,
            time_s=res.total_time_s,
            gpts=res.gpts,
            energy_j=res.energy_j)

    def _solve_model(self, problem: LaplaceProblem, iterations: int,
                     compute_answer: bool) -> JacobiResult:
        model = JacobiScalingModel(self.costs)
        cy, cx = self.cores
        if self.n_cards > 1:
            perf = model.run_cards(problem.nx, problem.ny, iterations,
                                   cy, cx, self.n_cards)
        else:
            perf = model.run(problem.nx, problem.ny, iterations, cy, cx)
        grid = None
        if compute_answer:
            bits = problem.initial_grid_bf16()
            if self.n_cards > 1:
                bits = run_multicard_functional(bits, iterations, self.n_cards)
            else:
                bits = run_multicore_functional(bits, iterations, cy, cx)
            grid = bits_to_f32(bits)
        return JacobiResult(
            grid_f32=grid, backend="e150-model", variant=self.variant,
            cores=self.cores, n_cards=self.n_cards, iterations=iterations,
            time_s=perf.solve_time_s, gpts=perf.gpts, energy_j=perf.energy_j)


# -- resilient execution: SDC detection, checkpoint/restart, remap ----------

@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs for :func:`solve_resilient`."""

    checkpoint_every: int = 16      #: iterations between state snapshots
    residual_jump_factor: float = 8.0  #: residual growth that flags SDC
    range_slack: float = 1e-6       #: tolerance on the max-principle bounds
    max_restarts: int = 8           #: give up after this many rollbacks

    def __post_init__(self):
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.residual_jump_factor <= 1.0:
            raise ValueError("residual_jump_factor must exceed 1")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be non-negative")


@dataclass(frozen=True)
class ResilientJacobiResult:
    """Outcome of a fault-tolerant solve."""

    grid_f32: np.ndarray
    cores: tuple[int, int]
    iterations: int                 #: useful sweeps delivered
    executed_sweeps: int            #: total sweeps incl. rollback replays
    weighted_sweeps: float          #: sweeps scaled by degraded-mode load
    restarts: int
    detected_sdc: int
    failed_cores: tuple             #: decomposition coords that died
    degraded_factor: float          #: final per-iteration slowdown (>= 1)
    residual: float
    time_s: float
    trace: FaultTrace

    @property
    def interior(self) -> np.ndarray:
        return self.grid_f32[1:-1, 1:-1]


def _degraded_factor(grid, failed, assignment) -> float:
    """Per-iteration slowdown: busiest survivor vs. the healthy maximum."""
    owners = {(s.iy, s.ix): s for row in grid for s in row}
    base = max(s.ny * s.nx for s in owners.values())
    load = {k: s.ny * s.nx for k, s in owners.items() if k not in failed}
    for f, survivor in assignment.items():
        load[survivor] += owners[f].ny * owners[f].nx
    return max(load.values()) / base


def solve_resilient(problem: LaplaceProblem, iterations: int, *,
                    cores: tuple[int, int] = (1, 1),
                    faults=None,
                    config: Optional[ResilienceConfig] = None,
                    trace: Optional[FaultTrace] = None,
                    costs: CostModel = DEFAULT_COSTS) -> ResilientJacobiResult:
    """Jacobi with silent-data-corruption detection and checkpoint/restart.

    Runs the bit-exact BF16 sweep (the device-functional model) while a
    :class:`~repro.faults.plan.FaultPlan` — or any object with ``solver``
    (:class:`SolverBitFlip`) and ``core_failures`` (:class:`CoreFailure`)
    sequences — injects state corruption and core deaths at iteration
    granularity:

    * After every sweep, two detectors run: the discrete-maximum-principle
      **range check** (any interior value outside the boundary extrema is
      impossible for a correct Jacobi iterate) and a **residual-jump
      check** (the residual growing by ``residual_jump_factor`` over its
      best-seen value).  A detection rolls the state back to the last
      checkpoint; the rewrite scrubs the corruption, so each injected flip
      is consumed exactly once and the replayed sweeps run clean.
    * A core failure permanently removes a decomposition cell; its
      sub-domain is remapped onto the least-loaded survivor
      (:func:`repro.core.decomposition.remap_failed`) and every later
      sweep pays the degraded load factor.  The functional answer is
      unchanged (the survivor computes the same block); only timing
      degrades.

    Timing comes from the Tier-2 scaling model, scaled by the *weighted*
    sweep count (replays + degradation), so the reported solve time
    reflects the cost of resilience, deterministically.
    """
    cfg = config or ResilienceConfig()
    log = trace if trace is not None else FaultTrace()
    cy, cx = cores
    nx, ny = problem.nx, problem.ny
    flips: dict[int, list] = {}
    failures: dict[int, list] = {}
    for flip in getattr(faults, "solver", ()) or ():
        if not (0 <= flip.row < ny and 0 <= flip.col < nx):
            raise ValueError(f"flip target ({flip.row},{flip.col}) outside "
                             f"the {ny}x{nx} interior")
        flips.setdefault(flip.iteration, []).append(flip)
    for death in getattr(faults, "core_failures", ()) or ():
        failures.setdefault(death.iteration, []).append(death)

    grid = split_domain(nx, ny, cy, cx)
    failed: set[tuple[int, int]] = set()
    factor = 1.0

    bits = problem.initial_grid_bf16()
    lo, hi = problem.boundary_extrema()
    eps = cfg.range_slack * max(1.0, abs(lo), abs(hi))
    best_res = residual_f32(bits_to_f32(bits))
    ckpt_it, ckpt_bits = 0, bits.copy()
    it = 0
    executed = 0
    weighted = 0.0
    restarts = 0
    detected = 0

    while it < iterations:
        # Core deaths fire once (dead cores stay dead through rollbacks).
        for death in failures.pop(it, []):
            failed.add((death.iy, death.ix))
            log.record(-1.0, "core.failure",
                       f"iter{it}.core({death.iy},{death.ix})", "injected")
            assignment = remap_failed(grid, failed)
            factor = _degraded_factor(grid, failed, assignment)
            log.record(-1.0, "core.failure",
                       f"iter{it}.core({death.iy},{death.ix})", "remapped",
                       f"to({assignment[(death.iy, death.ix)][0]},"
                       f"{assignment[(death.iy, death.ix)][1]})."
                       f"load={factor:.9g}")

        bits = jacobi_step_bf16(bits)
        executed += 1
        weighted += factor

        # One-shot corruption: the post-rollback replay runs clean because
        # the checkpoint rewrite scrubbed the flipped bits.
        for flip in flips.pop(it, []):
            bits[1 + flip.row, 1 + flip.col] ^= np.uint16(1 << flip.bit)
            log.record(-1.0, "solver.bitflip",
                       f"iter{it}.({flip.row},{flip.col}).bit{flip.bit}",
                       "injected")
        it += 1

        u = bits_to_f32(bits)
        interior = u[1:-1, 1:-1]
        res = residual_f32(u)
        bad_range = (not np.isfinite(interior).all()
                     or bool((interior < lo - eps).any())
                     or bool((interior > hi + eps).any()))
        jumped = res > best_res * cfg.residual_jump_factor + 1e-30
        if bad_range or jumped:
            detected += 1
            why = "range" if bad_range else "residual"
            log.record(-1.0, "solver.sdc", f"iter{it - 1}", "detected", why)
            restarts += 1
            if restarts > cfg.max_restarts:
                raise RuntimeError(
                    f"solver gave up after {restarts} restarts "
                    f"({detected} corruption(s) detected)")
            bits = ckpt_bits.copy()
            it = ckpt_it
            log.record(-1.0, "solver.sdc", f"iter{ckpt_it}", "rolled-back")
            continue
        best_res = min(best_res, res)
        if it % cfg.checkpoint_every == 0 and it < iterations:
            ckpt_it, ckpt_bits = it, bits.copy()
            log.record(-1.0, "solver.checkpoint", f"iter{it}", "saved")

    perf = JacobiScalingModel(costs).run(nx, ny, iterations, cy, cx)
    time_s = perf.solve_time_s * (weighted / iterations)
    final = bits_to_f32(bits)
    return ResilientJacobiResult(
        grid_f32=final, cores=cores, iterations=iterations,
        executed_sweeps=executed, weighted_sweeps=weighted,
        restarts=restarts, detected_sdc=detected,
        failed_cores=tuple(sorted(failed)), degraded_factor=factor,
        residual=residual_f32(final), time_s=time_s, trace=log)
