"""Generic weighted 5-point stencils on the optimised dataflow.

The paper's future work: "We are now looking at more complex stencil
algorithms, such as atmospheric advection, on the Grayskull."  This
module generalises the Section-VI kernel from the fixed Jacobi average to
any 5-point stencil

    out[y, x] = c·u[y, x] + w·u[y, x−1] + e·u[y, x+1]
              + n·u[y−1, x] + s·u[y+1, x]

with BF16 coefficients.  The dataflow is unchanged — contiguous row
reads, rotating 4-row buffer, ``cb_set_rd_ptr`` zero-copy aliases (the
centre term is simply a fifth alias at element offset 1) — only the
compute kernel's FPU program is generated from the coefficient set:
one ``mul_tiles`` against a constant CB per non-zero term, chained with
``add_tiles`` through the intermediate CB.

Built-in specs: Jacobi/Laplace diffusion, explicit heat diffusion
(``u + α∇²u``) and first-order upwind advection — the paper's named
target.

Note on rounding: the generic kernel's rounding chain is
``r = bf16(c₀·t₀); r = bf16(bf16(cₖ·tₖ) + r)…``, which differs from
Listing 2's add-first order, so ``StencilSpec.jacobi()`` agrees with the
dedicated Jacobi kernel to BF16 tolerance but not bit-for-bit.  The
bit-exact oracle for *this* kernel is :func:`stencil_step_bf16`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.arch.device import GrayskullDevice
from repro.arch.tensix import COMPUTE, DATA_MOVER_0, DATA_MOVER_1
from repro.core.decomposition import SubDomain, split_domain
from repro.core.grid import AlignedDomain, LaplaceProblem
from repro.core.jacobi_initial import DeviceRunResult
from repro.dtypes.bf16 import (
    BF16_BYTES,
    bf16_add,
    bf16_mul,
    bf16_round,
    f32_to_bits,
)
from repro.dtypes.tiles import TILE_ELEMS
from repro.sim.resources import Semaphore
from repro.ttmetal import (
    CreateCircularBuffer,
    CreateKernel,
    CreateSemaphore,
    EnqueueProgram,
    EnqueueReadBuffer,
    EnqueueWriteBuffer,
    Finish,
    Program,
    create_buffer,
)

__all__ = ["StencilSpec", "StencilRunner", "stencil_step_bf16",
           "stencil_solve_bf16", "stencil_step_fp32", "stencil_solve_fp32"]

# CB ids: inputs 0-4 (W, E, N, S, C), RHS field 5, coefficient constants
# 8-12, intermediates 24-25, output 16.
CB_W, CB_E, CB_N, CB_S, CB_C = 0, 1, 2, 3, 4
CB_RHS = 5
CB_COEF_BASE = 8
CB_OUT0 = 16
CB_INTERMED, CB_INTERMED2 = 24, 25
#: column-drain semaphore (see jacobi_optimized.SEM_COLUMN)
SEM_COLUMN = 1
N_SLOTS = 4
IN_PAGES = 2

#: term order: (input CB, coefficient attribute, alias element offset
#: within the row window, row role: -1 above / 0 centre / +1 below)
_TERMS: List[Tuple[int, str, int, int]] = [
    (CB_C, "center", 1, 0),
    (CB_W, "west", 0, 0),
    (CB_E, "east", 2, 0),
    (CB_N, "north", 1, -1),
    (CB_S, "south", 1, 1),
]


@dataclass(frozen=True)
class StencilSpec:
    """Coefficients of a 5-point stencil (stored BF16-rounded)."""

    center: float
    west: float
    east: float
    north: float
    south: float

    def __post_init__(self):
        for name in ("center", "west", "east", "north", "south"):
            v = float(getattr(self, name))
            object.__setattr__(self, name, float(bf16_round(np.float32(v))))

    # -- library ------------------------------------------------------------
    @classmethod
    def jacobi(cls) -> "StencilSpec":
        """The paper's kernel: the average of the four neighbours."""
        return cls(center=0.0, west=0.25, east=0.25, north=0.25, south=0.25)

    @classmethod
    def diffusion(cls, alpha: float) -> "StencilSpec":
        """Explicit heat step u + α∇²u (stable for α ≤ 0.25)."""
        if not 0 < alpha <= 0.25:
            raise ValueError("explicit diffusion requires 0 < alpha <= 0.25")
        return cls(center=1 - 4 * alpha, west=alpha, east=alpha,
                   north=alpha, south=alpha)

    @classmethod
    def advection_upwind(cls, cu: float, cv: float) -> "StencilSpec":
        """First-order upwind advection with Courant numbers (cu, cv) ≥ 0.

        ``u ← u − cu·(u − u_west) − cv·(u − u_north)`` — the atmospheric
        advection pattern the paper names as its next target (flow toward
        +x, +y).  Stable for cu + cv ≤ 1.
        """
        if cu < 0 or cv < 0 or cu + cv > 1:
            raise ValueError("upwind stability needs cu, cv >= 0 and "
                             "cu + cv <= 1")
        return cls(center=1 - cu - cv, west=cu, east=0.0, north=cv,
                   south=0.0)

    def active_terms(self) -> List[Tuple[int, str, int, int]]:
        """The non-zero terms, in evaluation order."""
        return [t for t in _TERMS if getattr(self, t[1]) != 0.0]

    def max_principle_holds(self) -> bool:
        """Positive coefficients summing to ≤ 1 ⇒ outputs stay bounded."""
        coeffs = [self.center, self.west, self.east, self.north, self.south]
        return all(c >= 0 for c in coeffs) and sum(coeffs) <= 1.0 + 2 ** -8


# --------------------------------------------------------------------------
# bit-exact reference
# --------------------------------------------------------------------------

def stencil_step_bf16(bits: np.ndarray, spec: StencilSpec,
                      rhs_bits: Optional[np.ndarray] = None) -> np.ndarray:
    """One sweep of the generic kernel's exact rounding chain.

    ``rhs_bits`` (a ``(ny, nx)`` BF16 interior field) is added last:
    ``out = Σ cₖ·uₖ + rhs`` — the inhomogeneous term that makes
    defect-correction solves possible (see :mod:`repro.core.refinement`).
    """
    b = np.asarray(bits, dtype=np.uint16)
    windows = {
        CB_C: b[1:-1, 1:-1], CB_W: b[1:-1, :-2], CB_E: b[1:-1, 2:],
        CB_N: b[:-2, 1:-1], CB_S: b[2:, 1:-1],
    }
    acc = None
    for cb, name, _off, _row in spec.active_terms():
        coef = np.broadcast_to(f32_to_bits(np.float32(getattr(spec, name))),
                               windows[cb].shape)
        term = bf16_mul(coef, windows[cb])
        acc = term if acc is None else bf16_add(term, acc)
    if rhs_bits is not None:
        r = np.asarray(rhs_bits, dtype=np.uint16)
        if r.shape != windows[CB_C].shape:
            raise ValueError(
                f"rhs must be the interior shape {windows[CB_C].shape}, "
                f"got {r.shape}")
        acc = r.copy() if acc is None else bf16_add(r, acc)
    out = b.copy()
    out[1:-1, 1:-1] = acc if acc is not None else 0
    return out


def stencil_solve_bf16(bits: np.ndarray, spec: StencilSpec,
                       iterations: int,
                       rhs_bits: Optional[np.ndarray] = None) -> np.ndarray:
    if iterations < 0:
        raise ValueError("iterations must be non-negative")
    b = np.asarray(bits, dtype=np.uint16).copy()
    for _ in range(iterations):
        b = stencil_step_bf16(b, spec, rhs_bits)
    return b


def stencil_step_fp32(grid: np.ndarray, spec: StencilSpec,
                      rhs: Optional[np.ndarray] = None) -> np.ndarray:
    """One FP32 sweep with the device kernel's exact operation order.

    The Wormhole-precision mode: every mul/add is a single f32 rounding
    (packing is lossless), so this matches the FP32 device execution
    bit-for-bit.
    """
    g = np.asarray(grid, dtype=np.float32)
    windows = {
        CB_C: g[1:-1, 1:-1], CB_W: g[1:-1, :-2], CB_E: g[1:-1, 2:],
        CB_N: g[:-2, 1:-1], CB_S: g[2:, 1:-1],
    }
    acc = None
    for cb, name, _off, _row in spec.active_terms():
        term = (np.float32(getattr(spec, name)) * windows[cb]).astype(
            np.float32)
        acc = term if acc is None else (term + acc).astype(np.float32)
    if rhs is not None:
        r = np.asarray(rhs, dtype=np.float32)
        if r.shape != windows[CB_C].shape:
            raise ValueError(
                f"rhs must be the interior shape {windows[CB_C].shape}")
        acc = r.copy() if acc is None else (r + acc).astype(np.float32)
    out = g.copy()
    out[1:-1, 1:-1] = acc if acc is not None else 0.0
    return out


def stencil_solve_fp32(grid: np.ndarray, spec: StencilSpec,
                       iterations: int,
                       rhs: Optional[np.ndarray] = None) -> np.ndarray:
    if iterations < 0:
        raise ValueError("iterations must be non-negative")
    g = np.asarray(grid, dtype=np.float32).copy()
    for _ in range(iterations):
        g = stencil_step_fp32(g, spec, rhs)
    return g


# --------------------------------------------------------------------------
# device kernels (Section-VI dataflow, generated compute program)
# --------------------------------------------------------------------------

def _chunk_columns(sub: SubDomain, chunk: int) -> List[Tuple[int, int]]:
    cols, x = [], 0
    while x < sub.nx:
        w = min(chunk, sub.nx - x)
        cols.append((sub.x0 + x, w))
        x += w
    return cols


def _reader_kernel(ctx):
    layout: AlignedDomain = ctx.arg("layout")
    spec: StencilSpec = ctx.arg("spec")
    buffers = ctx.arg("buffers")
    iterations: int = ctx.arg("iterations")
    sub: SubDomain = ctx.arg("sub")
    barrier: Semaphore = ctx.arg("barrier")
    n_cores: int = ctx.arg("n_cores")
    chunk: int = ctx.arg("chunk")
    align = ctx.costs.dram_alignment
    terms = spec.active_terms()
    in_cbs = [t[0] for t in terms]

    # fill one constant CB per active coefficient (element-width aware)
    eb = layout.elem_bytes
    coef_cb = ctx.core.cbs[CB_COEF_BASE + in_cbs[0]]
    page_elems = coef_cb.page_size // eb
    for cb, name, _off, _row in terms:
        yield from ctx.cb_reserve_back(CB_COEF_BASE + cb, 1)
        value = np.float32(getattr(spec, name))
        if eb == 4:
            vals = np.full(page_elems, value.view(np.uint32),
                           dtype=np.uint32)
            yield from ctx.l1_store_u32(
                ctx.cb_write_ptr(CB_COEF_BASE + cb), vals)
        else:
            vals = np.full(page_elems, f32_to_bits(value), dtype=np.uint16)
            yield from ctx.l1_store_u16(
                ctx.cb_write_ptr(CB_COEF_BASE + cb), vals)
        yield from ctx.cb_push_back(CB_COEF_BASE + cb, 1)

    cols = _chunk_columns(sub, chunk)
    max_w = max(w for _, w in cols)
    slot_bytes = ((max_w + 2) * eb + align - eb + 31) // 32 * 32
    slots = ctx.core.sram.allocate(N_SLOTS * slot_bytes, align=32)
    shared = ctx.arg("shared")
    shared["slots"] = slots
    shared["slot_bytes"] = slot_bytes

    rhs_buf = ctx.arg("rhs_buf", default=None)
    rhs_slots = None
    if rhs_buf is not None:
        rhs_slot_bytes = (max_w * eb + 31) // 32 * 32
        rhs_slots = ctx.core.sram.allocate(2 * rhs_slot_bytes, align=32)
        shared["rhs_slots"] = rhs_slots
        shared["rhs_slot_bytes"] = rhs_slot_bytes

    def read_row(buf, x0, w, halo_row, slot):
        off = layout.stencil_row_offset(halo_row, x0)
        slack = off % align
        yield from ctx.noc_read_buffer(
            buf, off - slack, slots + slot * slot_bytes,
            (w + 2) * eb + slack)
        return slack

    def read_rhs_row(x0, w, interior_row, slot):
        # interior element offsets are 256-bit aligned: no slack needed
        off = layout.elem_offset(interior_row + 1, x0)
        yield from ctx.noc_read_buffer(
            rhs_buf, off, rhs_slots + slot * shared["rhs_slot_bytes"],
            w * eb)

    for it in range(iterations):
        yield from ctx.semaphore_wait(barrier, n_cores * it)
        src_buf = buffers[it % 2]
        for ci, (x0, w) in enumerate(cols):
            if ci > 0:
                # drain gate: consumer done with the previous column
                yield from ctx.semaphore_wait(
                    SEM_COLUMN, it * len(cols) + ci)
            for cb in in_cbs:
                yield from ctx.cb_reserve_back(cb, 1)
            slack = 0
            for k in range(3):
                slack = yield from read_row(src_buf, x0, w, sub.y0 + k,
                                            k % N_SLOTS)
            shared["slack"] = slack
            if rhs_buf is not None:
                yield from ctx.cb_reserve_back(CB_RHS, 1)
                yield from read_rhs_row(x0, w, sub.y0, 0)
            for r in range(sub.ny):
                yield from ctx.noc_async_read_barrier()
                for cb in in_cbs:
                    yield from ctx.cb_push_back(cb, 1)
                if rhs_buf is not None:
                    yield from ctx.cb_push_back(CB_RHS, 1)
                if r + 1 < sub.ny:
                    for cb in in_cbs:
                        yield from ctx.cb_reserve_back(cb, 1)
                    yield from read_row(src_buf, x0, w, sub.y0 + r + 3,
                                        (r + 3) % N_SLOTS)
                    if rhs_buf is not None:
                        yield from ctx.cb_reserve_back(CB_RHS, 1)
                        yield from read_rhs_row(x0, w, sub.y0 + r + 1,
                                                (r + 1) % 2)


def _compute_kernel(ctx):
    spec: StencilSpec = ctx.arg("spec")
    iterations: int = ctx.arg("iterations")
    sub: SubDomain = ctx.arg("sub")
    chunk: int = ctx.arg("chunk")
    shared = ctx.arg("shared")
    terms = spec.active_terms()
    dst0 = 0

    cols = _chunk_columns(sub, chunk)
    for cb, _n, _o, _r in terms:
        yield from ctx.cb_wait_front(CB_COEF_BASE + cb, 1)
    yield from ctx.tile_regs_acquire()
    for _ in range(iterations):
        for _x0, _w in cols:
            for r in range(sub.ny):
                base = None
                for cb, _n, _o, _r in terms:
                    yield from ctx.cb_wait_front(cb, 1)
                sb = shared["slot_bytes"]
                slack = shared["slack"]
                slots = shared["slots"]
                eb = ctx.arg("layout").elem_bytes
                for cb, _name, off, row in terms:
                    slot = (r + 1 + row) % N_SLOTS
                    addr = slots + slot * sb + slack + off * eb
                    yield from ctx.cb_set_rd_ptr(cb, addr)

                # generated FPU program: mul then chained adds; with an
                # RHS field the weighted sum lands in the intermediate CB
                # and the RHS row is added last (matching the reference
                # rounding chain).
                has_rhs = "rhs_slots" in shared
                final_cb = CB_INTERMED if has_rhs else CB_OUT0
                first_cb = terms[0][0]
                yield from ctx.mul_tiles(CB_COEF_BASE + first_cb, first_cb,
                                         0, 0, dst0)
                n_rest = len(terms) - 1
                if n_rest == 0:
                    yield from ctx.cb_reserve_back(final_cb, 1)
                    yield from ctx.pack_tile(dst0, final_cb)
                    yield from ctx.cb_push_back(final_cb, 1)
                else:
                    yield from ctx.cb_reserve_back(CB_INTERMED, 1)
                    yield from ctx.pack_tile(dst0, CB_INTERMED)
                    yield from ctx.cb_push_back(CB_INTERMED, 1)
                    for k, (cb, _name, _o, _r2) in enumerate(terms[1:]):
                        yield from ctx.mul_tiles(CB_COEF_BASE + cb, cb,
                                                 0, 0, dst0)
                        yield from ctx.cb_reserve_back(CB_INTERMED2, 1)
                        yield from ctx.pack_tile(dst0, CB_INTERMED2)
                        yield from ctx.cb_push_back(CB_INTERMED2, 1)
                        yield from ctx.cb_wait_front(CB_INTERMED, 1)
                        yield from ctx.cb_wait_front(CB_INTERMED2, 1)
                        yield from ctx.add_tiles(CB_INTERMED2, CB_INTERMED,
                                                 0, 0, dst0)
                        yield from ctx.cb_pop_front(CB_INTERMED2, 1)
                        yield from ctx.cb_pop_front(CB_INTERMED, 1)
                        last = k == n_rest - 1
                        out_cb = final_cb if last else CB_INTERMED
                        yield from ctx.cb_reserve_back(out_cb, 1)
                        yield from ctx.pack_tile(dst0, out_cb)
                        yield from ctx.cb_push_back(out_cb, 1)
                if has_rhs:
                    yield from ctx.cb_wait_front(CB_RHS, 1)
                    yield from ctx.cb_set_rd_ptr(
                        CB_RHS, shared["rhs_slots"]
                        + (r % 2) * shared["rhs_slot_bytes"])
                    yield from ctx.cb_wait_front(CB_INTERMED, 1)
                    yield from ctx.add_tiles(CB_RHS, CB_INTERMED, 0, 0, dst0)
                    yield from ctx.cb_pop_front(CB_INTERMED, 1)
                    yield from ctx.cb_pop_front(CB_RHS, 1)
                    yield from ctx.cb_reserve_back(CB_OUT0, 1)
                    yield from ctx.pack_tile(dst0, CB_OUT0)
                    yield from ctx.cb_push_back(CB_OUT0, 1)
                for cb, _n, _o, _r2 in terms:
                    yield from ctx.cb_pop_front(cb, 1)
            yield from ctx.semaphore_inc(SEM_COLUMN, 1)
    yield from ctx.tile_regs_release()


def _writer_kernel(ctx):
    layout: AlignedDomain = ctx.arg("layout")
    buffers = ctx.arg("buffers")
    iterations: int = ctx.arg("iterations")
    sub: SubDomain = ctx.arg("sub")
    barrier: Semaphore = ctx.arg("barrier")
    chunk: int = ctx.arg("chunk")

    cols = _chunk_columns(sub, chunk)
    for it in range(iterations):
        dst_buf = buffers[(it + 1) % 2]
        for x0, w in cols:
            for r in range(sub.ny):
                yield from ctx.cb_wait_front(CB_OUT0, 1)
                off = layout.elem_offset(sub.y0 + r + 1, x0)
                yield from ctx.noc_write_buffer(
                    dst_buf, off, ctx.cb_read_ptr(CB_OUT0),
                    w * layout.elem_bytes)
                yield from ctx.noc_async_write_barrier()
                yield from ctx.cb_pop_front(CB_OUT0, 1)
        yield from ctx.semaphore_inc(barrier, 1)


class StencilRunner:
    """Host driver: any :class:`StencilSpec` on the Section-VI dataflow.

    ``dtype="fp32"`` runs the Wormhole-precision mode: 4-byte elements,
    512-element FPU tiles, lossless packing — the precision upgrade the
    paper's future work targets, runnable today on the simulator.
    """

    def __init__(self, device: GrayskullDevice, problem: LaplaceProblem,
                 spec: StencilSpec, cores_y: int = 1, cores_x: int = 1,
                 chunk: Optional[int] = None, interleaved: bool = True,
                 page_size: int = 32 << 10, dtype: str = "bf16"):
        if not spec.active_terms():
            raise ValueError("the stencil has no non-zero coefficients")
        if dtype not in ("bf16", "fp32"):
            raise ValueError("dtype must be 'bf16' or 'fp32'")
        self.device = device
        self.problem = problem
        self.spec = spec
        self.cores_y = cores_y
        self.cores_x = cores_x
        self.dtype = dtype
        self.elem_bytes = 2 if dtype == "bf16" else 4
        #: one FPU tile: 1024 BF16 or 512 FP32 elements (16384 bits)
        self.tile_elems = TILE_ELEMS * 2 // self.elem_bytes
        self.chunk = chunk if chunk is not None else self.tile_elems
        self.interleaved = interleaved
        self.page_size = page_size
        self.layout = AlignedDomain(problem, elem_bytes=self.elem_bytes)

    def run(self, iterations: int,
            sim_iterations: Optional[int] = None,
            read_back: bool = True,
            initial_grid: Optional[np.ndarray] = None,
            rhs: Optional[np.ndarray] = None) -> DeviceRunResult:
        """Run ``iterations`` sweeps.

        ``initial_grid`` (a full ``(ny+2, nx+2)`` BF16 halo grid) overrides
        the problem's default initial state — e.g. a tracer plume for an
        advection study.  ``rhs`` (a ``(ny, nx)`` BF16 interior field)
        adds an inhomogeneous term to every sweep:
        ``out = Σ cₖ·uₖ + rhs``.
        """
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        sim_iters = min(sim_iterations or iterations, iterations)
        dev = self.device
        img = self.layout.pack(initial_grid)
        mk = dict(interleaved=True, page_size=self.page_size) \
            if self.interleaved else dict(bank_id=0)
        d1 = create_buffer(dev, self.layout.nbytes, **mk)
        d2 = create_buffer(dev, self.layout.nbytes, **mk)
        t_in = EnqueueWriteBuffer(dev, d1, img)
        t_in += EnqueueWriteBuffer(dev, d2, img)

        rhs_buf = None
        if rhs is not None:
            bits_dtype = self.layout.bits_dtype
            r = np.asarray(rhs)
            if self.dtype == "fp32" and r.dtype == np.float32:
                r = r.view(np.uint32)
            r = r.astype(bits_dtype, copy=False)
            if r.shape != (self.problem.ny, self.problem.nx):
                raise ValueError(
                    f"rhs must be ({self.problem.ny},{self.problem.nx}) "
                    f"{self.dtype} bits, got {r.shape} {r.dtype}")
            halo = np.zeros((self.problem.ny + 2, self.problem.nx + 2),
                            dtype=bits_dtype)
            halo[1:-1, 1:-1] = r
            rhs_buf = create_buffer(dev, self.layout.nbytes, **mk)
            t_in += EnqueueWriteBuffer(dev, rhs_buf, self.layout.pack(halo))

        grid = dev.worker_grid(self.cores_y, self.cores_x)
        subs = split_domain(self.problem.nx, self.problem.ny,
                            self.cores_y, self.cores_x)
        n_cores = self.cores_y * self.cores_x
        barrier = Semaphore(dev.sim, value=0, name="stencil_barrier")
        terms = self.spec.active_terms()

        prog = Program(dev)
        for iy in range(self.cores_y):
            for ix in range(self.cores_x):
                core = grid[iy][ix]
                sub = subs[iy][ix]
                w = min(self.chunk, sub.nx)
                page = w * self.elem_bytes
                dt = self.dtype
                for cb, _n, _o, _r in terms:
                    CreateCircularBuffer(prog, core, cb, page, IN_PAGES,
                                         dtype=dt)
                    CreateCircularBuffer(prog, core, CB_COEF_BASE + cb,
                                         page, 1, dtype=dt)
                if rhs_buf is not None:
                    CreateCircularBuffer(prog, core, CB_RHS, page, 2,
                                         dtype=dt)
                CreateCircularBuffer(prog, core, CB_INTERMED, page, 2,
                                     dtype=dt)
                CreateCircularBuffer(prog, core, CB_INTERMED2, page, 2,
                                     dtype=dt)
                CreateCircularBuffer(prog, core, CB_OUT0, page, 4, dtype=dt)
                CreateSemaphore(prog, core, SEM_COLUMN, 0)
                shared: dict = {}
                common = dict(layout=self.layout, spec=self.spec,
                              buffers=[d1, d2], iterations=sim_iters,
                              sub=sub, barrier=barrier, n_cores=n_cores,
                              chunk=self.chunk, shared=shared,
                              rhs_buf=rhs_buf)
                CreateKernel(prog, _reader_kernel, core, DATA_MOVER_0, common)
                CreateKernel(prog, _compute_kernel, core, COMPUTE, common)
                CreateKernel(prog, _writer_kernel, core, DATA_MOVER_1, common)

        EnqueueProgram(dev, prog)
        kernel_time = Finish(dev)
        per_iter = kernel_time / sim_iters
        full_time = per_iter * iterations

        grid_bits = None
        t_out = 0.0
        if read_back and sim_iters == iterations:
            final = d1 if iterations % 2 == 0 else d2
            t0 = dev.sim.now
            raw = EnqueueReadBuffer(dev, final)
            t_out = dev.sim.now - t0
            view = "<u2" if self.elem_bytes == 2 else "<u4"
            grid_bits = self.layout.unpack(raw.view(view))

        return DeviceRunResult(
            grid_bits=grid_bits,
            iterations=iterations,
            simulated_iterations=sim_iters,
            kernel_time_s=full_time,
            transfer_time_s=t_in + t_out,
            energy_j=dev.energy.energy_j,
            points=self.problem.nx * self.problem.ny,
        )
