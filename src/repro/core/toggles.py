"""Component-toggle retiming (Table II).

The paper locates the bottleneck by selectively disabling the reader's
DRAM reads, the local-buffer→CB memcpy, the FPU compute, and the writer's
DRAM writes, "whilst keeping the CB structure and synchronisation between
the data mover and compute cores".  This driver reruns the Section-IV
kernel under each of the paper's six toggle combinations and reports
GPt/s.

The toggle build synchronises reads per batch (not per request) and
writes per batch — matching the throughputs the paper measured for the
read-only (0.205 GPt/s) and write-only (0.278 GPt/s) rows, which are far
above what per-request barriers would allow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.arch.device import GrayskullDevice
from repro.core.grid import LaplaceProblem
from repro.core.jacobi_initial import InitialConfig, InitialJacobiRunner

__all__ = ["ToggleRow", "PAPER_TOGGLE_ROWS", "run_component_toggles"]


@dataclass(frozen=True)
class ToggleRow:
    """One Table-II row: which components ran, and the resulting rate."""

    read: bool
    memcpy: bool
    compute: bool
    write: bool
    gpts: float

    def label(self) -> str:
        yn = lambda b: "Y" if b else "N"
        return (f"read={yn(self.read)} memcpy={yn(self.memcpy)} "
                f"compute={yn(self.compute)} write={yn(self.write)}")


#: The six combinations Table II reports, in the paper's row order.
PAPER_TOGGLE_ROWS: List[tuple[bool, bool, bool, bool]] = [
    (False, False, False, False),
    (False, False, True, False),
    (False, False, False, True),
    (True, False, False, False),
    (False, True, False, False),
    (True, True, False, False),
]


def _toggle_base_config() -> InitialConfig:
    return InitialConfig(write_sync_per_batch=True,
                         read_sync_per_request=False)


def run_component_toggles(
    problem: LaplaceProblem,
    iterations: int,
    sim_iterations: int = 2,
    rows: Optional[List[tuple[bool, bool, bool, bool]]] = None,
    device_factory: Callable[[], GrayskullDevice] = GrayskullDevice,
) -> List[ToggleRow]:
    """Re-run the Section-IV kernel under each toggle combination.

    Each combination gets a fresh device (fresh clock and counters).
    Functional output is meaningless when components are disabled, exactly
    as in the paper — these runs measure time only.
    """
    results = []
    for read, memcpy, compute, write in (rows or PAPER_TOGGLE_ROWS):
        cfg = _toggle_base_config().with_toggles(read, memcpy, compute, write)
        runner = InitialJacobiRunner(device_factory(), problem, cfg)
        res = runner.run(iterations, sim_iterations=sim_iterations,
                         read_back=False)
        results.append(ToggleRow(read, memcpy, compute, write, res.gpts))
    return results
