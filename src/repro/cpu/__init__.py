"""CPU baseline: the reference Jacobi solvers and the Xeon model.

* :mod:`repro.cpu.jacobi` — functional solvers: the paper's Listing-1
  algorithm in FP32 (the CPU baseline), a BF16 variant that mirrors the
  Grayskull FPU's operation order and rounding exactly (the bit-exact
  oracle for the simulated kernels), and a direct sparse solve of the
  discrete Laplace system (the convergence oracle).
* :mod:`repro.cpu.openmp` — the OpenMP-style multicore execution model
  backed by the calibrated :class:`repro.perfmodel.cpumodel.XeonModel`.
"""

from repro.cpu.jacobi import (
    jacobi_solve_bf16,
    jacobi_solve_f32,
    jacobi_step_bf16,
    jacobi_step_f32,
    solve_direct,
)
from repro.cpu.openmp import CpuJacobiRunner, CpuRunResult

__all__ = [
    "CpuJacobiRunner",
    "CpuRunResult",
    "jacobi_solve_bf16",
    "jacobi_solve_f32",
    "jacobi_step_bf16",
    "jacobi_step_f32",
    "solve_direct",
]
