"""Reference Jacobi solvers (Listing 1 of the paper) and oracles.

Three functional implementations:

* :func:`jacobi_step_f32` / :func:`jacobi_solve_f32` — the CPU baseline
  the paper compares against (FP32, vectorised; the Jacobi update reads
  only the previous iterate, so vectorised and scalar execution are
  bit-identical).
* :func:`jacobi_step_bf16` / :func:`jacobi_solve_bf16` — the bit-exact
  model of the Grayskull compute kernel: the operation order and rounding
  points mirror Listing 2 exactly — ``(x−1 + x+1)`` packed to BF16, then
  ``+ y−1`` packed, then ``+ y+1`` packed, then ``× 0.25`` packed.  The
  simulated device must reproduce this bit-for-bit.
* :func:`solve_direct` — the exact solution of the discrete 5-point
  Laplace system via a sparse direct solve (SciPy), used as the
  convergence oracle in tests and examples.

All grids are "halo" grids of shape ``(ny+2, nx+2)``: row/column 0 and −1
hold the Dirichlet boundary values and are never written.
"""

from __future__ import annotations

import numpy as np

from repro.dtypes.bf16 import bf16_add, bf16_mul, bits_to_f32, f32_to_bits

__all__ = [
    "jacobi_step_f32",
    "jacobi_solve_f32",
    "jacobi_step_bf16",
    "jacobi_solve_bf16",
    "residual_f32",
    "solve_direct",
]


def _check_halo(grid: np.ndarray) -> None:
    if grid.ndim != 2 or grid.shape[0] < 3 or grid.shape[1] < 3:
        raise ValueError(
            f"expected a halo grid of at least (3,3), got {grid.shape}")


def jacobi_step_f32(u: np.ndarray) -> np.ndarray:
    """One Jacobi sweep: unew = 0.25·(W + E + N + S) on the interior.

    Returns a new halo grid; boundaries are copied through.
    """
    _check_halo(u)
    u = np.asarray(u, dtype=np.float32)
    unew = u.copy()
    unew[1:-1, 1:-1] = np.float32(0.25) * (
        u[1:-1, :-2] + u[1:-1, 2:] + u[:-2, 1:-1] + u[2:, 1:-1])
    return unew


def jacobi_solve_f32(u0: np.ndarray, iterations: int) -> np.ndarray:
    """Run ``iterations`` sweeps from ``u0`` (the paper's Listing 1)."""
    if iterations < 0:
        raise ValueError("iterations must be non-negative")
    u = np.asarray(u0, dtype=np.float32).copy()
    for _ in range(iterations):
        u = jacobi_step_f32(u)
    return u


def jacobi_step_bf16(bits: np.ndarray) -> np.ndarray:
    """One sweep on BF16 bit patterns with the FPU's rounding points.

    Mirrors the compute kernel of Listing 2: each ``pack_tile`` rounds the
    float32 intermediate to BF16, so there are exactly four roundings per
    output element, in this order::

        t1 = pack(u[y, x-1] + u[y, x+1])
        t2 = pack(t1 + u[y-1, x])
        t3 = pack(t2 + u[y+1, x])
        out = pack(t3 * 0.25)
    """
    _check_halo(bits)
    b = np.asarray(bits, dtype=np.uint16)
    west, east = b[1:-1, :-2], b[1:-1, 2:]
    north, south = b[:-2, 1:-1], b[2:, 1:-1]
    quarter = f32_to_bits(np.float32(0.25))
    t = bf16_add(west, east)
    t = bf16_add(north, t)          # Listing 2: add_tiles(cb_in2, intermediate)
    t = bf16_add(south, t)
    t = bf16_mul(np.broadcast_to(quarter, t.shape), t)
    out = b.copy()
    out[1:-1, 1:-1] = t
    return out


def jacobi_solve_bf16(bits0: np.ndarray, iterations: int) -> np.ndarray:
    """Run ``iterations`` BF16 sweeps (the oracle for the simulated card)."""
    if iterations < 0:
        raise ValueError("iterations must be non-negative")
    b = np.asarray(bits0, dtype=np.uint16).copy()
    for _ in range(iterations):
        b = jacobi_step_bf16(b)
    return b


def residual_f32(u: np.ndarray) -> float:
    """Max |0.25·(W+E+N+S) − u| over the interior — 0 at convergence."""
    nxt = jacobi_step_f32(u)
    return float(np.abs(nxt[1:-1, 1:-1] - np.asarray(
        u, dtype=np.float32)[1:-1, 1:-1]).max())


def solve_direct(u0: np.ndarray) -> np.ndarray:
    """Exact converged solution of the discrete Laplace system.

    Builds the 5-point Laplacian over the interior unknowns with the halo
    grid's boundary values as Dirichlet data and solves it directly with
    SciPy's sparse LU.  Returns a full halo grid (float64).
    """
    import scipy.sparse as sp
    import scipy.sparse.linalg as spla

    u0 = np.asarray(u0, dtype=np.float64)
    _check_halo(u0)
    ny, nx = u0.shape[0] - 2, u0.shape[1] - 2
    n = nx * ny

    def idx(iy, ix):
        return iy * nx + ix

    rows, cols, vals = [], [], []
    rhs = np.zeros(n)
    for iy in range(ny):
        for ix in range(nx):
            k = idx(iy, ix)
            rows.append(k); cols.append(k); vals.append(4.0)
            for dy, dx in ((0, -1), (0, 1), (-1, 0), (1, 0)):
                jy, jx = iy + dy, ix + dx
                if 0 <= jy < ny and 0 <= jx < nx:
                    rows.append(k); cols.append(idx(jy, jx)); vals.append(-1.0)
                else:
                    rhs[k] += u0[jy + 1, jx + 1]  # boundary contribution
    a = sp.csr_matrix((vals, (rows, cols)), shape=(n, n))
    x = spla.spsolve(a.tocsc(), rhs)
    out = u0.copy()
    out[1:-1, 1:-1] = x.reshape(ny, nx)
    return out
