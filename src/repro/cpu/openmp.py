"""OpenMP-style CPU execution: functional decomposition + Xeon timing.

The paper's CPU baseline multi-threads the Listing-1 loop with OpenMP.
Functionally, Jacobi over a row-decomposed domain with a barrier per sweep
is identical to the global sweep (each thread reads only the previous
iterate), and :class:`CpuJacobiRunner` exploits that: the answer comes
from the vectorised solver while a row decomposition is checked for
consistency, and timing/energy come from the calibrated
:class:`~repro.perfmodel.cpumodel.XeonModel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.cpu.jacobi import jacobi_step_f32
from repro.perfmodel.cpumodel import XeonModel

__all__ = ["CpuRunResult", "CpuJacobiRunner", "decompose_rows"]


def decompose_rows(ny: int, n_threads: int) -> List[tuple[int, int]]:
    """OpenMP static schedule: split ``ny`` interior rows into chunks.

    Returns ``[(row_start, row_count), ...]`` (interior indexing); chunk
    sizes differ by at most one.
    """
    if n_threads <= 0 or ny <= 0:
        raise ValueError("ny and n_threads must be positive")
    base, extra = divmod(ny, n_threads)
    chunks = []
    start = 0
    for t in range(n_threads):
        count = base + (1 if t < extra else 0)
        if count:
            chunks.append((start, count))
        start += count
    return chunks


@dataclass(frozen=True)
class CpuRunResult:
    """Outcome of a modelled CPU Jacobi run."""

    grid: np.ndarray          #: final halo grid (float32)
    n_threads: int
    time_s: float
    gpts: float
    energy_j: float
    power_w: float


class CpuJacobiRunner:
    """Functional + modelled execution of the paper's CPU baseline."""

    def __init__(self, model: Optional[XeonModel] = None):
        self.model = model or XeonModel()

    def step_threaded(self, u: np.ndarray, n_threads: int) -> np.ndarray:
        """One sweep computed chunk-by-chunk (OpenMP static schedule).

        Bit-identical to :func:`jacobi_step_f32`; exists so tests can
        verify the decomposition really is equivalent.
        """
        u = np.asarray(u, dtype=np.float32)
        unew = u.copy()
        ny = u.shape[0] - 2
        for start, count in decompose_rows(ny, n_threads):
            lo, hi = start + 1, start + count + 1
            unew[lo:hi, 1:-1] = np.float32(0.25) * (
                u[lo:hi, :-2] + u[lo:hi, 2:] + u[lo - 1:hi - 1, 1:-1]
                + u[lo + 1:hi + 1, 1:-1])
        return unew

    def run(self, u0: np.ndarray, iterations: int,
            n_threads: int = 1) -> CpuRunResult:
        """Solve functionally and attach modelled time/energy."""
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        u = np.asarray(u0, dtype=np.float32).copy()
        for _ in range(iterations):
            u = jacobi_step_f32(u)
        ny, nx = u.shape[0] - 2, u.shape[1] - 2
        points = nx * ny
        time_s = self.model.solve_time_s(points, iterations, n_threads)
        return CpuRunResult(
            grid=u,
            n_threads=n_threads,
            time_s=time_s,
            gpts=points * iterations / time_s / 1e9,
            energy_j=self.model.energy_j(points, iterations, n_threads),
            power_w=self.model.power_w(n_threads),
        )
