"""Numeric datatypes of the Grayskull FPU.

The Grayskull's matrix/vector engine computes on **bfloat16** (BF16): 1 sign
bit, 8 exponent bits, 7 mantissa bits — the top half of an IEEE-754
float32.  NumPy has no native bfloat16, so :mod:`repro.dtypes.bf16`
implements the format in software (bit-exact round-to-nearest-even
conversion on ``uint16`` payloads), and :mod:`repro.dtypes.tiles` provides
the 32×32-element tile geometry the FPU operates on.
"""

from repro.dtypes.bf16 import (
    BF16_BYTES,
    bf16_add,
    bf16_mul,
    bf16_round,
    bf16_sub,
    bits_to_f32,
    f32_to_bits,
)
from repro.dtypes.tiles import (
    TILE_DIM,
    TILE_ELEMS,
    TILE_NBYTES,
    Tile,
    domain_to_tiles,
    tiles_to_domain,
)

__all__ = [
    "BF16_BYTES",
    "TILE_DIM",
    "TILE_ELEMS",
    "TILE_NBYTES",
    "Tile",
    "bf16_add",
    "bf16_mul",
    "bf16_round",
    "bf16_sub",
    "bits_to_f32",
    "f32_to_bits",
    "domain_to_tiles",
    "tiles_to_domain",
]
