"""Software bfloat16: bit-exact conversions and rounded arithmetic.

BF16 is the top 16 bits of an IEEE-754 binary32.  Conversion from float32
uses round-to-nearest-even on the truncated 16 bits, which is what the
Grayskull's packer implements.  NaNs are quietened (the payload could
otherwise round to infinity).

Arithmetic helpers model the Tensix FPU contract used by the paper's
kernels: operands are **unpacked** from BF16 to the internal format,
computed at float32 precision, and the result is **packed** back to BF16
(one rounding per ``pack_tile``).  This matches tt-metal's
``add_tiles``/``mul_tiles`` + ``pack_tile`` sequence in Listing 2.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "BF16_BYTES",
    "f32_to_bits",
    "bits_to_f32",
    "bf16_round",
    "bf16_add",
    "bf16_sub",
    "bf16_mul",
    "is_bf16_exact",
]

#: Storage size of one BF16 element in DRAM/SRAM.
BF16_BYTES = 2

_EXP_MASK = np.uint32(0x7F80_0000)
_MAN_MASK = np.uint32(0x007F_FFFF)
_QUIET_BIT16 = np.uint16(0x0040)


def f32_to_bits(x: np.ndarray | float) -> np.ndarray:
    """Convert float32 values to BF16 bit patterns (``uint16``).

    Rounds to nearest, ties to even, exactly as hardware truncation with a
    rounding bias does.  Input is converted to ``float32`` first (so Python
    floats and float64 arrays are accepted); output has the same shape.
    """
    arr = np.asarray(x, dtype=np.float32)
    shape = arr.shape
    f32 = np.ascontiguousarray(arr).reshape(-1)
    u32 = f32.view(np.uint32)
    # round-to-nearest-even: add 0x7FFF plus the LSB of the retained part.
    lsb = (u32 >> np.uint32(16)) & np.uint32(1)
    rounded = u32 + np.uint32(0x7FFF) + lsb
    bits = (rounded >> np.uint32(16)).astype(np.uint16)
    # NaN inputs: rounding bias may carry into the exponent; force a quiet
    # NaN with the sign preserved instead.
    is_nan = ((u32 & _EXP_MASK) == _EXP_MASK) & ((u32 & _MAN_MASK) != 0)
    if is_nan.any():
        sign = ((u32 >> np.uint32(16)) & np.uint32(0x8000)).astype(np.uint16)
        bits = np.where(is_nan, sign | np.uint16(0x7FC0) | _QUIET_BIT16, bits)
    return bits.reshape(shape)


def bits_to_f32(bits: np.ndarray) -> np.ndarray:
    """Expand BF16 bit patterns (``uint16``) to exact float32 values."""
    b = np.asarray(bits)
    if b.dtype != np.uint16:
        raise TypeError(f"BF16 bit patterns must be uint16, got {b.dtype}")
    u32 = b.astype(np.uint32) << np.uint32(16)
    return u32.view(np.float32)


def bf16_round(x: np.ndarray | float) -> np.ndarray:
    """Round float values to the nearest representable BF16, as float32."""
    return bits_to_f32(f32_to_bits(x))


def is_bf16_exact(x: np.ndarray | float) -> bool:
    """Whether every value is exactly representable in BF16."""
    f32 = np.asarray(x, dtype=np.float32)
    r = bf16_round(f32)
    return bool(np.array_equal(r, f32, equal_nan=True))


def _binary_op(a: np.ndarray, b: np.ndarray, op) -> np.ndarray:
    """unpack → float32 compute → pack; operands are BF16 bit patterns.

    Overflow to ±inf and inf−inf → NaN are the hardware's IEEE semantics,
    not errors, so NumPy's warnings are suppressed here.
    """
    with np.errstate(over="ignore", invalid="ignore"):
        return f32_to_bits(op(bits_to_f32(a), bits_to_f32(b)))


def bf16_add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise BF16 add on bit patterns (one output rounding)."""
    return _binary_op(a, b, np.add)


def bf16_sub(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise BF16 subtract on bit patterns."""
    return _binary_op(a, b, np.subtract)


def bf16_mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise BF16 multiply on bit patterns."""
    return _binary_op(a, b, np.multiply)
