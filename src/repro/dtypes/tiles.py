"""32×32 BF16 tiles — the unit of FPU computation.

The Grayskull FPU is a 16384-bit wide engine: at BF16 (16 bits/element)
one operation covers 1024 elements, i.e. a 32×32 tile.  tt-metal's unpack
→ math → pack pipeline moves tiles between circular buffers and the
destination registers; this module provides the tile geometry and
conversions between row-major 2-D domains and flat tile payloads.

Note on layout: real silicon stores tiles in a "tilized" 16×16-face order;
the paper's kernels never observe that layout (the unpacker hides it), so
our tiles are row-major 32×32 — the programmer-visible abstraction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dtypes.bf16 import BF16_BYTES

__all__ = [
    "TILE_DIM",
    "TILE_ELEMS",
    "TILE_NBYTES",
    "Tile",
    "domain_to_tiles",
    "tiles_to_domain",
]

#: Tile edge length in elements (32 × 32 BF16 = 16384 bits, the FPU width).
TILE_DIM = 32
#: Elements per tile.
TILE_ELEMS = TILE_DIM * TILE_DIM
#: Bytes per BF16 tile.
TILE_NBYTES = TILE_ELEMS * BF16_BYTES


@dataclass(frozen=True)
class Tile:
    """A 32×32 block of BF16 bit patterns.

    ``data`` is a ``(32, 32) uint16`` array.  Tiles are immutable value
    objects; FPU operations produce new tiles.
    """

    data: np.ndarray

    def __post_init__(self):
        d = self.data
        if d.shape != (TILE_DIM, TILE_DIM) or d.dtype != np.uint16:
            raise ValueError(
                f"tile must be ({TILE_DIM},{TILE_DIM}) uint16, "
                f"got {d.shape} {d.dtype}")

    @classmethod
    def from_bits(cls, flat: np.ndarray) -> "Tile":
        """Build a tile from 1024 flat BF16 bit patterns (row-major)."""
        flat = np.asarray(flat, dtype=np.uint16)
        if flat.size != TILE_ELEMS:
            raise ValueError(f"expected {TILE_ELEMS} elements, got {flat.size}")
        return cls(flat.reshape(TILE_DIM, TILE_DIM).copy())

    @classmethod
    def filled(cls, bits: int) -> "Tile":
        """A tile with every element set to the same BF16 bit pattern."""
        return cls(np.full((TILE_DIM, TILE_DIM), bits, dtype=np.uint16))

    def to_bytes(self) -> bytes:
        """Row-major little-endian byte payload (2048 bytes)."""
        return self.data.astype("<u2").tobytes()

    @classmethod
    def from_bytes(cls, payload: bytes | np.ndarray) -> "Tile":
        arr = np.frombuffer(bytes(payload), dtype="<u2")
        return cls.from_bits(arr)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Tile) and np.array_equal(self.data, other.data)

    def __hash__(self) -> int:  # value object; cheap digest
        return hash(self.data.tobytes())


def domain_to_tiles(domain_bits: np.ndarray) -> np.ndarray:
    """Split a 2-D BF16 bit-pattern array into a grid of 32×32 tiles.

    Returns a ``(ny, nx, 32, 32) uint16`` view-copy; both dimensions of the
    input must be multiples of :data:`TILE_DIM` (the paper pads domains to
    guarantee this — see Fig. 4).
    """
    d = np.asarray(domain_bits, dtype=np.uint16)
    h, w = d.shape
    if h % TILE_DIM or w % TILE_DIM:
        raise ValueError(
            f"domain {h}x{w} is not a multiple of the {TILE_DIM}-element tile")
    ny, nx = h // TILE_DIM, w // TILE_DIM
    return (d.reshape(ny, TILE_DIM, nx, TILE_DIM)
             .transpose(0, 2, 1, 3)
             .copy())


def tiles_to_domain(tiles: np.ndarray) -> np.ndarray:
    """Inverse of :func:`domain_to_tiles`."""
    t = np.asarray(tiles, dtype=np.uint16)
    if t.ndim != 4 or t.shape[2:] != (TILE_DIM, TILE_DIM):
        raise ValueError(f"expected (ny,nx,{TILE_DIM},{TILE_DIM}), got {t.shape}")
    ny, nx = t.shape[:2]
    return (t.transpose(0, 2, 1, 3)
             .reshape(ny * TILE_DIM, nx * TILE_DIM)
             .copy())


# --------------------------------------------------------------------------
# tt-metal tilized memory format (16x16 faces)
# --------------------------------------------------------------------------

#: Real silicon splits each 32x32 tile into four 16x16 faces.
FACE_DIM = 16


def tilize(matrix: np.ndarray) -> np.ndarray:
    """Convert a row-major matrix to tt-metal's tilized DRAM format.

    Output layout: tiles in row-major tile order; within each tile the
    four 16x16 faces in order [top-left, top-right, bottom-left,
    bottom-right], each face row-major — the format real tt-metal host
    code produces with ``tilize_nchw`` before ``EnqueueWriteBuffer``.

    Our simulator's unpacker hides this layout (the paper's kernels never
    observe it); the converters exist so payloads can round-trip with
    real tt-metal tools and dumps.
    """
    m = np.asarray(matrix, dtype=np.uint16)
    h, w = m.shape
    if h % TILE_DIM or w % TILE_DIM:
        raise ValueError(f"matrix {h}x{w} must be a multiple of {TILE_DIM}")
    # (tile_y, face_y, row, tile_x, face_x, col) -> flat
    v = m.reshape(h // TILE_DIM, 2, FACE_DIM, w // TILE_DIM, 2, FACE_DIM)
    return v.transpose(0, 3, 1, 4, 2, 5).reshape(-1).copy()


def untilize(flat: np.ndarray, height: int, width: int) -> np.ndarray:
    """Inverse of :func:`tilize`: tilized payload → row-major matrix."""
    f = np.asarray(flat, dtype=np.uint16).reshape(-1)
    if height % TILE_DIM or width % TILE_DIM:
        raise ValueError(
            f"dimensions {height}x{width} must be multiples of {TILE_DIM}")
    if f.size != height * width:
        raise ValueError(
            f"payload has {f.size} elements, expected {height * width}")
    v = f.reshape(height // TILE_DIM, width // TILE_DIM, 2, 2,
                  FACE_DIM, FACE_DIM)
    return (v.transpose(0, 2, 4, 1, 3, 5)
             .reshape(height, width)
             .copy())
