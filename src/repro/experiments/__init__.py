"""Experiment drivers: one per table/figure of the paper.

Each ``tableN`` module exposes ``run(...)`` returning an
:class:`~repro.experiments.common.ExperimentResult` that carries the
rendered paper-style table plus (measured, paper) pairs per row for the
EXPERIMENTS.md fidelity log.  ``figures`` regenerates the paper's
illustrations as text renderings computed from live simulator objects.
"""

from repro.experiments.common import ExperimentResult, RowComparison

__all__ = ["ExperimentResult", "RowComparison"]
