"""Shared result container for experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.report import Table

__all__ = ["RowComparison", "ExperimentResult"]


@dataclass(frozen=True)
class RowComparison:
    """One comparable quantity: what the paper reports vs what we measure."""

    label: str
    measured: float
    paper: Optional[float]       #: None when the paper has no number (figures)
    unit: str = ""

    @property
    def ratio(self) -> Optional[float]:
        if self.paper in (None, 0):
            return None
        return self.measured / self.paper


@dataclass
class ExperimentResult:
    """A regenerated table/figure plus its fidelity record."""

    experiment_id: str            #: e.g. "table3"
    title: str
    table: Table
    comparisons: List[RowComparison] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        out = [self.table.render()]
        if self.notes:
            out.append("")
            out.extend(f"note: {n}" for n in self.notes)
        return "\n".join(out)

    def worst_ratio(self) -> Optional[float]:
        """The row furthest from the paper (max of ratio, 1/ratio)."""
        worst = None
        for c in self.comparisons:
            r = c.ratio
            if r is None or r <= 0:
                continue
            dev = max(r, 1.0 / r)
            worst = dev if worst is None else max(worst, dev)
        return worst
