"""Figures 1–6 — the paper's illustrations, regenerated from live objects.

The paper's figures are architecture/layout diagrams, not data plots.
Each renderer below builds the corresponding *simulator object* and asks
it to describe itself, so regenerating a figure genuinely exercises the
code path it illustrates (e.g. Fig. 5's rendering comes from the actual
padded DRAM layout used by the kernels).
"""

from __future__ import annotations

from repro.arch.device import GrayskullDevice
from repro.core.decomposition import RowBatches, TileBatches
from repro.core.grid import AlignedDomain, LaplaceProblem
from repro.core.jacobi_initial import describe_dataflow

__all__ = ["fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "all_figures"]


def fig1() -> str:
    """Fig. 1: a Tensix core — five baby cores, SRAM, FPU, two routers."""
    device = GrayskullDevice(dram_bank_capacity=1 << 20)
    core = device.core(0, 0)
    # Configure the CBs the Jacobi program uses so the rendering shows a
    # working configuration rather than an empty shell.
    for cb_id in range(4):
        core.create_cb(cb_id, 2048, 4)
    core.create_cb(16, 2048, 4)
    return device.describe() + "\n\n" + core.describe()


def fig2() -> str:
    """Fig. 2: the domain surrounded by boundary conditions."""
    return LaplaceProblem(nx=256, ny=256).render()


def fig3() -> str:
    """Fig. 3: the initial single-core dataflow design."""
    return describe_dataflow()


def fig4() -> str:
    """Fig. 4: decomposing the domain into 32x32 batches."""
    return TileBatches(256, 256).render()


def fig5() -> str:
    """Fig. 5: the 256-bit alignment padding on each side of the domain."""
    return AlignedDomain(LaplaceProblem(nx=256, ny=256)).render()


def fig6() -> str:
    """Fig. 6: 1024-element row batches sweeping down each chunk column."""
    return RowBatches(nx=2048, ny=15).render()


def all_figures() -> dict[str, str]:
    """Every figure rendering, keyed by id."""
    return {"fig1": fig1(), "fig2": fig2(), "fig3": fig3(),
            "fig4": fig4(), "fig5": fig5(), "fig6": fig6()}
