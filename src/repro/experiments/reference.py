"""Every number the paper's evaluation reports, as structured data.

Transcribed from Tables I–VIII of Brown & Barton, "Accelerating stencils
on the Tenstorrent Grayskull RISC-V accelerator" (SC 2024 workshops).
The experiment drivers compare their measurements against these, and the
EXPERIMENTS.md generator uses them for the per-row fidelity log.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = [
    "TABLE1_GPTS",
    "TABLE2_GPTS",
    "TABLE3_RUNTIME",
    "TABLE4_RUNTIME",
    "TABLE5_RUNTIME",
    "TABLE6_RUNTIME",
    "TABLE7_RUNTIME",
    "TABLE8_ROWS",
]

#: Table I — 512x512, 10000 iterations; version → GPt/s.
TABLE1_GPTS: Dict[str, float] = {
    "cpu_single_core": 1.41,
    "initial": 0.0065,
    "write_opt": 0.0072,
    "double_buffered": 0.0140,
}

#: Table II — (read, memcpy, compute, write) → GPt/s.
TABLE2_GPTS: Dict[Tuple[bool, bool, bool, bool], float] = {
    (False, False, False, False): 7.574,
    (False, False, True, False): 1.387,
    (False, False, False, True): 0.278,
    (True, False, False, False): 0.205,
    (False, True, False, False): 0.014,
    (True, True, False, False): 0.013,
}

#: Tables III/IV — batch size → (read nosync, read sync, write nosync,
#: write sync) runtimes in seconds.
TABLE3_RUNTIME: Dict[int, Tuple[float, float, float, float]] = {
    16384: (0.011, 0.011, 0.011, 0.011),
    8192: (0.011, 0.011, 0.011, 0.016),
    4096: (0.012, 0.013, 0.011, 0.020),
    2048: (0.012, 0.020, 0.011, 0.023),
    1024: (0.016, 0.034, 0.011, 0.031),
    512: (0.031, 0.074, 0.011, 0.038),
    256: (0.039, 0.201, 0.011, 0.053),
    128: (0.067, 0.327, 0.014, 0.093),
    64: (0.122, 0.802, 0.027, 0.182),
    32: (0.238, 1.571, 0.052, 0.360),
    16: (0.470, 3.150, 0.104, 0.718),
    8: (0.916, 6.331, 0.206, 1.436),
    4: (1.761, 12.659, 0.411, 2.873),
}

TABLE4_RUNTIME: Dict[int, Tuple[float, float, float, float]] = {
    16384: (0.011, 0.011, 0.011, 0.011),
    8192: (0.011, 0.011, 0.011, 0.014),
    4096: (0.012, 0.012, 0.011, 0.020),
    2048: (0.013, 0.021, 0.011, 0.021),
    1024: (0.016, 0.042, 0.012, 0.029),
    512: (0.031, 0.077, 0.017, 0.032),
    256: (0.042, 0.201, 0.022, 0.052),
    128: (0.082, 0.340, 0.040, 0.095),
    64: (0.148, 0.809, 0.074, 0.182),
    32: (0.275, 1.597, 0.143, 0.361),
    16: (0.544, 3.219, 0.280, 0.721),
    8: (1.081, 6.491, 0.556, 1.441),
    4: (1.969, 13.013, 0.715, 2.882),
}

#: Table V — total replication factor → runtime (s).
TABLE5_RUNTIME: Dict[int, float] = {
    1: 0.011, 2: 0.017, 4: 0.033, 8: 0.055, 16: 0.098, 32: 0.185,
}

#: Table VI — page size (None = single bank) → runtimes at replication
#: factors (0, 8, 16, 32).
TABLE6_RUNTIME: Dict[Optional[int], Tuple[float, float, float, float]] = {
    None: (0.010, 0.047, 0.086, 0.162),
    64 << 10: (0.013, 0.034, 0.050, 0.084),
    32 << 10: (0.012, 0.030, 0.046, 0.079),
    16 << 10: (0.013, 0.030, 0.046, 0.079),
    8 << 10: (0.015, 0.042, 0.072, 0.131),
    4 << 10: (0.015, 0.075, 0.136, 0.258),
    2 << 10: (0.021, 0.148, 0.274, 0.527),
    1 << 10: (0.038, 0.302, 0.565, 1.094),
}

#: Table VII — page size → runtimes at (1, 2, 4, 8) Tensix cores.
TABLE7_RUNTIME: Dict[Optional[int], Tuple[float, float, float, float]] = {
    None: (0.010, 0.005, 0.005, 0.005),
    64 << 10: (0.011, 0.006, 0.007, 0.007),
    32 << 10: (0.012, 0.005, 0.007, 0.007),
    16 << 10: (0.013, 0.006, 0.007, 0.007),
    8 << 10: (0.015, 0.010, 0.007, 0.007),
    4 << 10: (0.015, 0.008, 0.005, 0.005),
    2 << 10: (0.021, 0.010, 0.006, 0.007),
}

#: Table VIII — rows: (type, total cores, cores_y, cores_x, n_cards,
#: GPt/s, Joules).  The paper lists the 8-core run as 4x4 (a 16-core
#: geometry); we record the consistent 2x4 split and note the discrepancy.
TABLE8_ROWS: List[tuple] = [
    ("cpu", 1, None, None, 0, 1.41, 1657.0),
    ("cpu", 24, None, None, 0, 21.61, 588.0),
    ("e150", 1, 1, 1, 1, 1.06, 2094.0),
    ("e150", 2, 1, 2, 1, 2.48, 893.0),
    ("e150", 4, 1, 4, 1, 2.92, 744.0),
    ("e150", 8, 2, 4, 1, 7.99, 276.0),
    ("e150", 32, 8, 4, 1, 9.20, 240.0),
    ("e150", 64, 8, 8, 1, 12.96, 170.0),
    ("e150", 72, 8, 9, 1, 17.26, 128.0),
    ("e150", 108, 12, 9, 1, 22.06, 110.0),
    ("e150 x 2", 216, 24, 9, 2, 44.12, 102.0),
    ("e150 x 4", 432, 48, 9, 4, 86.75, 108.0),
]

#: The paper's Jacobi problem sizes.
TABLE1_PROBLEM = dict(nx=512, ny=512, iterations=10000)
TABLE8_PROBLEM = dict(nx=9216, ny=1024, iterations=5000)
#: The streaming problem (Tables III–VII): 4096x4096 32-bit integers.
STREAM_PROBLEM = dict(rows=4096, row_elems=4096, elem_bytes=4)
