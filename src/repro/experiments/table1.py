"""Table I — initial Tensix kernel generations vs one CPU core.

512×512 BF16 elements, 10000 iterations; GPt/s for the CPU single core
and the three Section-IV variants.
"""

from __future__ import annotations

from repro.core.grid import LaplaceProblem
from repro.core.solver import JacobiSolver
from repro.analysis.report import Table
from repro.experiments.common import ExperimentResult, RowComparison
from repro.experiments.reference import TABLE1_GPTS, TABLE1_PROBLEM

__all__ = ["run"]

_LABELS = {
    "cpu_single_core": "CPU single core",
    "initial": "Initial",
    "write_opt": "Data write optimised",
    "double_buffered": "Double buffering",
}


def run(nx: int = TABLE1_PROBLEM["nx"], ny: int = TABLE1_PROBLEM["ny"],
        iterations: int = TABLE1_PROBLEM["iterations"],
        sim_iterations: int = 2) -> ExperimentResult:
    """Regenerate Table I.

    ``sim_iterations`` bounds the per-event simulation; timings are
    steady-state extrapolations to ``iterations`` exactly as described in
    DESIGN.md.  Smaller ``nx``/``ny`` give a faster, shape-preserving run
    (paper comparisons are only recorded at the paper's size).
    """
    problem = LaplaceProblem(nx=nx, ny=ny)
    at_paper_size = (nx, ny, iterations) == tuple(TABLE1_PROBLEM.values())

    table = Table(
        "Table I: Jacobi on one Tensix core, "
        f"{nx}x{ny} over {iterations} iterations",
        ["Version", "GPt/s (measured)", "GPt/s (paper)", "ratio"])
    comparisons = []

    rows = [
        ("cpu_single_core",
         JacobiSolver(backend="cpu").solve(problem, iterations)),
        ("initial",
         JacobiSolver(backend="e150", variant="initial").solve(
             problem, iterations, sim_iterations=sim_iterations)),
        ("write_opt",
         JacobiSolver(backend="e150", variant="write_opt").solve(
             problem, iterations, sim_iterations=sim_iterations)),
        ("double_buffered",
         JacobiSolver(backend="e150", variant="double_buffered").solve(
             problem, iterations, sim_iterations=sim_iterations)),
    ]
    for key, res in rows:
        paper = TABLE1_GPTS[key] if at_paper_size else None
        ratio = f"{res.gpts / paper:.2f}" if paper else "-"
        table.add_row(_LABELS[key], f"{res.gpts:.4f}",
                      f"{paper:.4f}" if paper else "-", ratio)
        comparisons.append(RowComparison(_LABELS[key], res.gpts, paper,
                                         unit="GPt/s"))

    result = ExperimentResult("table1", table.title, table, comparisons)
    result.notes.append(
        "Grayskull timings are steady-state extrapolations from "
        f"{sim_iterations} fully simulated iterations.")
    if at_paper_size:
        result.notes.append(
            "Known deviation: the simulator does not reproduce the paper's "
            "extra non-additive slowdown of the fully-enabled initial "
            "build (its own Table II components sum to ~21 ms/iter vs the "
            "~40 ms/iter Table I implies), so 'Initial' and 'Data write "
            "optimised' land ~1.3-1.5x above the paper and very close "
            "together.")
    return result
