"""Table II — component-toggle retiming of the Section-IV kernel."""

from __future__ import annotations

from repro.analysis.report import Table
from repro.core.grid import LaplaceProblem
from repro.core.toggles import PAPER_TOGGLE_ROWS, run_component_toggles
from repro.experiments.common import ExperimentResult, RowComparison
from repro.experiments.reference import TABLE1_PROBLEM, TABLE2_GPTS

__all__ = ["run"]


def run(nx: int = TABLE1_PROBLEM["nx"], ny: int = TABLE1_PROBLEM["ny"],
        iterations: int = TABLE1_PROBLEM["iterations"],
        sim_iterations: int = 2) -> ExperimentResult:
    """Regenerate Table II (same problem as Table I)."""
    problem = LaplaceProblem(nx=nx, ny=ny)
    at_paper_size = (nx, ny, iterations) == tuple(TABLE1_PROBLEM.values())

    table = Table(
        f"Table II: component toggles, {nx}x{ny} over {iterations} iters",
        ["Read", "Memcpy", "Compute", "Write", "GPt/s (measured)",
         "GPt/s (paper)", "ratio"])
    comparisons = []
    rows = run_component_toggles(problem, iterations,
                                 sim_iterations=sim_iterations)
    for row in rows:
        key = (row.read, row.memcpy, row.compute, row.write)
        paper = TABLE2_GPTS.get(key) if at_paper_size else None
        yn = lambda b: "Y" if b else "N"
        table.add_row(yn(row.read), yn(row.memcpy), yn(row.compute),
                      yn(row.write), f"{row.gpts:.4f}",
                      f"{paper:.4f}" if paper else "-",
                      f"{row.gpts / paper:.2f}" if paper else "-")
        comparisons.append(RowComparison(row.label(), row.gpts, paper,
                                         unit="GPt/s"))
    result = ExperimentResult("table2", table.title, table, comparisons)
    result.notes.append(
        "Component ordering matches the paper: nothing > compute > write "
        "> read > memcpy > read+memcpy — the memcpy from the local buffer "
        "into the four CBs dominates.")
    return result
