"""Tables III and IV — streaming batch-size sweeps.

Table III accesses data contiguously row after row; Table IV proceeds
downwards through Y so every request is non-contiguous.  Both sweep the
request batch size from a full 16384-byte row down to 4 bytes, with and
without a barrier after every request.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.report import Table, format_seconds
from repro.experiments.common import ExperimentResult, RowComparison
from repro.experiments.reference import (
    STREAM_PROBLEM,
    TABLE3_RUNTIME,
    TABLE4_RUNTIME,
)
from repro.streaming import StreamConfig, sweep_batch_sizes
from repro.streaming.sweep import PAPER_BATCH_SIZES

__all__ = ["run_table3", "run_table4"]

_COLS = ["Batch (bytes)", "req/row",
         "read nosync", "(paper)", "read sync", "(paper)",
         "write nosync", "(paper)", "write sync", "(paper)"]


def _run(table_id: str, contiguous: bool, reference,
         rows: int, row_elems: int,
         batch_sizes: Optional[Sequence[int]],
         jobs: Optional[int] = None, cache=None) -> ExperimentResult:
    base = StreamConfig(rows=rows, row_elems=row_elems)
    at_paper_size = (rows, row_elems) == (STREAM_PROBLEM["rows"],
                                          STREAM_PROBLEM["row_elems"])
    sizes = list(batch_sizes) if batch_sizes is not None else [
        b for b in PAPER_BATCH_SIZES if base.row_bytes % b == 0
        and b <= base.row_bytes]
    swept = sweep_batch_sizes(base, sizes, contiguous=contiguous,
                              jobs=jobs, cache=cache)

    kind = "contiguous" if contiguous else "non-contiguous"
    table = Table(
        f"Table {'III' if table_id == 'table3' else 'IV'}: streaming, "
        f"{kind} accesses, {rows}x{row_elems} 32-bit integers (runtimes s)",
        _COLS)
    comparisons = []
    for r in swept:
        paper = reference.get(r.batch_size) if at_paper_size else None
        measured = (r.read_nosync_s, r.read_sync_s,
                    r.write_nosync_s, r.write_sync_s)
        cells = [str(r.batch_size), str(r.requests_per_row)]
        for i, label in enumerate(("read nosync", "read sync",
                                   "write nosync", "write sync")):
            cells.append(format_seconds(measured[i]))
            cells.append(format_seconds(paper[i]) if paper else "-")
            comparisons.append(RowComparison(
                f"{r.batch_size}B {label}", measured[i],
                paper[i] if paper else None, unit="s"))
        table.add_row(*cells)
    return ExperimentResult(table_id, table.title, table, comparisons)


def run_table3(rows: int = STREAM_PROBLEM["rows"],
               row_elems: int = STREAM_PROBLEM["row_elems"],
               batch_sizes: Optional[Sequence[int]] = None, *,
               jobs: Optional[int] = None, cache=None) -> ExperimentResult:
    """Regenerate Table III (contiguous streaming)."""
    return _run("table3", True, TABLE3_RUNTIME, rows, row_elems, batch_sizes,
                jobs=jobs, cache=cache)


def run_table4(rows: int = STREAM_PROBLEM["rows"],
               row_elems: int = STREAM_PROBLEM["row_elems"],
               batch_sizes: Optional[Sequence[int]] = None, *,
               jobs: Optional[int] = None, cache=None) -> ExperimentResult:
    """Regenerate Table IV (non-contiguous streaming)."""
    return _run("table4", False, TABLE4_RUNTIME, rows, row_elems, batch_sizes,
                jobs=jobs, cache=cache)
