"""Tables V, VI, VII — replication, interleaving, multi-core streaming."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.report import Table, format_seconds
from repro.experiments.common import ExperimentResult, RowComparison
from repro.experiments.reference import (
    STREAM_PROBLEM,
    TABLE5_RUNTIME,
    TABLE6_RUNTIME,
    TABLE7_RUNTIME,
)
from repro.streaming import (
    StreamConfig,
    sweep_multicore,
    sweep_page_sizes,
    sweep_replication,
)

__all__ = ["run_table5", "run_table6", "run_table7"]


def _page_label(page: Optional[int]) -> str:
    return "none" if page is None else f"{page >> 10}K"


def _base(rows: int, row_elems: int) -> tuple[StreamConfig, bool]:
    base = StreamConfig(rows=rows, row_elems=row_elems)
    at_paper = (rows, row_elems) == (STREAM_PROBLEM["rows"],
                                     STREAM_PROBLEM["row_elems"])
    return base, at_paper


def run_table5(rows: int = STREAM_PROBLEM["rows"],
               row_elems: int = STREAM_PROBLEM["row_elems"],
               factors: Sequence[int] = (1, 2, 4, 8, 16, 32), *,
               jobs: Optional[int] = None, cache=None) -> ExperimentResult:
    """Regenerate Table V: replicated row reads."""
    base, at_paper = _base(rows, row_elems)
    table = Table(
        f"Table V: replicated reads, {rows}x{row_elems} int32 (runtime s)",
        ["Replication factor", "measured", "paper", "ratio"])
    comparisons = []
    for f, runtime in sweep_replication(base, factors, jobs=jobs,
                                       cache=cache):
        paper = TABLE5_RUNTIME.get(f) if at_paper else None
        table.add_row(f, format_seconds(runtime),
                      format_seconds(paper) if paper else "-",
                      f"{runtime / paper:.2f}" if paper else "-")
        comparisons.append(RowComparison(f"replication x{f}", runtime,
                                         paper, unit="s"))
    return ExperimentResult("table5", table.title, table, comparisons)


def run_table6(rows: int = STREAM_PROBLEM["rows"],
               row_elems: int = STREAM_PROBLEM["row_elems"],
               page_sizes: Optional[Sequence[Optional[int]]] = None,
               replications: Sequence[int] = (0, 8, 16, 32), *,
               jobs: Optional[int] = None, cache=None) -> ExperimentResult:
    """Regenerate Table VI: interleaving page size × replication."""
    base, at_paper = _base(rows, row_elems)
    cols = ["Page size"] + [f"repl {r}" for r in replications] + \
           [f"(paper {r})" for r in replications]
    table = Table(
        f"Table VI: page size vs replication, {rows}x{row_elems} int32 "
        "(runtime s)", cols)
    comparisons = []
    for page, runtimes in sweep_page_sizes(base, page_sizes, replications,
                                           jobs=jobs, cache=cache):
        paper = TABLE6_RUNTIME.get(page) if at_paper else None
        cells = [_page_label(page)]
        cells += [format_seconds(t) for t in runtimes]
        cells += [format_seconds(p) for p in paper] if paper \
            else ["-"] * len(replications)
        table.add_row(*cells)
        for i, repl in enumerate(replications):
            comparisons.append(RowComparison(
                f"page {_page_label(page)} repl {repl}", runtimes[i],
                paper[i] if paper else None, unit="s"))
    result = ExperimentResult("table6", table.title, table, comparisons)
    result.notes.append(
        "Key shape: interleaving is free at replication 0 and roughly "
        "halves runtime under heavy replication at 16-32K pages; small "
        "pages add per-page overhead.")
    return result


def run_table7(rows: int = STREAM_PROBLEM["rows"],
               row_elems: int = STREAM_PROBLEM["row_elems"],
               page_sizes: Optional[Sequence[Optional[int]]] = None,
               core_counts: Sequence[int] = (1, 2, 4, 8), *,
               jobs: Optional[int] = None, cache=None) -> ExperimentResult:
    """Regenerate Table VII: streaming scaled across Tensix cores."""
    base, at_paper = _base(rows, row_elems)
    cols = ["Page size"] + [f"{n} cores" for n in core_counts] + \
           [f"(paper {n})" for n in core_counts]
    table = Table(
        f"Table VII: page size vs cores, {rows}x{row_elems} int32 "
        "(runtime s)", cols)
    comparisons = []
    for page, runtimes in sweep_multicore(base, page_sizes, core_counts,
                                          jobs=jobs, cache=cache):
        paper = TABLE7_RUNTIME.get(page) if at_paper else None
        cells = [_page_label(page)]
        cells += [format_seconds(t) for t in runtimes]
        cells += [format_seconds(p) for p in paper] if paper \
            else ["-"] * len(core_counts)
        table.add_row(*cells)
        for i, n in enumerate(core_counts):
            comparisons.append(RowComparison(
                f"page {_page_label(page)} cores {n}", runtimes[i],
                paper[i] if paper else None, unit="s"))
    result = ExperimentResult("table7", table.title, table, comparisons)
    result.notes.append(
        "Key shape: the single-bank stream stops scaling beyond 2 cores — "
        "the shared bank saturates, as the paper observes.")
    result.notes.append(
        "Known deviation: our interleaved streams keep scaling with cores "
        "(8 banks really do provide the bandwidth) while the paper's stay "
        "flat; the authors attribute their flatness only loosely to 'NoC "
        "and/or DDR bandwidth', and Table VIII's 88 GB/s aggregate is "
        "inconsistent with any hard ~25 GB/s device-wide cap.")
    return result
