"""Table VIII — performance and energy: CPU vs e150 vs multi-card.

1024×9216 BF16 elements over 5000 iterations.  CPU rows use the
calibrated Xeon model; e150 rows use the Tier-2 scaling model (identical
cost constants to the DES — ``tests/perfmodel`` cross-validates the two
on small configurations).

Each row is an independent solver-model evaluation, so the driver fans
the rows out through the :mod:`repro.parallel` engine (job kind
``table8``): ``jobs=N`` parallelises them with byte-identical output,
and the content-addressed cache makes repeated regenerations near-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.report import Table
from repro.experiments.common import ExperimentResult, RowComparison
from repro.experiments.reference import TABLE8_PROBLEM, TABLE8_ROWS
from repro.parallel import JobSpec, sweep_results

__all__ = ["Table8Row", "run"]


@dataclass(frozen=True)
class Table8Row:
    """One Table VIII configuration (the ``table8`` job kind's config)."""

    typ: str                 #: "cpu" | "e150"
    total: int               #: total cores (CPU threads / Tensix workers)
    cy: Optional[int]
    cx: Optional[int]
    cards: int
    nx: int
    ny: int
    iterations: int
    compute_answers: bool = False


def run(nx: int = TABLE8_PROBLEM["nx"], ny: int = TABLE8_PROBLEM["ny"],
        iterations: int = TABLE8_PROBLEM["iterations"],
        rows: Optional[Sequence[tuple]] = None,
        compute_answers: bool = False, *,
        jobs: Optional[int] = None, cache=None) -> ExperimentResult:
    """Regenerate Table VIII.

    ``compute_answers=True`` additionally runs the functional BF16 sweeps
    for every configuration (minutes at paper scale; the validation tests
    do it at small scale instead).
    """
    at_paper = (nx, ny, iterations) == tuple(TABLE8_PROBLEM.values())
    table = Table(
        f"Table VIII: performance & energy, {nx}x{ny} over {iterations} "
        "iterations",
        ["Type", "Cores", "Y", "X", "GPt/s", "(paper)", "ratio",
         "Energy J", "(paper)"])
    comparisons = []

    row_tuples = list(rows or TABLE8_ROWS)
    specs = []
    for row in row_tuples:
        typ, total, cy, cx, cards, _paper_gpts, _paper_j = row
        specs.append(JobSpec("table8", Table8Row(
            typ=typ, total=total, cy=cy, cx=cx, cards=cards, nx=nx, ny=ny,
            iterations=iterations, compute_answers=compute_answers)))
    measured = sweep_results(specs, jobs=jobs, cache=cache)

    for row, res in zip(row_tuples, measured):
        typ, total, cy, cx, cards, paper_gpts, paper_j = row
        gpts, energy_j = res["gpts"], res["energy_j"]
        pg = paper_gpts if at_paper else None
        pj = paper_j if at_paper else None
        table.add_row(
            typ, total, cy if cy else "-", cx if cx else "-",
            f"{gpts:.2f}", f"{pg:.2f}" if pg else "-",
            f"{gpts / pg:.2f}" if pg else "-",
            f"{energy_j:.0f}", f"{pj:.0f}" if pj else "-")
        comparisons.append(RowComparison(f"{typ} {total} cores GPt/s",
                                         gpts, pg, unit="GPt/s"))
        comparisons.append(RowComparison(f"{typ} {total} cores energy",
                                         energy_j, pj, unit="J"))

    result = ExperimentResult("table8", table.title, table, comparisons)
    result.notes.append(
        "The paper lists the 8-core geometry as 4x4 (16 cores); we use the "
        "consistent 2x4 placement.")
    result.notes.append(
        "Key shapes reproduced: the full e150 (108 workers) edges out the "
        "24-core Xeon at ~5x less energy; X-splits that break the "
        "1024-element chunk (e.g. 8x8) lose FPU efficiency; 2 and 4 cards "
        "scale near-linearly (no inter-card halos, as in the paper).")
    return result
