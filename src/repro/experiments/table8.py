"""Table VIII — performance and energy: CPU vs e150 vs multi-card.

1024×9216 BF16 elements over 5000 iterations.  CPU rows use the
calibrated Xeon model; e150 rows use the Tier-2 scaling model (identical
cost constants to the DES — ``tests/perfmodel`` cross-validates the two
on small configurations).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.report import Table
from repro.core.grid import LaplaceProblem
from repro.core.solver import JacobiSolver
from repro.experiments.common import ExperimentResult, RowComparison
from repro.experiments.reference import TABLE8_PROBLEM, TABLE8_ROWS

__all__ = ["run"]


def run(nx: int = TABLE8_PROBLEM["nx"], ny: int = TABLE8_PROBLEM["ny"],
        iterations: int = TABLE8_PROBLEM["iterations"],
        rows: Optional[Sequence[tuple]] = None,
        compute_answers: bool = False) -> ExperimentResult:
    """Regenerate Table VIII.

    ``compute_answers=True`` additionally runs the functional BF16 sweeps
    for every configuration (minutes at paper scale; the validation tests
    do it at small scale instead).
    """
    problem = LaplaceProblem(nx=nx, ny=ny)
    at_paper = (nx, ny, iterations) == tuple(TABLE8_PROBLEM.values())
    table = Table(
        f"Table VIII: performance & energy, {nx}x{ny} over {iterations} "
        "iterations",
        ["Type", "Cores", "Y", "X", "GPt/s", "(paper)", "ratio",
         "Energy J", "(paper)"])
    comparisons = []

    for row in (rows or TABLE8_ROWS):
        typ, total, cy, cx, cards, paper_gpts, paper_j = row
        if typ == "cpu":
            solver = JacobiSolver(backend="cpu", n_threads=total)
            res = solver.solve(problem, iterations,
                               compute_answer=compute_answers)
        else:
            solver = JacobiSolver(
                backend="e150-model", cores=(cy, cx),
                n_cards=max(cards, 1))
            res = solver.solve(problem, iterations,
                               compute_answer=compute_answers)
        pg = paper_gpts if at_paper else None
        pj = paper_j if at_paper else None
        table.add_row(
            typ, total, cy if cy else "-", cx if cx else "-",
            f"{res.gpts:.2f}", f"{pg:.2f}" if pg else "-",
            f"{res.gpts / pg:.2f}" if pg else "-",
            f"{res.energy_j:.0f}", f"{pj:.0f}" if pj else "-")
        comparisons.append(RowComparison(f"{typ} {total} cores GPt/s",
                                         res.gpts, pg, unit="GPt/s"))
        comparisons.append(RowComparison(f"{typ} {total} cores energy",
                                         res.energy_j, pj, unit="J"))

    result = ExperimentResult("table8", table.title, table, comparisons)
    result.notes.append(
        "The paper lists the 8-core geometry as 4x4 (16 cores); we use the "
        "consistent 2x4 placement.")
    result.notes.append(
        "Key shapes reproduced: the full e150 (108 workers) edges out the "
        "24-core Xeon at ~5x less energy; X-splits that break the "
        "1024-element chunk (e.g. 8x8) lose FPU efficiency; 2 and 4 cards "
        "scale near-linearly (no inter-card halos, as in the paper).")
    return result
