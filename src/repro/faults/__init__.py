"""Deterministic fault injection for the simulated Grayskull.

The fault plane has three layers:

* :mod:`repro.faults.plan` — :class:`FaultPlan`: a frozen, seeded
  description of every fault a campaign will inject (DRAM bit-flips, NoC
  delay/drop, kernel hangs, PCIe transfer corruption, solver-state flips,
  core failures).  Fault times are *simulated* seconds and iteration
  indices — never wall-clock — so a plan replays bit-identically.
* :mod:`repro.faults.injector` — :class:`FaultInjector`: arms a plan on a
  device (``device.fault_injector``) and logs every injection to a
  :class:`~repro.analysis.resilience.FaultTrace`.
* :mod:`repro.faults.campaign` — end-to-end campaigns combining the
  device-level faults with the resilient solver
  (:func:`repro.core.solver.solve_resilient`) and the ``Finish`` watchdog
  (:func:`run_hang_demo`).
"""

from repro.faults.campaign import (
    CampaignConfig,
    render_campaign_sweep,
    run_campaign,
    run_campaign_sweep,
    run_hang_demo,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    CardFailure,
    CoreFailure,
    DramBitFlip,
    FaultPlan,
    KernelHang,
    NocFault,
    PcieCorruption,
    SolverBitFlip,
)

__all__ = [
    "CampaignConfig",
    "CardFailure",
    "CoreFailure",
    "DramBitFlip",
    "FaultInjector",
    "FaultPlan",
    "KernelHang",
    "NocFault",
    "PcieCorruption",
    "SolverBitFlip",
    "render_campaign_sweep",
    "run_campaign",
    "run_campaign_sweep",
    "run_hang_demo",
]
