"""Seeded fault-injection campaigns: device phase + solver phase.

:func:`run_campaign` drives the whole resilience story from one seed:

1. **Device phase** — a small simulated e150 with an installed
   :class:`~repro.faults.injector.FaultInjector`: DRAM bit-flips land and
   are ECC-scrubbed on read, NoC disturbances stretch transfer latencies,
   and PCIe corruption forces the host enqueue operations through their
   retry-with-backoff path.
2. **Solver phase** — :func:`repro.core.solver.solve_resilient` converges
   under injected state corruption and core failures via checkpoint/
   restart and degraded-mode remapping.

Everything is keyed off the :class:`~repro.faults.plan.FaultPlan`'s seed
and simulated time, so running the same config twice yields byte-identical
fault traces (:meth:`FaultTrace.to_text`) — the CI replay check depends on
this.

:func:`run_hang_demo` is the watchdog showcase: a kernel wedges mid-run
and ``Finish(device, timeout_s=...)`` raises
:class:`~repro.ttmetal.host.DeviceHangError` naming the stalled core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.analysis.resilience import FaultTrace, ResilienceReport
from repro.arch.device import GrayskullDevice
from repro.arch.noc import ReadJob
from repro.core.grid import LaplaceProblem
from repro.core.solver import ResilienceConfig, solve_resilient
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, KernelHang
from repro.ttmetal.host import (CreateKernel, DeviceHangError, EnqueueProgram,
                                EnqueueReadBuffer, EnqueueWriteBuffer, Finish,
                                Program)
from repro.ttmetal.buffers import create_buffer

__all__ = ["CampaignConfig", "run_campaign", "run_campaign_sweep",
           "render_campaign_sweep", "run_hang_demo"]

#: device-phase DRAM bank size: small, so random flip addresses often land
#: inside the exercised buffer.
_BANK_BYTES = 1 << 20
#: simulated horizon for device-level fault times.
_HORIZON_S = 1e-4


@dataclass(frozen=True)
class CampaignConfig:
    """One campaign: problem size, decomposition and fault counts."""

    seed: int = 0
    nx: int = 64
    ny: int = 64
    iterations: int = 64
    cores: Tuple[int, int] = (2, 2)
    dram_flips: int = 3        #: device-phase soft errors (ECC-scrubbed)
    noc_faults: int = 2
    pcie_corruptions: int = 1
    solver_flips: int = 2      #: uncorrectable strikes on solver state
    core_failures: int = 1
    checkpoint_every: int = 8
    ecc: bool = True

    def plan(self) -> FaultPlan:
        return FaultPlan.generate(
            self.seed,
            n_dram_flips=self.dram_flips,
            n_noc_faults=self.noc_faults,
            n_pcie=self.pcie_corruptions,
            n_solver_flips=self.solver_flips,
            n_core_failures=self.core_failures,
            horizon_s=_HORIZON_S,
            bank_bytes=_BANK_BYTES,
            iterations=self.iterations,
            interior=(self.ny, self.nx),
            cores=self.cores)


def _device_phase(cfg: CampaignConfig, plan: FaultPlan,
                  trace: FaultTrace, report: ResilienceReport) -> None:
    """Exercise DRAM ECC, NoC disturbances and the PCIe retry path."""
    device = GrayskullDevice(dram_bank_capacity=_BANK_BYTES)
    injector = FaultInjector(device, plan, trace=trace, ecc=cfg.ecc)
    injector.install()

    # Let every timed fault land before traffic starts.
    device.sim.run(until=_HORIZON_S)

    # Host -> DRAM -> host round trip; injected PCIe corruption forces the
    # enqueue operations through detection + exponential-backoff retry.
    payload = (np.arange(4096, dtype=np.uint16) & 0xFF).astype(np.uint8)
    buf = create_buffer(device, payload.nbytes)
    EnqueueWriteBuffer(device, buf, payload)
    out = EnqueueReadBuffer(device, buf)
    report.note("pcie round-trip intact", bool(np.array_equal(out, payload)))

    # Consume armed NoC faults with plain reads (one per armed fault).
    link0 = device.noc0.new_link("campaign0")
    link1 = device.noc1.new_link("campaign1")
    for fault in plan.noc:
        noc = device.noc0 if fault.noc_id == 0 else device.noc1
        link = link0 if fault.noc_id == 0 else link1
        ev = noc.read_burst(link, [ReadJob(bank_id=0, addr=0, size=256)])
        device.sim.run(until=ev)

    # A full-bank read sweeps the ECC scrubber over every injected flip.
    corrected, _uncorrectable = injector.scrub_banks()
    report.note("dram flips corrected by ECC",
                f"{corrected}/{len(plan.dram)}")
    report.note("noc faults consumed",
                device.noc0.injected_delays + device.noc0.injected_drops
                + device.noc1.injected_delays + device.noc1.injected_drops)
    injector.uninstall()


def run_campaign(cfg: CampaignConfig,
                 resilience: Optional[ResilienceConfig] = None
                 ) -> ResilienceReport:
    """Run the full campaign; returns the report (trace included)."""
    plan = cfg.plan()
    report = ResilienceReport(
        title=f"Fault-injection campaign (seed={cfg.seed})")
    trace = report.trace
    report.note("plan", plan.describe())

    _device_phase(cfg, plan, trace, report)

    problem = LaplaceProblem(nx=cfg.nx, ny=cfg.ny)
    res = solve_resilient(
        problem, cfg.iterations, cores=cfg.cores, faults=plan,
        config=resilience or ResilienceConfig(
            checkpoint_every=cfg.checkpoint_every),
        trace=trace)
    report.note("solver residual", f"{res.residual:.6g}")
    report.note("solver restarts", res.restarts)
    report.note("solver detected SDC", res.detected_sdc)
    report.note("solver executed sweeps",
                f"{res.executed_sweeps} for {cfg.iterations} useful")
    report.note("solver failed cores", list(res.failed_cores))
    report.note("solver degraded load factor", f"{res.degraded_factor:.4g}")
    report.note("solver time (modelled)", f"{res.time_s:.6g} s")
    return report


def run_campaign_sweep(configs, jobs=None, cache=None, progress=None):
    """Run many campaigns through the parallel sweep engine.

    Returns the engine's :class:`~repro.parallel.engine.JobOutcome` list
    in submission order; each successful outcome's ``result`` is the
    campaign's :class:`~repro.analysis.resilience.ResilienceReport`
    (reconstructed identically whether computed fresh or replayed from
    the content-addressed cache).  A crashed worker isolates only its
    own campaign — the failure is reported in the fault plane's own
    vocabulary (``sweep.job`` / ``isolated``) rather than aborting the
    sweep, mirroring how the campaigns themselves treat device faults.
    """
    from repro.parallel import JobSpec, run_jobs

    specs = [JobSpec("campaign", cfg, seed=cfg.seed) for cfg in configs]
    return run_jobs(specs, jobs=jobs, cache=cache, progress=progress)


def render_campaign_sweep(outcomes) -> str:
    """Deterministic multi-campaign summary (byte-stable across ``-j``).

    Renders every campaign report in submission order plus a summary
    table of per-seed invariants (trace events, restarts, detected SDC,
    residual).  Only deterministic fields appear here — worker ids and
    wall-clock live in :func:`repro.parallel.render_job_report`, which
    ``repro faults --seeds ... --report`` prints separately.
    """
    from repro.analysis.report import Table
    from repro.parallel import outcomes_trace

    blocks = []
    summary = Table("Campaign sweep summary",
                    ["seed", "status", "trace events", "restarts",
                     "detected SDC", "residual"])
    for out in outcomes:
        cfg = out.spec.config
        if out.record.ok:
            report = out.result
            blocks.append(report.render())
            summary.add_row(cfg.seed, "ok", len(report.trace),
                            report.outcome.get("solver restarts", "-"),
                            report.outcome.get("solver detected SDC", "-"),
                            report.outcome.get("solver residual", "-"))
        else:
            summary.add_row(cfg.seed, "ISOLATED", "-", "-", "-", "-")
    failures = outcomes_trace(outcomes)
    blocks.append(summary.render())
    if len(failures):
        blocks.append("isolated jobs (fault-plane vocabulary):\n"
                      + failures.to_text().rstrip())
    return "\n\n".join(blocks)


def _poll_kernel(ctx):
    """Demo data-mover kernel: a fixed run of small DRAM reads."""
    buf = ctx.arg("buf")
    l1 = ctx.arg("l1")
    for _ in range(ctx.arg("n")):
        yield from ctx.noc_read_buffer(buf, 0, l1, 64)
        yield from ctx.noc_async_read_barrier()


def run_hang_demo(seed: int = 0, timeout_s: float = 1e-3,
                  trace: Optional[FaultTrace] = None) -> DeviceHangError:
    """Inject a kernel hang and let the ``Finish`` watchdog catch it.

    Two cores run the same polling kernel; one wedges mid-run (the hang
    lands on its dm0 slot at a seeded simulated time).  Returns the
    :class:`DeviceHangError` the watchdog raised — its ``stalls`` name the
    wedged core.  Raises ``RuntimeError`` if the watchdog failed to fire.
    """
    log = trace if trace is not None else FaultTrace()
    device = GrayskullDevice(dram_bank_capacity=_BANK_BYTES)
    # One deterministic hang on core (0,0)'s reader, early in the run.
    plan = FaultPlan(seed=seed, hangs=(
        KernelHang(t=timeout_s / 100, core=(0, 0), slot="dm0"),))
    FaultInjector(device, plan, trace=log).install()

    buf = create_buffer(device, 4096)
    program = Program(device)
    for coord in ((0, 0), (1, 0)):
        core = device.core(*coord)
        l1 = core.allocate_l1(1024)
        CreateKernel(program, _poll_kernel, core, "dm0",
                     args={"buf": buf, "l1": l1, "n": 64})
    EnqueueProgram(device, program)
    try:
        Finish(device, timeout_s=timeout_s)
    except DeviceHangError as err:
        log.record(device.sim.now, "watchdog", "Finish", "fired",
                   f"stalled={len(err.stalls)}")
        return err
    raise RuntimeError("watchdog did not fire")  # pragma: no cover
