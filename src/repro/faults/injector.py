"""Applies a :class:`~repro.faults.plan.FaultPlan` to a simulated device.

``FaultInjector.install()`` attaches itself as ``device.fault_injector``
(the hook the host enqueue operations probe for PCIe corruption) and
schedules every device-level fault at its planned *simulated* time via
:class:`~repro.sim.Timeout` callbacks — injection order is part of the
event heap, so replays are deterministic.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.analysis.resilience import FaultTrace
from repro.arch.device import GrayskullDevice
from repro.faults.plan import (DramBitFlip, FaultPlan, KernelHang, NocFault,
                               PcieCorruption)

__all__ = ["FaultInjector"]


class FaultInjector:
    """Arms a plan's device-level faults and logs them to a trace."""

    def __init__(self, device: GrayskullDevice, plan: FaultPlan,
                 trace: Optional[FaultTrace] = None, ecc: bool = False):
        self.device = device
        self.plan = plan
        self.trace = trace if trace is not None else FaultTrace()
        self.ecc = ecc
        self._pcie_by_index: Dict[int, PcieCorruption] = {
            c.index: c for c in plan.pcie}
        self._pcie_seen = 0
        self._installed = False

    # -- lifecycle ---------------------------------------------------------
    def install(self) -> "FaultInjector":
        """Register on the device and schedule the timed faults."""
        if self._installed:
            raise RuntimeError("injector already installed")
        self._installed = True
        self.device.fault_injector = self  # type: ignore[attr-defined]
        if self.ecc:
            for bank in self.device.dram.banks:
                bank.ecc_enabled = True
        sim = self.device.sim
        for flip in self.plan.dram:
            sim.timeout(flip.t).add_callback(
                lambda _e, f=flip: self._apply_dram(f))
        for fault in self.plan.noc:
            sim.timeout(fault.t).add_callback(
                lambda _e, f=fault: self._apply_noc(f))
        for hang in self.plan.hangs:
            sim.timeout(hang.t).add_callback(
                lambda _e, h=hang: self._apply_hang(h))
        return self

    def uninstall(self) -> None:
        if getattr(self.device, "fault_injector", None) is self:
            self.device.fault_injector = None  # type: ignore[attr-defined]

    # -- timed device faults ----------------------------------------------
    def _apply_dram(self, flip: DramBitFlip) -> None:
        bank = self.device.dram.bank(flip.bank_id)
        addr = flip.addr % bank.capacity
        bank.inject_bit_flip(addr, flip.bit)
        self.trace.record(self.device.sim.now, "dram.bitflip",
                          f"bank{flip.bank_id}@{addr:#x}.bit{flip.bit}",
                          "injected")

    def _apply_noc(self, fault: NocFault) -> None:
        noc = self.device.noc0 if fault.noc_id == 0 else self.device.noc1

        def consumed(kind: str, extra_s: float, t: float) -> None:
            self.trace.record(t, f"noc.{kind}", f"noc{fault.noc_id}",
                              "consumed", f"extra={extra_s:.9g}")

        noc.inject_fault(fault.kind, fault.delay_s, hook=consumed)
        self.trace.record(self.device.sim.now, f"noc.{fault.kind}",
                          f"noc{fault.noc_id}", "armed",
                          f"delay={fault.delay_s:.9g}")

    def scrub_banks(self) -> Tuple[int, int]:
        """Sweep every DRAM bank through a full read.

        Reading drives the ECC scrubber over each injected flip; the
        per-flip verdicts are appended to the trace.  Returns
        ``(corrected, uncorrectable)`` totals across all banks.
        """
        banks = self.device.dram.banks
        for bank in banks:
            bank.read(0, bank.capacity)
        corrected = sum(b.ecc_corrected for b in banks)
        uncorrectable = sum(b.ecc_uncorrectable for b in banks)
        now = self.device.sim.now
        for _ in range(corrected):
            self.trace.record(now, "dram.bitflip", "scrub", "corrected")
        for _ in range(uncorrectable):
            self.trace.record(now, "dram.bitflip", "scrub", "uncorrectable")
        return corrected, uncorrectable

    def _apply_hang(self, hang: KernelHang) -> None:
        x, y = hang.core
        self.device.core(x, y).inject_hang(hang.slot)
        self.trace.record(self.device.sim.now, "kernel.hang",
                          f"core{x},{y}.{hang.slot}", "injected")

    # -- host-transfer hooks (called by Enqueue{Write,Read}Buffer) --------
    def corrupt_pcie(self, nbytes: int) -> Optional[Tuple[int, int]]:
        """Per-transfer corruption decision; ``None`` means clean.

        Each call is one transfer attempt (retries count), matched against
        the plan's transfer indices.
        """
        idx = self._pcie_seen
        self._pcie_seen += 1
        hit = self._pcie_by_index.get(idx)
        if hit is None:
            return None
        self.trace.record(self.device.sim.now, "pcie.corruption",
                          f"transfer{idx}", "injected",
                          f"byte={hit.byte % max(1, nbytes)}.bit{hit.bit}")
        return (hit.byte, hit.bit)

    def record_pcie_retry(self, attempt: int, delay_s: float) -> None:
        self.trace.record(self.device.sim.now, "pcie.corruption",
                          f"attempt{attempt}", "retried",
                          f"backoff={delay_s:.9g}")
