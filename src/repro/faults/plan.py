"""Seeded, deterministic fault plans.

A :class:`FaultPlan` is the single source of truth for every injected
fault in a campaign: DRAM bit-flips, NoC disturbances, kernel hangs,
PCIe transfer corruption, solver-state bit-flips and whole-core failures.
Plans are frozen value objects generated from one integer seed via
``random.Random`` — sim time and iteration indices only, never
wall-clock — so replaying a plan reproduces the campaign bit-for-bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, fields
from typing import Tuple

__all__ = [
    "DramBitFlip",
    "NocFault",
    "KernelHang",
    "PcieCorruption",
    "SolverBitFlip",
    "CoreFailure",
    "CardFailure",
    "FaultPlan",
]

#: bf16 bit positions whose flip is guaranteed detectable for fields in
#: [0, 1]: the top exponent bit turns any such value into >= 2.0 (or inf),
#: violating the discrete-maximum-principle range check.
_DETECTABLE_BIT = 14


@dataclass(frozen=True)
class DramBitFlip:
    """One DRAM soft error at simulated time ``t``."""

    t: float
    bank_id: int
    addr: int
    bit: int            #: 0..7 within the byte


@dataclass(frozen=True)
class NocFault:
    """A one-shot NoC disturbance armed at simulated time ``t``."""

    t: float
    noc_id: int         #: 0 or 1
    kind: str           #: "delay" or "drop"
    delay_s: float


@dataclass(frozen=True)
class KernelHang:
    """Wedge one kernel slot of one core at simulated time ``t``."""

    t: float
    core: Tuple[int, int]
    slot: str           #: dm0 / dm1 / compute


@dataclass(frozen=True)
class PcieCorruption:
    """Corrupt the ``index``-th host<->DRAM transfer (0-based)."""

    index: int
    byte: int           #: byte offset (taken modulo the transfer size)
    bit: int            #: 0..7


@dataclass(frozen=True)
class SolverBitFlip:
    """Flip one bit of one interior BF16 element after ``iteration``."""

    iteration: int
    row: int            #: interior row (0-based)
    col: int            #: interior column (0-based)
    bit: int            #: 0..15 in the BF16 pattern


@dataclass(frozen=True)
class CoreFailure:
    """Decomposition core ``(iy, ix)`` dies after ``iteration``."""

    iteration: int
    iy: int
    ix: int


@dataclass(frozen=True)
class CardFailure:
    """Cluster card ``(iy, ix)`` dies before computing ``iteration``.

    The card-level analogue of :class:`CoreFailure`: ``(iy, ix)`` is a
    coordinate in the ``cards_y × cards_x`` decomposition of
    :class:`repro.cluster.ClusterSolver`, which either remaps the dead
    card's block onto a survivor (checkpointing enabled) or sheds loudly
    with ``CardFailedError``.
    """

    iteration: int
    iy: int
    ix: int


@dataclass(frozen=True)
class FaultPlan:
    """Everything a campaign will inject, as immutable tuples."""

    seed: int
    dram: Tuple[DramBitFlip, ...] = ()
    noc: Tuple[NocFault, ...] = ()
    hangs: Tuple[KernelHang, ...] = ()
    pcie: Tuple[PcieCorruption, ...] = ()
    solver: Tuple[SolverBitFlip, ...] = ()
    core_failures: Tuple[CoreFailure, ...] = ()
    card_failures: Tuple[CardFailure, ...] = ()

    @classmethod
    def generate(cls, seed: int, *,
                 n_dram_flips: int = 0,
                 n_noc_faults: int = 0,
                 n_hangs: int = 0,
                 n_pcie: int = 0,
                 n_solver_flips: int = 0,
                 n_core_failures: int = 0,
                 n_card_failures: int = 0,
                 horizon_s: float = 1e-3,
                 n_banks: int = 8,
                 bank_bytes: int = 1 << 20,
                 grid: Tuple[int, int] = (12, 9),
                 iterations: int = 100,
                 interior: Tuple[int, int] = (64, 64),
                 cores: Tuple[int, int] = (1, 1),
                 cards: Tuple[int, int] = (1, 1),
                 pcie_transfers: int = 8) -> "FaultPlan":
        """Draw a plan from one seed (``random.Random``, no wall-clock).

        ``horizon_s`` bounds device-level fault times; ``interior`` is the
        solver's ``(ny, nx)``; ``cores`` its decomposition.  Solver flips
        target the top exponent bit so each is detectable by the solver's
        range check — campaigns that want silent low-bit flips construct
        :class:`SolverBitFlip` entries directly.
        """
        rng = random.Random(seed)
        ny, nx = interior
        cy, cx = cores
        dram = tuple(sorted(
            (DramBitFlip(t=rng.uniform(0.0, horizon_s),
                         bank_id=rng.randrange(n_banks),
                         addr=rng.randrange(bank_bytes),
                         bit=rng.randrange(8))
             for _ in range(n_dram_flips)),
            key=lambda f: (f.t, f.bank_id, f.addr)))
        noc = tuple(sorted(
            (NocFault(t=rng.uniform(0.0, horizon_s),
                      noc_id=rng.randrange(2),
                      kind=rng.choice(("delay", "drop")),
                      delay_s=rng.uniform(0.0, horizon_s / 10))
             for _ in range(n_noc_faults)),
            key=lambda f: (f.t, f.noc_id)))
        hangs = tuple(sorted(
            (KernelHang(t=rng.uniform(0.0, horizon_s),
                        core=(rng.randrange(grid[0]),
                              rng.randrange(max(1, grid[1] - 1))),
                        slot=rng.choice(("dm0", "dm1", "compute")))
             for _ in range(n_hangs)),
            key=lambda f: (f.t, f.core)))
        pcie = tuple(sorted(
            {rng.randrange(pcie_transfers) for _ in range(n_pcie)}))
        pcie = tuple(PcieCorruption(index=i, byte=rng.randrange(1 << 16),
                                    bit=rng.randrange(8)) for i in pcie)
        solver = tuple(sorted(
            (SolverBitFlip(iteration=rng.randrange(max(1, iterations)),
                           row=rng.randrange(ny), col=rng.randrange(nx),
                           bit=_DETECTABLE_BIT)
             for _ in range(n_solver_flips)),
            key=lambda f: (f.iteration, f.row, f.col)))
        failures = []
        seen = set()
        while len(failures) < min(n_core_failures, cy * cx - 1):
            iy, ix = rng.randrange(cy), rng.randrange(cx)
            if (iy, ix) in seen:
                continue
            seen.add((iy, ix))
            failures.append(CoreFailure(
                iteration=rng.randrange(max(1, iterations)), iy=iy, ix=ix))
        failures.sort(key=lambda f: (f.iteration, f.iy, f.ix))
        card_failures = []
        seen_cards = set()
        # Same draw discipline as core failures: distinct targets, at
        # least one card always survives.
        while len(card_failures) < min(n_card_failures,
                                       cards[0] * cards[1] - 1):
            iy, ix = rng.randrange(cards[0]), rng.randrange(cards[1])
            if (iy, ix) in seen_cards:
                continue
            seen_cards.add((iy, ix))
            card_failures.append(CardFailure(
                iteration=rng.randrange(max(1, iterations)), iy=iy, ix=ix))
        card_failures.sort(key=lambda f: (f.iteration, f.iy, f.ix))
        return cls(seed=seed, dram=dram, noc=noc, hangs=hangs, pcie=pcie,
                   solver=solver, core_failures=tuple(failures),
                   card_failures=tuple(card_failures))

    # -- introspection ----------------------------------------------------
    @property
    def n_faults(self) -> int:
        return (len(self.dram) + len(self.noc) + len(self.hangs)
                + len(self.pcie) + len(self.solver)
                + len(self.core_failures) + len(self.card_failures))

    def to_dict(self) -> dict:
        """JSON-ready rendering (stable key order)."""
        def row(obj):
            return {f.name: getattr(obj, f.name) for f in fields(obj)}
        return {
            "seed": self.seed,
            "dram": [row(f) for f in self.dram],
            "noc": [row(f) for f in self.noc],
            "hangs": [row(f) for f in self.hangs],
            "pcie": [row(f) for f in self.pcie],
            "solver": [row(f) for f in self.solver],
            "core_failures": [row(f) for f in self.core_failures],
            "card_failures": [row(f) for f in self.card_failures],
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output (tuples restored).

        The inverse is exact: ``FaultPlan.from_dict(p.to_dict()) == p``,
        which is what lets a serve chaos trace header carry its fault
        plan and replay it bit-for-bit.
        """
        def rows(key, typ):
            out = []
            for row in doc.get(key, []):
                kw = dict(row)
                if "core" in kw:
                    kw["core"] = tuple(kw["core"])
                out.append(typ(**kw))
            return tuple(out)
        return cls(seed=int(doc["seed"]),
                   dram=rows("dram", DramBitFlip),
                   noc=rows("noc", NocFault),
                   hangs=rows("hangs", KernelHang),
                   pcie=rows("pcie", PcieCorruption),
                   solver=rows("solver", SolverBitFlip),
                   core_failures=rows("core_failures", CoreFailure),
                   card_failures=rows("card_failures", CardFailure))

    def describe(self) -> str:
        return (f"FaultPlan(seed={self.seed}): "
                f"{len(self.dram)} DRAM flip(s), {len(self.noc)} NoC "
                f"fault(s), {len(self.hangs)} hang(s), {len(self.pcie)} "
                f"PCIe corruption(s), {len(self.solver)} solver flip(s), "
                f"{len(self.core_failures)} core failure(s), "
                f"{len(self.card_failures)} card failure(s)")
