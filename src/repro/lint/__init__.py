"""``repro.lint`` — static verification of device kernels and programs.

The paper's hardest bugs are protocol bugs: a missing
``noc_async_read_barrier`` publishes garbage, an unbalanced CB loop
deadlocks the Fig.-3 pipeline, a misaligned DRAM read silently returns
shifted bytes (Listing 4).  This package catches those *before* the
simulator runs:

* per-kernel rules (K101..K106) interpret the kernel's AST into a
  symbolic API trace (:mod:`repro.lint.trace`) and check CB pairing,
  NoC barrier ordering, read-alias discipline and address alignment;
* program rules (P201..P207) join the traces of all kernels on a core
  with the host-side configuration (CBs, runtime args, L1 layout,
  DRAM buffers) and check the producer/consumer graph, page-count
  deadlocks, L1 overlaps and buffer-offset alignment;
* launch rules (R301..R305, :mod:`repro.lint.concurrency`) build a
  happens-before graph over *every* core of a launch and check for
  cross-core NoC races, multicast overlaps, lost semaphore signals and
  global circular-wait deadlocks — each finding carrying a replayable
  counterexample schedule (``repro lint --witness``);
* the Python-source determinism audit (:mod:`repro.lint.pysource`,
  ``repro lint --py``) walks the host-side package for wall-clock
  imports and unseeded RNG use.

``EnqueueProgram`` runs the pass automatically (warn by default,
``lint="strict"`` or ``REPRO_LINT=strict`` raises :class:`LintError`,
``lint="off"``/``REPRO_LINT=off`` disables), and ``python -m repro
lint`` sweeps every shipped kernel and example.  See
``docs/lint_rules.md`` for the full rule catalogue.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import List

from .concurrency import concurrency_findings
from .findings import Finding, LintError, LintReport, LintWarning, Severity
from .registry import RULES, Rule, all_rules, make_finding
from .rules_kernel import kernel_findings, lint_kernel
from .rules_program import lint_l1_regions, program_findings
from .trace import KernelTrace, extract_trace
from .witness import ReplayResult, Witness, WitnessStep, replay_witness

__all__ = [
    "Finding", "LintError", "LintReport", "LintWarning", "Severity",
    "Rule", "RULES", "all_rules",
    "lint_kernel", "lint_program", "lint_l1_regions",
    "concurrency_findings",
    "Witness", "WitnessStep", "ReplayResult", "replay_witness",
    "extract_trace", "KernelTrace",
    "capture", "deliver",
]

# active capture() collectors (innermost last); when one is active,
# EnqueueProgram routes findings here instead of warning/raising
_collectors: List[LintReport] = []


@contextmanager
def capture():
    """Collect lint findings from ``EnqueueProgram`` calls in a block.

    Used by the ``repro lint`` CLI to sweep programs without spamming
    warnings::

        with lint.capture() as report:
            EnqueueProgram(device, program)
        print(report.render())
    """
    report = LintReport(scope="capture")
    _collectors.append(report)
    try:
        yield report
    finally:
        _collectors.remove(report)


def deliver(report: LintReport) -> bool:
    """Hand a report to the active collector; False when none is active."""
    if not _collectors:
        return False
    _collectors[-1].extend(report.findings)
    return True


def lint_program(program) -> LintReport:
    """Run all kernel, program and launch rules over an assembled Program."""
    findings: List[Finding] = []
    for spec in getattr(program, "kernels", []):
        findings.extend(kernel_findings(extract_trace(spec.fn)))
    findings.extend(program_findings(program))
    findings.extend(concurrency_findings(program))
    # the same kernel fn on many cores yields identical findings: dedupe
    report = LintReport(scope="program")
    report.findings = list(dict.fromkeys(findings))
    return report
