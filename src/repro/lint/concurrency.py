"""Whole-program concurrency verification: the R3xx launch rules.

The per-kernel (K1xx) and per-core (P2xx) rules treat each kernel and
each core in isolation; cross-core hazards — a NoC write racing a read
on another core, a semaphore nobody signals, a circular wait spanning
the grid — are invisible to them.  This pass builds a *happens-before
graph* over every kernel of a launch and checks it:

Nodes
    One per synchronization-relevant symbolic API call: NoC reads /
    writes / multicasts, read/write barriers, semaphore set/inc/wait,
    CB reserve/push/wait/pop.  Nodes come from the cached context-free
    :func:`repro.lint.trace.extract_trace` skeletons; per-spec runtime
    args (``ctx.arg``) are resolved at linearization time, the same way
    the P2xx rules bind ``ArgVal`` operands.

Edges (all conservative over-approximations — an extra edge can only
*suppress* a finding, never create one, which is the fail-open
direction)
    * program order within one kernel;
    * every ``semaphore_inc``/``semaphore_set`` to every
      ``semaphore_wait`` on the same semaphore identity, launch-wide;
    * CB producer/consumer coupling per (core, cb): ``cb_push_back`` to
      ``cb_wait_front`` and ``cb_pop_front`` to ``cb_reserve_back``;
    * async NoC ops *commit* at their next same-direction barrier in
      program order — an uncommitted write orders nothing.

Rules
    R301  cross-core write/write race on overlapping byte intervals
    R302  cross-core write/read race on overlapping byte intervals
    R303  multicast-destination overlap race
    R304  lost or mismatched semaphore signal
    R305  global circular-wait deadlock (abstract round-robin execution
          of fully straight-line launches; generalizes the per-core
          P203 page-count check)

Every finding carries a :class:`repro.lint.witness.Witness` — a
concrete minimal interleaving the DES can replay (``repro lint
--witness``) to confirm the hazard dynamically.  Race witnesses are
only emitted at *prefix-exact* trace positions (no loop, branch,
opaque region or desugared call earlier in program order), so the
symbolic call index equals the runtime API-call count and the replay
governor can stop the kernel at exactly the witnessed call.

Fail-open policy: statically-unknown addresses, semaphore identities,
CB ids or any opaque/truncated trace suppress the affected rules for
the launch rather than guess.  Launches on fewer than two distinct
cores are skipped outright — every R3xx hazard needs two cores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .findings import Finding
from .registry import make_finding
from .trace import (ArgVal, Branch, Call, Const, Loop, NocAddrVal, ObjVal,
                    Opaque, const_int, extract_trace)
from .witness import Witness, WitnessStep

__all__ = ["concurrency_findings"]

#: fail-open cap on linearized events per launch
_MAX_EVENTS = 40_000
#: fail-open cap on abstract-execution steps (R305)
_MAX_ABSTRACT_STEPS = 10_000
#: longest schedule prefix serialized into a hang witness
_MAX_WITNESS_STEPS = 64

_READ_OPS = frozenset({
    "noc_async_read", "noc_read_buffer", "noc_read_buffer_burst",
    "noc_read_buffer_burst_uniform"})
_WRITE_OPS = frozenset({
    "noc_async_write", "noc_write_buffer", "noc_write_buffer_burst",
    "noc_write_buffer_burst_uniform", "noc_sram_write",
    "noc_sram_write_multicast"})
#: ops the symbolic tracer desugars (one runtime call, several trace
#: calls) — they break the index alignment witnesses depend on
_DESUGARED_OPS = frozenset({"cb_set_rd_ptr", "cb_set_rd_ptrs"})

_KINDS = {
    "noc_async_write_barrier": "wbar",
    "noc_async_read_barrier": "rbar",
    "semaphore_wait": "sem_wait",
    "semaphore_inc": "sem_inc",
    "semaphore_set": "sem_set",
    "cb_reserve_back": "cb_reserve",
    "cb_push_back": "cb_push",
    "cb_wait_front": "cb_wait",
    "cb_pop_front": "cb_pop",
}


def _kind(op: str) -> str:
    if op in _WRITE_OPS:
        return "write"
    if op in _READ_OPS:
        return "read"
    return _KINDS.get(op, "other")


# --------------------------------------------------------------------------
# per-trace skeleton (context-free, cached on the KernelTrace)
# --------------------------------------------------------------------------

@dataclass
class _Skel:
    """One linearized call with its program-position flags."""

    call: Call
    index: Optional[int]   #: runtime API-call count, None once inexact
    guarded: bool          #: inside a Branch arm
    looped: bool           #: inside a Loop body


@dataclass
class _Skeleton:
    events: List[_Skel]
    static: bool           #: fully straight-line (R305 precondition)
    opaque: bool           #: trace unavailable/truncated or has Opaque


def _skeleton(trace) -> _Skeleton:
    cached = getattr(trace, "_concurrency_skel", None)
    if cached is not None:
        return cached
    events: List[_Skel] = []
    state = {"index": 0, "exact": True, "static": True, "opaque": False}

    def walk(nodes, guarded: bool, looped: bool) -> None:
        for node in nodes:
            if isinstance(node, Call):
                if node.name in _DESUGARED_OPS:
                    state["exact"] = False
                    state["static"] = False
                if node.star:
                    state["static"] = False
                index = None
                if state["exact"] and not guarded and not looped:
                    index = state["index"]
                    state["index"] += 1
                events.append(_Skel(node, index, guarded, looped))
            elif isinstance(node, Loop):
                state["exact"] = False
                state["static"] = False
                walk(node.body, guarded, True)
            elif isinstance(node, Branch):
                state["exact"] = False
                state["static"] = False
                for arm in node.arms:
                    walk(arm, True, looped)
            elif isinstance(node, Opaque):
                state["exact"] = False
                state["static"] = False
                state["opaque"] = True

    walk(trace.nodes, False, False)
    if trace.unavailable or trace.truncated:
        state["opaque"] = True
        state["static"] = False
    skeleton = _Skeleton(events, static=state["static"],
                         opaque=state["opaque"])
    trace._concurrency_skel = skeleton
    return skeleton


# --------------------------------------------------------------------------
# per-spec resolution
# --------------------------------------------------------------------------

_UNRESOLVED = object()


def _resolve(value, spec):
    """Bind a symbolic operand against one kernel spec's runtime args."""
    if isinstance(value, Const):
        return value.value
    if isinstance(value, ArgVal):
        args = spec.args or {}
        return args[value.name] if value.name in args else _UNRESOLVED
    if isinstance(value, ObjVal):
        return value.obj
    return _UNRESOLVED


@dataclass
class _Event:
    """One resolved happens-before node."""

    eid: int
    label: str
    core_key: int
    kernel_idx: int
    op: str
    kind: str
    call: Call
    index: Optional[int]
    guarded: bool
    looped: bool
    sem: object = None            #: identity tuple, None when unknown
    sem_obj: object = None        #: live shared Semaphore, if any
    value: Optional[int] = None   #: sem threshold/amount or CB page count
    cb_key: object = None         #: (core_key, cb_id), None when unknown
    intervals: Tuple = ()         #: ((space, key, lo, hi), ...) or ()
    multicast: bool = False
    commit_eid: Optional[int] = None


def _sem_identity(call: Call, spec, core_key: int, disp: Dict):
    """Resolve a semaphore operand to a launch-wide identity."""
    from repro.sim.resources import Semaphore

    resolved = _resolve(call.operand(0, "sem"), spec)
    if isinstance(resolved, int) and not isinstance(resolved, bool):
        ident = ("local", core_key, resolved)
        disp[ident] = f"{resolved} on core {spec.core.coord}"
        return ident, None
    if isinstance(resolved, Semaphore):
        ident = ("shared", id(resolved))
        disp[ident] = (f"{resolved.name!r}" if resolved.name
                       else "a shared semaphore")
        return ident, resolved
    return None, None


def _intervals_for(call: Call, spec, disp: Dict) -> Optional[Tuple]:
    """Concrete (space, key, lo, hi) byte intervals, or None if unknown."""
    from repro.ttmetal.buffers import Buffer
    from repro.ttmetal.kernel_api import NocAddr

    name = call.name
    if call.star:
        return None
    if name in ("noc_async_read", "noc_async_write"):
        pos = 0 if name == "noc_async_read" else 1
        addr_v = call.operand(pos, "noc_addr")
        size = const_int(call.operand(2, "size"))
        bank = addr = None
        if isinstance(addr_v, NocAddrVal):
            addr = const_int(addr_v.addr)
            if addr_v.bank is not None:
                bank = const_int(addr_v.bank)
        else:
            live = _resolve(addr_v, spec)
            if isinstance(live, NocAddr):
                bank, addr = int(live.bank_id), int(live.addr)
        if bank is None or addr is None or size is None:
            return None
        disp[("dram", bank)] = f"DRAM bank {bank}"
        return (("dram", bank, addr, addr + size),)
    if name in ("noc_read_buffer", "noc_write_buffer"):
        buf = _resolve(call.operand(0, "buf"), spec)
        offset = const_int(call.operand(1, "offset"))
        size = const_int(call.operand(3, "size"))
        if not isinstance(buf, Buffer) or offset is None or size is None:
            return None
        if buf.interleaved:
            disp[("buf", id(buf))] = "one interleaved DRAM buffer"
            return (("buf", id(buf), offset, offset + size),)
        disp[("dram", buf.bank_id)] = f"DRAM bank {buf.bank_id}"
        base = buf.addr + offset
        return (("dram", buf.bank_id, base, base + size),)
    if name == "noc_sram_write":
        dst = _resolve(call.operand(0, "dst_core"), spec)
        dst_l1 = const_int(call.operand(1, "dst_l1"))
        size = const_int(call.operand(3, "size"))
        if not hasattr(dst, "sram") or dst_l1 is None or size is None:
            return None
        disp[("l1", id(dst))] = f"core {dst.coord} L1"
        return (("l1", id(dst), dst_l1, dst_l1 + size),)
    if name == "noc_sram_write_multicast":
        dsts = _resolve(call.operand(0, "dst_cores"), spec)
        dst_l1 = const_int(call.operand(1, "dst_l1"))
        size = const_int(call.operand(3, "size"))
        if not isinstance(dsts, (list, tuple)) or dst_l1 is None \
                or size is None or not dsts:
            return None
        out = []
        for dst in dsts:
            if not hasattr(dst, "sram"):
                return None
            disp[("l1", id(dst))] = f"core {dst.coord} L1"
            out.append(("l1", id(dst), dst_l1, dst_l1 + size))
        return tuple(out)
    return None             # bursts and friends: statically unknown


def _sem_value(call: Call, kind: str) -> Optional[int]:
    if kind == "sem_inc":
        operand = call.operand(1, "n")
        if operand is None:
            return None if call.star else 1
        return const_int(operand)
    return const_int(call.operand(1, "value"))


def _cb_n(call: Call) -> Optional[int]:
    operand = call.operand(1, "n")
    if operand is None:
        return None if call.star else 1
    return const_int(operand)


# --------------------------------------------------------------------------
# the pass
# --------------------------------------------------------------------------

@dataclass
class _Launch:
    """Everything the rules need about one linearized launch."""

    events: List[_Event] = field(default_factory=list)
    kernels: List[tuple] = field(default_factory=list)  #: (label, evs, skel)
    disp: Dict = field(default_factory=dict)
    sem_ok: bool = True     #: every sem operand resolved to an identity
    cb_ok: bool = True      #: every CB operand resolved to a const id
    succ: Dict[int, List[int]] = field(default_factory=dict)


def _linearize(program) -> Optional[_Launch]:
    launch = _Launch()
    for kernel_idx, spec in enumerate(program.kernels):
        trace = extract_trace(spec.fn)
        skeleton = _skeleton(trace)
        if skeleton.opaque:
            return None         # an opaque kernel could order anything
        label = (f"{getattr(spec.fn, '__name__', 'kernel')}@"
                 f"{spec.core.coord}/{spec.slot}")
        core_key = id(spec.core)
        evs: List[_Event] = []
        for skel in skeleton.events:
            kind = _kind(skel.call.name)
            if kind == "other":
                continue
            ev = _Event(eid=len(launch.events), label=label,
                        core_key=core_key, kernel_idx=kernel_idx,
                        op=skel.call.name, kind=kind, call=skel.call,
                        index=skel.index, guarded=skel.guarded,
                        looped=skel.looped)
            if kind.startswith("sem_"):
                ev.sem, ev.sem_obj = _sem_identity(
                    skel.call, spec, core_key, launch.disp)
                ev.value = _sem_value(skel.call, kind)
                if ev.sem is None:
                    launch.sem_ok = False
            elif kind.startswith("cb_"):
                cb = const_int(skel.call.operand(0, "cb_id"))
                if cb is None:
                    launch.cb_ok = False
                else:
                    ev.cb_key = (core_key, cb)
                ev.value = _cb_n(skel.call)
            elif kind in ("read", "write"):
                intervals = _intervals_for(skel.call, spec, launch.disp)
                ev.intervals = intervals or ()
                ev.multicast = skel.call.name == "noc_sram_write_multicast"
            evs.append(ev)
            launch.events.append(ev)
            if len(launch.events) > _MAX_EVENTS:
                return None     # scale cap: fail open
        # commit points: next same-direction barrier in program order
        next_wbar = next_rbar = None
        for ev in reversed(evs):
            if ev.kind == "wbar":
                next_wbar = ev.eid
                ev.commit_eid = ev.eid
            elif ev.kind == "rbar":
                next_rbar = ev.eid
                ev.commit_eid = ev.eid
            elif ev.kind == "write":
                ev.commit_eid = next_wbar
            elif ev.kind == "read":
                ev.commit_eid = next_rbar
            else:
                ev.commit_eid = ev.eid
        launch.kernels.append((label, evs, skeleton))
    return launch


def _build_edges(launch: _Launch) -> None:
    succ = {ev.eid: [] for ev in launch.events}
    for _label, evs, _skel in launch.kernels:
        for a, b in zip(evs, evs[1:]):
            succ[a.eid].append(b.eid)
    waits: Dict[object, List[int]] = {}
    cb_targets: Dict[tuple, List[int]] = {}
    for ev in launch.events:
        if ev.kind == "sem_wait" and ev.sem is not None:
            waits.setdefault(ev.sem, []).append(ev.eid)
        elif ev.kind in ("cb_wait", "cb_reserve") and ev.cb_key is not None:
            cb_targets.setdefault((ev.cb_key, ev.kind), []).append(ev.eid)
    for ev in launch.events:
        if ev.kind in ("sem_inc", "sem_set") and ev.sem is not None:
            succ[ev.eid].extend(waits.get(ev.sem, ()))
        elif ev.kind == "cb_push" and ev.cb_key is not None:
            succ[ev.eid].extend(cb_targets.get((ev.cb_key, "cb_wait"), ()))
        elif ev.kind == "cb_pop" and ev.cb_key is not None:
            succ[ev.eid].extend(cb_targets.get((ev.cb_key, "cb_reserve"),
                                               ()))
    launch.succ = succ


def _ordered(launch: _Launch, a: _Event, b: _Event) -> bool:
    """Is there a happens-before path from a's commit to b's issue?"""
    start = a.commit_eid
    if start is None:
        return False            # never committed: orders nothing
    target = b.eid
    seen = {start}
    frontier = [start]
    while frontier:
        nxt: List[int] = []
        for eid in frontier:
            for succ in launch.succ[eid]:
                if succ == target:
                    return True
                if succ not in seen:
                    seen.add(succ)
                    nxt.append(succ)
        frontier = nxt
    return False


# --------------------------------------------------------------------------
# R301 / R302 / R303: races
# --------------------------------------------------------------------------

def _race_findings(launch: _Launch) -> List[Finding]:
    findings: List[Finding] = []
    by_space: Dict[tuple, List[tuple]] = {}
    for ev in launch.events:
        if ev.kind not in ("read", "write") or not ev.intervals \
                or ev.guarded or ev.looped or ev.index is None:
            continue
        for space, key, lo, hi in ev.intervals:
            by_space.setdefault((space, key), []).append((ev, lo, hi))
    seen_pairs = set()
    for space_key, accesses in by_space.items():
        for i in range(len(accesses)):
            for j in range(i + 1, len(accesses)):
                a, lo_a, hi_a = accesses[i]
                b, lo_b, hi_b = accesses[j]
                if a.core_key == b.core_key:
                    continue    # cross-core rules only
                if a.kind == "read" and b.kind == "read":
                    continue
                if not (lo_a < hi_b and lo_b < hi_a):
                    continue
                pair = (min(a.eid, b.eid), max(a.eid, b.eid))
                if pair in seen_pairs:
                    continue
                seen_pairs.add(pair)
                if _ordered(launch, a, b) or _ordered(launch, b, a):
                    continue
                if a.multicast or b.multicast:
                    rule = "R303"
                elif a.kind == "write" and b.kind == "write":
                    rule = "R301"
                else:
                    rule = "R302"
                first, second = (a, b) if a.eid < b.eid else (b, a)
                witness = Witness(
                    rule_id=rule, kind="race",
                    steps=(WitnessStep(first.label, first.index, first.op,
                                       first.call.lineno),
                           WitnessStep(second.label, second.index,
                                       second.op, second.call.lineno)),
                    note=f"hold {first.label} after API call "
                         f"#{first.index}, run {second.label} through API "
                         f"call #{second.index}, then release")
                where = launch.disp[space_key]
                findings.append(make_finding(
                    rule,
                    f"{first.label} {first.op} and {second.label} "
                    f"{second.op} touch overlapping bytes "
                    f"[{max(lo_a, lo_b)}, {min(hi_a, hi_b)}) of {where} "
                    "with no happens-before ordering between them",
                    filename=first.call.filename,
                    lineno=first.call.lineno, kernel=first.label,
                    witness=witness))
    return findings


# --------------------------------------------------------------------------
# R304: lost / mismatched semaphore signals
# --------------------------------------------------------------------------

def _sem_initials(program, launch: _Launch) -> Dict[object, Optional[int]]:
    initials: Dict[object, Optional[int]] = {}
    for record in getattr(program, "semaphores", []):
        initials[("local", id(record.core), record.sem_id)] = record.initial
    cores = {id(spec.core): spec.core for spec in program.kernels}
    for ev in launch.events:
        if ev.sem is None or ev.sem in initials:
            continue
        if ev.sem[0] == "shared" and ev.sem_obj is not None:
            initials[ev.sem] = ev.sem_obj.value
        elif ev.sem[0] == "local":
            core = cores.get(ev.sem[1])
            sem = getattr(core, "semaphores", {}).get(ev.sem[2]) \
                if core is not None else None
            initials[ev.sem] = sem.value if sem is not None else None
    return initials


def _hang_witness(rule: str, ev: _Event, note: str) -> Witness:
    steps = ()
    if ev.index is not None:
        steps = (WitnessStep(ev.label, ev.index, ev.op, ev.call.lineno),)
    return Witness(rule_id=rule, kind="hang", steps=steps,
                   blocked=(ev.label,), note=note)


def _signal_findings(program, launch: _Launch) -> List[Finding]:
    findings: List[Finding] = []
    signals: Dict[object, List[_Event]] = {}
    waits: Dict[object, List[_Event]] = {}
    for ev in launch.events:
        if ev.sem is None:
            continue
        if ev.kind == "sem_wait":
            waits.setdefault(ev.sem, []).append(ev)
        elif ev.kind in ("sem_inc", "sem_set"):
            signals.setdefault(ev.sem, []).append(ev)
    initials = _sem_initials(program, launch)
    for ident, wait_evs in waits.items():
        sem_disp = launch.disp[ident]
        signal_evs = signals.get(ident, [])
        initial = initials.get(ident)
        if not signal_evs:
            for ev in wait_evs:
                if ev.value is None or initial is None \
                        or ev.value <= initial:
                    continue    # possibly already satisfied: fail open
                findings.append(make_finding(
                    "R304",
                    f"{ev.label} waits for semaphore {sem_disp} to reach "
                    f"{ev.value} (initial value {initial}) but no kernel "
                    "on this launch ever increments or sets it",
                    filename=ev.call.filename, lineno=ev.call.lineno,
                    kernel=ev.label,
                    witness=_hang_witness(
                        "R304", ev, "run the launch unmodified; the "
                        "waiter stalls until the watchdog fires")))
            continue
        # mismatched straight-line signal budget
        every = signal_evs + wait_evs
        if any(ev.looped or ev.guarded for ev in every):
            continue
        if any(ev.kind == "sem_set" for ev in signal_evs):
            continue
        if any(ev.value is None for ev in every) or initial is None:
            continue
        budget = initial + sum(ev.value for ev in signal_evs)
        worst = max(wait_evs, key=lambda ev: ev.value)
        if worst.value > budget:
            findings.append(make_finding(
                "R304",
                f"{worst.label} waits for semaphore {sem_disp} to reach "
                f"{worst.value}, but the launch-wide straight-line signal "
                f"budget is only {budget} (initial {initial} plus "
                f"{budget - initial} from semaphore_inc)",
                filename=worst.call.filename, lineno=worst.call.lineno,
                kernel=worst.label,
                witness=_hang_witness(
                    "R304", worst, "run the launch unmodified; the "
                    "under-signalled waiter stalls")))
    return findings


# --------------------------------------------------------------------------
# R305: global circular wait (abstract round-robin execution)
# --------------------------------------------------------------------------

def _configured_pages(program) -> Dict[tuple, int]:
    pages: Dict[tuple, int] = {}
    for record in getattr(program, "circular_buffers", []):
        pages[(id(record.core), record.cb_id)] = record.n_pages
    for core in program.cores:
        for cb_id, cb in getattr(core, "cbs", {}).items():
            pages.setdefault((id(core), cb_id), cb.n_pages)
    return pages


def _deadlock_findings(program, launch: _Launch) -> List[Finding]:
    if not all(skel.static for _label, _evs, skel in launch.kernels):
        return []
    pages = _configured_pages(program)
    initials = _sem_initials(program, launch)
    for ev in launch.events:
        if ev.kind.startswith("sem_") and (ev.value is None
                                           or initials.get(ev.sem) is None):
            return []
        if ev.kind.startswith("cb_") and (ev.cb_key not in pages
                                          or ev.value is None):
            return []

    free = {key: n for key, n in pages.items()}
    committed = {key: 0 for key in pages}
    sems = dict(initials)

    def enabled(ev: _Event) -> bool:
        if ev.kind == "sem_wait":
            return sems[ev.sem] >= ev.value
        if ev.kind == "cb_reserve":
            return free[ev.cb_key] >= ev.value
        if ev.kind == "cb_wait":
            return committed[ev.cb_key] >= ev.value
        return True

    def apply(ev: _Event) -> None:
        if ev.kind == "sem_inc":
            sems[ev.sem] += ev.value
        elif ev.kind == "sem_set":
            sems[ev.sem] = ev.value
        elif ev.kind == "cb_reserve":
            free[ev.cb_key] -= ev.value
        elif ev.kind == "cb_push":
            committed[ev.cb_key] += ev.value
        elif ev.kind == "cb_pop":
            committed[ev.cb_key] -= ev.value
            free[ev.cb_key] += ev.value

    kernels = [(label, evs) for label, evs, _skel in launch.kernels]
    pcs = [0] * len(kernels)
    schedule: List[_Event] = []
    steps = 0
    progress = True
    while progress:
        progress = False
        for ki, (_label, evs) in enumerate(kernels):
            while pcs[ki] < len(evs):
                ev = evs[pcs[ki]]
                if not enabled(ev):
                    break
                apply(ev)
                schedule.append(ev)
                pcs[ki] += 1
                steps += 1
                progress = True
                if steps >= _MAX_ABSTRACT_STEPS:
                    return []   # scale cap: fail open
    blocked = [(label, evs[pc]) for pc, (label, evs)
               in zip(pcs, kernels) if pc < len(evs)]
    if not blocked:
        return []

    parts = []
    for label, ev in blocked:
        if ev.kind == "sem_wait":
            parts.append(f"{label} waits for semaphore "
                         f"{launch.disp[ev.sem]} >= {ev.value}")
        elif ev.kind == "cb_reserve":
            parts.append(f"{label} waits for {ev.value} free page(s) on "
                         f"CB {ev.cb_key[1]}")
        else:
            parts.append(f"{label} waits for {ev.value} committed "
                         f"page(s) on CB {ev.cb_key[1]}")
    truncated = len(schedule) > _MAX_WITNESS_STEPS
    witness_steps = tuple(
        WitnessStep(ev.label, ev.index if ev.index is not None else -1,
                    ev.op, ev.call.lineno)
        for ev in schedule[:_MAX_WITNESS_STEPS])
    note = "abstract round-robin schedule reaching the circular wait"
    if truncated:
        note += f" (first {_MAX_WITNESS_STEPS} of {len(schedule)} steps)"
    first_label, first_ev = blocked[0]
    witness = Witness(rule_id="R305", kind="hang", steps=witness_steps,
                      blocked=tuple(label for label, _ev in blocked),
                      note=note)
    return [make_finding(
        "R305",
        "global circular wait: " + "; ".join(parts) + " — no kernel with "
        "work remaining can make progress",
        filename=first_ev.call.filename, lineno=first_ev.call.lineno,
        kernel=first_label, witness=witness)]


# --------------------------------------------------------------------------
# entry point
# --------------------------------------------------------------------------

def concurrency_findings(program) -> List[Finding]:
    """Run the R3xx launch rules over an assembled Program."""
    specs = list(getattr(program, "kernels", []))
    core_keys = {id(spec.core) for spec in specs}
    if len(core_keys) < 2:
        return []               # every R3xx hazard needs two cores
    launch = _linearize(program)
    if launch is None:
        return []               # opaque kernel or scale cap: fail open
    _build_edges(launch)

    findings: List[Finding] = []
    # Unknown semaphores or CB ids could carry the missing ordering edge,
    # so races are only claimed when the sync vocabulary fully resolved.
    if launch.sem_ok and launch.cb_ok:
        findings.extend(_race_findings(launch))
    if launch.sem_ok:
        signal = _signal_findings(program, launch)
        findings.extend(signal)
        # R305 runs only when R304 stayed silent: a lost signal already
        # explains the hang, and the abstract executor would re-report it.
        if not signal and launch.cb_ok:
            findings.extend(_deadlock_findings(program, launch))
    findings.sort(key=lambda f: (f.rule_id, f.kernel, f.lineno))
    return findings
