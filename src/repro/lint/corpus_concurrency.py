"""Seeded-violation corpus for the R3xx concurrency rules.

One minimal broken two-core program per rule.  Each builder returns a
fresh, un-enqueued ``(device, program)`` pair; linting the program must
flag *exactly* its rule (asserted by ``tests/lint/test_corpus_concurrency``
and the ``repro lint --corpus``/``--witness`` CLI paths), and every
finding's counterexample schedule must be dynamically confirmable by
:func:`repro.lint.witness.replay_witness` — races complete with both
endpoints executed in the witness window, hangs trip the Finish
watchdog with the predicted kernels stalled.

The kernels live at module level so ``inspect.getsource`` can trace
them, and they stay strictly straight-line so witness indices align
with runtime API-call counts.

``warning_program`` builds a P201-only (warning-severity) program used
by the CLI exit-code tests: warnings alone must exit 0.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

__all__ = ["CORPUS", "RULE_IDS", "build", "warning_program"]


# --------------------------------------------------------------------------
# kernels (module-level, straight-line, traceable)
# --------------------------------------------------------------------------

def _race_writer_low(ctx):
    """Writes buf[0, 64) with no cross-core ordering (R301/R302 corpus)."""
    buf = ctx.arg("buf")
    src = ctx.core.sram.allocate(64, align=32)
    yield from ctx.noc_write_buffer(buf, 0, src, 64)
    yield from ctx.noc_async_write_barrier()


def _race_writer_high(ctx):
    """Writes buf[32, 96), overlapping the low writer on [32, 64)."""
    buf = ctx.arg("buf")
    src = ctx.core.sram.allocate(64, align=32)
    yield from ctx.noc_write_buffer(buf, 32, src, 64)
    yield from ctx.noc_async_write_barrier()


def _race_reader(ctx):
    """Reads buf[0, 64) racing the low writer (R302 corpus)."""
    buf = ctx.arg("buf")
    dst = ctx.core.sram.allocate(64, align=32)
    yield from ctx.noc_read_buffer(buf, 0, dst, 64)
    yield from ctx.noc_async_read_barrier()


def _mcast_sender(ctx):
    """Multicasts 64 B into [0x8000, 0x8040) of every dst core's L1."""
    dsts = ctx.arg("dsts")
    src = ctx.core.sram.allocate(64, align=32)
    yield from ctx.noc_sram_write_multicast(dsts, 0x8000, src, 64)
    yield from ctx.noc_async_write_barrier()


def _unicast_sender(ctx):
    """Unicasts 64 B into [0x8020, 0x8060) of one multicast destination."""
    dst = ctx.arg("dst")
    src = ctx.core.sram.allocate(64, align=32)
    yield from ctx.noc_sram_write(dst, 0x8020, src, 64)
    yield from ctx.noc_async_write_barrier()


def _lost_waiter(ctx):
    """Waits on local semaphore 0, which nobody ever signals (R304)."""
    yield from ctx.semaphore_wait(0, 1)


def _bystander(ctx):
    """Harmless second-core kernel so the launch spans two cores."""
    yield from ctx.noc_async_write_barrier()


def _circular_first(ctx):
    """Waits s1 then signals s2 — half of the R305 circular wait."""
    s1 = ctx.arg("s1")
    s2 = ctx.arg("s2")
    yield from ctx.semaphore_wait(s1, 1)
    yield from ctx.semaphore_inc(s2, 1)


def _circular_second(ctx):
    """Waits s2 then signals s1 — the other half of the cycle."""
    s1 = ctx.arg("s1")
    s2 = ctx.arg("s2")
    yield from ctx.semaphore_wait(s2, 1)
    yield from ctx.semaphore_inc(s1, 1)


def _warning_producer(ctx):
    """Pushes into a CB nobody consumes (P201, warning severity)."""
    yield from ctx.cb_reserve_back(0, 1)
    yield from ctx.cb_push_back(0, 1)


# --------------------------------------------------------------------------
# builders
# --------------------------------------------------------------------------

def _device():
    from repro.arch.device import GrayskullDevice
    return GrayskullDevice(dram_bank_capacity=1 << 20)


def _two_cores(dev):
    row = dev.worker_grid(1, 2)[0]
    return row[0], row[1]


def build_r301():
    """Two cores write overlapping bytes of one DRAM buffer, unordered."""
    from repro.ttmetal import CreateKernel, Program, create_buffer
    from repro.arch.tensix import DATA_MOVER_0
    dev = _device()
    buf = create_buffer(dev, 4096, bank_id=0)
    core_a, core_b = _two_cores(dev)
    prog = Program(dev)
    CreateKernel(prog, _race_writer_low, core_a, DATA_MOVER_0, {"buf": buf})
    CreateKernel(prog, _race_writer_high, core_b, DATA_MOVER_0, {"buf": buf})
    return dev, prog


def build_r302():
    """One core reads the bytes another core writes, unordered."""
    from repro.ttmetal import CreateKernel, Program, create_buffer
    from repro.arch.tensix import DATA_MOVER_0
    dev = _device()
    buf = create_buffer(dev, 4096, bank_id=0)
    core_a, core_b = _two_cores(dev)
    prog = Program(dev)
    CreateKernel(prog, _race_writer_low, core_a, DATA_MOVER_0, {"buf": buf})
    CreateKernel(prog, _race_reader, core_b, DATA_MOVER_0, {"buf": buf})
    return dev, prog


def build_r303():
    """A multicast window overlaps an unordered unicast to one member."""
    from repro.ttmetal import CreateKernel, Program
    from repro.arch.tensix import DATA_MOVER_0
    dev = _device()
    grid = dev.worker_grid(2, 2)
    core_a, core_b = grid[0][0], grid[0][1]
    dst_c, dst_d = grid[1][0], grid[1][1]
    prog = Program(dev)
    CreateKernel(prog, _mcast_sender, core_a, DATA_MOVER_0,
                 {"dsts": [dst_c, dst_d]})
    CreateKernel(prog, _unicast_sender, core_b, DATA_MOVER_0,
                 {"dst": dst_c})
    return dev, prog


def build_r304():
    """A semaphore wait that no kernel on the launch ever signals."""
    from repro.ttmetal import CreateKernel, CreateSemaphore, Program
    from repro.arch.tensix import DATA_MOVER_0
    dev = _device()
    core_a, core_b = _two_cores(dev)
    prog = Program(dev)
    CreateSemaphore(prog, core_a, 0, 0)
    CreateKernel(prog, _lost_waiter, core_a, DATA_MOVER_0, {})
    CreateKernel(prog, _bystander, core_b, DATA_MOVER_0, {})
    return dev, prog


def build_r305():
    """Two cores wait on each other's signal: a global circular wait.

    Both semaphores *have* signalers (so R304 stays silent); the
    abstract executor still blocks both kernels at their first wait.
    """
    from repro.sim.resources import Semaphore
    from repro.ttmetal import CreateKernel, Program
    from repro.arch.tensix import DATA_MOVER_0
    dev = _device()
    core_a, core_b = _two_cores(dev)
    s1 = Semaphore(dev.sim, value=0, name="s1")
    s2 = Semaphore(dev.sim, value=0, name="s2")
    args = {"s1": s1, "s2": s2}
    prog = Program(dev)
    CreateKernel(prog, _circular_first, core_a, DATA_MOVER_0, dict(args))
    CreateKernel(prog, _circular_second, core_b, DATA_MOVER_0, dict(args))
    return dev, prog


def warning_program():
    """A warnings-only (P201) program for the CLI exit-code paths."""
    from repro.ttmetal import CreateCircularBuffer, CreateKernel, Program
    from repro.arch.tensix import DATA_MOVER_0
    dev = _device()
    core = dev.worker_grid(1, 1)[0][0]
    prog = Program(dev)
    CreateCircularBuffer(prog, core, 0, 64, 2)
    CreateKernel(prog, _warning_producer, core, DATA_MOVER_0, {})
    return dev, prog


#: rule id -> builder, in rule-id order
CORPUS: Dict[str, Callable[[], Tuple[object, object]]] = {
    "R301": build_r301,
    "R302": build_r302,
    "R303": build_r303,
    "R304": build_r304,
    "R305": build_r305,
}

RULE_IDS = tuple(CORPUS)


def build(rule_id: str):
    """Build one corpus program (also accepts the P201 warning program)."""
    if rule_id == "P201":
        return warning_program()
    try:
        return CORPUS[rule_id]()
    except KeyError:
        raise KeyError(
            f"no concurrency corpus program for {rule_id!r}; known: "
            + ", ".join([*CORPUS, "P201"])) from None
