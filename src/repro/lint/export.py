"""Schema-stable JSON export of lint reports (``repro lint --format json``).

The envelope (schema ``repro-lint/1``) follows the repo's JSON
conventions (like ``repro-faults/1`` and ``repro-serve/2``): documents
are serialized with :func:`to_json_text` (sorted keys, ``indent=1``,
trailing newline) and round-trip byte-identically —
``to_json_text(report_to_json(report_from_json(doc))) == to_json_text(doc)``.

Each finding carries its full location/rule/severity payload; R3xx
findings additionally embed the counterexample schedule verbatim
(``witness``) plus its stable content digest (``witness_digest``) so
external tooling can reference a finding without hashing the schedule
itself.
"""

from __future__ import annotations

import json
from typing import Dict

from .findings import Finding, LintReport
from .witness import Witness

__all__ = ["SCHEMA", "report_to_json", "report_from_json", "to_json_text"]

SCHEMA = "repro-lint/1"


def report_to_json(report: LintReport) -> Dict:
    """The ``repro-lint/1`` envelope for one lint report."""
    findings = []
    for f in report.findings:
        findings.append({
            "rule_id": f.rule_id,
            "name": f.name,
            "severity": f.severity,
            "message": f.message,
            "filename": f.filename,
            "lineno": f.lineno,
            "kernel": f.kernel,
            "hint": f.hint,
            "witness": f.witness.to_json() if f.witness is not None else None,
            "witness_digest": (f.witness.digest()
                               if f.witness is not None else None),
        })
    return {
        "schema": SCHEMA,
        "scope": report.scope,
        "counts": {"errors": len(report.errors),
                   "warnings": len(report.warnings)},
        "findings": findings,
    }


def report_from_json(doc: Dict) -> LintReport:
    """Rebuild a :class:`LintReport` from a ``repro-lint/1`` document."""
    schema = doc.get("schema")
    if schema != SCHEMA:
        raise ValueError(f"expected schema {SCHEMA!r}, got {schema!r}")
    findings = []
    for f in doc["findings"]:
        witness = None
        if f.get("witness") is not None:
            witness = Witness.from_json(f["witness"])
        findings.append(Finding(
            rule_id=f["rule_id"], name=f["name"], severity=f["severity"],
            message=f["message"], filename=f["filename"],
            lineno=f["lineno"], kernel=f["kernel"], hint=f["hint"],
            witness=witness))
    report = LintReport(scope=doc.get("scope", ""))
    report.findings = findings
    return report


def to_json_text(doc: Dict) -> str:
    """Canonical byte-stable serialization of an envelope."""
    return json.dumps(doc, sort_keys=True, indent=1) + "\n"
