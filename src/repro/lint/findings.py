"""Lint findings: what a rule reports and how a report renders.

A :class:`Finding` pins one rule violation to a source location and
carries the fix hint shown to the kernel author.  :class:`LintReport`
aggregates the findings of one lint pass (a kernel, a program, or the
whole shipped-kernel sweep); strict mode wraps a non-empty report in
:class:`LintError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["Severity", "Finding", "LintReport", "LintError", "LintWarning"]


class Severity:
    """Finding severities (plain strings so reports sort/render simply)."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str        #: e.g. "K103"
    name: str           #: rule slug, e.g. "unbarriered-read-publish"
    severity: str       #: :class:`Severity`
    message: str        #: what is wrong, concretely
    filename: str       #: source file of the offending call
    lineno: int         #: 1-based line of the offending call
    kernel: str         #: kernel function (or program scope) flagged
    hint: str           #: how to fix it
    #: counterexample schedule (R3xx rules only); a frozen
    #: :class:`repro.lint.witness.Witness`, kept hashable so report
    #: dedup via dict.fromkeys keeps working
    witness: Optional[object] = None

    @property
    def location(self) -> str:
        return f"{self.filename}:{self.lineno}"

    def render(self) -> str:
        tag = "E" if self.severity == Severity.ERROR else "W"
        lines = [f"{tag} {self.rule_id} [{self.name}] {self.location} "
                 f"({self.kernel}): {self.message}"]
        if self.hint:
            lines.append(f"    hint: {self.hint}")
        if self.witness is not None:
            lines.append(f"    witness: {self.witness.digest()} "
                         f"({len(self.witness.steps)} step(s); replay with "
                         "repro lint --witness)")
        return "\n".join(lines)


@dataclass
class LintReport:
    """All findings of one lint pass."""

    findings: List[Finding] = field(default_factory=list)
    #: optional label for rendering ("program", "jacobi_initial", ...)
    scope: str = ""

    def extend(self, findings) -> None:
        self.findings.extend(findings)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == Severity.ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == Severity.WARNING]

    def rule_ids(self) -> List[str]:
        return sorted({f.rule_id for f in self.findings})

    def __bool__(self) -> bool:
        return bool(self.findings)

    def __len__(self) -> int:
        return len(self.findings)

    def render(self) -> str:
        if not self.findings:
            scope = f" in {self.scope}" if self.scope else ""
            return f"lint: no findings{scope}"
        head = f"lint: {len(self.errors)} error(s), " \
               f"{len(self.warnings)} warning(s)"
        if self.scope:
            head += f" in {self.scope}"
        body = [f.render() for f in self.findings]
        return "\n".join([head] + body)


class LintError(RuntimeError):
    """Strict-mode lint failure: the program violates at least one rule."""

    def __init__(self, report: LintReport):
        self.report = report
        super().__init__(report.render())


class LintWarning(UserWarning):
    """Category used when ``EnqueueProgram`` warns about lint findings."""
