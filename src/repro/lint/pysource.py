"""Host-side Python determinism audit (``repro lint --py``).

The determinism contract (byte-identical reports and fault traces
across repeat runs, ``-j`` settings and replay) only holds if every
source of variation in simulated-time code is an explicit
``random.Random(seed)``.  :func:`violations` walks a module's AST and
reports:

* any import of ``time`` or ``datetime`` (wall-clock vocabulary);
* any call through the ``random`` *module* other than the seeded
  constructor ``random.Random(...)`` — so ``random.random()``,
  ``random.choice()`` etc. (which share mutable global state) are out;
* unseeded NumPy generators (``numpy.random.default_rng()`` with no
  argument, or legacy ``numpy.random.<dist>`` calls).

:func:`audit_repro` sweeps **every** module of the installed
``repro`` package recursively.  A small set of host-boundary modules
legitimately reads the wall clock (bench timing, CLI progress, worker
pools); those are listed in :data:`WALL_CLOCK_WAIVERS` with the reason
spelled out, and only their *wall-clock* findings are waived — an
unseeded-RNG violation is never waivable anywhere.

The audit started life as a per-package test helper
(``tests/rng_audit.py``, still a thin re-export wrapper for older
tests); promoting it here puts the whole of ``src/repro`` under the
same rule and exposes it on the CLI and in CI.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List

__all__ = [
    "FORBIDDEN_IMPORTS", "WALL_CLOCK_WAIVERS",
    "package_sources", "repro_sources",
    "violations", "audit_source", "audit_repro",
]

FORBIDDEN_IMPORTS = {"time", "datetime"}

#: package-relative posix paths allowed to import wall-clock modules,
#: with the reason.  RNG violations are never waived.
WALL_CLOCK_WAIVERS: Dict[str, str] = {
    "bench.py": ("benchmark harness: measures real wall time by design "
                 "and stamps reports with the run date"),
    "cli.py": ("host CLI: wall-clock progress/elapsed display only, "
               "never feeds simulated time"),
    "parallel/engine.py": ("worker-pool supervisor: polling intervals and "
                           "timeouts for real OS processes"),
}

_WALL_CLOCK_MARKERS = ("wall-clock module",)


def package_sources(package) -> List[Path]:
    """Every ``*.py`` directly inside an imported package."""
    return sorted(Path(package.__file__).parent.glob("*.py"))


def repro_sources() -> List[Path]:
    """Every ``*.py`` of the ``repro`` package, recursively."""
    root = Path(__file__).resolve().parents[1]
    return sorted(root.rglob("*.py"))


def violations(tree: ast.AST, filename: str, *,
               allow_wall_clock: bool = False) -> List[str]:
    """All determinism violations in one parsed module.

    With ``allow_wall_clock=True`` the ``time``/``datetime`` import
    findings are dropped (the :data:`WALL_CLOCK_WAIVERS` path); RNG
    findings are always kept.
    """
    out = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in FORBIDDEN_IMPORTS:
                    out.append(f"{filename}:{node.lineno}: "
                               f"imports wall-clock module {alias.name!r}")
        elif isinstance(node, ast.ImportFrom):
            root = (node.module or "").split(".")[0]
            if root in FORBIDDEN_IMPORTS:
                out.append(f"{filename}:{node.lineno}: "
                           f"imports from wall-clock module {node.module!r}")
        elif isinstance(node, ast.Call):
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            target = func.value
            # random.<anything but the seeded constructor>(...)
            if isinstance(target, ast.Name) and target.id == "random" \
                    and func.attr != "Random":
                out.append(f"{filename}:{node.lineno}: "
                           f"global-state call random.{func.attr}()")
            # numpy.random.default_rng() unseeded / legacy np.random.*
            if isinstance(target, ast.Attribute) \
                    and target.attr == "random" \
                    and isinstance(target.value, ast.Name) \
                    and target.value.id in ("np", "numpy"):
                if func.attr != "default_rng" or not node.args:
                    out.append(f"{filename}:{node.lineno}: "
                               f"unseeded numpy.random.{func.attr}()")
    if allow_wall_clock:
        out = [v for v in out
               if not any(m in v for m in _WALL_CLOCK_MARKERS)]
    return out


def audit_source(path: Path, *, allow_wall_clock: bool = False) -> List[str]:
    """Parse one file and return its violation list."""
    tree = ast.parse(path.read_text(), filename=str(path))
    return violations(tree, path.name, allow_wall_clock=allow_wall_clock)


def audit_repro() -> List[str]:
    """Audit the whole ``repro`` package; returns all unwaived violations.

    Waived modules are audited with ``allow_wall_clock=True`` so their
    RNG discipline is still enforced.  Violation strings are prefixed
    with the package-relative path so two same-named modules in
    different subpackages stay distinguishable.
    """
    root = Path(__file__).resolve().parents[1]
    out: List[str] = []
    for path in repro_sources():
        rel = path.relative_to(root).as_posix()
        waived = rel in WALL_CLOCK_WAIVERS
        tree = ast.parse(path.read_text(), filename=str(path))
        out.extend(violations(tree, rel, allow_wall_clock=waived))
    return out
