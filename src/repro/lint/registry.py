"""Rule registry: one metadata record per lint rule.

Rule IDs are stable (documented in ``docs/lint_rules.md`` and asserted
by the seeded-violation corpus): ``K1xx`` rules run on a single kernel
trace, ``P2xx`` rules need the whole :class:`~repro.ttmetal.host.Program`
(CB configuration, runtime args, L1 layout, DRAM buffers), ``R3xx``
rules run on the whole-launch happens-before graph spanning every core
(:mod:`repro.lint.concurrency`) and carry replayable counterexample
schedules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .findings import Finding, Severity

__all__ = ["Rule", "RULES", "make_finding", "all_rules"]


@dataclass(frozen=True)
class Rule:
    rule_id: str
    name: str
    severity: str
    scope: str          #: "kernel", "program" or "launch"
    summary: str
    hint: str
    paper_ref: str      #: the paper section/figure that motivates the rule


def _r(rule_id, name, severity, scope, summary, hint, paper_ref) -> Rule:
    return Rule(rule_id, name, severity, scope, summary, hint, paper_ref)


_RULE_LIST: List[Rule] = [
    _r("K101", "cb-loop-imbalance", Severity.ERROR, "kernel",
       "cb_reserve_back and cb_push_back counts differ across one loop "
       "iteration, so the producer drifts out of step with its CB",
       "make every loop body reserve exactly as many pages as it pushes; "
       "an imbalance overflows (or starves) the FIFO after n_pages "
       "iterations and the program deadlocks",
       "Fig. 3 (reader/compute/writer CB pipeline)"),
    _r("K102", "cb-pop-without-wait", Severity.ERROR, "kernel",
       "cb_pop_front on a circular buffer this kernel never "
       "cb_wait_front-s",
       "call cb_wait_front before cb_pop_front: pop releases pages that "
       "wait claimed, popping unclaimed pages corrupts the FIFO state",
       "Fig. 3 (wait/pop consumer protocol)"),
    _r("K103", "unbarriered-read-publish", Severity.ERROR, "kernel",
       "cb_push_back publishes a page while a noc_async read into that "
       "page is still outstanding",
       "insert noc_async_read_barrier() between the NoC read targeting "
       "cb_write_ptr(...) and the cb_push_back that publishes it; "
       "otherwise the consumer can observe stale bytes",
       "Section V (async NoC reads), Fig. 3"),
    _r("K104", "unbarriered-write-handoff", Severity.ERROR, "kernel",
       "semaphore_inc signals completion while NoC writes are still "
       "outstanding",
       "drain with noc_async_write_barrier() before semaphore_inc: the "
       "semaphore tells the peer the data landed, so the writes must "
       "land first",
       "Section VI (SEM_COLUMN rotating-buffer drain)"),
    _r("K105", "rd-alias-before-wait", Severity.ERROR, "kernel",
       "cb_set_rd_ptr re-points a consumed CB without a cb_wait_front "
       "since the last cb_pop_front",
       "cb_set_rd_ptr only aliases pages the kernel already owns via "
       "cb_wait_front; aliasing unowned pages reads data the producer "
       "may still be writing",
       "Section VI (zero-copy cb_set_rd_ptr extension)"),
    _r("K106", "misaligned-noc-address", Severity.ERROR, "kernel",
       "noc_async read/write uses a DRAM address that is not 256-bit "
       "aligned",
       "round the address down to a 32-byte boundary, transfer "
       "size+slack bytes and skip the slack in L1 (the Listing-4 "
       "pattern); unaligned reads return silently shifted data",
       "Listing 4, Section V (alignment)"),
    _r("P201", "cb-no-consumer", Severity.WARNING, "program",
       "a circular buffer is pushed to but no kernel on the core ever "
       "waits on, pops or aliases it",
       "add a consumer or delete the producer: pushes into an unread CB "
       "stall after n_pages pages and waste L1",
       "Fig. 3 (every CB links exactly one producer to one consumer)"),
    _r("P202", "cb-no-producer", Severity.ERROR, "program",
       "a kernel waits on a circular buffer that no kernel on the core "
       "ever pushes to",
       "add the producer (cb_push_back / pack_tile / cb_set_wr_ptr) or "
       "drop the wait: waiting on a never-filled CB deadlocks the core",
       "Fig. 3"),
    _r("P203", "cb-page-deadlock", Severity.ERROR, "program",
       "a kernel's static reserve/wait demand exceeds the circular "
       "buffer's n_pages, so the request can never be satisfied",
       "raise n_pages in CreateCircularBuffer or interleave pops/pushes "
       "so the in-flight page count stays within the FIFO",
       "Table VI (page counts vs. double buffering)"),
    _r("P204", "l1-region-overlap", Severity.ERROR, "program",
       "two L1 regions (circular buffers or sram.allocate slabs) "
       "overlap, or allocations exceed the 1 MB L1",
       "lay CBs and scratch slabs out disjointly; overlapping regions "
       "silently corrupt each other's pages",
       "Section III (1 MB L1 per Tensix core)"),
    _r("P205", "missing-runtime-arg", Severity.ERROR, "program",
       "a kernel reads ctx.arg(name) without a default, but CreateKernel "
       "did not pass that runtime arg",
       "add the name to the args dict in CreateKernel (or give the "
       "ctx.arg a default); the kernel would raise KernelError at launch",
       "Section IV (runtime args)"),
    _r("P206", "misaligned-buffer-offset", Severity.ERROR, "program",
       "a buffer-level NoC transfer starts at a DRAM offset that is not "
       "256-bit aligned",
       "keep buffer offsets multiples of 32 bytes (pad rows as "
       "AlignedDomain does, Fig. 5) or use the Listing-4 slack-read "
       "pattern",
       "Listing 4, Fig. 5 (aligned domain padding)"),
    _r("P207", "cb-not-configured", Severity.ERROR, "program",
       "a kernel references a circular-buffer id that was never "
       "configured on its core",
       "add the CreateCircularBuffer(program, core, cb_id, ...) call or "
       "fix the CB id; the kernel would raise KernelError at launch",
       "Section IV (host-side CB configuration)"),
    _r("R301", "cross-core-ww-race", Severity.ERROR, "launch",
       "two kernels on different cores write overlapping DRAM/L1 byte "
       "ranges with no happens-before path ordering the writes",
       "order the writers with a semaphore handshake (inc after a "
       "noc_async_write_barrier, wait before the second write) or make "
       "the destination ranges disjoint; the final bytes depend on NoC "
       "arrival order",
       "Section VII (multicore decomposition and synchronization)"),
    _r("R302", "cross-core-wr-race", Severity.ERROR, "launch",
       "a kernel reads a DRAM/L1 byte range another core writes, with no "
       "happens-before path between the write's barrier and the read",
       "signal write completion with semaphore_inc after "
       "noc_async_write_barrier and semaphore_wait before the read (the "
       "SEM_COLUMN pattern); an unordered read returns stale or torn "
       "bytes",
       "Section VI (semaphore-ordered halo exchange)"),
    _r("R303", "multicast-overlap-race", Severity.ERROR, "launch",
       "a NoC multicast's destination L1 window overlaps another "
       "unordered write to one of the destination cores",
       "make the multicast window disjoint from per-core unicast "
       "targets, or order them with a semaphore; overlapping unordered "
       "landings leave destination cores with mixed payloads",
       "Section VII (grid-wide NoC traffic)"),
    _r("R304", "lost-semaphore-signal", Severity.ERROR, "launch",
       "a semaphore_wait can never be satisfied: no kernel on the "
       "launch signals that semaphore (or the straight-line signal "
       "count falls short of the waited-for value)",
       "add the matching semaphore_inc/semaphore_set on the signalling "
       "kernel, or lower the wait threshold; the waiter hangs until the "
       "watchdog kills the launch",
       "Section VI (SEM_COLUMN signalling protocol)"),
    _r("R305", "cross-core-deadlock", Severity.ERROR, "launch",
       "the kernels' semaphore waits and CB handshakes form a circular "
       "wait across cores: abstract execution blocks every kernel with "
       "work remaining",
       "break the cycle by reordering the handshakes (signal before "
       "wait on one side) or splitting the exchange into phases; the "
       "launch hangs with every core stalled",
       "Section VII (cross-core synchronization ordering)"),
]

RULES: Dict[str, Rule] = {r.rule_id: r for r in _RULE_LIST}


def all_rules() -> List[Rule]:
    """All rules in ID order (used by the docs test and the CLI)."""
    return list(_RULE_LIST)


def make_finding(rule_id: str, message: str, *, filename: str, lineno: int,
                 kernel: str, hint: str = None,
                 witness=None) -> Finding:
    """Build a :class:`Finding`, pulling metadata from the registry."""
    rule = RULES[rule_id]
    return Finding(rule_id=rule.rule_id, name=rule.name,
                   severity=rule.severity, message=message,
                   filename=filename, lineno=lineno, kernel=kernel,
                   hint=hint if hint is not None else rule.hint,
                   witness=witness)
