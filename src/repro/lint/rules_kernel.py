"""Per-kernel lint rules (K101..K106).

All rules run on the symbolic trace from :mod:`repro.lint.trace` and are
written fail-open: whenever an operand, CB id or control path is not
statically known the rule stays silent rather than guessing.  The hazard
rules (K103/K104/K105) run a small abstract interpreter over the trace
with three-valued ("definitely / maybe / definitely-not") states and
only report *definite* violations; branches join pessimistically toward
"maybe" and loops are analysed with a two-pass fixpoint so state carried
across iterations is observed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .findings import Finding
from .registry import make_finding
from .trace import (Branch, Call, CbPtr, KernelTrace, Loop, NocAddrVal,
                    Opaque, const_int, const_value, extract_trace,
                    iter_calls)

__all__ = ["lint_kernel", "kernel_findings"]

NONE, MAYBE, YES = 0, 1, 2

#: NoC read ops -> (positional index, keyword) of their L1 destination
_READ_DEST = {
    "noc_async_read": (1, "l1_addr"),
    "noc_read_buffer": (2, "l1_addr"),
    "noc_read_buffer_burst": (2, "l1_addr"),
    "noc_read_buffer_burst_uniform": (5, "l1_addr"),
}

_WRITE_OPS = frozenset({
    "noc_async_write", "noc_write_buffer", "noc_write_buffer_burst",
    "noc_write_buffer_burst_uniform", "noc_sram_write",
    "noc_sram_write_multicast",
})

#: ops that consume pages (used for the K105 "consumed CB" scoping)
_CONSUME_OPS = ("cb_wait_front", "cb_pop_front")


def _cb_of(call: Call) -> Optional[int]:
    return const_int(call.operand(0, "cb_id"))


def _n_of(call: Call) -> Optional[int]:
    operand = call.operand(1, "n")
    if operand is not None:
        return const_int(operand)
    if call.star:
        return None                    # positional layout unknown
    return 1                           # API default n=1


class _Findings:
    """Deduplicating finding collector (loops are walked twice)."""

    def __init__(self, trace: KernelTrace):
        self.trace = trace
        self._seen: Dict[Tuple, Finding] = {}

    def emit(self, rule_id: str, message: str, lineno: int,
             dedup_key=None) -> None:
        key = (rule_id, lineno, dedup_key)
        if key in self._seen:
            return
        self._seen[key] = make_finding(
            rule_id, message, filename=self.trace.filename, lineno=lineno,
            kernel=self.trace.fn_name)

    def findings(self) -> List[Finding]:
        return sorted(self._seen.values(),
                      key=lambda f: (f.rule_id, f.lineno))


# --------------------------------------------------------------------------
# K101: per-loop-iteration reserve/push balance
# --------------------------------------------------------------------------

def _k101(trace: KernelTrace, out: _Findings) -> None:
    _k101_scan(trace.nodes, out)


def _k101_scan(nodes, out: _Findings):
    """Return (net reserve-push per cb, skipped cbs, everything-unknown)."""
    net: Dict[int, int] = {}
    skip: Set[int] = set()
    unknown_all = False
    for node in nodes:
        if isinstance(node, Call):
            if node.name not in ("cb_reserve_back", "cb_push_back"):
                continue
            cb = _cb_of(node)
            if cb is None:
                unknown_all = True
                continue
            n = _n_of(node)
            if n is None:
                skip.add(cb)
                continue
            net[cb] = net.get(cb, 0) + (n if node.name == "cb_reserve_back"
                                        else -n)
        elif isinstance(node, Opaque):
            unknown_all = True
        elif isinstance(node, Branch):
            arms = [_k101_scan(arm, out) for arm in node.arms]
            cbs = set()
            for arm_net, arm_skip, arm_unknown in arms:
                unknown_all |= arm_unknown
                skip |= arm_skip
                cbs |= set(arm_net)
            for cb in cbs:
                values = {arm_net.get(cb, 0) for arm_net, _, _ in arms}
                if len(values) == 1:
                    net[cb] = net.get(cb, 0) + values.pop()
                else:
                    skip.add(cb)
        elif isinstance(node, Loop):
            inner_net, inner_skip, inner_unknown = _k101_scan(node.body,
                                                              out)
            unknown_all |= inner_unknown
            skip |= inner_skip
            if not inner_unknown:
                for cb, value in inner_net.items():
                    if value != 0 and cb not in inner_skip:
                        verb = "reserves" if value > 0 else "pushes"
                        out.emit("K101",
                                 f"loop body {verb} {abs(value)} more "
                                 f"page(s) on CB {cb} than it "
                                 f"{'pushes' if value > 0 else 'reserves'}"
                                 " per iteration",
                                 node.lineno, dedup_key=cb)
                    skip.add(cb)       # imbalance reported where it lives
    return net, skip, unknown_all


# --------------------------------------------------------------------------
# K102: pop on a CB the kernel never waits on
# --------------------------------------------------------------------------

def _k102(trace: KernelTrace, out: _Findings) -> None:
    waited: Set[int] = set()
    unknown_wait = False
    pops: List[Tuple[int, int]] = []
    for call in iter_calls(trace.nodes):
        if call.name == "cb_wait_front":
            cb = _cb_of(call)
            if cb is None:
                unknown_wait = True
            else:
                waited.add(cb)
        elif call.name == "cb_pop_front":
            cb = _cb_of(call)
            if cb is not None:
                pops.append((cb, call.lineno))
    if unknown_wait:
        return
    for cb, lineno in pops:
        if cb not in waited:
            out.emit("K102",
                     f"cb_pop_front(CB {cb}) but this kernel never calls "
                     f"cb_wait_front on CB {cb}", lineno, dedup_key=cb)


# --------------------------------------------------------------------------
# abstract-state walker shared by K103/K104/K105
# --------------------------------------------------------------------------

class _Walker:
    """Three-valued abstract interpretation over a trace tree."""

    def walk(self, nodes, state: Dict) -> Dict:
        for node in nodes:
            if isinstance(node, Call):
                self.on_call(node, state)
            elif isinstance(node, Opaque):
                self.on_opaque(state)
            elif isinstance(node, Branch):
                results = [self.walk(arm, dict(state))
                           for arm in node.arms]
                merged = self.join(results)
                state.clear()
                state.update(merged)
            elif isinstance(node, Loop):
                after_one = self.walk(node.body, dict(state))
                joined = self.join([dict(state), after_one])
                after_two = self.walk(node.body, dict(joined))
                final = self.join([joined, after_two])
                state.clear()
                state.update(final)
        return state

    @staticmethod
    def join(states: List[Dict]) -> Dict:
        keys = set()
        for s in states:
            keys.update(s)
        out = {}
        for key in keys:
            values = {s.get(key, NONE) for s in states}
            out[key] = values.pop() if len(values) == 1 else MAYBE
        return out

    def on_call(self, call: Call, state: Dict) -> None:
        raise NotImplementedError

    def on_opaque(self, state: Dict) -> None:
        # an uninterpreted yield may drain or issue anything: soften
        # every definite fact to MAYBE
        for key, value in state.items():
            if value != MAYBE:
                state[key] = MAYBE


def _issue_level(call: Call) -> int:
    """YES/MAYBE/NONE: does this NoC op leave an outstanding transfer?"""
    sync = call.kwargs.get("sync")
    if sync is None:
        return YES
    value = const_value(sync)
    if value is True:
        return NONE                    # synchronous: drained on return
    if value is False:
        return YES
    return MAYBE


class _K103Walker(_Walker):
    """Reads into a CB page must hit a read barrier before cb_push_back."""

    def __init__(self, out: _Findings):
        self.out = out

    def on_call(self, call: Call, state: Dict) -> None:
        if call.name in _READ_DEST:
            dest = call.operand(*_READ_DEST[call.name])
            if isinstance(dest, CbPtr) and dest.kind == "write" \
                    and dest.cb is not None:
                level = _issue_level(call)
                if level != NONE:
                    state[dest.cb] = max(state.get(dest.cb, NONE), level)
        elif call.name == "noc_async_read_barrier":
            state.clear()
        elif call.name == "cb_push_back":
            cb = _cb_of(call)
            if cb is not None and state.get(cb, NONE) == YES:
                self.out.emit(
                    "K103",
                    f"cb_push_back(CB {cb}) publishes a page while a NoC "
                    f"read into cb_write_ptr(CB {cb}) is still "
                    "outstanding (no noc_async_read_barrier in between)",
                    call.lineno, dedup_key=cb)


class _K104Walker(_Walker):
    """NoC writes must drain before a semaphore_inc hand-off."""

    def __init__(self, out: _Findings):
        self.out = out

    def on_call(self, call: Call, state: Dict) -> None:
        if call.name in _WRITE_OPS:
            level = _issue_level(call)
            if level != NONE:
                state["w"] = max(state.get("w", NONE), level)
        elif call.name == "noc_async_write_barrier":
            state["w"] = NONE
        elif call.name == "semaphore_inc":
            if state.get("w", NONE) == YES:
                self.out.emit(
                    "K104",
                    "semaphore_inc signals the peer while NoC writes are "
                    "still outstanding (no noc_async_write_barrier in "
                    "between)", call.lineno)


class _K105Walker(_Walker):
    """cb_set_rd_ptr on a consumed CB only between wait and pop."""

    def __init__(self, out: _Findings, consumed: Set[int]):
        self.out = out
        self.consumed = consumed

    def on_call(self, call: Call, state: Dict) -> None:
        cb = _cb_of(call)
        if call.name == "cb_wait_front":
            if cb is None:
                self.on_opaque(state)
                for tracked in self.consumed:
                    state.setdefault(tracked, MAYBE)
            else:
                state[cb] = YES
        elif call.name == "cb_pop_front":
            if cb is None:
                self.on_opaque(state)
            else:
                state[cb] = NONE
        elif call.name == "cb_set_rd_ptr":
            if cb is not None and cb in self.consumed \
                    and state.get(cb, NONE) == NONE:
                self.out.emit(
                    "K105",
                    f"cb_set_rd_ptr(CB {cb}) without a cb_wait_front "
                    "since the last cb_pop_front: the kernel does not "
                    "own the pages it is aliasing", call.lineno,
                    dedup_key=cb)

    def on_opaque(self, state: Dict) -> None:
        # unknown yields might wait (gaining ownership): soften both ways
        for key in list(state):
            state[key] = MAYBE
        # untracked keys default to NONE; leave them — consumed set is
        # re-seeded by the caller


def _k105(trace: KernelTrace, out: _Findings) -> None:
    consumed: Set[int] = set()
    for call in iter_calls(trace.nodes):
        if call.name in _CONSUME_OPS:
            cb = _cb_of(call)
            if cb is not None:
                consumed.add(cb)
    if not consumed:
        return                         # pure-alias CBs (jacobi_sram style)
    walker = _K105Walker(out, consumed)
    has_opaque = _contains_opaque(trace.nodes)
    state = {cb: MAYBE if has_opaque else NONE for cb in consumed}
    walker.walk(trace.nodes, state)


def _contains_opaque(nodes) -> bool:
    for node in nodes:
        if isinstance(node, Opaque):
            return True
        if isinstance(node, Loop) and _contains_opaque(node.body):
            return True
        if isinstance(node, Branch) and any(_contains_opaque(arm)
                                            for arm in node.arms):
            return True
    return False


# --------------------------------------------------------------------------
# K106: constant NoC addresses must be 256-bit aligned
# --------------------------------------------------------------------------

def _k106(trace: KernelTrace, out: _Findings) -> None:
    try:
        from repro.arch.costs import DEFAULT_COSTS
        align = DEFAULT_COSTS.dram_alignment
    except Exception:                  # pragma: no cover - defensive
        align = 32
    for call in iter_calls(trace.nodes):
        if call.name == "noc_async_read":
            addr = call.operand(0, "noc_addr")
        elif call.name == "noc_async_write":
            addr = call.operand(1, "noc_addr")
        else:
            continue
        if not isinstance(addr, NocAddrVal):
            continue
        value = const_value(addr.addr)
        if isinstance(value, int) and value % align:
            out.emit(
                "K106",
                f"{call.name} at DRAM address {value}, which is not "
                f"{align}-byte (256-bit) aligned "
                f"(address % {align} == {value % align})",
                call.lineno, dedup_key=value)


# --------------------------------------------------------------------------
# entry points
# --------------------------------------------------------------------------

def kernel_findings(trace: KernelTrace) -> List[Finding]:
    """Run every K-rule over one extracted trace (memoized per trace)."""
    cached = getattr(trace, "_kernel_findings", None)
    if cached is not None:
        return cached
    out = _Findings(trace)
    if trace.unavailable:
        trace._kernel_findings = []
        return []
    _k101(trace, out)
    _k102(trace, out)
    _K103Walker(out).walk(trace.nodes, {})
    _K104Walker(out).walk(trace.nodes, {})
    _k105(trace, out)
    _k106(trace, out)
    result = out.findings()
    trace._kernel_findings = result
    return result


def lint_kernel(fn) -> List[Finding]:
    """Lint one kernel function; returns its findings."""
    return kernel_findings(extract_trace(fn))
