"""Program-level lint rules (P201..P207).

These rules need the whole :class:`~repro.ttmetal.host.Program`: which
kernels run on which core, how each core's circular buffers are
configured, the runtime-args dict of each kernel, the L1 layout, and
the DRAM buffers reachable through runtime args.  Like the kernel
rules they are fail-open: a kernel whose trace is unavailable makes the
cross-kernel CB rules on its core stand down, and any statically-unknown
CB id or operand suppresses rather than guesses.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .findings import Finding
from .registry import make_finding
from .trace import (ArgVal, Call, KernelTrace, ObjVal, const_int,
                    extract_trace, iter_calls, iter_calls_guarded)

__all__ = ["program_findings", "lint_l1_regions"]

#: ops whose first operand is a CB id
_CB_ID_OPS = ("cb_reserve_back", "cb_push_back", "cb_wait_front",
              "cb_pop_front", "cb_set_rd_ptr", "cb_set_wr_ptr")

#: tile ops -> (positional index, keyword) of each CB operand
_TILE_CB_OPERANDS = {
    "add_tiles": [(0, "cb_a"), (1, "cb_b")],
    "sub_tiles": [(0, "cb_a"), (1, "cb_b")],
    "mul_tiles": [(0, "cb_a"), (1, "cb_b")],
    "matmul_tiles": [(0, "cb_a"), (1, "cb_b")],
    "unary_tile": [(1, "cb")],
    "reduce_tile": [(0, "cb")],
    "transpose_tile": [(0, "cb")],
    "pack_tile": [(1, "cb_out")],
}

#: ops that consume (or alias) CB pages
_CONSUME_OPS = ("cb_wait_front", "cb_pop_front", "cb_set_rd_ptr")

#: buffer-level NoC ops -> (buf operand, offset operand, direction)
_BUFFER_OPS = {
    "noc_read_buffer": ((0, "buf"), (1, "offset"), "read"),
    "noc_write_buffer": ((0, "buf"), (1, "offset"), "write"),
    "noc_read_buffer_burst_uniform": ((0, "buf"), (1, "start"), "read"),
    "noc_write_buffer_burst_uniform": ((0, "buf"), (1, "start"), "write"),
}


def _cb_of(call: Call) -> Optional[int]:
    return const_int(call.operand(0, "cb_id"))


def _n_of(call: Call) -> Optional[int]:
    operand = call.operand(1, "n")
    if operand is not None:
        return const_int(operand)
    return None if call.star else 1


def _referenced_cbs(call: Call):
    """Yield (cb_id_or_None, was_referenced) for every CB operand."""
    if call.name in _CB_ID_OPS:
        yield const_int(call.operand(0, "cb_id"))
    elif call.name in _TILE_CB_OPERANDS:
        for index, kw in _TILE_CB_OPERANDS[call.name]:
            yield const_int(call.operand(index, kw))


# --------------------------------------------------------------------------
# per-core CB graph: P201 / P202 / P207
# --------------------------------------------------------------------------

def _cb_graph_rules(core, specs, traces, configured: Dict[int, int],
                    findings: List[Finding]) -> None:
    opaque_core = any(t.unavailable or t.truncated for t in traces)
    if opaque_core:
        return
    push_sites: Dict[int, Tuple[str, str, int]] = {}
    wait_sites: Dict[int, Tuple[str, str, int]] = {}
    consumers: Set[int] = set()
    unknown_push = unknown_consume = False
    for trace in traces:
        for call in iter_calls(trace.nodes):
            if call.name == "cb_push_back":
                cb = _cb_of(call)
                if cb is None:
                    unknown_push = True
                else:
                    push_sites.setdefault(
                        cb, (trace.fn_name, call.filename, call.lineno))
            elif call.name in _CONSUME_OPS:
                cb = _cb_of(call)
                if cb is None:
                    unknown_consume = True
                else:
                    consumers.add(cb)
                    if call.name == "cb_wait_front":
                        wait_sites.setdefault(
                            cb,
                            (trace.fn_name, call.filename, call.lineno))
    coord = getattr(core, "coord", None)
    where = f"core{coord}" if coord is not None else "core"
    if not unknown_consume:
        for cb, (fn_name, filename, lineno) in sorted(push_sites.items()):
            if cb not in consumers:
                findings.append(make_finding(
                    "P201",
                    f"CB {cb} is pushed by {fn_name} but no kernel on "
                    f"{where} ever waits on, pops or aliases it",
                    filename=filename, lineno=lineno, kernel=fn_name))
    if not unknown_push:
        for cb, (fn_name, filename, lineno) in sorted(wait_sites.items()):
            if cb not in push_sites:
                findings.append(make_finding(
                    "P202",
                    f"{fn_name} waits on CB {cb} but no kernel on "
                    f"{where} ever pushes to it",
                    filename=filename, lineno=lineno, kernel=fn_name))
    # P207: referenced but never configured.  Only unguarded references
    # count — a CB used solely inside a branch may be gated by the same
    # runtime flag that decides whether the host configures it (the
    # optional-RHS path of the generic stencil kernels does exactly this).
    seen: Set[Tuple[str, int]] = set()
    for trace in traces:
        for call, guarded in iter_calls_guarded(trace.nodes):
            if guarded:
                continue
            for cb in _referenced_cbs(call):
                if cb is None or cb in configured:
                    continue
                key = (trace.fn_name, cb)
                if key in seen:
                    continue
                seen.add(key)
                findings.append(make_finding(
                    "P207",
                    f"{trace.fn_name} references CB {cb}, which was "
                    f"never configured on {where} "
                    "(no CreateCircularBuffer)",
                    filename=call.filename, lineno=call.lineno,
                    kernel=trace.fn_name))


# --------------------------------------------------------------------------
# P203: static page demand vs. n_pages
# --------------------------------------------------------------------------

def _p203(trace: KernelTrace, configured: Dict[int, int],
          findings: List[Finding]) -> None:
    from .trace import Branch, Loop, Opaque

    # single-op demand: one reserve/wait can never exceed n_pages
    flagged: Set[Tuple[int, int]] = set()
    excluded: Set[int] = set()
    unknown_ops = trace.truncated
    for call in iter_calls(trace.nodes):
        if call.name not in ("cb_reserve_back", "cb_wait_front",
                             "cb_push_back"):
            continue
        cb, n = _cb_of(call), _n_of(call)
        if cb is None:
            unknown_ops = True
            continue
        if n is None:
            excluded.add(cb)
            continue
        pages = configured.get(cb)
        if pages is None:
            continue                   # P207 territory
        if call.name != "cb_push_back" and n > pages:
            verb = "reserve" if call.name == "cb_reserve_back" else "wait"
            key = (cb, call.lineno)
            if key not in flagged:
                flagged.add(key)
                findings.append(make_finding(
                    "P203",
                    f"{trace.fn_name} {verb}s {n} page(s) on CB {cb}, "
                    f"which only has n_pages={pages}: the request can "
                    "never be satisfied",
                    filename=call.filename, lineno=call.lineno,
                    kernel=trace.fn_name))
    if unknown_ops:
        return

    # cumulative demand: reserved-not-yet-pushed along any straight path
    def walk(nodes, cur: Dict[int, int]) -> Dict[int, int]:
        for node in nodes:
            if isinstance(node, Call):
                cb, n = _cb_of(node), _n_of(node)
                if node.name == "cb_reserve_back":
                    if cb is None or cb in excluded:
                        continue
                    if n is None:
                        excluded.add(cb)
                        continue
                    cur[cb] = cur.get(cb, 0) + n
                    pages = configured.get(cb)
                    if pages is not None and cur[cb] > pages:
                        key = (cb, node.lineno)
                        if key not in flagged:
                            flagged.add(key)
                            findings.append(make_finding(
                                "P203",
                                f"{trace.fn_name} accumulates "
                                f"{cur[cb]} reserved-but-unpushed "
                                f"page(s) on CB {cb} "
                                f"(n_pages={pages}): the reserve "
                                "deadlocks with no consumer progress "
                                "possible",
                                filename=node.filename,
                                lineno=node.lineno,
                                kernel=trace.fn_name))
                        cur[cb] = 0    # report once, don't cascade
                elif node.name == "cb_push_back" and cb is not None:
                    if n is None:
                        cur[cb] = 0
                    else:
                        cur[cb] = max(0, cur.get(cb, 0) - n)
            elif isinstance(node, Opaque):
                cur.clear()            # could push anything: fail open
            elif isinstance(node, Branch):
                # optimistic (min) merge: pipelined readers reserve ahead
                # in a guarded arm whose else-arm (the final iteration)
                # rebalances — a pessimistic max would accumulate phantom
                # demand across outer-loop iterations
                arms = [walk(arm, dict(cur)) for arm in node.arms]
                cbs = set()
                for arm in arms:
                    cbs.update(arm)
                merged = {cb: min(arm.get(cb, 0) for arm in arms)
                          for cb in cbs}
                cur.clear()
                cur.update(merged)
            elif isinstance(node, Loop):
                # pass 2 starts from the pessimistic join so demand that
                # grows across iterations is seen; the exit state is the
                # optimistic post-body state (a loop that pushes is
                # assumed to run — fail-open)
                after_one = walk(node.body, dict(cur))
                entry = {cb: max(cur.get(cb, 0), after_one.get(cb, 0))
                         for cb in set(cur) | set(after_one)}
                after_two = walk(node.body, dict(entry))
                cur.clear()
                cur.update(after_two)
        return cur

    walk(trace.nodes, {})


# --------------------------------------------------------------------------
# P204: L1 layout overlap
# --------------------------------------------------------------------------

def lint_l1_regions(regions, capacity: int, *, filename: str = "<L1>",
                    kernel: str = "L1 layout") -> List[Finding]:
    """Check a list of ``(base, size, label)`` L1 regions for overlap.

    Exposed directly (besides running per-core inside
    :func:`program_findings`) so tests and tools can verify layouts
    that never went through ``Sram.allocate``.
    """
    findings: List[Finding] = []
    items = sorted(regions, key=lambda r: (r[0], r[1]))
    for i, (base, size, label) in enumerate(items):
        if base + size > capacity:
            findings.append(make_finding(
                "P204",
                f"L1 region '{label}' [{base}, {base + size}) exceeds "
                f"the {capacity}-byte L1", filename=filename, lineno=0,
                kernel=kernel))
        if i + 1 < len(items):
            nbase, nsize, nlabel = items[i + 1]
            if nbase < base + size:
                findings.append(make_finding(
                    "P204",
                    f"L1 regions '{label}' [{base}, {base + size}) and "
                    f"'{nlabel}' [{nbase}, {nbase + nsize}) overlap",
                    filename=filename, lineno=0, kernel=kernel))
    return findings


def _p204(core, findings: List[Finding]) -> None:
    sram = getattr(core, "sram", None)
    regions = getattr(sram, "regions", None)
    if not regions:
        return
    coord = getattr(core, "coord", None)
    kernel = f"core{coord} L1 layout" if coord is not None \
        else "L1 layout"
    findings.extend(lint_l1_regions(regions, sram.capacity,
                                    kernel=kernel))


# --------------------------------------------------------------------------
# P205: required ctx.arg names vs. the CreateKernel args dict
# --------------------------------------------------------------------------

_IMPLICIT_ARGS = frozenset({"_device"})


def _p205(spec, trace: KernelTrace, findings: List[Finding]) -> None:
    if trace.unavailable:
        return
    args = spec.args or {}
    reported: Set[str] = set()
    for ref in trace.arg_refs:
        if ref.name is None or not ref.required:
            continue
        if ref.name in args or ref.name in _IMPLICIT_ARGS:
            continue
        if ref.name in reported:
            continue
        reported.add(ref.name)
        findings.append(make_finding(
            "P205",
            f"{trace.fn_name} requires runtime arg {ref.name!r} but "
            "CreateKernel did not pass it",
            filename=trace.filename, lineno=ref.lineno,
            kernel=trace.fn_name))


# --------------------------------------------------------------------------
# P206: DRAM offsets of buffer-level transfers must be aligned
# --------------------------------------------------------------------------

def _p206(spec, trace: KernelTrace, device,
          findings: List[Finding]) -> None:
    try:
        from repro.ttmetal.buffers import Buffer
    except Exception:                  # pragma: no cover - defensive
        return
    align = getattr(getattr(device, "costs", None), "dram_alignment", 32)
    args = spec.args or {}
    seen: Set[Tuple[int, int]] = set()
    for call in iter_calls(trace.nodes):
        if call.name not in _BUFFER_OPS:
            continue
        buf_operand, off_operand, direction = _BUFFER_OPS[call.name]
        buf_val = call.operand(*buf_operand)
        if isinstance(buf_val, ArgVal):
            buf = args.get(buf_val.name)
        elif isinstance(buf_val, ObjVal):
            buf = buf_val.obj
        else:
            buf = None
        if not isinstance(buf, Buffer) or buf.interleaved:
            continue
        offset = const_int(call.operand(*off_operand))
        if offset is None:
            continue
        addr = buf.addr + offset
        if addr % align == 0:
            continue
        key = (call.lineno, addr)
        if key in seen:
            continue
        seen.add(key)
        findings.append(make_finding(
            "P206",
            f"{trace.fn_name} {direction}s buffer at DRAM offset "
            f"{offset} (absolute address {addr}), which is not "
            f"{align}-byte (256-bit) aligned",
            filename=call.filename, lineno=call.lineno,
            kernel=trace.fn_name))


# --------------------------------------------------------------------------
# entry point
# --------------------------------------------------------------------------

def program_findings(program) -> List[Finding]:
    """Run every P-rule over an assembled Program."""
    findings: List[Finding] = []
    device = getattr(program, "device", None)

    by_core: Dict[int, Tuple[object, list]] = {}
    for spec in getattr(program, "kernels", []):
        entry = by_core.setdefault(id(spec.core), (spec.core, []))
        entry[1].append(spec)

    configured_by_core: Dict[int, Dict[int, int]] = {}
    for record in getattr(program, "circular_buffers", []):
        cfg = configured_by_core.setdefault(id(record.core), {})
        cfg[record.cb_id] = record.n_pages

    for core_key, (core, specs) in by_core.items():
        configured = dict(configured_by_core.get(core_key, {}))
        for cb_id, cb in getattr(core, "cbs", {}).items():
            configured.setdefault(cb_id, cb.n_pages)
        traces = [extract_trace(spec.fn) for spec in specs]
        _cb_graph_rules(core, specs, traces, configured, findings)
        _p204(core, findings)
        for spec, trace in zip(specs, traces):
            if trace.unavailable:
                continue
            _p203(trace, configured, findings)
            _p205(spec, trace, findings)
            _p206(spec, trace, device, findings)
    findings.sort(key=lambda f: (f.rule_id, f.kernel, f.lineno))
    return findings
