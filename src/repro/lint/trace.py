"""Symbolic API-trace extraction from kernel source.

Kernels are plain Python generator functions whose only observable
behaviour (for protocol purposes) is the sequence of ``yield from
ctx.<api>(...)`` calls they make.  :func:`extract_trace` parses a
kernel with :mod:`ast` (via ``inspect.getsource``) and abstractly
interprets it into a tree of trace nodes:

* :class:`Call` — one ctx API call with symbolically-evaluated operands
* :class:`Loop` — a loop whose trip count is not statically known
  (loops over literal tuples and small constant ``range()``s are
  unrolled instead, so per-iteration CB balance is checked exactly)
* :class:`Branch` — an ``if``/``try``; every arm is traced, none is
  pruned, so both sides of a config flag are verified
* :class:`Opaque` — a yield the analysis cannot see through

Operands are symbolic values: :class:`Const` for literals and values
reachable from closures/globals, :class:`CbPtr` for
``ctx.cb_read_ptr/cb_write_ptr`` results, :class:`ArgVal` for
``ctx.arg(name)``, :class:`NocAddrVal` for ``ctx.get_noc_addr`` /
``NocAddr`` results, :class:`ObjVal` for arbitrary host objects (e.g.
buffers captured in a closure) and the :data:`UNKNOWN` bottom.

Helper generators invoked with ``yield from`` — both nested ``def``s
and module-level helpers such as the streaming kernels' burst
routines — are inlined with their parameters bound, so the trace sees
through one level of abstraction the shipped kernels actually use.

Everything here is best-effort and fail-open: any construct the
interpreter does not model degrades to :data:`UNKNOWN` / an
:class:`Opaque` node, and rules are written to stay silent on unknowns.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "UNKNOWN", "CTX", "Const", "CbPtr", "ArgVal", "NocAddrVal", "ObjVal",
    "Call", "Opaque", "Loop", "Branch", "ArgRef", "KernelTrace",
    "extract_trace", "iter_calls", "const_value", "const_int", "same_value",
]

_MAX_UNROLL = 64          # max iterations for constant-range unrolling
_MAX_INLINE_DEPTH = 8     # max nesting of yield-from helper inlining
_NODE_BUDGET = 60_000     # hard cap on trace nodes per kernel


# --------------------------------------------------------------------------
# symbolic values
# --------------------------------------------------------------------------

class _Unknown:
    """Bottom value: statically unknowable."""

    __slots__ = ()

    def __repr__(self):
        return "UNKNOWN"


UNKNOWN = _Unknown()


class _Ctx:
    """Sentinel for the kernel's ``ctx`` parameter."""

    __slots__ = ()

    def __repr__(self):
        return "CTX"


CTX = _Ctx()


@dataclass(frozen=True)
class Const:
    """A statically-known literal (int/float/str/bool/bytes/None/tuple)."""

    value: object


@dataclass(frozen=True)
class CbPtr:
    """Result of ``ctx.cb_read_ptr`` / ``ctx.cb_write_ptr``."""

    cb: Optional[int]     #: CB id, or None when the id itself is unknown
    kind: str             #: "read" or "write"


@dataclass(frozen=True)
class ArgVal:
    """Result of ``ctx.arg(name)`` — resolved per-spec by program rules."""

    name: str


@dataclass(frozen=True)
class NocAddrVal:
    """A NoC address; ``addr`` is the symbolic DRAM byte address.

    ``bank`` is the symbolic DRAM bank id when statically known (e.g. a
    wrapped :class:`NocAddr` constant or an explicit ``NocAddr(bank, addr)``
    construction) and None otherwise.  An unknown bank keeps the address
    incomparable across banks, which is the fail-open direction for the
    cross-core race rules.
    """

    addr: object          #: SymVal
    bank: object = None   #: SymVal bank id, or None when unknown


@dataclass(eq=False, frozen=True)
class ObjVal:
    """A live host object reachable from a closure or module global."""

    obj: object


@dataclass(eq=False)
class _LocalFn:
    """A nested ``def`` helper, inlined at its yield-from call sites."""

    node: ast.FunctionDef
    scope: "_Scope"       #: defining scope (late-bound, like a closure)


_SIMPLE_CONST = (bool, int, float, str, bytes, type(None))


def _wrap(value):
    """Wrap a live Python value as a symbolic value."""
    if isinstance(value, _SIMPLE_CONST):
        return Const(value)
    try:
        from repro.ttmetal.kernel_api import NocAddr
        if isinstance(value, NocAddr):     # NamedTuple: test before tuple
            return NocAddrVal(Const(int(value.addr)),
                              Const(int(value.bank_id)))
    except Exception:           # pragma: no cover - defensive
        pass
    if isinstance(value, tuple):
        elems = [_wrap(v) for v in value]
        if all(isinstance(e, Const) for e in elems):
            return Const(tuple(e.value for e in elems))
        return UNKNOWN
    return ObjVal(value)


def same_value(a, b) -> bool:
    """Structural equality that is safe for arbitrary wrapped objects."""
    if a is b:
        return True
    if type(a) is not type(b):
        return False
    if isinstance(a, Const):
        try:
            return bool(a.value == b.value)
        except Exception:       # pragma: no cover - exotic __eq__
            return False
    if isinstance(a, ObjVal):
        return a.obj is b.obj
    if isinstance(a, NocAddrVal):
        if a.bank is None or b.bank is None:
            return same_value(a.addr, b.addr)
        return same_value(a.addr, b.addr) and same_value(a.bank, b.bank)
    if isinstance(a, (CbPtr, ArgVal)):
        return a == b
    return False


def const_value(v):
    """The concrete value of a :class:`Const`, else None."""
    return v.value if isinstance(v, Const) else None


def const_int(v) -> Optional[int]:
    """The concrete int of a :class:`Const` int (bools excluded)."""
    if isinstance(v, Const) and isinstance(v.value, int) \
            and not isinstance(v.value, bool):
        return v.value
    return None


# --------------------------------------------------------------------------
# trace nodes
# --------------------------------------------------------------------------

@dataclass
class Call:
    """One ``yield from ctx.<name>(...)`` API call."""

    name: str
    args: List[object]
    kwargs: Dict[str, object]
    lineno: int
    filename: str
    star: bool = False    #: call used *args/**kwargs; positions unreliable

    def operand(self, index: Optional[int] = None,
                kw: Optional[str] = None):
        """Positional-or-keyword operand lookup; None when absent."""
        if kw is not None and kw in self.kwargs:
            return self.kwargs[kw]
        if index is not None and not self.star and index < len(self.args):
            return self.args[index]
        return None


@dataclass
class Opaque:
    """A yield point the analysis cannot interpret."""

    lineno: int


@dataclass
class Loop:
    """A loop with statically-unknown trip count (body traced once)."""

    body: List[object]
    lineno: int


@dataclass
class Branch:
    """An ``if``/``try``: one traced arm per control path."""

    arms: List[List[object]]
    lineno: int


@dataclass(frozen=True)
class ArgRef:
    """One ``ctx.arg(...)`` site."""

    name: Optional[str]   #: None when the arg name is not a literal
    required: bool        #: True when no default was supplied
    lineno: int


@dataclass
class KernelTrace:
    """The extracted trace of one kernel function."""

    fn_name: str
    filename: str
    nodes: List[object] = field(default_factory=list)
    arg_refs: List[ArgRef] = field(default_factory=list)
    unavailable: bool = False   #: source could not be parsed at all
    truncated: bool = False     #: node budget hit; trace is a prefix


def iter_calls(nodes):
    """Yield every :class:`Call` in a node tree, depth-first."""
    for node in nodes:
        if isinstance(node, Call):
            yield node
        elif isinstance(node, Loop):
            yield from iter_calls(node.body)
        elif isinstance(node, Branch):
            for arm in node.arms:
                yield from iter_calls(arm)


def iter_calls_guarded(nodes, _guarded: bool = False):
    """Yield ``(call, guarded)`` pairs, depth-first.

    ``guarded`` is True when the call sits inside at least one
    :class:`Branch` arm — it may never execute at runtime (a feature
    guarded by a runtime-arg flag, say), so must-style rules such as
    P207 only act on unguarded calls.  Loops do not guard: an
    untraceable loop could still run zero times, but CB references in
    shipped kernels' loops are unconditional in practice and skipping
    them would blind the rule entirely.
    """
    for node in nodes:
        if isinstance(node, Call):
            yield node, _guarded
        elif isinstance(node, Loop):
            yield from iter_calls_guarded(node.body, _guarded)
        elif isinstance(node, Branch):
            for arm in node.arms:
                yield from iter_calls_guarded(arm, True)


# --------------------------------------------------------------------------
# scopes
# --------------------------------------------------------------------------

class _Scope:
    """Variable environment: locals over an (optional) enclosing scope
    over a closure map over globals."""

    def __init__(self, globals_dict, closure: Dict[str, object],
                 parent: "_Scope" = None):
        self.vars: Dict[str, object] = {}
        self.closure = closure
        self.globals = globals_dict or {}
        self.parent = parent

    def get(self, name: str):
        if name in self.vars:
            return self.vars[name]
        if self.parent is not None:
            return self.parent.get(name)
        if name in self.closure:
            return self.closure[name]
        if name in self.globals:
            return _wrap(self.globals[name])
        builtins = self.globals.get("__builtins__", None)
        if isinstance(builtins, dict):
            if name in builtins:
                return ObjVal(builtins[name])
        elif builtins is not None and hasattr(builtins, name):
            return ObjVal(getattr(builtins, name))
        return UNKNOWN

    def set(self, name: str, value):
        self.vars[name] = value


class _Budget(Exception):
    """Raised internally when the node budget is exhausted."""


# --------------------------------------------------------------------------
# the extractor
# --------------------------------------------------------------------------

def _fn_ast(fn) -> Tuple[ast.FunctionDef, int, str]:
    """Parse ``fn`` into (FunctionDef node, lineno offset, filename)."""
    source = textwrap.dedent(inspect.getsource(fn))
    module = ast.parse(source)
    node = module.body[0]
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        raise TypeError(f"not a function: {fn!r}")
    offset = fn.__code__.co_firstlineno - node.lineno
    filename = fn.__code__.co_filename
    return node, offset, filename


class _Extractor:
    def __init__(self, fn):
        self.fn = fn
        self.trace = KernelTrace(fn_name=getattr(fn, "__name__", "<kernel>"),
                                 filename="<unknown>")
        self.node_count = 0
        self.inline_stack: List[object] = []   # cycle guard (fn identities)
        self._ast_cache: Dict[object, Tuple] = {}

    # -- entry ------------------------------------------------------------

    def run(self) -> KernelTrace:
        try:
            node, offset, filename = _fn_ast(self.fn)
        except Exception:
            self.trace.unavailable = True
            return self.trace
        self.trace.filename = filename
        scope = _Scope(getattr(self.fn, "__globals__", {}),
                       self._closure_map(self.fn))
        params = node.args.posonlyargs + node.args.args
        if params:                      # first param is the kernel ctx
            scope.set(params[0].arg, CTX)
            for p in params[1:]:
                scope.set(p.arg, UNKNOWN)
        frame = _Frame(scope, offset, filename)
        try:
            self.trace.nodes = self._block(node.body, frame)
        except _Budget:
            self.trace.truncated = True
        except Exception:               # fail open: never break the host
            self.trace.unavailable = True
            self.trace.nodes = []
        return self.trace

    @staticmethod
    def _closure_map(fn) -> Dict[str, object]:
        names = fn.__code__.co_freevars
        cells = fn.__closure__ or ()
        out: Dict[str, object] = {}
        for name, cell in zip(names, cells):
            try:
                out[name] = _wrap(cell.cell_contents)
            except ValueError:          # empty cell
                out[name] = UNKNOWN
        return out

    def _tick(self):
        self.node_count += 1
        if self.node_count > _NODE_BUDGET:
            raise _Budget()

    # -- statements -------------------------------------------------------

    def _block(self, stmts, frame) -> List[object]:
        """Trace a statement list; stops at return/break/continue/raise."""
        nodes: List[object] = []
        for stmt in stmts:
            terminated = self._stmt(stmt, frame, nodes)
            if terminated:
                break
        return nodes

    def _stmt(self, stmt, frame, nodes) -> bool:
        self._tick()
        if isinstance(stmt, ast.Expr):
            self._expr_stmt(stmt.value, frame, nodes)
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._assign(stmt, frame, nodes)
        elif isinstance(stmt, ast.For):
            self._for(stmt, frame, nodes)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test, frame)
            self._opaque_loop(stmt.body, frame, nodes, stmt.lineno)
        elif isinstance(stmt, ast.If):
            self._branch([stmt.body, stmt.orelse or []], frame, nodes,
                         stmt.lineno, extra_eval=stmt.test)
        elif isinstance(stmt, ast.Try):
            arms = [stmt.body] + [h.body for h in stmt.handlers]
            self._branch(arms, frame, nodes, stmt.lineno)
            if stmt.finalbody:
                nodes.extend(self._block(stmt.finalbody, frame))
        elif isinstance(stmt, ast.FunctionDef):
            frame.scope.set(stmt.name, _LocalFn(stmt, frame.scope))
        elif isinstance(stmt, (ast.Return, ast.Break, ast.Continue,
                               ast.Raise)):
            return True
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self._eval(item.context_expr, frame)
            nodes.extend(self._block(stmt.body, frame))
        elif isinstance(stmt, ast.Assert):
            self._eval(stmt.test, frame)
        elif isinstance(stmt, ast.Delete):
            for tgt in stmt.targets:
                if isinstance(tgt, ast.Name):
                    frame.scope.set(tgt.id, UNKNOWN)
        # Pass / Import / Global / Nonlocal / class defs: nothing to trace
        return False

    def _expr_stmt(self, value, frame, nodes):
        if isinstance(value, ast.YieldFrom):
            self._yield_from(value, frame, nodes)
        elif isinstance(value, ast.Yield):
            nodes.append(Opaque(self._line(value, frame)))
        else:
            self._eval(value, frame)

    def _assign(self, stmt, frame, nodes):
        value_expr = stmt.value
        if value_expr is None:          # bare annotation: ``x: int``
            return
        if isinstance(value_expr, ast.YieldFrom):
            self._yield_from(value_expr, frame, nodes)
            result = UNKNOWN
        elif isinstance(value_expr, ast.Yield):
            nodes.append(Opaque(self._line(value_expr, frame)))
            result = UNKNOWN
        else:
            result = self._eval(value_expr, frame)
        if isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                current = frame.scope.get(stmt.target.id)
                frame.scope.set(stmt.target.id,
                                _binop(stmt.op, current, result))
            return
        targets = stmt.targets if isinstance(stmt, ast.Assign) \
            else [stmt.target]
        for target in targets:
            self._bind_value(target, result, frame)

    def _bind_value(self, target, value, frame):
        """Bind an already-evaluated symbolic value to a target."""
        if isinstance(target, ast.Name):
            frame.scope.set(target.id, value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            parts = None
            cv = const_value(value)
            if isinstance(cv, tuple) and len(cv) == len(target.elts):
                parts = [Const(v) for v in cv]
            for i, elt in enumerate(target.elts):
                self._bind_value(elt, parts[i] if parts else UNKNOWN, frame)
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            self._eval(target.value, frame)   # side effects (ctx.arg(...))
        elif isinstance(target, ast.Starred):
            self._bind_value(target.value, UNKNOWN, frame)

    # -- loops ------------------------------------------------------------

    def _for(self, stmt, frame, nodes):
        unrolled = self._try_unroll(stmt, frame, nodes)
        if unrolled:
            return
        # havoc the loop targets, then trace the body once inside Loop
        for name_node in ast.walk(stmt.target):
            if isinstance(name_node, ast.Name):
                frame.scope.set(name_node.id, UNKNOWN)
        self._eval(stmt.iter, frame)
        self._opaque_loop(stmt.body, frame, nodes, stmt.lineno)
        if stmt.orelse:
            nodes.extend(self._block(stmt.orelse, frame))

    def _try_unroll(self, stmt, frame, nodes) -> bool:
        """Unroll ``for`` over a literal tuple or a small const range."""
        it = stmt.iter
        if isinstance(it, ast.Tuple):
            if len(it.elts) > _MAX_UNROLL or \
                    any(isinstance(e, ast.Starred) for e in it.elts):
                return False
            for elt in it.elts:
                self._bind_expr(stmt.target, elt, frame)
                nodes.extend(self._block(stmt.body, frame))
            return True
        range_val = frame.scope.get("range") if isinstance(it, ast.Call) \
            else None
        range_is_builtin = range_val is UNKNOWN or (
            isinstance(range_val, ObjVal) and range_val.obj is range)
        if isinstance(it, ast.Call) and isinstance(it.func, ast.Name) \
                and it.func.id == "range" and not it.keywords \
                and range_is_builtin:
            bounds = [const_int(self._eval(a, frame)) for a in it.args]
            if any(b is None for b in bounds) or not 1 <= len(bounds) <= 3:
                return False
            try:
                seq = list(range(*bounds))
            except (TypeError, ValueError):
                return False
            if len(seq) > _MAX_UNROLL:
                return False
            for value in seq:
                self._bind_value(stmt.target, Const(value), frame)
                nodes.extend(self._block(stmt.body, frame))
            return True
        return False

    def _bind_expr(self, target, value_expr, frame):
        """Bind a target to an *AST* value, destructuring tuple literals."""
        if isinstance(target, (ast.Tuple, ast.List)) \
                and isinstance(value_expr, ast.Tuple) \
                and len(target.elts) == len(value_expr.elts):
            for t, v in zip(target.elts, value_expr.elts):
                self._bind_expr(t, v, frame)
        else:
            self._bind_value(target, self._eval(value_expr, frame), frame)

    def _opaque_loop(self, body, frame, nodes, lineno):
        """Trace an un-unrollable loop body once; havoc what it assigns."""
        before = dict(frame.scope.vars)
        loop_nodes = self._block(body, frame)
        after = frame.scope.vars
        for name, value in list(after.items()):
            if name not in before or not same_value(before[name], value):
                after[name] = UNKNOWN
        nodes.append(Loop(loop_nodes, lineno))

    def _branch(self, arm_stmts, frame, nodes, lineno, extra_eval=None):
        if extra_eval is not None:
            self._eval(extra_eval, frame)
        base = dict(frame.scope.vars)
        arm_nodes, arm_vars = [], []
        for stmts in arm_stmts:
            frame.scope.vars = dict(base)
            arm_nodes.append(self._block(stmts, frame))
            arm_vars.append(frame.scope.vars)
        merged: Dict[str, object] = {}
        names = set()
        for env in arm_vars:
            names.update(env)
        for name in names:
            vals = [env.get(name, base.get(name, UNKNOWN))
                    for env in arm_vars]
            first = vals[0]
            merged[name] = first if all(same_value(first, v)
                                        for v in vals[1:]) else UNKNOWN
        frame.scope.vars = merged
        nodes.append(Branch(arm_nodes, lineno))

    # -- yield from: API calls and helper inlining ------------------------

    def _yield_from(self, node, frame, nodes):
        call = node.value
        if not isinstance(call, ast.Call):
            self._eval(call, frame)
            nodes.append(Opaque(self._line(node, frame)))
            return
        func = call.func
        # direct ctx API call: ``yield from ctx.cb_push_back(...)``
        if isinstance(func, ast.Attribute) \
                and self._eval(func.value, frame) is CTX:
            if func.attr == "cb_set_rd_ptrs":
                # Batched pointer install: desugar to one cb_set_rd_ptr
                # Call per (cb_id, addr) pair so the K1xx alias rules see
                # exactly the unbatched protocol.
                self._desugar_set_rd_ptrs(call, frame, nodes)
                return
            nodes.append(self._api_call(func.attr, call, frame))
            return
        # helper generator: nested def or module-level function
        callee = self._eval(func, frame)
        inlined = self._inline(callee, call, frame, nodes)
        if not inlined:
            self._eval_call_operands(call, frame)
            nodes.append(Opaque(self._line(node, frame)))

    def _desugar_set_rd_ptrs(self, call, frame, nodes) -> None:
        self._tick()
        lineno = self._line(call, frame)
        for a in call.args:
            if isinstance(a, ast.Starred):
                self._eval(a.value, frame)
                nodes.append(Call(name="cb_set_rd_ptr", args=[],
                                  kwargs={}, lineno=lineno,
                                  filename=frame.filename, star=True))
            elif isinstance(a, ast.Tuple) and len(a.elts) == 2:
                args = [self._eval(e, frame) for e in a.elts]
                nodes.append(Call(name="cb_set_rd_ptr", args=args,
                                  kwargs={}, lineno=lineno,
                                  filename=frame.filename))
            else:
                self._eval(a, frame)
                nodes.append(Call(name="cb_set_rd_ptr", args=[],
                                  kwargs={}, lineno=lineno,
                                  filename=frame.filename, star=True))
        for kw in call.keywords:
            self._eval(kw.value, frame)

    def _api_call(self, name, call, frame) -> Call:
        self._tick()
        args, kwargs, star = self._eval_call_operands(call, frame)
        return Call(name=name, args=args, kwargs=kwargs,
                    lineno=self._line(call, frame),
                    filename=frame.filename, star=star)

    def _eval_call_operands(self, call, frame):
        args, star = [], False
        for a in call.args:
            if isinstance(a, ast.Starred):
                self._eval(a.value, frame)
                star = True
            else:
                args.append(self._eval(a, frame))
        kwargs = {}
        for kw in call.keywords:
            if kw.arg is None:          # **kwargs
                self._eval(kw.value, frame)
                star = True
            else:
                kwargs[kw.arg] = self._eval(kw.value, frame)
        if star:
            args = []
        return args, kwargs, star

    def _inline(self, callee, call, frame, nodes) -> bool:
        if len(self.inline_stack) >= _MAX_INLINE_DEPTH:
            return False
        if isinstance(callee, _LocalFn):
            # nested def: late-bound view of the enclosing scope
            key = callee.node
            fn_node, offset, filename = callee.node, frame.offset, \
                frame.filename
            scope = _Scope(frame.scope.globals, {}, parent=callee.scope)
        elif isinstance(callee, ObjVal) and inspect.isfunction(callee.obj) \
                and callee.obj.__code__.co_flags & inspect.CO_GENERATOR:
            key = callee.obj
            try:
                fn_node, offset, filename = self._parsed(callee.obj)
            except Exception:
                return False
            scope = _Scope(callee.obj.__globals__,
                           self._closure_map(callee.obj))
        else:
            return False
        if any(key is k for k in self.inline_stack):
            return False
        args, kwargs, star = self._eval_call_operands(call, frame)
        self._bind_params(fn_node.args, args, kwargs, star, scope, frame)
        inner = _Frame(scope, offset, filename)
        self.inline_stack.append(key)
        try:
            nodes.extend(self._block(fn_node.body, inner))
        finally:
            self.inline_stack.pop()
        return True

    def _bind_params(self, arguments, args, kwargs, star, scope, frame):
        params = arguments.posonlyargs + arguments.args
        defaults = arguments.defaults
        default_of = {}
        for p, d in zip(params[len(params) - len(defaults):], defaults):
            default_of[p.arg] = d
        for p, d in zip(arguments.kwonlyargs, arguments.kw_defaults):
            if d is not None:
                default_of[p.arg] = d
        all_params = params + arguments.kwonlyargs
        for i, p in enumerate(all_params):
            if star:
                value = UNKNOWN
            elif p.arg in kwargs:
                value = kwargs[p.arg]
            elif p in params and i < len(args):
                value = args[i]
            elif p.arg in default_of:
                value = self._eval(default_of[p.arg], frame)
            else:
                value = UNKNOWN
            scope.set(p.arg, value)
        if arguments.vararg:
            scope.set(arguments.vararg.arg, UNKNOWN)
        if arguments.kwarg:
            scope.set(arguments.kwarg.arg, UNKNOWN)

    def _parsed(self, fn):
        if fn not in self._ast_cache:
            self._ast_cache[fn] = _fn_ast(fn)
        return self._ast_cache[fn]

    # -- expressions ------------------------------------------------------

    def _line(self, node, frame) -> int:
        return getattr(node, "lineno", 0) + frame.offset

    def _eval(self, node, frame):
        self._tick()
        scope = frame.scope
        if isinstance(node, ast.Constant):
            return _wrap(node.value) if isinstance(
                node.value, _SIMPLE_CONST) else UNKNOWN
        if isinstance(node, ast.Name):
            return scope.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self._eval(node.value, frame)
            if isinstance(base, ObjVal):
                try:
                    return _wrap(getattr(base.obj, node.attr))
                except Exception:
                    return UNKNOWN
            if isinstance(base, NocAddrVal) and node.attr == "addr":
                return base.addr
            if isinstance(base, NocAddrVal) and node.attr == "bank_id":
                return base.bank if base.bank is not None else UNKNOWN
            return UNKNOWN
        if isinstance(node, ast.Call):
            return self._eval_call(node, frame)
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left, frame)
            right = self._eval(node.right, frame)
            return _binop(node.op, left, right)
        if isinstance(node, ast.UnaryOp):
            operand = self._eval(node.operand, frame)
            value = const_value(operand)
            if isinstance(node.op, ast.USub) and isinstance(
                    value, (int, float)) and not isinstance(value, bool):
                return Const(-value)
            if isinstance(node.op, ast.Not):
                return UNKNOWN
            return UNKNOWN
        if isinstance(node, ast.Tuple):
            elems = [self._eval(e, frame) for e in node.elts
                     if not isinstance(e, ast.Starred)]
            if len(elems) == len(node.elts) and \
                    all(isinstance(e, Const) for e in elems):
                return Const(tuple(e.value for e in elems))
            return UNKNOWN
        if isinstance(node, ast.IfExp):
            self._eval(node.test, frame)
            a = self._eval(node.body, frame)
            b = self._eval(node.orelse, frame)
            return a if same_value(a, b) else UNKNOWN
        if isinstance(node, (ast.Compare, ast.BoolOp)):
            children = ([node.left] + node.comparators) \
                if isinstance(node, ast.Compare) else node.values
            for child in children:
                self._eval(child, frame)
            return UNKNOWN
        if isinstance(node, ast.Subscript):
            self._eval(node.value, frame)
            if not isinstance(node.slice, ast.Slice):
                self._eval(node.slice, frame)
            return UNKNOWN
        if isinstance(node, ast.Starred):
            self._eval(node.value, frame)
            return UNKNOWN
        if isinstance(node, (ast.YieldFrom, ast.Yield)):
            return UNKNOWN              # handled at statement level
        # List/Dict/Set literals stay UNKNOWN: they are mutable, and
        # pretending to know their contents would go stale on .append()
        return UNKNOWN

    def _eval_call(self, node, frame):
        func = node.func
        if isinstance(func, ast.Attribute):
            base = self._eval(func.value, frame)
            if base is CTX:
                return self._ctx_value_call(func.attr, node, frame)
            # method call on a host object / unknown: eval args only
            self._eval_call_operands(node, frame)
            return UNKNOWN
        callee = self._eval(func, frame)
        args, kwargs, star = self._eval_call_operands(node, frame)
        if isinstance(callee, ObjVal):
            obj = callee.obj
            try:
                from repro.ttmetal.kernel_api import NocAddr
            except Exception:           # pragma: no cover - defensive
                NocAddr = None
            if NocAddr is not None and obj is NocAddr and not star:
                addr = args[1] if len(args) > 1 else kwargs.get("addr")
                bank = args[0] if len(args) > 0 else kwargs.get("bank_id")
                if addr is not None:
                    return NocAddrVal(addr, bank)
            if obj is len and not star and len(args) == 1:
                value = const_value(args[0])
                if isinstance(value, (tuple, str, bytes)):
                    return Const(len(value))
            if obj in (int, min, max, abs) and not star and args and \
                    all(const_int(a) is not None for a in args):
                try:
                    return Const(obj(*[a.value for a in args]))
                except Exception:
                    return UNKNOWN
        return UNKNOWN

    def _ctx_value_call(self, name, node, frame):
        """A ctx.* call in *value* position (not yielded)."""
        args, kwargs, star = self._eval_call_operands(node, frame)

        def operand(i, kw):
            if kw in kwargs:
                return kwargs[kw]
            if not star and i < len(args):
                return args[i]
            return None

        if name == "arg":
            arg_name = const_value(operand(0, "name"))
            required = operand(1, "default") is None and "default" \
                not in kwargs
            self.trace.arg_refs.append(ArgRef(
                name=arg_name if isinstance(arg_name, str) else None,
                required=required, lineno=self._line(node, frame)))
            return ArgVal(arg_name) if isinstance(arg_name, str) \
                else UNKNOWN
        if name in ("cb_write_ptr", "cb_read_ptr"):
            kind = "write" if name == "cb_write_ptr" else "read"
            return CbPtr(const_int(operand(0, "cb_id")), kind)
        if name == "get_noc_addr":
            addr = operand(2, "addr")
            return NocAddrVal(addr) if addr is not None else UNKNOWN
        return UNKNOWN


def _binop(op, left, right):
    lv, rv = const_value(left), const_value(right)
    num = (int, float)
    if isinstance(left, NocAddrVal):
        base = const_value(left.addr)
        if isinstance(op, (ast.Add, ast.Sub)) and isinstance(base, num) \
                and isinstance(rv, num):
            delta = rv if isinstance(op, ast.Add) else -rv
            return NocAddrVal(Const(base + delta), left.bank)
        return NocAddrVal(UNKNOWN, left.bank)
    if isinstance(lv, num) and isinstance(rv, num):
        try:
            if isinstance(op, ast.Add):
                return Const(lv + rv)
            if isinstance(op, ast.Sub):
                return Const(lv - rv)
            if isinstance(op, ast.Mult):
                return Const(lv * rv)
            if isinstance(op, ast.FloorDiv):
                return Const(lv // rv)
            if isinstance(op, ast.Mod):
                return Const(lv % rv)
            if isinstance(op, ast.Div):
                return Const(lv / rv)
            if isinstance(op, ast.RShift):
                return Const(lv >> rv)
            if isinstance(op, ast.LShift):
                return Const(lv << rv)
        except (ZeroDivisionError, TypeError, ValueError, OverflowError):
            return UNKNOWN
    if isinstance(lv, tuple) and isinstance(rv, tuple) \
            and isinstance(op, ast.Add):
        return Const(lv + rv)
    return UNKNOWN


class _Frame:
    """One inlining frame: a scope plus its source-coordinate mapping."""

    __slots__ = ("scope", "offset", "filename")

    def __init__(self, scope, offset, filename):
        self.scope = scope
        self.offset = offset
        self.filename = filename


# --------------------------------------------------------------------------
# public entry
# --------------------------------------------------------------------------

_TRACE_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def extract_trace(fn) -> KernelTrace:
    """Extract (and cache) the symbolic API trace of a kernel function."""
    try:
        cached = _TRACE_CACHE.get(fn)
    except TypeError:                   # unhashable/unweakrefable callable
        cached = None
        fn_cacheable = False
    else:
        fn_cacheable = True
    if cached is not None:
        return cached
    trace = _Extractor(fn).run()
    if fn_cacheable:
        try:
            _TRACE_CACHE[fn] = trace
        except TypeError:               # pragma: no cover - defensive
            pass
    return trace
