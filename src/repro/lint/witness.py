"""Counterexample schedules for the R3xx concurrency findings.

Every race/deadlock finding from :mod:`repro.lint.concurrency` carries a
:class:`Witness`: a minimal concrete interleaving that exhibits the
hazard.  The witness is serializable (``to_json``/``from_json``, with a
stable sha256 :meth:`Witness.digest`) so exports can reference it, and —
the important part — *replayable*: :func:`replay_witness` rebuilds the
program from its corpus builder, steers the DES to the witness
interleaving and reports whether the hazard actually manifests
dynamically.  Static findings become checkable claims.

Two witness kinds exist:

``race``
    ``steps`` holds exactly two endpoints, one per racing kernel.  The
    replay governor runs kernel A until it has *issued* its endpoint API
    call, holds it there on a simulator event, lets kernel B issue its
    endpoint, then releases A.  Both endpoints' runtime operands are
    recorded; the race is *confirmed* when both endpoints executed and
    their concrete byte intervals overlap.

``hang``
    ``steps`` holds the executed schedule prefix from the abstract
    executor (possibly empty) and ``blocked`` the kernel labels expected
    to stall.  The replay simply runs the program under the
    :func:`repro.ttmetal.Finish` watchdog; the finding is *confirmed*
    when :class:`DeviceHangError` fires with every expected kernel in
    the stall report.

Kernel labels use the host process-naming convention
``{fn.__name__}@{core.coord}/{slot}``, so stall reports and witness
steps speak the same vocabulary.  Step indices count the kernel's
*yielded ctx API calls* from zero — the same count the symbolic
linearizer maintains, which is why witnesses are only emitted for
prefix-exact trace positions.
"""

from __future__ import annotations

import functools
import hashlib
import inspect
import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["Witness", "WitnessStep", "ReplayResult", "replay_witness"]


@dataclass(frozen=True)
class WitnessStep:
    """One scheduled point: kernel ``label`` issues API call ``index``."""

    kernel: str           #: process label "fn@(x, y)/slot"
    index: int            #: 0-based count of yielded ctx API calls
    op: str               #: API name, e.g. "noc_write_buffer"
    lineno: int           #: source line of the call


@dataclass(frozen=True)
class Witness:
    """A minimal interleaving exhibiting one R3xx hazard."""

    rule_id: str
    kind: str                              #: "race" or "hang"
    steps: Tuple[WitnessStep, ...]
    blocked: Tuple[str, ...] = ()          #: stalled kernels (hang kind)
    note: str = ""

    def to_json(self) -> Dict:
        return {
            "rule_id": self.rule_id,
            "kind": self.kind,
            "steps": [{"kernel": s.kernel, "index": s.index,
                       "op": s.op, "lineno": s.lineno}
                      for s in self.steps],
            "blocked": list(self.blocked),
            "note": self.note,
        }

    @staticmethod
    def from_json(doc: Dict) -> "Witness":
        return Witness(
            rule_id=doc["rule_id"],
            kind=doc["kind"],
            steps=tuple(WitnessStep(kernel=s["kernel"], index=s["index"],
                                    op=s["op"], lineno=s["lineno"])
                        for s in doc["steps"]),
            blocked=tuple(doc.get("blocked", ())),
            note=doc.get("note", ""),
        )

    def digest(self) -> str:
        """Stable 16-hex-digit content digest of the canonical JSON."""
        text = json.dumps(self.to_json(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(text.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of one witness replay through the DES."""

    confirmed: bool
    detail: str


# --------------------------------------------------------------------------
# runtime operand → concrete byte intervals
# --------------------------------------------------------------------------

def _operand(args, kwargs, index, kw):
    if kw in kwargs:
        return kwargs[kw]
    if index < len(args):
        return args[index]
    return None


def _buffer_intervals(buf, offset, size):
    if buf.interleaved:
        return [("buf", id(buf), int(offset), int(offset) + int(size))]
    base = buf.addr + int(offset)
    return [("dram", buf.bank_id, base, base + int(size))]


def _runtime_intervals(op: str, args, kwargs) -> List[tuple]:
    """Concrete (space, key, lo, hi) intervals touched by one runtime call."""
    if op in ("noc_async_read", "noc_async_write"):
        noc_addr = _operand(args, kwargs, 0 if op == "noc_async_read" else 1,
                            "noc_addr")
        size = _operand(args, kwargs, 2, "size")
        if noc_addr is None or size is None:
            return []
        return [("dram", int(noc_addr.bank_id), int(noc_addr.addr),
                 int(noc_addr.addr) + int(size))]
    if op in ("noc_read_buffer", "noc_write_buffer"):
        buf = _operand(args, kwargs, 0, "buf")
        offset = _operand(args, kwargs, 1, "offset")
        size = _operand(args, kwargs, 3, "size")
        if buf is None or offset is None or size is None:
            return []
        return _buffer_intervals(buf, offset, size)
    if op == "noc_sram_write":
        dst = _operand(args, kwargs, 0, "dst_core")
        dst_l1 = _operand(args, kwargs, 1, "dst_l1")
        size = _operand(args, kwargs, 3, "size")
        if dst is None or dst_l1 is None or size is None:
            return []
        return [("l1", id(dst), int(dst_l1), int(dst_l1) + int(size))]
    if op == "noc_sram_write_multicast":
        dsts = _operand(args, kwargs, 0, "dst_cores")
        dst_l1 = _operand(args, kwargs, 1, "dst_l1")
        size = _operand(args, kwargs, 3, "size")
        if dsts is None or dst_l1 is None or size is None:
            return []
        return [("l1", id(d), int(dst_l1), int(dst_l1) + int(size))
                for d in dsts]
    return []


def _intervals_overlap(one: List[tuple], other: List[tuple]) -> bool:
    for space_a, key_a, lo_a, hi_a in one:
        for space_b, key_b, lo_b, hi_b in other:
            if (space_a, key_a) == (space_b, key_b) \
                    and lo_a < hi_b and lo_b < hi_a:
                return True
    return False


# --------------------------------------------------------------------------
# the race governor
# --------------------------------------------------------------------------

class _ReplayState:
    """Shared hold/release bookkeeping between the two governed kernels."""

    def __init__(self):
        self.release = None             #: simulator Event, armed lazily
        self.recorded: Dict[str, tuple] = {}   #: label -> (op, intervals)

    def record(self, label: str, op: str, args, kwargs) -> None:
        self.recorded[label] = (op, _runtime_intervals(op, args, kwargs))


class _CtxProxy:
    """Wraps a kernel ctx, counting yielded API calls like the linearizer.

    Only generator-function attributes (the yielded kernel API) are
    counted; plain attributes and value-position helpers pass through
    untouched, matching the symbolic trace's Call-node count.
    """

    def __init__(self, real, label: str, index: int, role: str,
                 state: _ReplayState):
        self._real = real
        self._label = label
        self._index = index
        self._role = role           #: "hold" or "watch"
        self._state = state
        self._count = 0

    def __getattr__(self, name):
        attr = getattr(self._real, name)
        if callable(attr) and inspect.isgeneratorfunction(attr):
            def call(*args, **kwargs):
                return self._governed(name, attr, args, kwargs)
            return call
        return attr

    def _governed(self, name, attr, args, kwargs):
        idx = self._count
        self._count += 1
        result = yield from attr(*args, **kwargs)
        if idx == self._index:
            self._state.record(self._label, name, args, kwargs)
            release = self._state.release
            if self._role == "hold":
                if release is not None and not release.triggered:
                    yield release
            elif release is not None and not release.triggered:
                release.succeed()
        return result


def _govern(fn, label: str, index: int, role: str, state: _ReplayState):
    @functools.wraps(fn)
    def governed(ctx):
        yield from fn(_CtxProxy(ctx, label, index, role, state))
    return governed


def _spec_label(spec) -> str:
    return (f"{getattr(spec.fn, '__name__', 'kernel')}@"
            f"{spec.core.coord}/{spec.slot}")


# --------------------------------------------------------------------------
# replay entry point
# --------------------------------------------------------------------------

def replay_witness(builder: Callable[[], tuple], witness: Witness,
                   timeout_s: float = 0.005) -> ReplayResult:
    """Rebuild the program via ``builder`` and replay ``witness``.

    ``builder`` must return a fresh, un-enqueued ``(device, program)``
    pair.  Race witnesses are steered by a ctx governor; hang witnesses
    run free under the Finish watchdog.  ``timeout_s`` is *simulated*
    time, so small values are safe for tiny corpus programs.
    """
    from repro.ttmetal.host import DeviceHangError, EnqueueProgram, Finish

    device, program = builder()
    if witness.kind == "hang":
        EnqueueProgram(device, program, lint="off")
        try:
            Finish(device, timeout_s=timeout_s)
        except DeviceHangError as err:
            stalled = {stall.kernel for stall in err.stalls}
            missing = sorted(set(witness.blocked) - stalled)
            if not missing:
                return ReplayResult(True, "hang reproduced; stalled: "
                                    + ", ".join(sorted(stalled)))
            return ReplayResult(False, "hang reproduced but expected "
                                f"kernels not stalled: {', '.join(missing)}")
        return ReplayResult(False, "program completed; no hang observed")

    if witness.kind != "race" or len(witness.steps) != 2:
        return ReplayResult(False,
                            f"unreplayable witness kind {witness.kind!r}")

    hold, watch = witness.steps
    state = _ReplayState()
    state.release = device.sim.event(name="lint.witness.release")
    governed = 0
    for spec in program.kernels:
        label = _spec_label(spec)
        if label == hold.kernel:
            spec.fn = _govern(spec.fn, label, hold.index, "hold", state)
            spec.launch_cache = None
            governed += 1
        elif label == watch.kernel:
            spec.fn = _govern(spec.fn, label, watch.index, "watch", state)
            spec.launch_cache = None
            governed += 1
    if governed != 2:
        return ReplayResult(False, "witness kernels not found in program")

    EnqueueProgram(device, program, lint="off")
    hung = False
    try:
        Finish(device, timeout_s=timeout_s)
    except DeviceHangError:
        hung = True

    missing = [s.kernel for s in witness.steps if s.kernel not in
               state.recorded]
    if missing:
        why = "program hung" if hung else "program completed"
        return ReplayResult(False, f"{why} before endpoints executed: "
                            + ", ".join(missing) + " never reached its "
                            "witness index")
    op_a, ivs_a = state.recorded[hold.kernel]
    op_b, ivs_b = state.recorded[watch.kernel]
    if _intervals_overlap(ivs_a, ivs_b):
        return ReplayResult(True, f"both endpoints executed in the witness "
                            f"window ({op_a} vs {op_b}) on overlapping "
                            "concrete byte intervals")
    return ReplayResult(False, f"endpoints executed ({op_a} vs {op_b}) but "
                        "runtime intervals do not overlap")
