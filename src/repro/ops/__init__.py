"""``repro.ops`` — the multi-workload op library.

Importing this package registers the three concrete ops (blocked SRAM
matmul, radix-2 FFT pencils, 9-point stencil) into the
:mod:`repro.ops.registry`; see :mod:`docs/ops.md <docs>` for layouts
and how to add an op.
"""

from repro.ops.registry import (
    OPS,
    OpCheckError,
    OpRunResult,
    OpSpec,
    get_op,
    list_ops,
    register,
    sha16,
)
from repro.ops import fft, matmul, stencil9  # noqa: F401  (self-register)
from repro.ops.fft import FFT_ULP_BOUND, FftProblem, run_fft
from repro.ops.matmul import MatmulProblem, run_matmul
from repro.ops.stencil9 import Stencil9Problem, run_stencil9

__all__ = [
    "OPS",
    "OpCheckError",
    "OpRunResult",
    "OpSpec",
    "get_op",
    "list_ops",
    "register",
    "sha16",
    "FFT_ULP_BOUND",
    "FftProblem",
    "MatmulProblem",
    "Stencil9Problem",
    "run_fft",
    "run_matmul",
    "run_stencil9",
]
