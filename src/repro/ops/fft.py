"""Radix-2 1D FFT pencils with precomputed twiddle tables in L1.

A batch of independent length-``n`` complex pencils (Brown et al.'s
Wormhole FFT layout) is laid out as four float32 planes in DRAM —
``xr``/``xi`` of shape ``(n, batch)`` and twiddle tables ``twr``/``twi``
of shape ``(n/2, batch)`` where twiddle row ``k`` holds
``cos/sin(-2*pi*k/n)`` broadcast across the batch.  Each plane is stored
**core-blocked**: every core's slice of the batch axis is a contiguous
block whose row stride is padded to the 32-byte DRAM alignment, so all
device reads and writes are aligned — concurrent cores never share a
DRAM word, which the simulated controller (faithful to the paper's
Section IV findings) would corrupt.  The host writes ``x`` in
**bit-reversed row order**; the compute kernel then runs the iterative
decimation-in-time butterflies in place over fp32 circular-buffer
aliases, one elementwise tile op per butterfly term (10 FPU ops per
butterfly), leaving natural row order for the writer.

fp32 CBs pack losslessly, so the device arithmetic is a fixed sequence
of float32 elementwise operations.  :func:`fft_reference_bits` replays
exactly that sequence in NumPy — the device readback is **bit-exact**
against it.  Accuracy against ``numpy.fft`` (double precision) is
checked separately per pencil and must stay within
:data:`FFT_ULP_BOUND` ULPs of the pencil's peak magnitude; the bound
was calibrated empirically over n in 16..1024 (observed max ~3 ULP for
uniform [-1,1) inputs) with generous headroom for adversarial inputs.

Multi-core: the batch axis is carved with ``split_extent`` across all
``cores_y * cores_x`` cores; pencils never cross cores, so there is no
inter-core communication.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.arch.device import GrayskullDevice
from repro.arch.sram import SramExhausted
from repro.arch.tensix import COMPUTE, DATA_MOVER_0, DATA_MOVER_1
from repro.core.decomposition import split_extent
from repro.ops.registry import (
    OpCheckError,
    OpRunResult,
    OpSpec,
    register,
    sha16,
)
from repro.perfmodel.calibration import DEFAULT_COSTS, CostModel
from repro.sim.resources import Semaphore
from repro.ttmetal import (
    CreateCircularBuffer,
    CreateKernel,
    EnqueueProgram,
    EnqueueReadBuffer,
    EnqueueWriteBuffer,
    Finish,
    Program,
    create_buffer,
)

__all__ = [
    "FftProblem",
    "FFT_ULP_BOUND",
    "bit_reverse_indices",
    "twiddle_tables",
    "fft_reference_bits",
    "run_fft",
]

#: Documented accuracy bound vs double-precision ``numpy.fft``, in ULPs
#: of each pencil's peak magnitude (see module docstring).
FFT_ULP_BOUND = 64.0

CB_A, CB_B = 0, 1      #: fp32 operand aliases
CB_O = 16              #: fp32 output alias


@dataclass(frozen=True)
class FftProblem:
    """``batch`` independent complex64 pencils of power-of-two length."""

    n: int
    batch: int = 16
    seed: int = 0

    def __post_init__(self):
        if self.n < 2 or self.n & (self.n - 1):
            raise ValueError(f"FFT length must be a power of two, got {self.n}")
        if self.batch < 1:
            raise ValueError("batch must be >= 1")

    def flops(self) -> float:
        """10 real FPU lanes per butterfly, (n/2)*log2(n) butterflies."""
        return 10.0 * (self.n // 2) * int(np.log2(self.n)) * self.batch

    def inputs(self) -> np.ndarray:
        """Seeded complex64 input, shape ``(n, batch)``, natural order."""
        rng = np.random.default_rng(self.seed)
        re = (rng.random((self.n, self.batch)) * 2 - 1).astype(np.float32)
        im = (rng.random((self.n, self.batch)) * 2 - 1).astype(np.float32)
        return re + 1j * im


def bit_reverse_indices(n: int) -> np.ndarray:
    """Row permutation applied by the host before the upload."""
    bits = int(np.log2(n))
    idx = np.arange(n)
    rev = np.zeros(n, dtype=np.int64)
    for _ in range(bits):
        rev = (rev << 1) | (idx & 1)
        idx >>= 1
    return rev


def twiddle_tables(n: int) -> Tuple[np.ndarray, np.ndarray]:
    """float32 ``cos``/``sin`` of ``-2*pi*k/n`` for k in [0, n/2)."""
    ang = -2.0 * np.pi * np.arange(n // 2, dtype=np.float64) / n
    return np.cos(ang).astype(np.float32), np.sin(ang).astype(np.float32)


# -- host reference ----------------------------------------------------------

def fft_reference_bits(x: np.ndarray) -> np.ndarray:
    """Replay the device's exact float32 butterfly sequence in NumPy.

    ``x``: complex64 ``(n, batch)`` in natural order.  Returns complex64
    ``(n, batch)`` bit-identical to the device readback.
    """
    n = x.shape[0]
    rev = bit_reverse_indices(n)
    xr = np.ascontiguousarray(x.real, dtype=np.float32)[rev].copy()
    xi = np.ascontiguousarray(x.imag, dtype=np.float32)[rev].copy()
    twr, twi = twiddle_tables(n)
    m = 2
    while m <= n:
        half, step = m // 2, n // m
        for base in range(0, n, m):
            for j in range(half):
                wr, wi = twr[j * step], twi[j * step]
                i1, i2 = base + j, base + j + half
                p1 = (wr * xr[i2]).astype(np.float32)
                p2 = (wi * xi[i2]).astype(np.float32)
                tr = (p1 - p2).astype(np.float32)
                q1 = (wr * xi[i2]).astype(np.float32)
                q2 = (wi * xr[i2]).astype(np.float32)
                ti = (q1 + q2).astype(np.float32)
                yr2 = (xr[i1] - tr).astype(np.float32)
                yr1 = (xr[i1] + tr).astype(np.float32)
                yi2 = (xi[i1] - ti).astype(np.float32)
                yi1 = (xi[i1] + ti).astype(np.float32)
                xr[i2], xr[i1] = yr2, yr1
                xi[i2], xi[i1] = yi2, yi1
        m *= 2
    return (xr + 1j * xi).astype(np.complex64)


# -- device kernels ----------------------------------------------------------

def _fft_reader(ctx):
    """dm0: gather this core's x block and twiddle block into L1."""
    plan = ctx.arg("plan")
    n = ctx.arg("n")
    rb = plan["bc"] * 4
    stride = plan["stride"]
    loads = [(ctx.arg("xr_buf"), plan["xr"], n, plan["x_off"]),
             (ctx.arg("xi_buf"), plan["xi"], n, plan["x_off"]),
             (ctx.arg("twr_buf"), plan["twr"], n // 2, plan["tw_off"]),
             (ctx.arg("twi_buf"), plan["twi"], n // 2, plan["tw_off"])]
    for buf, slab, rows, base in loads:
        for r in range(rows):
            yield from ctx.noc_read_buffer(buf, base + r * stride,
                                           slab + r * rb, rb)
    yield from ctx.noc_async_read_barrier()
    yield from ctx.semaphore_inc(ctx.arg("loaded"), 1)


def _fft_compute(ctx):
    """In-place iterative radix-2 DIT over fp32 CB aliases."""
    plan = ctx.arg("plan")
    n = ctx.arg("n")
    rb = plan["bc"] * 4
    xr, xi = plan["xr"], plan["xi"]
    twr, twi = plan["twr"], plan["twi"]
    p1, p2, tr, ti = (plan["scr"] + i * rb for i in range(4))
    yield from ctx.semaphore_wait(ctx.arg("loaded"), 1)
    yield from ctx.tile_regs_acquire()

    def binop(op, a, b, out):
        yield from ctx.cb_set_rd_ptrs((CB_A, a), (CB_B, b))
        yield from op(CB_A, CB_B, 0, 0, 0)
        yield from ctx.cb_set_wr_ptr(CB_O, out)
        yield from ctx.pack_tile(0, CB_O)

    m = 2
    while m <= n:
        half, step = m // 2, n // m
        ctx.fused_begin()
        for base in range(0, n, m):
            for j in range(half):
                wr = twr + (j * step) * rb
                wi = twi + (j * step) * rb
                r1, r2 = base + j, base + j + half
                xr1, xr2 = xr + r1 * rb, xr + r2 * rb
                xi1, xi2 = xi + r1 * rb, xi + r2 * rb
                yield from binop(ctx.mul_tiles, wr, xr2, p1)
                yield from binop(ctx.mul_tiles, wi, xi2, p2)
                yield from binop(ctx.sub_tiles, p1, p2, tr)
                yield from binop(ctx.mul_tiles, wr, xi2, p1)
                yield from binop(ctx.mul_tiles, wi, xr2, p2)
                yield from binop(ctx.add_tiles, p1, p2, ti)
                yield from binop(ctx.sub_tiles, xr1, tr, xr2)
                yield from binop(ctx.add_tiles, xr1, tr, xr1)
                yield from binop(ctx.sub_tiles, xi1, ti, xi2)
                yield from binop(ctx.add_tiles, xi1, ti, xi1)
        yield from ctx.fused_end()
        m *= 2
    yield from ctx.tile_regs_release()
    yield from ctx.semaphore_inc(ctx.arg("done"), 1)


def _fft_writer(ctx):
    """dm1: push the natural-order rows back to this core's DRAM block."""
    plan = ctx.arg("plan")
    n = ctx.arg("n")
    rb = plan["bc"] * 4
    stride = plan["stride"]
    yield from ctx.semaphore_wait(ctx.arg("done"), 1)
    for buf, slab in ((ctx.arg("xr_buf"), plan["xr"]),
                      (ctx.arg("xi_buf"), plan["xi"])):
        for r in range(n):
            # 32-aligned destination: concurrent cores never share a word
            yield from ctx.noc_write_buffer(buf, plan["x_off"] + r * stride,
                                            slab + r * rb, rb)
    yield from ctx.noc_async_write_barrier()


# -- host driver -------------------------------------------------------------

def _block_strides(shares: List[Tuple[int, int]]) -> List[int]:
    """Per-core row stride in bytes, padded to the 32-byte alignment."""
    return [-(-(bc * 4) // 32) * 32 for _, bc in shares]


def _pack_blocked(plane: np.ndarray, shares, strides) -> np.ndarray:
    """(rows, batch) float32 plane -> core-blocked padded byte stream."""
    rows = plane.shape[0]
    parts = []
    for (x0, bc), stride in zip(shares, strides):
        blk = np.zeros((rows, stride // 4), dtype=np.float32)
        blk[:, :bc] = plane[:, x0:x0 + bc]
        parts.append(blk.ravel())
    return np.concatenate(parts)


def _unpack_blocked(flat: np.ndarray, shares, strides, rows: int,
                    batch: int) -> np.ndarray:
    """Inverse of :func:`_pack_blocked`."""
    plane = np.empty((rows, batch), dtype=np.float32)
    pos = 0
    for (x0, bc), stride in zip(shares, strides):
        se = stride // 4
        plane[:, x0:x0 + bc] = flat[pos:pos + rows * se].reshape(
            rows, se)[:, :bc]
        pos += rows * se
    return plane


def run_fft(problem: FftProblem, cores: Tuple[int, int] = (1, 1),
            device: Optional[GrayskullDevice] = None,
            check: bool = True,
            costs: CostModel = DEFAULT_COSTS) -> OpRunResult:
    """Execute the pencil FFT on the simulated e150 and check readback."""
    cy, cx = cores
    n_cores = cy * cx
    n, batch = problem.n, problem.batch
    if n_cores > batch:
        raise ValueError(
            f"{n_cores} cores cannot split a batch of {batch} pencils")
    dev = device or GrayskullDevice(costs, dram_bank_capacity=64 << 20)

    x = problem.inputs()
    rev = bit_reverse_indices(n)
    xr_h = np.ascontiguousarray(x.real, dtype=np.float32)[rev]
    xi_h = np.ascontiguousarray(x.imag, dtype=np.float32)[rev]
    twr, twi = twiddle_tables(n)
    twr_h = np.broadcast_to(twr[:, None], (n // 2, batch)).copy()
    twi_h = np.broadcast_to(twi[:, None], (n // 2, batch)).copy()

    shares = split_extent(batch, n_cores)
    strides = _block_strides(shares)
    x_size = n * sum(strides)
    xr_buf = create_buffer(dev, x_size, interleaved=True, page_size=32 << 10)
    xi_buf = create_buffer(dev, x_size, interleaved=True, page_size=32 << 10)
    twr_buf = create_buffer(dev, x_size // 2, interleaved=True,
                            page_size=32 << 10)
    twi_buf = create_buffer(dev, x_size // 2, interleaved=True,
                            page_size=32 << 10)
    t_in = 0.0
    for buf, host, rows in ((xr_buf, xr_h, n), (xi_buf, xi_h, n),
                            (twr_buf, twr_h, n // 2),
                            (twi_buf, twi_h, n // 2)):
        packed = _pack_blocked(host, shares, strides)
        t_in += EnqueueWriteBuffer(dev, buf, packed.view(np.uint32))

    grid = dev.worker_grid(cy, cx)
    budget = dev.costs.sram_bytes - 96 * 1024
    prog = Program(dev)
    x_off = tw_off = 0
    for rank in range(n_cores):
        core = grid[rank // cx][rank % cx]
        x0, bc = shares[rank]
        rb = bc * 4
        need = (3 * n + 4) * rb
        if need > budget:
            raise SramExhausted(
                f"core {rank} needs {need} B of L1 for {bc} pencils of "
                f"length {n}; only ~{budget} B available — use more cores "
                "or shorter pencils")
        plan = {
            "x0": x0, "bc": bc, "stride": strides[rank],
            "x_off": x_off, "tw_off": tw_off,
            "xr": core.allocate_l1(n * rb, align=32),
            "xi": core.allocate_l1(n * rb, align=32),
            "twr": core.allocate_l1((n // 2) * rb, align=32),
            "twi": core.allocate_l1((n // 2) * rb, align=32),
            "scr": core.allocate_l1(4 * rb, align=32),
        }
        x_off += n * strides[rank]
        tw_off += (n // 2) * strides[rank]
        for cb in (CB_A, CB_B, CB_O):
            CreateCircularBuffer(prog, core, cb, rb, 1, dtype="fp32")
        common = dict(
            xr_buf=xr_buf, xi_buf=xi_buf, twr_buf=twr_buf, twi_buf=twi_buf,
            plan=plan, n=n,
            loaded=Semaphore(dev.sim, 0, name=f"fft_loaded_{rank}"),
            done=Semaphore(dev.sim, 0, name=f"fft_done_{rank}"))
        CreateKernel(prog, _fft_reader, core, DATA_MOVER_0, common)
        CreateKernel(prog, _fft_compute, core, COMPUTE, common)
        CreateKernel(prog, _fft_writer, core, DATA_MOVER_1, common)

    EnqueueProgram(dev, prog)
    kernel_time = Finish(dev)
    fpu_ops = sum(grid[r // cx][r % cx].fpu.ops for r in range(n_cores))

    t0 = dev.sim.now
    yr = _unpack_blocked(EnqueueReadBuffer(dev, xr_buf).view("<f4"),
                         shares, strides, n, batch)
    yi = _unpack_blocked(EnqueueReadBuffer(dev, xi_buf).view("<f4"),
                         shares, strides, n, batch)
    t_out = dev.sim.now - t0
    y = (yr + 1j * yi).astype(np.complex64)

    detail = "unchecked"
    if check:
        mirror = fft_reference_bits(x)
        if not np.array_equal(y.view(np.uint64), mirror.view(np.uint64)):
            bad = int(np.count_nonzero(y.view(np.uint64)
                                       != mirror.view(np.uint64)))
            raise OpCheckError(
                f"fft n={n} batch={batch} on {cy}x{cx} cores: {bad} of "
                f"{mirror.size} outputs differ from the float32 mirror")
        ref = np.fft.fft(x.astype(np.complex128), axis=0)
        scale = np.spacing(np.abs(ref).max(axis=0).astype(np.float32)
                           ).astype(np.float64)
        max_ulp = float((np.abs(y - ref) / scale).max())
        if max_ulp > FFT_ULP_BOUND:
            raise OpCheckError(
                f"fft n={n} batch={batch}: {max_ulp:.1f} ULP from "
                f"numpy.fft exceeds the documented bound {FFT_ULP_BOUND}")
        detail = f"mirror bit-exact; max {max_ulp:.2f} ulp " \
                 f"(bound {FFT_ULP_BOUND:g})"

    return OpRunResult(
        op="fft", cores=(cy, cx),
        params={"n": n, "batch": batch, "seed": problem.seed},
        kernel_time_s=kernel_time, transfer_time_s=t_in + t_out,
        energy_j=dev.energy.energy_j, checked=check, check_detail=detail,
        output_sha=sha16(y), fpu_ops=fpu_ops, output=y)


def _make_problem(size: int, seed: int = 0, **kw) -> FftProblem:
    return FftProblem(n=size, batch=kw.get("batch", 16), seed=seed)


def _estimate(problem, cores, costs):
    from repro.perfmodel.ops import fft_estimate
    return fft_estimate(problem, cores, costs)


register(OpSpec(
    name="fft",
    summary="radix-2 1D FFT pencils, twiddles resident in L1, float32 "
            "mirror bit-exact and numpy.fft within documented ULP bound",
    make_problem=_make_problem,
    run=run_fft,
    reference=lambda p: fft_reference_bits(p.inputs()),
    estimate=_estimate,
    flops=lambda p: p.flops(),
))
