"""Blocked matmul held in SRAM: BF16 inputs, deterministic accumulation.

``C = A @ B`` with ``A (m x k)`` and ``B (k x n)`` in BF16.  Both
operands are padded to 32-multiples, **tilized** (each 32x32 tile a
contiguous 2 KiB DRAM page) and loaded whole into each core's L1; the
compute kernel then drives ``matmul_tiles`` over the resident block —
the SRAM-held dataflow of Pizzini Cavagna et al.'s MatMul study, on the
CB-aliasing surface this repository's SRAM Jacobi already uses.

Determinism contract (mirrored exactly by :func:`matmul_reference_bits`):

* operands unpack BF16 -> float32;
* each 32x32 tile product is a float32 ``A_tile @ B_tile``;
* partial products accumulate over K **sequentially, in tile order**,
  as float32 adds (``matmul_tiles(..., accumulate=True)``);
* one BF16 round-to-nearest-even per output tile at ``pack_tile``.

The device result is therefore **bit-exact** against the NumPy
reference for every shape, including non-square and non-multiple-of-32
shapes (zero padding participates in the accumulation on both sides, so
even ``-0.0 + 0.0`` signs agree).

Multi-core: the output tile grid is carved with ``split_domain`` — each
core owns a rectangle of C tiles plus the matching A row-block and
B column-block, with no inter-core communication.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.arch.device import GrayskullDevice
from repro.arch.sram import SramExhausted
from repro.arch.tensix import COMPUTE, DATA_MOVER_0, DATA_MOVER_1
from repro.core.decomposition import split_domain
from repro.dtypes.bf16 import bits_to_f32, f32_to_bits
from repro.dtypes.tiles import TILE_DIM
from repro.ops.registry import (
    OpCheckError,
    OpRunResult,
    OpSpec,
    register,
    sha16,
)
from repro.perfmodel.calibration import DEFAULT_COSTS, CostModel
from repro.sim.resources import Semaphore
from repro.ttmetal import (
    CreateCircularBuffer,
    CreateKernel,
    EnqueueProgram,
    EnqueueReadBuffer,
    EnqueueWriteBuffer,
    Finish,
    Program,
    create_buffer,
)

__all__ = [
    "MatmulProblem",
    "matmul_reference_bits",
    "run_matmul",
    "random_bf16_bits",
    "tilize",
    "untilize",
]

CB_A, CB_B = 0, 1
CB_C = 16

TILE_BYTES = TILE_DIM * TILE_DIM * 2     #: one BF16 tile page (2 KiB)


@dataclass(frozen=True)
class MatmulProblem:
    """``C[m,n] = A[m,k] @ B[k,n]`` in BF16."""

    m: int
    k: int
    n: int
    seed: int = 0

    def __post_init__(self):
        if min(self.m, self.k, self.n) < 1:
            raise ValueError("matmul dimensions must be >= 1")

    @property
    def mt(self) -> int:
        return -(-self.m // TILE_DIM)

    @property
    def kt(self) -> int:
        return -(-self.k // TILE_DIM)

    @property
    def nt(self) -> int:
        return -(-self.n // TILE_DIM)

    def flops(self) -> float:
        """Padded work actually executed (2*M*K*N on tile multiples)."""
        return 2.0 * (self.mt * self.kt * self.nt) * TILE_DIM ** 3

    def inputs(self) -> Tuple[np.ndarray, np.ndarray]:
        """Seeded BF16 operands: A ``(m,k)`` bits, B ``(k,n)`` bits."""
        rng = np.random.default_rng(self.seed)
        a = random_bf16_bits(rng, (self.m, self.k))
        b = random_bf16_bits(rng, (self.k, self.n))
        return a, b


def random_bf16_bits(rng: np.random.Generator, shape) -> np.ndarray:
    """Uniform values in [-1, 1) rounded to BF16 bit patterns."""
    return f32_to_bits((rng.random(shape, dtype=np.float64) * 2 - 1
                        ).astype(np.float32))


# -- tilized layout ----------------------------------------------------------

def _pad_to_tiles(bits: np.ndarray) -> np.ndarray:
    r, c = bits.shape
    rp = -(-r // TILE_DIM) * TILE_DIM
    cp = -(-c // TILE_DIM) * TILE_DIM
    if (rp, cp) == (r, c):
        return bits
    out = np.zeros((rp, cp), dtype=np.uint16)
    out[:r, :c] = bits
    return out


def tilize(bits: np.ndarray) -> np.ndarray:
    """Row-major tile stream: tile ``(it, jt)`` is page ``it*Ct + jt``."""
    bits = _pad_to_tiles(np.asarray(bits, dtype=np.uint16))
    r, c = bits.shape
    t = bits.reshape(r // TILE_DIM, TILE_DIM, c // TILE_DIM, TILE_DIM)
    return np.ascontiguousarray(t.transpose(0, 2, 1, 3)).reshape(-1)


def untilize(flat: np.ndarray, rows: int, cols: int) -> np.ndarray:
    """Inverse of :func:`tilize` for a padded ``rows x cols`` image."""
    rt, ct = rows // TILE_DIM, cols // TILE_DIM
    t = np.asarray(flat, dtype=np.uint16).reshape(
        rt, ct, TILE_DIM, TILE_DIM)
    return np.ascontiguousarray(t.transpose(0, 2, 1, 3)).reshape(rows, cols)


# -- host reference ----------------------------------------------------------

def matmul_reference_bits(a_bits: np.ndarray, b_bits: np.ndarray
                          ) -> np.ndarray:
    """The deterministic BF16 blocked-matmul contract, in NumPy.

    Mirrors the device op for op: per-tile float32 products, sequential
    float32 accumulation over K, one BF16 RNE rounding per output tile.
    """
    m, k = a_bits.shape
    k2, n = b_bits.shape
    if k != k2:
        raise ValueError(f"shape mismatch: ({m},{k}) @ ({k2},{n})")
    ap = bits_to_f32(_pad_to_tiles(a_bits))
    bp = bits_to_f32(_pad_to_tiles(b_bits))
    mt, kt, nt = ap.shape[0] // TILE_DIM, ap.shape[1] // TILE_DIM, \
        bp.shape[1] // TILE_DIM
    out = np.empty((mt * TILE_DIM, nt * TILE_DIM), dtype=np.uint16)
    for it in range(mt):
        ar = ap[it * TILE_DIM:(it + 1) * TILE_DIM]
        for jt in range(nt):
            bc = bp[:, jt * TILE_DIM:(jt + 1) * TILE_DIM]
            acc: Optional[np.ndarray] = None
            for ktile in range(kt):
                sl = slice(ktile * TILE_DIM, (ktile + 1) * TILE_DIM)
                prod = (ar[:, sl] @ bc[sl]).astype(np.float32)
                acc = prod if acc is None \
                    else (acc + prod).astype(np.float32)
            out[it * TILE_DIM:(it + 1) * TILE_DIM,
                jt * TILE_DIM:(jt + 1) * TILE_DIM] = f32_to_bits(acc)
    return out[:m, :n]


# -- device kernels ----------------------------------------------------------

def _mm_reader(ctx):
    """dm0: pull this core's A row-block and B column-block into L1."""
    a_buf = ctx.arg("a_buf")
    b_buf = ctx.arg("b_buf")
    plan = ctx.arg("plan")
    kt = ctx.arg("kt")
    nt = ctx.arg("nt")
    for i in range(plan["my"]):
        for kk in range(kt):
            src = ((plan["y0"] + i) * kt + kk) * TILE_BYTES
            yield from ctx.noc_read_buffer(
                a_buf, src, plan["slab_a"] + (i * kt + kk) * TILE_BYTES,
                TILE_BYTES)
    for kk in range(kt):
        for j in range(plan["nx"]):
            src = (kk * nt + plan["x0"] + j) * TILE_BYTES
            yield from ctx.noc_read_buffer(
                b_buf, src,
                plan["slab_b"] + (kk * plan["nx"] + j) * TILE_BYTES,
                TILE_BYTES)
    yield from ctx.noc_async_read_barrier()
    yield from ctx.semaphore_inc(ctx.arg("loaded"), 1)


def _mm_compute(ctx):
    """Blocked multiply over the resident operands via CB aliases."""
    plan = ctx.arg("plan")
    kt = ctx.arg("kt")
    yield from ctx.semaphore_wait(ctx.arg("loaded"), 1)
    yield from ctx.tile_regs_acquire()
    for i in range(plan["my"]):
        for j in range(plan["nx"]):
            ctx.fused_begin()
            for kk in range(kt):
                yield from ctx.cb_set_rd_ptr(
                    CB_A, plan["slab_a"] + (i * kt + kk) * TILE_BYTES)
                yield from ctx.cb_set_rd_ptr(
                    CB_B, plan["slab_b"] + (kk * plan["nx"] + j) * TILE_BYTES)
                yield from ctx.matmul_tiles(CB_A, CB_B, 0, 0, 0,
                                            accumulate=kk > 0)
            yield from ctx.cb_set_wr_ptr(
                CB_C, plan["slab_c"] + (i * plan["nx"] + j) * TILE_BYTES)
            yield from ctx.pack_tile(0, CB_C)
            yield from ctx.fused_end()
    yield from ctx.tile_regs_release()
    yield from ctx.semaphore_inc(ctx.arg("done"), 1)


def _mm_writer(ctx):
    """dm1: push the finished C block back to its DRAM tile pages."""
    c_buf = ctx.arg("c_buf")
    plan = ctx.arg("plan")
    nt = ctx.arg("nt")
    yield from ctx.semaphore_wait(ctx.arg("done"), 1)
    for i in range(plan["my"]):
        for j in range(plan["nx"]):
            dst = ((plan["y0"] + i) * nt + plan["x0"] + j) * TILE_BYTES
            yield from ctx.noc_write_buffer(
                c_buf, dst, plan["slab_c"] + (i * plan["nx"] + j) * TILE_BYTES,
                TILE_BYTES)
    yield from ctx.noc_async_write_barrier()


# -- host driver -------------------------------------------------------------

def run_matmul(problem: MatmulProblem, cores: Tuple[int, int] = (1, 1),
               device: Optional[GrayskullDevice] = None,
               check: bool = True,
               costs: CostModel = DEFAULT_COSTS) -> OpRunResult:
    """Execute the op on the simulated e150 and check it at readback."""
    cy, cx = cores
    mt, kt, nt = problem.mt, problem.kt, problem.nt
    if cy > mt or cx > nt:
        raise ValueError(
            f"{cy}x{cx} cores cannot split a {mt}x{nt} output tile grid")
    dev = device or GrayskullDevice(costs, dram_bank_capacity=64 << 20)

    a_bits, b_bits = problem.inputs()
    a_buf = create_buffer(dev, mt * kt * TILE_BYTES, interleaved=True,
                          page_size=TILE_BYTES)
    b_buf = create_buffer(dev, kt * nt * TILE_BYTES, interleaved=True,
                          page_size=TILE_BYTES)
    c_buf = create_buffer(dev, mt * nt * TILE_BYTES, interleaved=True,
                          page_size=TILE_BYTES)
    t_in = EnqueueWriteBuffer(dev, a_buf, tilize(a_bits))
    t_in += EnqueueWriteBuffer(dev, b_buf, tilize(b_bits))

    grid = dev.worker_grid(cy, cx)
    shares = split_domain(nx=nt, ny=mt, cores_y=cy, cores_x=cx)
    budget = dev.costs.sram_bytes - 96 * 1024
    prog = Program(dev)
    for iy in range(cy):
        for ix in range(cx):
            core = grid[iy][ix]
            sub = shares[iy][ix]
            need = (sub.ny * kt + kt * sub.nx + sub.ny * sub.nx) * TILE_BYTES
            if need > budget:
                raise SramExhausted(
                    f"core ({iy},{ix}) needs {need} B of L1 for its "
                    f"A/B/C blocks; only ~{budget} B available — use more "
                    "cores or smaller operands")
            plan = {
                "y0": sub.y0, "x0": sub.x0, "my": sub.ny, "nx": sub.nx,
                "slab_a": core.allocate_l1(sub.ny * kt * TILE_BYTES,
                                           align=32),
                "slab_b": core.allocate_l1(kt * sub.nx * TILE_BYTES,
                                           align=32),
                "slab_c": core.allocate_l1(sub.ny * sub.nx * TILE_BYTES,
                                           align=32),
            }
            for cb in (CB_A, CB_B, CB_C):
                CreateCircularBuffer(prog, core, cb, TILE_BYTES, 1)
            common = dict(
                a_buf=a_buf, b_buf=b_buf, c_buf=c_buf, plan=plan,
                kt=kt, nt=nt,
                loaded=Semaphore(dev.sim, 0, name=f"mm_loaded_{iy}_{ix}"),
                done=Semaphore(dev.sim, 0, name=f"mm_done_{iy}_{ix}"))
            CreateKernel(prog, _mm_reader, core, DATA_MOVER_0, common)
            CreateKernel(prog, _mm_compute, core, COMPUTE, common)
            CreateKernel(prog, _mm_writer, core, DATA_MOVER_1, common)

    EnqueueProgram(dev, prog)
    kernel_time = Finish(dev)
    fpu_ops = sum(grid[iy][ix].fpu.ops for iy in range(cy)
                  for ix in range(cx))

    t0 = dev.sim.now
    raw = EnqueueReadBuffer(dev, c_buf)
    t_out = dev.sim.now - t0
    c_bits = untilize(raw.view("<u2"), mt * TILE_DIM, nt * TILE_DIM)[
        :problem.m, :problem.n]

    detail = "unchecked"
    if check:
        ref = matmul_reference_bits(a_bits, b_bits)
        if not np.array_equal(c_bits, ref):
            bad = int(np.count_nonzero(c_bits != ref))
            raise OpCheckError(
                f"matmul {problem.m}x{problem.k}x{problem.n} on {cy}x{cx} "
                f"cores: {bad} of {ref.size} output elements differ from "
                "the BF16 reference")
        detail = "bit-exact"

    return OpRunResult(
        op="matmul", cores=(cy, cx),
        params={"m": problem.m, "k": problem.k, "n": problem.n,
                "seed": problem.seed},
        kernel_time_s=kernel_time, transfer_time_s=t_in + t_out,
        energy_j=dev.energy.energy_j, checked=check, check_detail=detail,
        output_sha=sha16(c_bits), fpu_ops=fpu_ops, output=c_bits)


def _make_problem(size: int, seed: int = 0, **kw) -> MatmulProblem:
    return MatmulProblem(m=kw.get("m", size), k=kw.get("k", size),
                         n=kw.get("n", size), seed=seed)


def _estimate(problem, cores, costs):
    from repro.perfmodel.ops import matmul_estimate
    return matmul_estimate(problem, cores, costs)


register(OpSpec(
    name="matmul",
    summary="blocked BF16 matmul held in SRAM, deterministic K-order "
            "accumulation, bit-exact vs NumPy",
    make_problem=_make_problem,
    run=run_matmul,
    reference=lambda p: matmul_reference_bits(*p.inputs()),
    estimate=_estimate,
    flops=lambda p: p.flops(),
))
