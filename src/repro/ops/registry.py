"""The op registry: one :class:`OpSpec` per device workload.

``repro.ops`` generalises the repository beyond the paper's single
Jacobi workload into a small TT-NN-style op library.  Every op is
described by an :class:`OpSpec` bundling

* a problem constructor (``make_problem``) with a uniform
  ``(size, seed, **kw)`` surface for the CLI and the serve layer,
* single-core **and** multi-core launch builders behind one ``run``
  entry point (``cores=(cores_y, cores_x)``; multi-core shares are
  carved with :func:`repro.core.decomposition.split_domain`),
* a host-side NumPy ``reference`` that is differentially checked at
  readback (bit-exact for matmul and the 9-point stencil, within a
  documented ULP bound for the FFT — see each op module),
* a calibrated roofline/energy ``estimate`` through
  :mod:`repro.perfmodel.ops`.

Ops register themselves at import time; ``repro.ops`` imports all three
concrete modules, so ``from repro import ops; ops.get_op("matmul")``
always works.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "OpSpec",
    "OpRunResult",
    "OpCheckError",
    "OPS",
    "register",
    "get_op",
    "list_ops",
    "sha16",
]


class OpCheckError(AssertionError):
    """A device op's readback disagreed with its host reference."""


def sha16(arr: np.ndarray) -> str:
    """First 16 hex chars of the SHA-256 of an array's bytes."""
    return hashlib.sha256(np.ascontiguousarray(arr).tobytes()).hexdigest()[:16]


@dataclass
class OpRunResult:
    """One differential-checked device execution of an op."""

    op: str                          #: registry name
    cores: Tuple[int, int]           #: (cores_y, cores_x) of the launch
    params: Dict                     #: problem parameters (for reports)
    kernel_time_s: float             #: simulated on-device time
    transfer_time_s: float           #: host<->DRAM PCIe time
    energy_j: float                  #: device energy meter reading
    checked: bool                    #: reference comparison ran and passed
    check_detail: str                #: "bit-exact" / "max 1.3 ulp (bound 24)"
    output_sha: str                  #: sha16 of the readback bytes
    fpu_ops: int                     #: tile operations executed
    output: Optional[np.ndarray] = field(default=None, repr=False)

    def to_row(self) -> Dict:
        """JSON-friendly summary (no payload)."""
        return {
            "op": self.op,
            "cores": list(self.cores),
            "params": dict(self.params),
            "kernel_time_s": self.kernel_time_s,
            "transfer_time_s": self.transfer_time_s,
            "energy_j": self.energy_j,
            "checked": self.checked,
            "check_detail": self.check_detail,
            "output_sha": self.output_sha,
            "fpu_ops": self.fpu_ops,
        }


@dataclass(frozen=True)
class OpSpec:
    """Everything the CLI/bench/serve layers need to know about an op."""

    name: str
    summary: str
    #: (size, seed, **kw) -> problem object (op-specific dataclass)
    make_problem: Callable
    #: (problem, cores=(1,1), device=None, check=True) -> OpRunResult
    run: Callable
    #: problem -> host-reference array (dtype documented per op)
    reference: Callable
    #: (problem, cores, costs) -> repro.perfmodel.ops.OpEstimate
    estimate: Callable
    #: problem -> floating point operations of one execution
    flops: Callable


OPS: Dict[str, OpSpec] = {}


def register(spec: OpSpec) -> OpSpec:
    """Add an op to the registry (idempotent per name)."""
    OPS[spec.name] = spec
    return spec


def get_op(name: str) -> OpSpec:
    try:
        return OPS[name]
    except KeyError:
        raise KeyError(
            f"unknown op {name!r} (registered: {sorted(OPS)})") from None


def list_ops() -> List[OpSpec]:
    return [OPS[k] for k in sorted(OPS)]
