"""9-point stencil on the Jacobi decomposition machinery.

The update is the 9-point relaxation

``u' = 0.2*(N + S + E + W) + 0.05*(NW + NE + SW + SE)``

(axial weight 1/5, diagonal 1/20, both exactly representable in BF16;
the weights sum to 1 so boundary-driven steady states are preserved,
like the paper's 5-point Jacobi).  The DRAM image is the same
:class:`~repro.core.grid.AlignedDomain` padded layout as the Jacobi
kernels, ping-ponged between two buffers across iterations, and the
interior is carved over cores with
:func:`~repro.core.decomposition.split_domain` — including genuine 2D
decompositions, which the 5-point SRAM kernel never exercised.

Determinism: every intermediate of the 9-term chain passes through a
BF16 pack, so the device arithmetic is a fixed elementwise sequence of
``bf16_add``/``bf16_mul`` steps.  :func:`stencil9_reference_bits`
replays that sequence vectorised over the whole grid; because the
sequence is elementwise, the readback is **bit-identical for every
decomposition** — the property the differential tests pin across 1D
row, 1D column and 2D tilings.

DRAM-alignment rule: with ``cores_x > 1`` several cores write segments
of the same padded row concurrently, and the simulated controller
corrupts non-contiguous unaligned writes (paper Section IV).  Each
core's column offset must therefore start on a 32-byte boundary —
``run_stencil9`` validates that the x-split lands on 16-element
multiples and says so if it does not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.arch.device import GrayskullDevice
from repro.arch.sram import SramExhausted
from repro.arch.tensix import COMPUTE, DATA_MOVER_0, DATA_MOVER_1
from repro.core.decomposition import split_domain
from repro.core.grid import AlignedDomain, LaplaceProblem
from repro.dtypes.bf16 import bf16_add, bf16_mul, f32_to_bits
from repro.ops.registry import (
    OpCheckError,
    OpRunResult,
    OpSpec,
    register,
    sha16,
)
from repro.perfmodel.calibration import DEFAULT_COSTS, CostModel
from repro.sim.resources import Semaphore
from repro.ttmetal import (
    CreateCircularBuffer,
    CreateKernel,
    EnqueueProgram,
    EnqueueReadBuffer,
    EnqueueWriteBuffer,
    Finish,
    Program,
    create_buffer,
)

__all__ = [
    "Stencil9Problem",
    "AXIAL_W",
    "DIAG_W",
    "stencil9_reference_bits",
    "run_stencil9",
]

AXIAL_W = 0.2     #: N/S/E/W weight (exact in BF16)
DIAG_W = 0.05     #: corner weight (exact in BF16)

CB_A, CB_B = 0, 1          #: operand aliases into the L1 row slab
CB_C1, CB_C2 = 4, 5        #: scalar CBs holding the two weights
CB_OUT0 = 16               #: compute -> writer row pipeline
CB_I = 24                  #: alias used to pack intermediates in place

BF16_BYTES = 2


@dataclass(frozen=True)
class Stencil9Problem:
    """``iters`` sweeps of the 9-point update over a seeded interior."""

    nx: int
    ny: int
    iters: int = 2
    seed: int = 0

    def __post_init__(self):
        if self.nx % 32:
            raise ValueError(
                f"nx must be a multiple of 32 (tile width), got {self.nx}")
        if self.ny < 1 or self.iters < 1:
            raise ValueError("ny and iters must be >= 1")

    def flops(self) -> float:
        """9 elementwise tile-op lanes per point per sweep."""
        return 9.0 * self.nx * self.ny * self.iters

    def laplace(self) -> LaplaceProblem:
        return LaplaceProblem(nx=self.nx, ny=self.ny)

    def halo_grid_bits(self) -> np.ndarray:
        """Initial ``(ny+2, nx+2)`` halo grid: Laplace boundary values
        around a seeded random BF16 interior."""
        g = self.laplace().initial_grid_bf16().copy()
        rng = np.random.default_rng(self.seed)
        g[1:-1, 1:-1] = f32_to_bits(
            rng.random((self.ny, self.nx)).astype(np.float32))
        return g


# -- host reference ----------------------------------------------------------

def stencil9_reference_bits(halo_bits: np.ndarray, iters: int) -> np.ndarray:
    """Replay the device's BF16 op sequence over the whole halo grid.

    Bit-identical to the device readback for every core decomposition
    (the chain is elementwise, so tiling cannot change any value).
    """
    g = np.asarray(halo_bits, dtype=np.uint16).copy()
    c1 = np.uint16(f32_to_bits(np.float32(AXIAL_W)))
    c2 = np.uint16(f32_to_bits(np.float32(DIAG_W)))
    for _ in range(iters):
        w, e = g[1:-1, :-2], g[1:-1, 2:]
        n, s = g[:-2, 1:-1], g[2:, 1:-1]
        nw, ne = g[:-2, :-2], g[:-2, 2:]
        sw, se = g[2:, :-2], g[2:, 2:]
        ax = bf16_add(bf16_add(bf16_add(w, e), n), s)
        dg = bf16_add(bf16_add(bf16_add(nw, ne), sw), se)
        g[1:-1, 1:-1] = bf16_add(bf16_mul(ax, c1), bf16_mul(dg, c2))
    return g


# -- device kernels ----------------------------------------------------------

def _s9_reader(ctx):
    """dm0: per sweep, load the (sub_ny+2) x (sub_nx+2) input block."""
    plan = ctx.arg("plan")
    layout = ctx.arg("layout")
    bufs = (ctx.arg("buf0"), ctx.arg("buf1"))
    iters = ctx.arg("iters")
    n_cores = ctx.arg("n_cores")
    irb = (plan["nx"] + 2) * BF16_BYTES
    for k in range(1, iters + 1):
        if k > 1:
            # all writers finished sweep k-1 ...
            yield from ctx.semaphore_wait(ctx.arg("done_barrier"),
                                          n_cores * (k - 1))
            # ... and our compute no longer needs the previous block
            yield from ctx.semaphore_wait(ctx.arg("consumed"), k - 1)
        src = bufs[(k - 1) % 2]
        for r in range(plan["ny"] + 2):
            off = layout.stencil_row_offset(plan["y0"] + r, plan["x0"])
            slack = off % 32      # DRAM reads must be 32-byte aligned
            yield from ctx.noc_read_buffer(src, off - slack,
                                           plan["scratch"], irb + slack)
            yield from ctx.noc_async_read_barrier()
            yield from ctx.memcpy(plan["slab"] + r * irb,
                                  plan["scratch"] + slack, irb)
        yield from ctx.semaphore_inc(ctx.arg("loaded"), 1)
        yield from ctx.semaphore_inc(ctx.arg("load_barrier"), 1)


def _s9_compute(ctx):
    """Nine elementwise tile ops per output row, all through BF16."""
    plan = ctx.arg("plan")
    iters = ctx.arg("iters")
    nx = plan["nx"]
    irb = (nx + 2) * BF16_BYTES
    s_row, d_row = plan["scr"], plan["scr"] + nx * BF16_BYTES
    for cb, w in ((CB_C1, AXIAL_W), (CB_C2, DIAG_W)):
        yield from ctx.cb_reserve_back(cb, 1)
        yield from ctx.l1_store_u16(
            ctx.cb_write_ptr(cb),
            np.full(nx, f32_to_bits(np.float32(w)), dtype=np.uint16))
        yield from ctx.cb_push_back(cb, 1)
        yield from ctx.cb_wait_front(cb, 1)

    def binop(op, a, b, out):
        yield from ctx.cb_set_rd_ptrs((CB_A, a), (CB_B, b))
        yield from op(CB_A, CB_B, 0, 0, 0)
        yield from ctx.cb_set_wr_ptr(CB_I, out)
        yield from ctx.pack_tile(0, CB_I)

    for k in range(1, iters + 1):
        yield from ctx.semaphore_wait(ctx.arg("loaded"), k)
        yield from ctx.tile_regs_acquire()
        for i in range(plan["ny"]):
            up = plan["slab"] + i * irb
            mid, dn = up + irb, up + 2 * irb
            yield from binop(ctx.add_tiles, mid, mid + 4, s_row)
            yield from binop(ctx.add_tiles, s_row, up + 2, s_row)
            yield from binop(ctx.add_tiles, s_row, dn + 2, s_row)
            yield from binop(ctx.add_tiles, up, up + 4, d_row)
            yield from binop(ctx.add_tiles, d_row, dn, d_row)
            yield from binop(ctx.add_tiles, d_row, dn + 4, d_row)
            yield from ctx.cb_set_rd_ptr(CB_A, s_row)
            yield from ctx.mul_tiles(CB_A, CB_C1, 0, 0, 0)
            yield from ctx.cb_set_wr_ptr(CB_I, s_row)
            yield from ctx.pack_tile(0, CB_I)
            yield from ctx.cb_set_rd_ptr(CB_A, d_row)
            yield from ctx.mul_tiles(CB_A, CB_C2, 0, 0, 0)
            yield from ctx.cb_set_wr_ptr(CB_I, d_row)
            yield from ctx.pack_tile(0, CB_I)
            yield from ctx.cb_set_rd_ptrs((CB_A, s_row), (CB_B, d_row))
            yield from ctx.add_tiles(CB_A, CB_B, 0, 0, 0)
            yield from ctx.cb_reserve_back(CB_OUT0, 1)
            yield from ctx.pack_tile(0, CB_OUT0)
            yield from ctx.cb_push_back(CB_OUT0, 1)
        yield from ctx.tile_regs_release()
        yield from ctx.semaphore_inc(ctx.arg("consumed"), 1)


def _s9_writer(ctx):
    """dm1: stream finished rows to the sweep's destination buffer."""
    plan = ctx.arg("plan")
    layout = ctx.arg("layout")
    bufs = (ctx.arg("buf0"), ctx.arg("buf1"))
    iters = ctx.arg("iters")
    n_cores = ctx.arg("n_cores")
    nxb = plan["nx"] * BF16_BYTES
    for k in range(1, iters + 1):
        # the destination buffer is the sweep-(k-1) readers' source;
        # wait until every core has loaded before overwriting it
        yield from ctx.semaphore_wait(ctx.arg("load_barrier"),
                                      n_cores * (k - 1))
        dst = bufs[k % 2]
        for i in range(plan["ny"]):
            yield from ctx.cb_wait_front(CB_OUT0, 1)
            off = layout.elem_offset(plan["y0"] + i + 1, plan["x0"])
            yield from ctx.noc_write_buffer(dst, off,
                                            ctx.cb_read_ptr(CB_OUT0), nxb)
            yield from ctx.noc_async_write_barrier()
            yield from ctx.cb_pop_front(CB_OUT0, 1)
        yield from ctx.semaphore_inc(ctx.arg("done_barrier"), 1)


# -- host driver -------------------------------------------------------------

def run_stencil9(problem: Stencil9Problem, cores: Tuple[int, int] = (1, 1),
                 device: Optional[GrayskullDevice] = None,
                 check: bool = True,
                 costs: CostModel = DEFAULT_COSTS) -> OpRunResult:
    """Execute the stencil on the simulated e150 and check readback."""
    cy, cx = cores
    n_cores = cy * cx
    dev = device or GrayskullDevice(costs, dram_bank_capacity=64 << 20)

    layout = AlignedDomain(problem.laplace())
    halo = problem.halo_grid_bits()
    img = layout.pack(halo)
    buf0 = create_buffer(dev, layout.nbytes, interleaved=True,
                         page_size=32 << 10)
    buf1 = create_buffer(dev, layout.nbytes, interleaved=True,
                         page_size=32 << 10)
    # both buffers carry the boundary rows/pads the writers never touch
    t_in = EnqueueWriteBuffer(dev, buf0, img)
    t_in += EnqueueWriteBuffer(dev, buf1, img)

    shares = split_domain(nx=problem.nx, ny=problem.ny, cores_y=cy,
                          cores_x=cx)
    for row in shares:
        for sub in row:
            if sub.x0 % 16:
                raise ValueError(
                    f"core ({sub.iy},{sub.ix}) x-offset {sub.x0} is not a "
                    "multiple of 16 elements: concurrent writes would "
                    "share a 32-byte DRAM word and corrupt — pick cores_x "
                    f"so {problem.nx} splits on 16-element boundaries")

    grid = dev.worker_grid(cy, cx)
    budget = dev.costs.sram_bytes - 96 * 1024
    prog = Program(dev)
    done_barrier = Semaphore(dev.sim, 0, name="s9_done_barrier")
    load_barrier = Semaphore(dev.sim, 0, name="s9_load_barrier")
    for iy in range(cy):
        for ix in range(cx):
            core = grid[iy][ix]
            sub = shares[iy][ix]
            irb = (sub.nx + 2) * BF16_BYTES
            need = (sub.ny + 2) * irb + 2 * sub.nx * BF16_BYTES \
                + irb + 32 + 4 * sub.nx * BF16_BYTES
            if need > budget:
                raise SramExhausted(
                    f"core ({iy},{ix}) needs {need} B of L1 for its "
                    f"{sub.ny}x{sub.nx} block; only ~{budget} B available "
                    "— use more cores or a smaller interior")
            plan = {
                "y0": sub.y0, "x0": sub.x0, "ny": sub.ny, "nx": sub.nx,
                "slab": core.allocate_l1((sub.ny + 2) * irb, align=32),
                "scr": core.allocate_l1(2 * sub.nx * BF16_BYTES, align=32),
                "scratch": core.allocate_l1(irb + 32, align=32),
            }
            nxb = sub.nx * BF16_BYTES
            for cb in (CB_A, CB_B, CB_C1, CB_C2, CB_I):
                CreateCircularBuffer(prog, core, cb, nxb, 1)
            CreateCircularBuffer(prog, core, CB_OUT0, nxb, 2)
            common = dict(
                buf0=buf0, buf1=buf1, plan=plan, layout=layout,
                iters=problem.iters, n_cores=n_cores,
                done_barrier=done_barrier, load_barrier=load_barrier,
                loaded=Semaphore(dev.sim, 0, name=f"s9_loaded_{iy}_{ix}"),
                consumed=Semaphore(dev.sim, 0,
                                   name=f"s9_consumed_{iy}_{ix}"))
            CreateKernel(prog, _s9_reader, core, DATA_MOVER_0, common)
            CreateKernel(prog, _s9_compute, core, COMPUTE, common)
            CreateKernel(prog, _s9_writer, core, DATA_MOVER_1, common)

    EnqueueProgram(dev, prog)
    kernel_time = Finish(dev)
    fpu_ops = sum(grid[iy][ix].fpu.ops for iy in range(cy)
                  for ix in range(cx))

    t0 = dev.sim.now
    raw = EnqueueReadBuffer(dev, buf0 if problem.iters % 2 == 0 else buf1)
    t_out = dev.sim.now - t0
    out_bits = layout.unpack(raw.view("<u2"))[1:-1, 1:-1]

    detail = "unchecked"
    if check:
        ref = stencil9_reference_bits(halo, problem.iters)[1:-1, 1:-1]
        if not np.array_equal(out_bits, ref):
            bad = int(np.count_nonzero(out_bits != ref))
            raise OpCheckError(
                f"stencil9 {problem.ny}x{problem.nx} iters={problem.iters} "
                f"on {cy}x{cx} cores: {bad} of {ref.size} interior points "
                "differ from the BF16 reference")
        detail = "bit-exact"

    return OpRunResult(
        op="stencil9", cores=(cy, cx),
        params={"nx": problem.nx, "ny": problem.ny,
                "iters": problem.iters, "seed": problem.seed},
        kernel_time_s=kernel_time, transfer_time_s=t_in + t_out,
        energy_j=dev.energy.energy_j, checked=check, check_detail=detail,
        output_sha=sha16(out_bits), fpu_ops=fpu_ops, output=out_bits)


def _make_problem(size: int, seed: int = 0, **kw) -> Stencil9Problem:
    return Stencil9Problem(nx=size, ny=kw.get("ny", size),
                           iters=kw.get("iters", 2), seed=seed)


def _estimate(problem, cores, costs):
    from repro.perfmodel.ops import stencil9_estimate
    return stencil9_estimate(problem, cores, costs)


register(OpSpec(
    name="stencil9",
    summary="9-point relaxation on the AlignedDomain ping-pong layout, "
            "bit-identical across 1D and 2D decompositions",
    make_problem=_make_problem,
    run=run_stencil9,
    reference=lambda p: stencil9_reference_bits(p.halo_grid_bits(),
                                                p.iters),
    estimate=_estimate,
    flops=lambda p: p.flops(),
))
