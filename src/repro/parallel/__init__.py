"""``repro.parallel`` — deterministic sweep parallelism + result cache.

The paper's results are sweeps (Tables III–VIII sweep batch size, page
size, replication and core counts; fault campaigns sweep seeds), and
every sweep point is an independent, deterministic simulation.  This
package turns that into wall-clock headroom:

* :func:`run_jobs` / :func:`sweep_results` — a process-pool engine with
  stable job ordering (``-j N`` output is byte-identical to ``-j 1``),
  crash isolation, and per-job observability records;
* :class:`ResultCache` — an on-disk content-addressed cache keyed on
  (repro version, canonical config JSON, seed), so re-running an
  unchanged sweep point is a disk read;
* :class:`JobSpec` / :func:`register_kind` — picklable job descriptions
  with a snapshot of the semantic env toggles
  (``REPRO_ENGINE_FASTPATH``, ``REPRO_LINT``) asserted in the worker.

See ``docs/parallel_sweeps.md`` for the design and the determinism
contract.
"""

from repro.parallel.cache import (
    CACHE_SCHEMA,
    ResultCache,
    cache_version,
    canonical_config_json,
    default_cache_dir,
    job_key,
    resolve_cache,
)
from repro.parallel.engine import (
    JobOutcome,
    JobRecord,
    SweepJobError,
    outcomes_trace,
    render_job_report,
    resolve_jobs,
    run_jobs,
    set_default_jobs,
    summary_line,
    sweep_results,
)
from repro.parallel.jobs import (
    SNAPSHOT_KEYS,
    EnvDriftError,
    JobKind,
    JobSpec,
    all_kinds,
    execute_spec,
    get_kind,
    register_kind,
    snapshot_env,
)

__all__ = [
    "CACHE_SCHEMA",
    "EnvDriftError",
    "JobKind",
    "JobOutcome",
    "JobRecord",
    "JobSpec",
    "ResultCache",
    "SNAPSHOT_KEYS",
    "SweepJobError",
    "all_kinds",
    "cache_version",
    "canonical_config_json",
    "default_cache_dir",
    "execute_spec",
    "get_kind",
    "job_key",
    "outcomes_trace",
    "register_kind",
    "render_job_report",
    "resolve_cache",
    "resolve_jobs",
    "run_jobs",
    "set_default_jobs",
    "snapshot_env",
    "summary_line",
    "sweep_results",
]
