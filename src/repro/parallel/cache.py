"""Content-addressed, on-disk cache of sweep-job results.

Every sweep point the :mod:`repro.parallel` engine runs is fully
deterministic: the same (repro version, job config, seed) triple always
produces the same invariant outputs (simulated time, event counts,
result hashes, table cells).  That makes the result a pure function of
its inputs, so it can be cached by content address:

    key = sha256(version \\n kind \\n canonical_json(config) \\n seed
                 \\n canonical_json(env_snapshot))

and re-running an unchanged sweep point becomes a disk read.  Repeated
``repro experiments`` / ``repro faults --seeds`` invocations are then
near-free — only *changed* points recompute.

Only the job's JSON-safe *payload* is stored (never wall-clock timings,
which are host noise), so a cache hit reconstructs results that are
byte-identical to a fresh run.

Escape hatches: pass ``--no-cache`` on the CLI, or set
``REPRO_SWEEP_CACHE=0`` (any of ``0/off/false/no``) to disable caching
globally.  Setting ``REPRO_SWEEP_CACHE`` to a path both enables the
cache and selects its directory (the default is
``$XDG_CACHE_HOME/repro/sweeps``, i.e. ``~/.cache/repro/sweeps``).

The cache is bounded: ``REPRO_SWEEP_CACHE_MAX_MB`` caps the directory's
total size (default 512 MiB; ``0`` or negative = unbounded).  Writes
prune least-recently-*used* entries first — a cache hit refreshes its
entry's mtime — so a long-lived cache converges on the entries current
work actually replays instead of growing without bound across versions.

A corrupted cache entry (truncated write, bad JSON, schema drift) is
never fatal: the entry is dropped with a warning and the job recomputes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import subprocess
import uuid
import warnings
from typing import Any, Optional, Sequence, Tuple, Union

__all__ = [
    "CACHE_SCHEMA",
    "DEFAULT_MAX_MB",
    "ResultCache",
    "cache_version",
    "canonical_config_json",
    "default_cache_dir",
    "job_key",
    "resolve_cache",
]

#: schema tag stored in every entry; bump on incompatible layout changes.
CACHE_SCHEMA = "repro-sweep-cache/1"

#: ``REPRO_SWEEP_CACHE`` values that disable caching outright.
_OFF_VALUES = ("0", "off", "false", "no")

#: default size cap of a cache directory (``REPRO_SWEEP_CACHE_MAX_MB``).
DEFAULT_MAX_MB = 512.0


def _max_bytes_from_env() -> Optional[int]:
    """The configured cache size cap in bytes (None = unbounded).

    ``REPRO_SWEEP_CACHE_MAX_MB`` as a float number of MiB; zero or
    negative disables the cap; unparseable values fall back to the
    default with a warning rather than silently growing forever.
    """
    raw = os.environ.get("REPRO_SWEEP_CACHE_MAX_MB", "").strip()
    if not raw:
        return int(DEFAULT_MAX_MB * 1024 * 1024)
    try:
        mb = float(raw)
    except ValueError:
        warnings.warn(
            f"repro.parallel: REPRO_SWEEP_CACHE_MAX_MB={raw!r} is not a "
            f"number; using the default {DEFAULT_MAX_MB:g} MiB",
            RuntimeWarning, stacklevel=2)
        return int(DEFAULT_MAX_MB * 1024 * 1024)
    if mb <= 0:
        return None
    return int(mb * 1024 * 1024)

_version_cache: Optional[str] = None


def _dirty_digest(root: str) -> Optional[str]:
    """Content digest of the working tree's divergence from HEAD.

    Hashes ``git diff HEAD`` (tracked modifications, staged or not)
    plus the path and content of every untracked, non-ignored file, so
    each distinct dirty *state* — not merely "dirty" — gets its own
    cache namespace.  Untracked files count as divergence here even
    though ``git describe --dirty`` ignores them: a new, not-yet-added
    module can change sweep results just as an edit can.  Returns ``""``
    when the tree has no divergence, and None when the state cannot be
    captured.
    """
    digest = hashlib.sha256()
    dirty = False
    try:
        diff = subprocess.run(["git", "diff", "HEAD"], cwd=root,
                              capture_output=True, timeout=30)
        if diff.returncode != 0:
            return None
        if diff.stdout:
            dirty = True
            digest.update(diff.stdout)
        ls = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard"],
            cwd=root, capture_output=True, text=True, timeout=30)
        if ls.returncode != 0:
            return None
        for rel in sorted(p for p in ls.stdout.splitlines() if p):
            dirty = True
            digest.update(rel.encode() + b"\0")
            try:
                with open(os.path.join(root, rel), "rb") as fh:
                    digest.update(hashlib.sha256(fh.read()).digest())
            except OSError:
                digest.update(b"<unreadable>")
    except (OSError, subprocess.SubprocessError):
        return None
    return digest.hexdigest()[:16] if dirty else ""


def _describe_tree(root: str) -> Optional[str]:
    """``git describe`` for ``root``, with dirty trees content-addressed.

    A clean checkout yields ``git:<describe>``.  A checkout with any
    divergence from HEAD (tracked edits *or* untracked files) yields
    ``git:<describe>-dirty+<digest>`` with the digest from
    :func:`_dirty_digest` — two different sets of uncommitted changes
    can never share a cache namespace.  If the divergence cannot be
    digested, a per-process unique token is used instead, making the
    tree effectively uncacheable rather than ever serving stale hits.
    """
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"], cwd=root,
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0 or not out.stdout.strip():
        return None
    described = out.stdout.strip()
    if described.endswith("-dirty"):
        described = described[:-len("-dirty")]
    digest = _dirty_digest(root)
    if digest == "":
        return "git:" + described
    if digest is None:
        digest = "uncacheable-" + uuid.uuid4().hex[:12]
    return "git:" + described + "-dirty+" + digest


def cache_version(refresh: bool = False) -> str:
    """The version component of every cache key.

    ``git describe --always --dirty`` when the tree is a git checkout,
    with dirty trees additionally content-addressed by a digest of their
    uncommitted changes (see :func:`_describe_tree`) — so every commit
    *and every distinct dirty state* gets its own cache namespace, and
    editing simulator code uncommitted can never replay pre-edit cached
    results.  Falls back to the package version outside a checkout.
    Memoised: the subprocess calls run once per process, not per job.
    """
    global _version_cache
    if _version_cache is not None and not refresh:
        return _version_cache
    root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))))
    version = _describe_tree(root)
    if version is None:
        from repro import __version__
        version = "pkg:" + __version__
    _version_cache = version
    return version


def _jsonable(obj: Any) -> Any:
    """Reduce ``obj`` to canonical JSON-safe data, or raise TypeError.

    Dataclasses become sorted dicts, tuples become lists; anything that
    is not plainly serialisable is rejected so a config type change can
    never silently produce an unstable (or colliding) cache key.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: _jsonable(getattr(obj, f.name))
                for f in dataclasses.fields(obj)}
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(
        f"job config contains a non-canonical value: {obj!r} "
        f"({type(obj).__name__}); only dataclasses, dicts, sequences and "
        "JSON scalars can be cache-keyed")


def canonical_config_json(config: Any) -> str:
    """Canonical (sorted-key, no-whitespace-drift) JSON of a job config."""
    return json.dumps(_jsonable(config), sort_keys=True,
                      separators=(",", ":"))


def job_key(kind: str, config: Any, seed: int,
            version: Optional[str] = None,
            env: Optional[Sequence[Tuple[str, Optional[str]]]] = None
            ) -> str:
    """The content address of one job.

    sha256 over version/kind/config/seed plus the job's snapshot of the
    semantic environment toggles (``JobSpec.env``): runs planned under
    different toggle values can never share a cache entry, even if a
    toggle that is result-identical today stops being so tomorrow.
    """
    blob = "\n".join([version if version is not None else cache_version(),
                      kind, canonical_config_json(config), str(int(seed)),
                      canonical_config_json(env) if env else ""])
    return hashlib.sha256(blob.encode()).hexdigest()


def default_cache_dir() -> str:
    env = os.environ.get("REPRO_SWEEP_CACHE", "").strip()
    if env and env.lower() not in _OFF_VALUES \
            and env.lower() not in ("1", "on", "true", "yes"):
        return env
    base = os.environ.get("XDG_CACHE_HOME") \
        or os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro", "sweeps")


class ResultCache:
    """One cache directory of ``<key[:2]>/<key>.json`` entries.

    The directory's total size is bounded (``max_bytes``, resolved from
    ``REPRO_SWEEP_CACHE_MAX_MB`` by default): every write prunes
    least-recently-used entries — hits refresh an entry's mtime — until
    the cache fits the cap again.
    """

    def __init__(self, root: Optional[str] = None,
                 max_bytes: Optional[int] = None):
        self.root = root or default_cache_dir()
        self.max_bytes = _max_bytes_from_env() if max_bytes is None \
            else (max_bytes if max_bytes > 0 else None)
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".json")

    def get(self, key: str) -> Optional[dict]:
        """The stored payload for ``key``, or None on miss/corruption."""
        path = self._path(key)
        try:
            with open(path) as fh:
                doc = json.load(fh)
            if not isinstance(doc, dict):
                raise ValueError(f"unexpected entry shape: JSON root is "
                                 f"{type(doc).__name__}, not an object")
            if doc.get("schema") != CACHE_SCHEMA or "payload" not in doc:
                raise ValueError(f"unexpected entry shape: "
                                 f"schema={doc.get('schema')!r}")
            self.hits += 1
            try:
                os.utime(path)  # LRU recency: a hit keeps the entry warm
            except OSError:
                pass
            return doc["payload"]
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError) as exc:
            # Corrupted entry: drop it, warn, and let the job recompute.
            warnings.warn(
                f"repro.parallel: dropping corrupted sweep-cache entry "
                f"{path}: {exc}", RuntimeWarning, stacklevel=2)
            try:
                os.unlink(path)
            except OSError:
                pass
            self.misses += 1
            return None

    def put(self, key: str, kind: str, config: Any, seed: int,
            payload: dict,
            env: Optional[Sequence[Tuple[str, Optional[str]]]] = None
            ) -> None:
        """Store ``payload`` atomically (tmp file + rename)."""
        path = self._path(key)
        doc = {
            "schema": CACHE_SCHEMA,
            "version": cache_version(),
            "kind": kind,
            "seed": int(seed),
            "config": _jsonable(config),
            "payload": payload,
        }
        if env:
            doc["env"] = _jsonable(env)
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            tmp = path + f".tmp{os.getpid()}"
            with open(tmp, "w") as fh:
                json.dump(doc, fh, sort_keys=True)
            os.replace(tmp, path)
        except OSError as exc:  # a broken cache must never break a sweep
            warnings.warn(
                f"repro.parallel: could not write sweep-cache entry "
                f"{path}: {exc}", RuntimeWarning, stacklevel=2)
            return
        self.prune()

    def _entries(self) -> list:
        """(mtime, size, path) of every entry; tolerates races/vanishing."""
        found = []
        try:
            shards = sorted(os.listdir(self.root))
        except OSError:
            return found
        for shard in shards:
            shard_dir = os.path.join(self.root, shard)
            try:
                names = sorted(os.listdir(shard_dir))
            except (OSError, NotADirectoryError):
                continue
            for name in names:
                if not name.endswith(".json"):
                    continue  # leave tmp files to their writers
                path = os.path.join(shard_dir, name)
                try:
                    st = os.stat(path)
                except OSError:
                    continue  # vanished under us (concurrent prune)
                found.append((st.st_mtime, st.st_size, path))
        return found

    def prune(self, max_bytes: Optional[int] = None) -> int:
        """Evict least-recently-used entries until the cap fits.

        Returns the number of entries removed.  Ties on mtime break by
        path, so two pruners walking the same directory agree; a cache
        that cannot be pruned (permissions, races) degrades to doing
        nothing rather than failing the sweep.
        """
        cap = self.max_bytes if max_bytes is None else max_bytes
        if cap is None:
            return 0
        entries = self._entries()
        total = sum(size for _m, size, _p in entries)
        if total <= cap:
            return 0
        removed = 0
        for _mtime, size, path in sorted(entries):
            if total <= cap:
                break
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            removed += 1
            self.evictions += 1
        return removed


def resolve_cache(cache: Union[None, bool, str, ResultCache]
                  ) -> Optional[ResultCache]:
    """Resolve a user-facing cache argument to a :class:`ResultCache`.

    * ``ResultCache`` — used as-is (the env kill switch still wins);
    * a path string — cache rooted there;
    * ``True`` — cache at the default directory (the CLI default);
    * ``False`` — no cache (``--no-cache``);
    * ``None`` — library default: enabled only when ``REPRO_SWEEP_CACHE``
      is set to an enabling value, so tests and ad-hoc imports never
      touch the user's cache unless asked.

    ``REPRO_SWEEP_CACHE=0`` (or ``off``/``false``/``no``) disables the
    cache regardless of the argument — it is the global escape hatch.
    """
    env = os.environ.get("REPRO_SWEEP_CACHE", "").strip()
    if env.lower() in _OFF_VALUES:
        return None
    if cache is False:
        return None
    if isinstance(cache, ResultCache):
        return cache
    if isinstance(cache, str):
        return ResultCache(cache)
    if cache is True:
        return ResultCache()
    # cache is None: opt-in via the environment only.
    if env:
        return ResultCache()
    return None
