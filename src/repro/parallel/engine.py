"""Deterministic process-pool execution of sweep jobs.

:func:`run_jobs` takes a list of :class:`~repro.parallel.jobs.JobSpec`
and executes them across ``min(jobs, len(specs))`` worker processes —
an explicit ``-j N`` is honoured even beyond ``os.cpu_count()`` (worker
count never affects results, and oversubscription lets small hosts
exercise the pool); only ``-j 0``/negative resolves to the core count.
The contract that makes parallelism safe for the paper's tables:

* **Stable ordering** — outcomes are reassembled in submission order,
  so every report rendered from them is byte-identical at ``-j 1`` and
  ``-j N``.  (Each sweep point is itself a deterministic simulation;
  the engine only has to not reorder them.)
* **Sequential reference** — ``-j 1`` runs in-process with no pool at
  all; it *is* the sequential path the parallel runs are compared to.
* **Crash isolation** — a worker that dies (hard exit, signal, OOM)
  marks only the job it was running as failed, with the error recorded
  in the fault plane's vocabulary (``sweep.job`` / ``isolated``); a
  replacement worker is spawned and the sweep continues.
* **Env integrity** — each job re-applies the environment snapshot
  taken when its spec was created (see :mod:`repro.parallel.jobs`), so
  toggles like ``REPRO_ENGINE_FASTPATH`` can never drift between the
  planning process and a worker.
* **Observability** — every job yields a :class:`JobRecord` (worker id,
  queue wait, run wall, deterministic ``events``/``sim_now``) that
  ``repro sweep --report`` and the campaign report render.  Wall-clock
  fields are host noise and are never part of byte-compared output.

Results are cached content-addressed (:mod:`repro.parallel.cache`);
cache hits replay the stored invariant payload through the same
``from_payload`` constructor as fresh runs.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.parallel.cache import ResultCache, cache_version, resolve_cache
from repro.parallel.jobs import JobSpec, execute_spec, result_from_payload

__all__ = [
    "JobOutcome",
    "JobRecord",
    "SweepJobError",
    "outcomes_trace",
    "render_job_report",
    "resolve_jobs",
    "run_jobs",
    "set_default_jobs",
    "summary_line",
    "sweep_results",
]


class SweepJobError(RuntimeError):
    """A strict sweep had failed jobs; carries their records."""

    def __init__(self, failures: List["JobOutcome"]):
        self.failures = failures
        lines = [f"{len(failures)} sweep job(s) failed:"]
        for out in failures:
            head = (out.record.error or "unknown error").strip()
            lines.append(f"  job {out.record.index} ({out.spec.kind}, "
                         f"seed {out.spec.seed}): {head.splitlines()[-1]}")
        super().__init__("\n".join(lines))


@dataclass
class JobRecord:
    """Per-job observability: who ran it, how long, what it produced."""

    index: int
    kind: str
    seed: int
    key: str
    cached: bool = False
    ok: bool = False
    worker: Optional[int] = None     #: worker ordinal (None = in-process)
    queue_wait_s: float = 0.0        #: submit -> worker pickup
    run_wall_s: float = 0.0          #: wall time inside the worker
    obs: Dict[str, Any] = field(default_factory=dict)  #: events, sim_now
    error: Optional[str] = None      #: traceback / crash description


@dataclass
class JobOutcome:
    """One job's consumer-facing result plus its record."""

    spec: JobSpec
    result: Any                      #: None when the job failed
    record: JobRecord

    @property
    def ok(self) -> bool:
        return self.record.ok


# --------------------------------------------------------------------------
# job-count resolution
# --------------------------------------------------------------------------

_default_jobs: Optional[int] = None


def set_default_jobs(jobs: Optional[int]) -> None:
    """Set the process-wide default for ``jobs=None`` (the CLI ``-j``)."""
    global _default_jobs
    _default_jobs = jobs


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a ``jobs`` argument to a concrete worker count.

    ``None`` falls back to :func:`set_default_jobs`, then the
    ``REPRO_JOBS`` environment variable, then 1 (sequential).  ``0`` or
    negative means "all cores".
    """
    if jobs is None:
        jobs = _default_jobs
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        jobs = int(env) if env else 1
    jobs = int(jobs)
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return jobs


# --------------------------------------------------------------------------
# worker side
# --------------------------------------------------------------------------

def _worker_loop(conn, worker_id: int) -> None:  # pragma: no cover - child
    """One worker: receive ("job", idx, spec), reply (idx, ok, out, t0, t1)."""
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg[0] == "stop":
            break
        _tag, idx, spec = msg
        t0 = time.perf_counter()
        try:
            payload, obs = execute_spec(spec)
            ok, out = True, (payload, obs)
        except BaseException:
            ok, out = False, traceback.format_exc()
        t1 = time.perf_counter()
        try:
            conn.send((idx, ok, out, t0, t1))
        except (BrokenPipeError, OSError):
            break
    conn.close()


def _mp_context():
    # fork keeps custom job kinds (registered in the parent) visible in
    # workers and avoids a per-worker interpreter + numpy import; fall
    # back to the platform default where fork does not exist.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else None)


class _Worker:
    """Parent-side handle of one worker process."""

    def __init__(self, ctx, worker_id: int):
        self.id = worker_id
        self.conn, child = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(target=_worker_loop, args=(child, worker_id),
                                name=f"repro-sweep-{worker_id}",
                                daemon=True)
        self.proc.start()
        child.close()
        self.busy: Optional[int] = None   #: index of the job it is running

    def send_job(self, idx: int, spec: JobSpec) -> bool:
        try:
            self.conn.send(("job", idx, spec))
        except (BrokenPipeError, OSError):
            return False
        self.busy = idx
        return True

    def stop(self) -> None:
        try:
            self.conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass

    def reap(self, timeout: float = 2.0) -> None:
        self.proc.join(timeout)
        if self.proc.is_alive():  # pragma: no cover - stuck worker
            self.proc.terminate()
            self.proc.join(1.0)
        self.conn.close()


# --------------------------------------------------------------------------
# the engine
# --------------------------------------------------------------------------

def run_jobs(specs: Sequence[JobSpec],
             jobs: Optional[int] = None,
             cache: Union[None, bool, str, ResultCache] = None,
             progress: Optional[Callable[[str], None]] = None
             ) -> List[JobOutcome]:
    """Execute ``specs`` and return their outcomes in submission order.

    ``jobs`` is resolved by :func:`resolve_jobs`; the worker count is
    additionally capped at the number of uncached specs (an explicit
    ``jobs`` value beyond ``os.cpu_count()`` is honoured — see the
    module docstring).
    ``cache`` is resolved by :func:`repro.parallel.cache.resolve_cache`.
    Failed jobs (exception or worker death) come back with
    ``result=None`` and the error recorded; the sweep itself never
    raises for a job failure.
    """
    specs = list(specs)
    store = resolve_cache(cache)
    version = cache_version() if store is not None else None
    t_submit = time.perf_counter()

    outcomes: List[Optional[JobOutcome]] = [None] * len(specs)
    keys: List[str] = []
    todo: List[int] = []
    for idx, spec in enumerate(specs):
        key = spec.key(version) if store is not None else ""
        keys.append(key)
        entry = store.get(key) if store is not None else None
        if entry is not None:
            record = JobRecord(index=idx, kind=spec.kind, seed=spec.seed,
                               key=key, cached=True, ok=True,
                               obs=entry.get("obs", {}))
            outcomes[idx] = JobOutcome(
                spec, result_from_payload(spec, entry["data"]), record)
        else:
            todo.append(idx)
    if progress is not None and store is not None:
        progress(f"sweep cache: {len(specs) - len(todo)}/{len(specs)} "
                 f"hit(s) in {store.root}")

    # An explicit -j N is honoured even beyond os.cpu_count() (worker
    # count never affects results, and oversubscription lets small hosts
    # exercise the pool); -j 0 / None resolve via resolve_jobs.
    n_workers = min(resolve_jobs(jobs), max(1, len(todo)))
    if todo:
        if n_workers <= 1:
            _run_todo_sequential(specs, keys, outcomes, todo, t_submit)
        else:
            _run_todo_parallel(specs, keys, outcomes, todo, t_submit,
                               n_workers, progress)

    if store is not None:
        for idx in todo:
            out = outcomes[idx]
            if out is not None and out.record.ok:
                payload = getattr(out.record, "_payload", None)
                if payload is not None:
                    store.put(keys[idx], specs[idx].kind, specs[idx].config,
                              specs[idx].seed,
                              {"data": payload, "obs": out.record.obs},
                              env=specs[idx].env)

    assert all(o is not None for o in outcomes)
    return outcomes  # type: ignore[return-value]


def _make_outcome(spec: JobSpec, idx: int, key: str, ok: bool, out,
                  worker: Optional[int], queue_wait: float,
                  wall: float) -> JobOutcome:
    record = JobRecord(index=idx, kind=spec.kind, seed=spec.seed, key=key,
                       worker=worker, queue_wait_s=queue_wait,
                       run_wall_s=wall)
    if ok:
        payload, obs = out
        record.ok = True
        record.obs = obs
        record._payload = payload  # type: ignore[attr-defined]
        return JobOutcome(spec, result_from_payload(spec, payload), record)
    record.error = out
    return JobOutcome(spec, None, record)


def _run_todo_sequential(specs, keys, outcomes, todo, t_submit) -> None:
    saved = {k: os.environ.get(k) for k in
             {key for spec in specs for key, _ in spec.env}}
    try:
        for idx in todo:
            spec = specs[idx]
            t0 = time.perf_counter()
            try:
                out = execute_spec(spec)
                ok = True
            except BaseException:
                out, ok = traceback.format_exc(), False
            wall = time.perf_counter() - t0
            outcomes[idx] = _make_outcome(spec, idx, keys[idx], ok, out,
                                          None, t0 - t_submit, wall)
    finally:
        for k, v in saved.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v


def _run_todo_parallel(specs, keys, outcomes, todo, t_submit, n_workers,
                       progress) -> None:
    ctx = _mp_context()
    pending = deque(todo)
    remaining = set(todo)
    workers: List[_Worker] = []
    next_id = 0
    spawn_budget = len(todo) + n_workers  # respawn guard

    def spawn() -> Optional[_Worker]:
        nonlocal next_id, spawn_budget
        if spawn_budget <= 0:  # pragma: no cover - runaway crash guard
            return None
        spawn_budget -= 1
        w = _Worker(ctx, next_id)
        next_id += 1
        workers.append(w)
        return w

    def dispatch(w: _Worker) -> None:
        while pending and w.busy is None and w.proc.is_alive():
            idx = pending.popleft()
            if not w.send_job(idx, specs[idx]):
                pending.appendleft(idx)
                return

    for _ in range(min(n_workers, len(todo))):
        w = spawn()
        if w is not None:
            dispatch(w)

    try:
        while remaining:
            handles = [w.conn for w in workers if w.busy is not None]
            handles += [w.proc.sentinel for w in workers
                        if w.busy is not None]
            if not handles:
                # every live worker is idle but jobs remain: dispatch or
                # replace (all workers died with jobs still queued).
                alive = [w for w in workers if w.proc.is_alive()]
                if not alive:
                    alive = [w for w in (spawn(),) if w is not None]
                    if not alive:  # pragma: no cover - spawn guard hit
                        for idx in list(remaining):
                            outcomes[idx] = _make_outcome(
                                specs[idx], idx, keys[idx], False,
                                "worker respawn budget exhausted",
                                None, 0.0, 0.0)
                            remaining.discard(idx)
                        break
                for w in alive:
                    dispatch(w)
                continue
            ready = connection.wait(handles, timeout=1.0)
            for w in workers:
                if w.busy is None:
                    continue
                if w.conn in ready:
                    try:
                        idx, ok, out, t0, t1 = w.conn.recv()
                    except (EOFError, OSError):
                        _mark_crashed(w, specs, keys, outcomes, remaining)
                        continue
                    queue_wait = t0 - t_submit
                    outcomes[idx] = _make_outcome(
                        specs[idx], idx, keys[idx], ok, out, w.id,
                        queue_wait, t1 - t0)
                    remaining.discard(idx)
                    w.busy = None
                    dispatch(w)
                elif w.proc.sentinel in ready and not w.proc.is_alive():
                    # the worker died while owning a job: poll the pipe
                    # once (the result may have been sent just before
                    # death), then isolate the job and move on.
                    if w.conn.poll(0):
                        continue  # result pending; next loop picks it up
                    _mark_crashed(w, specs, keys, outcomes, remaining)
            # keep the pool at strength while jobs are pending
            live = [w for w in workers if w.proc.is_alive()]
            while pending and len(live) < n_workers:
                w = spawn()
                if w is None:
                    break
                live.append(w)
                dispatch(w)
    finally:
        for w in workers:
            if w.proc.is_alive():
                w.stop()
        for w in workers:
            w.reap()


def _mark_crashed(w: _Worker, specs, keys, outcomes, remaining) -> None:
    """A dead worker isolates (fails) exactly the job it was running."""
    idx = w.busy
    w.busy = None
    if idx is None or idx not in remaining:  # pragma: no cover
        return
    code = w.proc.exitcode
    msg = (f"worker {w.id} died while running job {idx} "
           f"(exit code {code}); job isolated, sweep continuing")
    outcomes[idx] = _make_outcome(specs[idx], idx, keys[idx], False, msg,
                                  w.id, 0.0, 0.0)
    remaining.discard(idx)


# --------------------------------------------------------------------------
# consumer helpers
# --------------------------------------------------------------------------

def sweep_results(specs: Sequence[JobSpec],
                  jobs: Optional[int] = None,
                  cache: Union[None, bool, str, ResultCache] = None,
                  progress: Optional[Callable[[str], None]] = None,
                  strict: bool = True) -> List[Any]:
    """Run ``specs`` and return just the results, in submission order.

    With ``strict`` (the default for table drivers, which need every
    cell), any failed job raises :class:`SweepJobError` naming them all.
    """
    outcomes = run_jobs(specs, jobs=jobs, cache=cache, progress=progress)
    failures = [o for o in outcomes if not o.record.ok]
    if failures and strict:
        raise SweepJobError(failures)
    return [o.result for o in outcomes]


def outcomes_trace(outcomes: Sequence[JobOutcome]):
    """Job failures as a fault-plane trace (the faults vocabulary).

    Failed sweep jobs are recorded the way the fault plane records
    injected faults: ``kind="sweep.job"``, ``action="isolated"`` — so
    campaign tooling can fold sweep-level failures into its reports.
    """
    from repro.analysis.resilience import FaultTrace

    trace = FaultTrace()
    for out in outcomes:
        if not out.record.ok:
            head = (out.record.error or "").strip().splitlines()
            trace.record(-1.0, "sweep.job", f"job{out.record.index}",
                         "isolated", head[-1] if head else "worker died")
    return trace


def render_job_report(outcomes: Sequence[JobOutcome]) -> str:
    """Per-job observability table (``repro sweep --report``).

    Worker ids and wall-clock columns are host- and schedule-dependent;
    this table is for humans and is **not** part of the byte-identical
    determinism contract (events / sim_now are).
    """
    from repro.analysis.report import Table

    table = Table("Sweep job report (wall-clock columns are host noise)",
                  ["job", "kind", "seed", "status", "worker",
                   "queue wait s", "run wall s", "events", "sim_now"])
    for out in outcomes:
        r = out.record
        status = "cached" if r.cached else ("ok" if r.ok else "FAILED")
        table.add_row(
            r.index, r.kind, r.seed, status,
            "-" if r.worker is None else r.worker,
            f"{r.queue_wait_s:.4f}", f"{r.run_wall_s:.4f}",
            r.obs.get("events", "-"), r.obs.get("sim_now", "-"))
    return table.render()


def summary_line(outcomes: Sequence[JobOutcome], wall_s: float,
                 jobs: Optional[int] = None) -> str:
    """One stderr-friendly status line (never byte-compared)."""
    n = len(outcomes)
    hits = sum(1 for o in outcomes if o.record.cached)
    failures = sum(1 for o in outcomes if not o.record.ok)
    return (f"sweep: n={n} jobs={resolve_jobs(jobs)} hits={hits} "
            f"failures={failures} wall={wall_s:.2f}s")
