"""Job specifications and the registry of runnable job kinds.

A sweep point is described by a picklable :class:`JobSpec` — a job
*kind* name, a config dataclass, a seed, and a snapshot of the
process-environment toggles that can change simulation semantics
(``REPRO_ENGINE_FASTPATH``, ``REPRO_LINT``).  The snapshot is taken when
the spec is *created*, so a worker process always reproduces the
environment the sweep was planned under even if the parent's environment
drifts between planning and execution (or the worker inherits a stale
fork image).  :func:`execute_spec` applies and asserts the snapshot
before running.

A :class:`JobKind` splits a job into three pure functions:

* ``run(config, seed) -> (payload, obs)`` — compute the point; the
  payload is the JSON-safe *invariant* outcome (what the cache stores),
  ``obs`` are deterministic observability numbers (events, sim_now);
* ``from_payload(config, seed, payload)`` — rebuild the consumer-facing
  result object from a payload, whether freshly computed or cached.

Because cache hits go through the same ``from_payload`` as fresh runs,
a warmed cache produces byte-identical reports.

Built-in kinds: ``stream`` (one streaming configuration), ``campaign``
(one seeded fault-injection campaign), ``table8`` (one Table VIII row),
``bench_invariants`` (one benchmark's determinism invariants),
``cluster`` (one multi-card scaling point with its differential
bit-identity check).  Custom
kinds can be registered with :func:`register_kind`; they must live in an
importable module (workers resolve kinds by name).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.parallel.cache import job_key

__all__ = [
    "SNAPSHOT_KEYS",
    "EnvDriftError",
    "JobKind",
    "JobSpec",
    "all_kinds",
    "execute_spec",
    "get_kind",
    "register_kind",
    "snapshot_env",
]

#: environment toggles that alter which simulation code paths execute;
#: snapshot these into every JobSpec so workers cannot inherit drifted
#: values, and fold them into the cache key (via :meth:`JobSpec.key`)
#: so runs planned under different toggles never share cache entries.
#: (Today both toggles are result-identical by contract — FASTPATH is
#: bit-exact, LINT does not change results — but keying on them means
#: a cache hit, which skips execution and hence the worker-side env
#: assertion, can still never cross toggle values.)
SNAPSHOT_KEYS = ("REPRO_ENGINE_FASTPATH", "REPRO_LINT")


class EnvDriftError(RuntimeError):
    """A worker's applied environment disagreed with the job snapshot."""


def snapshot_env() -> Tuple[Tuple[str, Optional[str]], ...]:
    """Capture the semantic env toggles as a hashable, picklable tuple."""
    return tuple((k, os.environ.get(k)) for k in SNAPSHOT_KEYS)


def _apply_env(snapshot: Tuple[Tuple[str, Optional[str]], ...]) -> None:
    for key, value in snapshot:
        if value is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = value


def _assert_env(snapshot: Tuple[Tuple[str, Optional[str]], ...]) -> None:
    """Assert the applied snapshot took effect where it matters.

    ``_fastpath_default`` is re-read from the environment at every
    Simulator construction, so checking it here proves every simulator
    the job builds will see the planned toggle.
    """
    from repro.sim.engine import _fastpath_default
    want = dict(snapshot).get("REPRO_ENGINE_FASTPATH")
    expected = (want or "1").lower() not in ("0", "false", "off", "no")
    if _fastpath_default() != expected:
        raise EnvDriftError(
            f"worker REPRO_ENGINE_FASTPATH resolves to "
            f"{_fastpath_default()} but the job was planned with "
            f"{expected} (snapshot {dict(snapshot)!r})")
    for key, value in snapshot:
        if os.environ.get(key) != value:
            raise EnvDriftError(
                f"worker env {key}={os.environ.get(key)!r} does not match "
                f"the job snapshot {value!r}")


@dataclass(frozen=True)
class JobSpec:
    """One sweep point: kind + config dataclass + seed + env snapshot."""

    kind: str
    config: Any
    seed: int = 0
    env: Tuple[Tuple[str, Optional[str]], ...] = field(
        default_factory=snapshot_env)

    def key(self, version: Optional[str] = None) -> str:
        """Content address of this job (see :func:`cache.job_key`).

        The env snapshot is part of the key: a cache hit bypasses
        execution (and therefore the worker-side env assertion), so
        specs planned under different toggle values must never resolve
        to the same entry.
        """
        return job_key(self.kind, self.config, self.seed, version,
                       env=self.env)


@dataclass(frozen=True)
class JobKind:
    """How to run one kind of job and (de)serialise its outcome."""

    name: str
    #: (config, seed) -> (JSON-safe payload, deterministic obs dict)
    run: Callable[[Any, int], Tuple[dict, dict]]
    #: (config, seed, payload) -> consumer-facing result object
    from_payload: Callable[[Any, int, dict], Any]


_REGISTRY: Dict[str, JobKind] = {}


def register_kind(kind: JobKind, replace: bool = False) -> JobKind:
    if kind.name in _REGISTRY and not replace:
        raise ValueError(f"job kind {kind.name!r} is already registered")
    _REGISTRY[kind.name] = kind
    return kind


def get_kind(name: str) -> JobKind:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown job kind {name!r} (registered: "
            f"{', '.join(sorted(_REGISTRY)) or 'none'}); custom kinds must "
            "be registered in a module the worker process imports") from None


def all_kinds() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def execute_spec(spec: JobSpec) -> Tuple[dict, dict]:
    """Run one job under its snapshot env; returns (payload, obs)."""
    _apply_env(spec.env)
    _assert_env(spec.env)
    kind = get_kind(spec.kind)
    payload, obs = kind.run(spec.config, spec.seed)
    return payload, obs


def result_from_payload(spec: JobSpec, payload: dict) -> Any:
    return get_kind(spec.kind).from_payload(spec.config, spec.seed, payload)


# --------------------------------------------------------------------------
# built-in job kinds
# --------------------------------------------------------------------------
# The heavy imports live inside the run functions so importing
# repro.parallel stays cheap and free of import cycles (streaming,
# faults and bench all import repro.parallel themselves).

def _run_stream(config, seed) -> Tuple[dict, dict]:
    from repro.arch.device import GrayskullDevice
    from repro.streaming.kernels import run_streaming

    dev = GrayskullDevice()
    res = run_streaming(config, device=dev)
    payload = {
        "runtime_s": res.runtime_s,
        "read_requests": res.read_requests,
        "write_requests": res.write_requests,
        "bytes_read": res.bytes_read,
        "bytes_written": res.bytes_written,
        "verified": res.verified,
    }
    obs = {"events": dev.sim.events_processed, "sim_now": dev.sim.now}
    return payload, obs


def _stream_from_payload(config, seed, payload):
    from repro.streaming.kernels import StreamResult
    return StreamResult(config=config, **payload)


def _run_campaign_job(config, seed) -> Tuple[dict, dict]:
    from repro.faults.campaign import run_campaign

    report = run_campaign(config)
    payload = {
        "title": report.title,
        "outcome": dict(report.outcome),
        "events": [[e.t, e.kind, e.where, e.action, e.detail]
                   for e in report.trace.events],
    }
    obs = {"events": len(report.trace),
           "detected": report.trace.count(action="detected")}
    return payload, obs


def _campaign_from_payload(config, seed, payload):
    from repro.analysis.resilience import ResilienceReport

    report = ResilienceReport(title=payload["title"])
    report.outcome.update(payload["outcome"])
    for t, kind, where, action, detail in payload["events"]:
        report.trace.record(t, kind, where, action, detail)
    return report


def _run_table8_row(config, seed) -> Tuple[dict, dict]:
    from repro.core.grid import LaplaceProblem
    from repro.core.solver import JacobiSolver

    problem = LaplaceProblem(nx=config.nx, ny=config.ny)
    if config.typ == "cpu":
        solver = JacobiSolver(backend="cpu", n_threads=config.total)
    else:
        solver = JacobiSolver(backend="e150-model",
                              cores=(config.cy, config.cx),
                              n_cards=max(config.cards, 1))
    res = solver.solve(problem, config.iterations,
                       compute_answer=config.compute_answers)
    payload = {"gpts": res.gpts, "energy_j": res.energy_j,
               "time_s": res.time_s}
    obs = {"sim_now": res.time_s}
    return payload, obs


def _table8_from_payload(config, seed, payload):
    return payload


def _run_bench_invariants(config, seed) -> Tuple[dict, dict]:
    from repro import bench

    _kind, _metric, _unit, _higher, fn = bench.BENCHMARKS[config.name]
    _wall, _value, inv = fn(config.smoke)
    obs = {k: inv[k] for k in ("events", "sim_now") if k in inv}
    return {"invariants": inv}, obs


def _bench_from_payload(config, seed, payload):
    return payload["invariants"]


def _run_cluster(config, seed) -> Tuple[dict, dict]:
    from repro.cluster.solver import ClusterSolver
    from repro.core.grid import LaplaceProblem
    from repro.cpu.jacobi import jacobi_solve_bf16

    import numpy as np

    res = ClusterSolver(config).solve()
    # The differential check rides inside every sweep point: the stitched
    # multi-card grid vs the single-card BF16 reference, to the bit.
    reference = jacobi_solve_bf16(
        LaplaceProblem(nx=config.nx, ny=config.ny).initial_grid_bf16(),
        config.iterations)
    payload = {
        "nx": config.nx,
        "ny": config.ny,
        "iterations": config.iterations,
        "n_cards": res.n_cards,
        "cards_y": config.cards_y,
        "cards_x": config.cards_x,
        "timing": config.timing,
        "exchange": config.exchange,
        "wall_time_s": res.wall_time_s,
        "energy_j": res.energy_j,
        "gpts": res.gpts,
        "busy_total_s": sum(res.busy_s),
        "stall_total_s": sum(res.stall_s),
        "host_stage_s": res.host_stage_s,
        "exchange_total_s": res.exchange.total_s,
        "exchange_readback_s": res.exchange.readback_s,
        "exchange_memcpy_s": res.exchange.memcpy_s,
        "exchange_writeback_s": res.exchange.writeback_s,
        "exchange_bytes": res.exchange.bytes_moved,
        "restarts": res.restarts,
        "bit_identical": bool(np.array_equal(res.grid_bits, reference)),
    }
    obs = {"sim_now": res.wall_time_s}
    return payload, obs


def _cluster_from_payload(config, seed, payload):
    return payload


register_kind(JobKind("stream", _run_stream, _stream_from_payload))
register_kind(JobKind("cluster", _run_cluster, _cluster_from_payload))
register_kind(JobKind("campaign", _run_campaign_job,
                      _campaign_from_payload))
register_kind(JobKind("table8", _run_table8_row, _table8_from_payload))
register_kind(JobKind("bench_invariants", _run_bench_invariants,
                      _bench_from_payload))
