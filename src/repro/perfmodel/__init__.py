"""Performance model: calibration constants and many-core scaling.

* :mod:`repro.perfmodel.calibration` — every timing constant used by the
  simulator, each derived from a specific measurement in the paper.
* :mod:`repro.perfmodel.flows` — max-min fair bandwidth allocation over
  shared NoC/DRAM resources (Tier-2 contention model).
* :mod:`repro.perfmodel.scaling` — analytic multi-core / multi-card
  steady-state model used for Tables VII and VIII.
* :mod:`repro.perfmodel.cpumodel` — Xeon 8260M performance/energy model.
* :mod:`repro.perfmodel.ops` — roofline/energy estimates for the
  :mod:`repro.ops` workload library.
"""

from repro.perfmodel.calibration import CostModel, DEFAULT_COSTS
from repro.perfmodel.cpumodel import XeonModel
from repro.perfmodel.flows import FlowNetwork, max_min_fair_rates
from repro.perfmodel.ops import OpEstimate, estimate_op, op_service_time
from repro.perfmodel.scaling import JacobiScalingModel, MulticoreResult

__all__ = [
    "CostModel",
    "DEFAULT_COSTS",
    "FlowNetwork",
    "JacobiScalingModel",
    "MulticoreResult",
    "OpEstimate",
    "XeonModel",
    "estimate_op",
    "max_min_fair_rates",
    "op_service_time",
]
