"""Timing calibration: every constant is derived from a paper measurement.

The Grayskull simulator is *functionally* exact (bytes really move) but its
*timing* comes from a linear cost model whose parameters are backed out of
the paper's own tables.  Each constant below cites its derivation; the
arithmetic is reproduced in the docstrings and checked by
``tests/perfmodel/test_calibration.py`` so the provenance cannot silently
rot.

Derivation summary (problem size for Tables III–VII: 4096×4096 int32 =
67.11 MB read + 67.11 MB written; 16.78 M requests at 4-byte batches):

* ``read_issue``       Table III, 4 B no-sync read:  1.761 s / 16.78 M ≈ 105 ns
* ``read_latency``     Table III, 4 B sync read:    12.659 s / 16.78 M ≈ 754 ns
                       total per request, minus the 105 ns issue ⇒ 650 ns
                       of *exposed* completion latency
* ``write_issue``      Table III, 4 B no-sync write: 0.411 s / 16.78 M ≈ 24.5 ns
* ``write_latency``    Table III, 4 B sync write:    2.873 s / 16.78 M ≈ 171 ns
                       total per request, minus issue ⇒ 146 ns exposed
* ``noncontig_read``   Table IV vs III, 4 B no-sync: (1.969−1.761) s / 16.78 M ≈ 12 ns
* ``noncontig_write``  Table IV vs III, 64 B no-sync: (0.074−0.027) s / 1.05 M ≈ 45 ns
                       (the 4 B row suggests ≈18 ns; the 64 B row — the
                       size class the Jacobi writer actually uses — and
                       Table II's write-only throughput both point to
                       ≈45 ns, so we take the mid-size calibration)
* ``noc_link_bw``      Table III, 16384 B row: 67.11 MB / 0.011 s ≈ 6.1 GB/s
                       per data-mover direction (single-bank stream)
* ``noc_link_bw_interleaved``  Table VI repl-32, 32 K pages vs none:
                       0.079 s vs 0.162 s ⇒ ≈2× ⇒ ≈12.2 GB/s (bursts from
                       multiple banks overlap in the DMA engine)
* ``dram_bank_bw``     Table VII, ≥2 cores on one bank: 134.2 MB / 0.005 s
                       ≈ 26.8 GB/s ⇒ 25.6 GB/s nominal per bank
* ``noc_column_bw``    Table VIII, 108 cores over 12 grid columns:
                       22.06 GPt/s × 4 B/pt ≈ 88 GB/s / 12 ≈ 7.3 GB/s per
                       shared column uplink to the DRAM edge
* ``overlap_loss``     Table VIII, 1 core: 1.06 GPt/s measured vs the
                       1.387 GPt/s compute ceiling ⇒ the reader/compute/
                       writer pipeline loses ≈25 % of the non-critical
                       stage time to CB stalls
* ``replay_coalesce``  Table V, repl 32: 32 × 67.11 MB / 6.1 GB/s = 0.352 s
                       predicted vs 0.185 s measured ⇒ re-reads of recent
                       rows cost ×0.55 (DRAM row-buffer / burst coalescing)
* ``page_overhead_read/write``  Table VI repl-0, 1 K pages: 0.038 s vs
                       0.010 s ⇒ ≈470 ns extra per page-sized read burst,
                       ≈150 ns per write burst
* ``memcpy_rate``      Section V memcpy experiment: 67.11 MB / 0.106 s ≈ 633 MB/s
* ``memcpy_call``      Table II `memcpy only` 0.014 GPt/s ⇒ 18.7 ms/iter for
                       32768 strided 64-byte row copies ⇒ ≈450 ns/call + rate
* ``fpu_op``           Table II `compute only` 1.387 GPt/s ⇒ 738 ns/batch for
                       8 tile ops (4 math + 4 pack) after 135 ns skeleton ⇒ 75 ns
* ``core_loop_batch``  Table II all-off 7.574 GPt/s ⇒ 135 ns/batch pipelined
                       skeleton (CB handshakes + loop) per baby-core stage
* ``cb_op``            the compute stage of that skeleton performs ~16 CB
                       handshakes per batch (Listing 2) ⇒ 135 ns / 16 ≈ 8.5 ns
                       per reserve/push/wait/pop
* energy               Table VIII: e150 ≈50–55 W independent of active cores;
                       CPU 1657 J / 33.3 s ≈ 49.7 W single-core package,
                       588 J / 2.17 s ≈ 270 W at 24 cores ⇒ ≈45 W base +
                       ≈9.4 W per active core
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["CostModel", "DEFAULT_COSTS"]

NS = 1e-9
GB = 1e9
MB = 1e6


@dataclass(frozen=True)
class CostModel:
    """All timing/energy parameters of the simulated machine.

    Instances are immutable; use :meth:`with_overrides` for ablations.
    Units: seconds, bytes/second, watts.
    """

    # --- NoC / DMA request costs (data-mover core side) -----------------
    read_issue: float = 105 * NS        #: issue cost per noc_async_read
    read_latency: float = 650 * NS      #: completion latency exposed by a barrier
    write_issue: float = 24.5 * NS      #: issue cost per noc_async_write
    write_latency: float = 146 * NS     #: completion latency exposed by a barrier
    noncontig_read: float = 12 * NS     #: extra per non-contiguous read request
    noncontig_write: float = 45 * NS    #: extra per non-contiguous write request

    # --- bandwidths ------------------------------------------------------
    noc_link_bw: float = 6.1 * GB           #: per data-mover direction
    noc_link_bw_interleaved: float = 12.2 * GB  #: reads striped over banks
    dram_bank_bw: float = 25.6 * GB          #: per-bank service rate
    noc_column_bw: float = 7.3 * GB         #: shared per-grid-column uplink to DRAM
    noc_aggregate_bw: float = 204.8 * GB    #: all 8 banks (8 × 25.6 GB/s)
    overlap_loss: float = 0.25              #: pipeline imperfection: iter ≈ max + loss·(sum−max)

    # --- special-case request behaviour ----------------------------------
    replay_coalesce: float = 0.55       #: link-cost factor for re-read rows
    page_overhead_read: float = 470 * NS   #: per page-split read burst
    page_overhead_write: float = 150 * NS  #: per page-split write burst

    # --- baby-core software costs ----------------------------------------
    memcpy_rate: float = 633 * MB       #: bytes/s for SRAM→CB copies
    memcpy_call: float = 450 * NS       #: fixed overhead per memcpy call
    memcpy_misaligned_factor: float = 2.0  #: rate penalty for non-word-aligned copies
    dram_turnaround: float = 200 * NS   #: bank read↔write direction-flip stall
    fpu_op: float = 75 * NS             #: per tile math or pack operation
    core_loop_batch: float = 135 * NS   #: per-batch kernel skeleton (CB ops, loop)
    cb_op: float = 8.5 * NS             #: one CB handshake (reserve/push/wait/pop)
    semaphore_op: float = 50 * NS       #: semaphore set/inc/wait round

    # --- device geometry / clocks ----------------------------------------
    clock_hz: float = 1.2e9             #: Tensix core clock
    dram_alignment: int = 32            #: 256-bit DRAM access alignment (bytes)
    n_dram_banks: int = 8
    sram_bytes: int = 1 << 20           #: 1 MB per Tensix core
    dram_bytes: int = 8 << 30           #: 8 GiB per card
    grid_width: int = 12                #: Tensix grid columns (worker region)
    grid_height: int = 10               #: rows; 120 cores total
    n_worker_cores: int = 108           #: 12 of 120 are storage-only
    max_interleave_page: int = 64 << 10  #: tt-metal caps pages at 64 KB

    # --- host link ---------------------------------------------------------
    pcie_bw: float = 16.0 * GB          #: PCIe Gen4 x8 effective
    pcie_latency: float = 5e-6
    #: host-DRAM copy bandwidth for staging halo strips between per-card
    #: PCIe buffers (a single host core's streaming memcpy; the FFT halo
    #: work this follows stages card→host→card through exactly one such
    #: copy per face strip)
    host_memcpy_bw: float = 12.0 * GB
    host_memcpy_call: float = 1e-6      #: fixed overhead per host staging copy

    # --- energy ------------------------------------------------------------
    card_power_idle_w: float = 47.0     #: e150 at rest
    card_power_base_w: float = 50.0     #: e150 running, few cores
    card_power_span_w: float = 5.0      #: extra at all 108 workers (50→55 W)

    # --- misc -----------------------------------------------------------
    print_server_slowdown: float = 20.0  #: factor when the debug print server is on
    dprint_cost: float = 15e-6          #: per DPRINT message with the server attached
                                        #: (~20x slowdown when printing per batch,
                                        #: matching the paper's observation)

    def with_overrides(self, **kw) -> "CostModel":
        """A copy with some parameters replaced (for ablation studies)."""
        return replace(self, **kw)

    # -- derived helpers ---------------------------------------------------
    def card_power_w(self, active_cores: int) -> float:
        """TT-SMI-style power: roughly constant 50–55 W regardless of cores.

        The paper: "the power draw of the e150 is roughly constant, between
        50 and 55 Watts, regardless of the number of Tensix cores in use".
        """
        if active_cores <= 0:
            return self.card_power_idle_w
        frac = min(active_cores, self.n_worker_cores) / self.n_worker_cores
        return self.card_power_base_w + self.card_power_span_w * frac

    def read_request_time(self, nbytes: int, *, contiguous: bool = True,
                          sync: bool = False, replay: bool = False,
                          interleaved: bool = False, pages: int = 1) -> float:
        """Data-mover-side time for one read request of ``nbytes``.

        ``sync`` adds the exposed round-trip latency (barrier immediately
        after the request); ``replay`` applies row-buffer coalescing for
        re-reads; ``pages`` > 1 charges the per-page split overhead of an
        interleaved buffer.
        """
        bw = self.noc_link_bw_interleaved if interleaved else self.noc_link_bw
        t = self.read_issue + nbytes / bw
        if replay:
            t = self.read_issue + (nbytes / bw) * self.replay_coalesce
        if not contiguous:
            t += self.noncontig_read
        if pages > 1:
            t += (pages - 1) * self.page_overhead_read
        elif interleaved:
            t += self.page_overhead_read * 0.0  # single page: no split cost
        if sync:
            t += self.read_latency
        return t

    def write_request_time(self, nbytes: int, *, contiguous: bool = True,
                           sync: bool = False, interleaved: bool = False,
                           pages: int = 1) -> float:
        """Data-mover-side time for one write request of ``nbytes``."""
        t = self.write_issue + nbytes / self.noc_link_bw
        if not contiguous:
            t += self.noncontig_write
        if pages > 1:
            t += (pages - 1) * self.page_overhead_write
        if sync:
            t += self.write_latency
        return t

    def memcpy_time(self, nbytes: int, calls: int = 1,
                    misaligned: bool = False) -> float:
        """Baby-core software copy between SRAM regions / CBs.

        ``misaligned`` models non-word-aligned source/destination pointers
        (the unaligned-read slack leaves the payload at a 2-byte offset),
        which the RISC-V baby cores handle at roughly half rate.
        """
        rate = self.memcpy_rate
        if misaligned:
            rate /= self.memcpy_misaligned_factor
        return calls * self.memcpy_call + nbytes / rate


#: The calibrated model used everywhere unless an experiment overrides it.
DEFAULT_COSTS = CostModel()
