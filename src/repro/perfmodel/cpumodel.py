"""Xeon Platinum 8260M (Cascade Lake) performance & energy model.

The paper's CPU baseline runs FP32 with OpenMP on a 24-core 8260M and
reports 1.41 GPt/s on one core and 21.61 GPt/s on 24 cores (Table VIII),
with RAPL energies of 1657 J (1 core) and 588 J (24 cores) for the
1024×9216 × 5000-iteration problem.

Calibration:

* single-core throughput is taken directly: ``core_gpts = 1.41e9``;
* multi-core scaling uses a saturating roofline
  ``perf(n) = a·n / (1 + n/k)`` fitted through the two measured points
  (n=1 → 1.41, n=24 → 21.61), giving k ≈ 39.65 and a ≈ 1.4456 GPt/s —
  i.e. memory bandwidth limits parallel efficiency to ~64 % at 24 cores;
* package power from the two RAPL numbers:
  1657 J / (4.7e10 pt / 1.41 GPt/s = 33.3 s) ≈ 49.7 W at one core,
  588 J / (4.7e10 pt / 21.61 GPt/s = 2.17 s) ≈ 270 W at 24 cores,
  ⇒ base ≈ 40.1 W + 9.6 W per active core.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["XeonModel"]


def _fit_saturating(n1: float, p1: float, n2: float, p2: float) -> tuple[float, float]:
    """Solve perf(n) = a*n/(1+n/k) through (n1,p1) and (n2,p2)."""
    # p = a n k / (k + n)  =>  a = p (k + n) / (n k).  Equate for both points:
    # p1 (k + n1) / n1 = p2 (k + n2) / n2
    # k (p1/n1 - p2/n2) = p2 - p1
    k = (p2 - p1) / (p1 / n1 - p2 / n2)
    a = p1 * (k + n1) / (n1 * k)
    return a, k


@dataclass(frozen=True)
class XeonModel:
    """Calibrated performance/energy model of the paper's CPU baseline."""

    n_cores: int = 24
    core_gpts: float = 1.41e9        #: measured single-core GPt/s (FP32)
    cores24_gpts: float = 21.61e9    #: measured 24-core GPt/s
    power_base_w: float = 40.1       #: package power at zero active cores
    power_per_core_w: float = 9.58   #: increment per active core

    def throughput_pts(self, active_cores: int) -> float:
        """Modelled Jacobi throughput in points/second for ``active_cores``."""
        if not 1 <= active_cores <= self.n_cores:
            raise ValueError(
                f"active_cores must be in [1,{self.n_cores}], got {active_cores}")
        if active_cores == 1:
            return self.core_gpts
        if active_cores == self.n_cores:
            return self.cores24_gpts
        a, k = _fit_saturating(1.0, self.core_gpts, float(self.n_cores),
                               self.cores24_gpts)
        n = float(active_cores)
        return a * n / (1.0 + n / k)

    def power_w(self, active_cores: int) -> float:
        """RAPL-style package power for ``active_cores`` busy cores."""
        if not 0 <= active_cores <= self.n_cores:
            raise ValueError("active_cores out of range")
        return self.power_base_w + self.power_per_core_w * active_cores

    def solve_time_s(self, n_points: int, n_iterations: int,
                     active_cores: int) -> float:
        """Wall time to run ``n_iterations`` Jacobi sweeps of ``n_points``."""
        if n_points <= 0 or n_iterations <= 0:
            raise ValueError("points and iterations must be positive")
        return n_points * n_iterations / self.throughput_pts(active_cores)

    def energy_j(self, n_points: int, n_iterations: int,
                 active_cores: int) -> float:
        """RAPL-style package energy for the run."""
        return (self.solve_time_s(n_points, n_iterations, active_cores)
                * self.power_w(active_cores))
