"""Max-min fair bandwidth allocation over shared resources.

Used by the Tier-2 scaling model: each core's DRAM traffic is a *flow*
crossing a set of capacitated resources (its own NoC link, the target DRAM
bank(s), the NoC-to-DRAM bisection).  Steady-state per-flow rates follow
the classic water-filling algorithm: repeatedly saturate the most
constrained resource, freeze its flows at the fair share, and continue
with the residual network.

Demands are optional: a flow with a finite demand never receives more than
it asks for, and the surplus is redistributed (demand-bounded max-min
fairness).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = ["FlowNetwork", "max_min_fair_rates"]


@dataclass
class FlowNetwork:
    """A set of capacitated resources and flows that cross them."""

    capacities: Dict[str, float] = field(default_factory=dict)
    flows: Dict[str, List[str]] = field(default_factory=dict)
    demands: Dict[str, float] = field(default_factory=dict)

    def add_resource(self, name: str, capacity: float) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity for {name!r} must be positive")
        if name in self.capacities:
            raise ValueError(f"duplicate resource {name!r}")
        self.capacities[name] = float(capacity)

    def add_flow(self, name: str, resources: Sequence[str],
                 demand: Optional[float] = None) -> None:
        if name in self.flows:
            raise ValueError(f"duplicate flow {name!r}")
        missing = [r for r in resources if r not in self.capacities]
        if missing:
            raise KeyError(f"flow {name!r} crosses unknown resources {missing}")
        if not resources:
            raise ValueError(f"flow {name!r} must cross at least one resource")
        self.flows[name] = list(resources)
        if demand is not None:
            if demand <= 0:
                raise ValueError("demand must be positive")
            self.demands[name] = float(demand)

    def solve(self) -> Dict[str, float]:
        return max_min_fair_rates(self.capacities, self.flows, self.demands)


def max_min_fair_rates(
    capacities: Mapping[str, float],
    flows: Mapping[str, Sequence[str]],
    demands: Optional[Mapping[str, float]] = None,
) -> Dict[str, float]:
    """Water-filling max-min fair rates for ``flows`` over ``capacities``.

    Returns the allocated rate for every flow.  Demand-bounded: a flow with
    ``demands[f]`` set is frozen at its demand if the fair share exceeds it.
    """
    demands = dict(demands or {})
    residual = {r: float(c) for r, c in capacities.items()}
    active = {f: list(rs) for f, rs in flows.items()}
    rates: Dict[str, float] = {f: 0.0 for f in flows}

    # Freeze any demand-limited flows eagerly whenever their demand is the
    # binding constraint; otherwise freeze the bottleneck resource's flows.
    for _ in range(len(flows) + len(capacities) + 1):
        if not active:
            break
        # Count active flows per resource.
        users: Dict[str, int] = {}
        for f, rs in active.items():
            for r in rs:
                users[r] = users.get(r, 0) + 1
        # Fair share increment offered by each resource.
        share = {r: residual[r] / n for r, n in users.items() if n > 0}
        if not share:
            break
        bottleneck = min(share, key=lambda r: (share[r], r))
        inc = share[bottleneck]

        # Does any demand bind before the bottleneck share?
        demand_limited = [
            f for f in active
            if f in demands and demands[f] - rates[f] <= inc + 1e-18
        ]
        if demand_limited:
            # Freeze the smallest remaining demand first.
            f = min(demand_limited, key=lambda f: (demands[f] - rates[f], f))
            inc_f = max(demands[f] - rates[f], 0.0)
            rates[f] += inc_f
            for r in active[f]:
                residual[r] -= inc_f
            del active[f]
            continue

        # Give every active flow `inc`, saturating the bottleneck.
        for f, rs in list(active.items()):
            rates[f] += inc
            for r in rs:
                residual[r] -= inc
        for f in [f for f, rs in active.items() if bottleneck in rs]:
            del active[f]
        residual[bottleneck] = 0.0

    # Numerical guard: no resource may end over-committed.
    for r, c in capacities.items():
        used = sum(rates[f] for f, rs in flows.items() if r in rs)
        if used > c * (1 + 1e-9):
            raise AssertionError(
                f"resource {r!r} over-committed: {used:g} > {c:g}")
    return rates
