"""Calibrated roofline/energy estimates for the :mod:`repro.ops` library.

Each op gets a closed-form estimate built from the same
:class:`~repro.perfmodel.calibration.CostModel` constants that drive the
simulator: FPU throughput from ``fpu_op`` (75 ns per tile operation),
memory movement from the NoC/DRAM request model, and energy from the
measured card power curve.  The estimate deliberately mirrors the
structure of :class:`~repro.perfmodel.scaling.JacobiScalingModel` — a
compute term and a memory term joined by the overlap-loss factor — so
per-op ``% of roofline`` numbers in the README table are comparable.

These estimates also feed ``repro.serve``: mixed-workload admission and
batching use :func:`op_service_time` as the device service time for
non-Jacobi request kinds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.perfmodel.calibration import DEFAULT_COSTS, CostModel

__all__ = [
    "OpEstimate",
    "matmul_estimate",
    "fft_estimate",
    "stencil9_estimate",
    "estimate_op",
    "op_service_time",
]

#: elements along one tile edge; one FPU tile op touches a 32x32 tile.
TILE_DIM = 32


@dataclass(frozen=True)
class OpEstimate:
    """Roofline decomposition of one op execution."""

    op: str
    cores: Tuple[int, int]
    flops: float            #: floating point operations (padded work)
    bytes_in: int           #: DRAM -> L1 traffic
    bytes_out: int          #: L1 -> DRAM traffic
    compute_s: float        #: FPU-bound time at calibrated tile-op rate
    memory_s: float         #: data-movement time (requests + bandwidth)
    time_s: float           #: modelled wall time (overlap-loss combined)
    roofline_s: float       #: max(compute, memory) — the ideal bound
    gflops: float           #: flops / time_s / 1e9
    roofline_gflops: float  #: flops / roofline_s / 1e9
    roofline_frac: float    #: roofline_s / time_s
    power_w: float          #: card power at this core count
    energy_j: float         #: power_w * time_s

    def to_row(self) -> dict:
        return {
            "op": self.op, "cores": list(self.cores),
            "flops": self.flops, "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out, "compute_s": self.compute_s,
            "memory_s": self.memory_s, "time_s": self.time_s,
            "gflops": self.gflops, "roofline_gflops": self.roofline_gflops,
            "roofline_frac": self.roofline_frac, "energy_j": self.energy_j,
        }


def _finish(op: str, cores: Tuple[int, int], flops: float, bytes_in: int,
            bytes_out: int, compute_s: float, memory_s: float,
            costs: CostModel) -> OpEstimate:
    """Combine the two phases the way the scaling model does."""
    roofline_s = max(compute_s, memory_s)
    time_s = roofline_s + costs.overlap_loss * min(compute_s, memory_s)
    n_cores = cores[0] * cores[1]
    power = costs.card_power_w(n_cores)
    return OpEstimate(
        op=op, cores=cores, flops=flops, bytes_in=bytes_in,
        bytes_out=bytes_out, compute_s=compute_s, memory_s=memory_s,
        time_s=time_s, roofline_s=roofline_s,
        gflops=flops / time_s / 1e9 if time_s else 0.0,
        roofline_gflops=flops / roofline_s / 1e9 if roofline_s else 0.0,
        roofline_frac=roofline_s / time_s if time_s else 1.0,
        power_w=power, energy_j=power * time_s)


def _move_time(nbytes: int, pages: int, costs: CostModel,
               read: bool) -> float:
    """Request-issue plus bandwidth time for one core's DRAM traffic."""
    if read:
        issue = pages * (costs.read_issue + costs.page_overhead_read) \
            + costs.read_latency
    else:
        issue = pages * (costs.write_issue + costs.page_overhead_write) \
            + costs.write_latency
    return issue + nbytes / costs.noc_link_bw_interleaved


def matmul_estimate(problem, cores: Tuple[int, int],
                    costs: CostModel = DEFAULT_COSTS) -> OpEstimate:
    """Blocked SRAM matmul: one ``matmul_tiles`` per (i,j,k) tile triple."""
    cy, cx = cores
    mt, kt, nt = problem.mt, problem.kt, problem.nt
    tile_b = TILE_DIM * TILE_DIM * 2
    # slowest core bounds the program: ceil shares of the output grid
    my = -(-mt // cy)
    nx = -(-nt // cx)
    tile_ops = my * nx * kt + my * nx            # matmuls + packs
    compute_s = tile_ops * costs.fpu_op
    in_pages = my * kt + kt * nx
    out_pages = my * nx
    memory_s = _move_time(in_pages * tile_b, in_pages, costs, read=True) \
        + _move_time(out_pages * tile_b, out_pages, costs, read=False)
    flops = problem.flops()
    return _finish("matmul", cores, flops,
                   (mt * kt + kt * nt) * tile_b, mt * nt * tile_b,
                   compute_s, memory_s, costs)


def fft_estimate(problem, cores: Tuple[int, int],
                 costs: CostModel = DEFAULT_COSTS) -> OpEstimate:
    """Radix-2 pencils: 10 elementwise tile ops (and packs) per butterfly."""
    import numpy as np
    cy, cx = cores
    n, batch = problem.n, problem.batch
    n_cores = cy * cx
    bc = -(-batch // n_cores)                    # slowest core's share
    stages = int(np.log2(n))
    butterflies = (n // 2) * stages
    tile_ops = butterflies * 10 * 2              # op + lossless fp32 pack
    compute_s = tile_ops * costs.fpu_op
    rb = bc * 4
    in_rows, out_rows = 3 * n, 2 * n             # x + twiddles in, x out
    memory_s = _move_time(in_rows * rb, in_rows, costs, read=True) \
        + _move_time(out_rows * rb, out_rows, costs, read=False)
    flops = problem.flops()
    plane = n * batch * 4
    return _finish("fft", cores, flops, 3 * plane, 2 * plane,
                   compute_s, memory_s, costs)


def stencil9_estimate(problem, cores: Tuple[int, int],
                      costs: CostModel = DEFAULT_COSTS) -> OpEstimate:
    """9-point ping-pong sweeps: 9 tile-op+pack pairs per row per sweep."""
    cy, cx = cores
    ny = -(-problem.ny // cy)
    nx = -(-problem.nx // cx)
    rows_per_sweep = ny
    tile_ops = rows_per_sweep * 9 * 2 * problem.iters
    compute_s = tile_ops * costs.fpu_op
    irb = (nx + 2) * 2
    in_rows = (ny + 2) * problem.iters
    out_rows = ny * problem.iters
    memory_s = _move_time(in_rows * irb, in_rows, costs, read=True) \
        + _move_time(out_rows * nx * 2, out_rows, costs, read=False)
    flops = problem.flops()
    plane = problem.nx * problem.ny * 2
    return _finish("stencil9", cores, flops,
                   3 * plane * problem.iters, plane * problem.iters,
                   compute_s, memory_s, costs)


_ESTIMATORS = {
    "matmul": matmul_estimate,
    "fft": fft_estimate,
    "stencil9": stencil9_estimate,
}


def estimate_op(op: str, problem, cores: Tuple[int, int],
                costs: CostModel = DEFAULT_COSTS) -> OpEstimate:
    try:
        fn = _ESTIMATORS[op]
    except KeyError:
        raise KeyError(
            f"no estimator for op {op!r} "
            f"(have: {sorted(_ESTIMATORS)})") from None
    return fn(problem, cores, costs)


def op_service_time(op: str, problem, cores: Tuple[int, int],
                    costs: CostModel = DEFAULT_COSTS) -> float:
    """Modelled device service time for one op execution (for serve)."""
    return estimate_op(op, problem, cores, costs).time_s
