"""Tier-2 analytic scaling model for the optimised Jacobi kernel.

Used for the many-core rows of Table VIII where per-request discrete-event
simulation would be wasteful.  The model composes the same calibrated
per-request/per-op costs as the DES:

1. **Per-core pipeline.**  Each core sweeps its sub-domain in 1024-element
   row chunks (Fig. 6).  The reader, compute and writer baby cores form a
   3-stage pipeline, so the solo iteration time is
   ``max(stages) + overlap_loss · (sum(stages) − max(stages))`` — the
   second term is the CB-stall imperfection calibrated against the paper's
   1.06 GPt/s single-core measurement.
2. **Contention.**  Each core's DRAM traffic is a flow crossing its shared
   physical grid-column uplink and the aggregate DRAM bank capacity;
   steady-state rates come from demand-bounded max-min fairness
   (:mod:`repro.perfmodel.flows`).
3. **Cards.**  Cards are independent (no remote memory on Grayskull — the
   paper notes the multi-card runs skip inter-card halos), so multi-card
   throughput is additive and power sums per card.

Geometry note: the paper places the larger decomposition dimension along
the physical 12-wide grid axis (its "12 cores in Y" exceeds the 10-row
grid height, so Y must map to the width).  We reproduce that rule in
:func:`columns_used`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.dtypes.tiles import TILE_ELEMS
from repro.perfmodel.calibration import DEFAULT_COSTS, CostModel
from repro.perfmodel.flows import max_min_fair_rates

__all__ = [
    "KernelPhases",
    "MulticoreResult",
    "JacobiScalingModel",
    "chunk_widths",
    "columns_used",
]

_BF16 = 2  # bytes per element


def chunk_widths(width: int, chunk: int = TILE_ELEMS) -> List[int]:
    """Split a row of ``width`` elements into ≤``chunk``-element batches.

    The optimised kernel (Section VI) works in 1024-element chunks; a
    narrower sub-domain produces one ragged tail chunk, which still costs a
    full FPU tile pass — the source of the X-split inefficiency visible in
    Table VIII.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    full, rem = divmod(width, chunk)
    return [chunk] * full + ([rem] if rem else [])


@dataclass(frozen=True)
class KernelPhases:
    """Per-iteration stage times (seconds) for one core's sub-domain."""

    read: float
    compute: float
    write: float
    read_bytes: int
    write_bytes: int
    points: int

    @property
    def stages(self) -> tuple[float, float, float]:
        return (self.read, self.compute, self.write)

    def solo_iteration_time(self, costs: CostModel) -> float:
        s = self.stages
        top = max(s)
        return top + costs.overlap_loss * (sum(s) - top)

    @property
    def traffic_bytes(self) -> int:
        return self.read_bytes + self.write_bytes


def optimized_kernel_phases(width: int, height: int,
                            costs: CostModel = DEFAULT_COSTS,
                            interleaved: bool = True,
                            elem_bytes: int = _BF16,
                            chunk_elems: int = TILE_ELEMS) -> KernelPhases:
    """Stage times for the Section-VI kernel on a ``width``×``height`` block.

    Per row the reader fetches each chunk plus its two X halos in one
    contiguous read; the compute core runs the Listing-2 pipeline
    (4 math + 4 pack tile ops) per chunk; the writer stores each chunk
    contiguously (alignment guaranteed by the Fig.-5 padding).

    ``elem_bytes``/``chunk_elems`` generalise the datatype: the Grayskull
    runs BF16 (2 B, 1024-element tiles); the Wormhole projection runs
    FP32 (4 B, 512-element tiles — the same 16384-bit FPU width).
    """
    chunks = chunk_widths(width, chunk_elems)
    read_t = compute_t = write_t = 0.0
    read_b = write_b = 0
    for w in chunks:
        rb = (w + 2) * elem_bytes  # chunk + left/right halo elements
        wb = w * elem_bytes
        read_t += costs.core_loop_batch + costs.read_request_time(
            rb, contiguous=True, interleaved=interleaved)
        # 8 tile ops regardless of chunk width: a ragged chunk still runs
        # full FPU passes.
        n_tiles = max(1, math.ceil(w / chunk_elems))
        compute_t += costs.core_loop_batch + 8 * costs.fpu_op * n_tiles
        write_t += costs.core_loop_batch + costs.write_request_time(
            wb, contiguous=True, interleaved=interleaved)
        read_b += rb
        write_b += wb
    # The rotating 4-batch local buffer re-reads nothing, but the sweep
    # needs the upper and lower halo rows once per column of batches.
    halo_rows = 2
    return KernelPhases(
        read=read_t * (height + halo_rows),
        compute=compute_t * height,
        write=write_t * height,
        read_bytes=read_b * (height + halo_rows),
        write_bytes=write_b * height,
        points=width * height,
    )


def columns_used(cores_y: int, cores_x: int, costs: CostModel) -> int:
    """Physical grid columns occupied by a (cores_y × cores_x) placement.

    The larger decomposition dimension is laid along the 12-wide grid axis
    (required whenever it exceeds the 10-row height, and what the paper's
    geometries imply).
    """
    major, minor = max(cores_y, cores_x), min(cores_y, cores_x)
    if major > costs.grid_height and major > costs.grid_width:
        raise ValueError(
            f"placement {cores_y}x{cores_x} does not fit the "
            f"{costs.grid_width}x{costs.grid_height} grid")
    if cores_x > costs.grid_width or cores_y > costs.grid_height:
        # forced swap: decomposition Y along grid width
        return min(max(cores_y, cores_x), costs.grid_width)
    return cores_x


@dataclass(frozen=True)
class MulticoreResult:
    """Outcome of a modelled multi-core / multi-card Jacobi run."""

    total_cores: int
    cores_y: int
    cores_x: int
    n_cards: int
    iteration_time_s: float
    solve_time_s: float
    gpts: float
    energy_j: float
    power_w: float
    column_bound: bool


class JacobiScalingModel:
    """Analytic performance/energy model for Table VIII configurations."""

    def __init__(self, costs: CostModel = DEFAULT_COSTS):
        self.costs = costs

    def _split(self, n: int, parts: int) -> int:
        """Largest share when ``n`` is split as evenly as possible."""
        return math.ceil(n / parts)

    def run(self, width: int, height: int, iterations: int,
            cores_y: int, cores_x: int, n_cards: int = 1,
            interleaved: bool = True) -> MulticoreResult:
        """Model a Jacobi solve decomposed over a core grid and cards.

        ``width``/``height`` are the global domain in elements (per card
        when ``n_cards > 1`` the domain is split in Y across cards, exactly
        like the paper's four-card experiment, with no inter-card halo
        exchange).
        """
        c = self.costs
        if cores_y * cores_x > c.n_worker_cores:
            raise ValueError(
                f"{cores_y}x{cores_x} exceeds {c.n_worker_cores} worker cores")
        if iterations <= 0:
            raise ValueError("iterations must be positive")

        card_height = self._split(height, n_cards)
        wx = self._split(width, cores_x)
        wy = self._split(card_height, cores_y)
        phases = optimized_kernel_phases(wx, wy, c, interleaved=interleaved)
        solo_iter = phases.solo_iteration_time(c)
        demand = phases.traffic_bytes / solo_iter  # bytes/s per core

        n_cols = columns_used(cores_y, cores_x, c)
        total = cores_y * cores_x
        per_col = self._split(total, n_cols)

        # Flow network: one representative flow per column slot.  All cores
        # are symmetric, so we solve one column's worth and broadcast.
        capacities = {
            "column": c.noc_column_bw,
            "banks": c.noc_aggregate_bw / n_cols,  # fair share of the banks
        }
        flows = {f"core{i}": ["column", "banks"] for i in range(per_col)}
        demands = {f: demand for f in flows}
        rates = max_min_fair_rates(capacities, flows, demands)
        rate = min(rates.values())
        column_bound = rate < demand * (1 - 1e-9)

        iter_time = phases.traffic_bytes / rate if column_bound else solo_iter
        # One global iteration completes when the slowest core finishes.
        solve_time = iter_time * iterations
        points = width * height
        gpts = points * iterations / solve_time / 1e9
        power = c.card_power_w(total) * n_cards
        energy = solve_time * power
        return MulticoreResult(
            total_cores=total * n_cards,
            cores_y=cores_y,
            cores_x=cores_x,
            n_cards=n_cards,
            iteration_time_s=iter_time,
            solve_time_s=solve_time,
            gpts=gpts,
            energy_j=energy,
            power_w=power,
            column_bound=column_bound,
        )

    def run_cards(self, width: int, height: int, iterations: int,
                  cores_y: int, cores_x: int, n_cards: int) -> MulticoreResult:
        """Multi-card run: per-card sub-domains solved independently.

        ``cores_y``/``cores_x`` give the *total* decomposition across all
        cards (the paper reports e.g. 48×9 over four cards); each card gets
        ``cores_y / n_cards`` rows of cores.
        """
        if cores_y % n_cards:
            raise ValueError("cores_y must divide evenly across cards")
        per_card = self.run(width, self._split(height, n_cards), iterations,
                            cores_y // n_cards, cores_x, n_cards=1)
        points = width * height
        solve_time = per_card.solve_time_s  # cards run concurrently
        gpts = points * iterations / solve_time / 1e9
        power = per_card.power_w * n_cards
        return MulticoreResult(
            total_cores=cores_y * cores_x,
            cores_y=cores_y,
            cores_x=cores_x,
            n_cards=n_cards,
            iteration_time_s=per_card.iteration_time_s,
            solve_time_s=solve_time,
            gpts=gpts,
            energy_j=solve_time * power,
            power_w=power,
            column_bound=per_card.column_bound,
        )
