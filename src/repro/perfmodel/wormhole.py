"""Wormhole projection: the paper's "next card" future work, modelled.

Section VIII: "[we] intend to explore porting our approach to the
Wormhole card which, with support for FP32 by the FPU will enable
increased precision, along with the ability to connect the cards to
explore scaling up in more detail."

This module projects the optimised Jacobi kernel onto a Wormhole-class
card, clearly labelled as a *projection* (no Wormhole measurements exist
in the paper to calibrate against).  Assumptions, from Tenstorrent's
public n150 specifications and the Grayskull-calibrated per-op costs:

* 72 worker Tensix cores on an 8×10 grid at 1.0 GHz (per-op costs scale
  with the clock: ×1.2 slower per cycle-equivalent than the 1.2 GHz
  Grayskull);
* 12 GB GDDR6 in 6 banks at roughly twice the per-bank service rate;
* the same 16384-bit FPU, now also accepting FP32: a tile holds 512
  FP32 elements, so FP32 halves the per-point compute rate and doubles
  the DRAM traffic;
* cards connect over Ethernet (2 × 100 Gb/s usable here), so multi-card
  runs can exchange halos and stay *numerically correct* — unlike the
  Grayskull experiment;
* card power ~160 W board limit; the roughly-load-independent behaviour
  observed on the e150 is assumed to carry over at ~110–130 W.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.perfmodel.calibration import DEFAULT_COSTS, CostModel
from repro.perfmodel.flows import max_min_fair_rates
from repro.perfmodel.scaling import (
    MulticoreResult,
    columns_used,
    optimized_kernel_phases,
)

__all__ = ["WORMHOLE_COSTS", "WormholeModel", "FP32_TILE_ELEMS"]

#: The 16384-bit FPU holds 512 FP32 elements per tile.
FP32_TILE_ELEMS = 512

_CLOCK_RATIO = 1.2 / 1.0  # Grayskull 1.2 GHz -> Wormhole 1.0 GHz

#: Projected Wormhole (n150-class) cost model.
WORMHOLE_COSTS = DEFAULT_COSTS.with_overrides(
    clock_hz=1.0e9,
    grid_width=10,
    grid_height=8,
    n_worker_cores=72,
    n_dram_banks=6,
    dram_bytes=12 << 30,
    dram_bank_bw=DEFAULT_COSTS.dram_bank_bw * 2.0,      # GDDR6
    noc_aggregate_bw=DEFAULT_COSTS.dram_bank_bw * 2.0 * 6,
    noc_column_bw=DEFAULT_COSTS.noc_column_bw * 1.5,
    # cycle-counted per-op costs scale with the slower clock
    fpu_op=DEFAULT_COSTS.fpu_op * _CLOCK_RATIO,
    cb_op=DEFAULT_COSTS.cb_op * _CLOCK_RATIO,
    core_loop_batch=DEFAULT_COSTS.core_loop_batch * _CLOCK_RATIO,
    memcpy_rate=DEFAULT_COSTS.memcpy_rate / _CLOCK_RATIO,
    card_power_idle_w=95.0,
    card_power_base_w=110.0,
    card_power_span_w=20.0,
)

#: Usable inter-card halo-exchange bandwidth (2 × 100 GbE).
ETHERNET_BW = 25e9
ETHERNET_LATENCY = 2e-6


class WormholeModel:
    """Projected Jacobi performance on Wormhole, BF16 or FP32."""

    def __init__(self, costs: CostModel = WORMHOLE_COSTS):
        self.costs = costs

    def run(self, width: int, height: int, iterations: int,
            cores_y: int, cores_x: int, n_cards: int = 1,
            dtype: str = "fp32") -> MulticoreResult:
        """Model a (possibly multi-card) solve.

        Multi-card runs *include per-iteration halo exchange over
        Ethernet* — the capability the paper says makes Wormhole
        interesting — so the answer would be correct, at the cost the
        model charges here.
        """
        if dtype not in ("fp32", "bf16"):
            raise ValueError("dtype must be 'fp32' or 'bf16'")
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        c = self.costs
        if cores_y * cores_x > c.n_worker_cores:
            raise ValueError(
                f"{cores_y}x{cores_x} exceeds {c.n_worker_cores} workers")
        elem_bytes = 4 if dtype == "fp32" else 2
        chunk = FP32_TILE_ELEMS if dtype == "fp32" else 1024

        card_height = math.ceil(height / n_cards)
        wx = math.ceil(width / cores_x)
        wy = math.ceil(card_height / cores_y)
        phases = optimized_kernel_phases(wx, wy, c, elem_bytes=elem_bytes,
                                         chunk_elems=chunk)
        solo_iter = phases.solo_iteration_time(c)
        demand = phases.traffic_bytes / solo_iter

        n_cols = columns_used(cores_y, cores_x, c)
        per_col = math.ceil(cores_y * cores_x / n_cols)
        rates = max_min_fair_rates(
            {"column": c.noc_column_bw, "banks": c.noc_aggregate_bw / n_cols},
            {f"core{i}": ["column", "banks"] for i in range(per_col)},
            {f"core{i}": demand for i in range(per_col)})
        rate = min(rates.values())
        column_bound = rate < demand * (1 - 1e-9)
        iter_time = phases.traffic_bytes / rate if column_bound else solo_iter

        # Correct multi-card: one halo row each way per iteration, over
        # Ethernet, overlapping nothing (conservative).
        if n_cards > 1:
            halo_bytes = 2 * width * elem_bytes
            iter_time += halo_bytes / ETHERNET_BW + 2 * ETHERNET_LATENCY

        solve_time = iter_time * iterations
        points = width * height
        total = cores_y * cores_x
        power = c.card_power_w(total) * n_cards
        return MulticoreResult(
            total_cores=total * n_cards,
            cores_y=cores_y, cores_x=cores_x, n_cards=n_cards,
            iteration_time_s=iter_time,
            solve_time_s=solve_time,
            gpts=points * iterations / solve_time / 1e9,
            energy_j=solve_time * power,
            power_w=power,
            column_bound=column_bound,
        )
