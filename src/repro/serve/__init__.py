"""repro.serve — the multi-tenant solve service.

An event-driven, deterministic serving layer that multiplexes many
:class:`SolveRequest` streams — Jacobi solves plus the :mod:`repro.ops`
workload kinds (matmul, fft, stencil9), batched compatible-kinds-only —
over a pool of simulated e150 devices and CPU workers: bounded priority queues with typed admission control
(:class:`AdmissionError`), a batching scheduler that packs compatible
small grids onto one multi-core launch, a per-member health lifecycle
(``healthy → suspect → quarantined → reintegrating`` with canary-probe
reintegration), full fault-campaign injection in the :mod:`repro.faults`
vocabulary (:mod:`repro.serve.chaos`: NoC delay/drop, ECC scrubs, kernel
hangs, in-flight SDC, mid-launch core failures), watchdog/retry/degrade
handling with deterministic backoff, and latency-SLO + resilience
telemetry (p50/p95/p99, MTTR, fault-attributed latency) rendered by
:func:`render_serve_report`.

Everything runs in simulated time on :mod:`repro.sim.engine`; functional
answers come from a :mod:`repro.parallel` post-pass.  Reports are
byte-identical across repeat runs, ``-j`` settings, and record/replay.
CLI: ``repro serve loadgen`` / ``repro serve replay`` /
``repro serve chaos``.
"""

from repro.serve.chaos import (CHAOS_SCHEMA, ChaosConfig, ChaosPlan,
                               build_chaos, render_chaos_campaign,
                               run_chaos_campaign, summarize_chaos_run,
                               verify_chaos_report)
from repro.serve.health import (HEALTH_STATES, HealthConfig, MemberHealth)
from repro.serve.jobs import ServeSolveConfig, run_solve_postpass, solve_key
from repro.serve.loadgen import (TRACE_SCHEMA, LoadGenConfig, load_trace,
                                 replay_trace, run_loadgen,
                                 synthesize_requests, write_trace)
from repro.serve.pool import (CpuWorker, DeviceMember, PoolConfig,
                              ServeHang, WorkerPool, best_case_service_s,
                              cpu_service_time, device_service_time,
                              generate_hangs, launch_overhead_s)
from repro.serve.request import (BACKENDS, WORKLOADS, AdmissionError,
                                 RequestOutcome, SolveRequest,
                                 iterations_for_tolerance)
from repro.serve.scheduler import (BatchPlan, BoundedPriorityQueue,
                                   SchedulerConfig, plan_batch)
from repro.serve.service import SolveService
from repro.serve.telemetry import (SERVE_SCHEMA, ServeMetrics, ServeReport,
                                   render_serve_report)

__all__ = [
    "BACKENDS",
    "CHAOS_SCHEMA",
    "HEALTH_STATES",
    "SERVE_SCHEMA",
    "TRACE_SCHEMA",
    "WORKLOADS",
    "AdmissionError",
    "BatchPlan",
    "BoundedPriorityQueue",
    "ChaosConfig",
    "ChaosPlan",
    "CpuWorker",
    "DeviceMember",
    "HealthConfig",
    "LoadGenConfig",
    "MemberHealth",
    "PoolConfig",
    "RequestOutcome",
    "SchedulerConfig",
    "ServeHang",
    "ServeMetrics",
    "ServeReport",
    "ServeSolveConfig",
    "SolveRequest",
    "SolveService",
    "WorkerPool",
    "best_case_service_s",
    "build_chaos",
    "cpu_service_time",
    "device_service_time",
    "generate_hangs",
    "iterations_for_tolerance",
    "launch_overhead_s",
    "load_trace",
    "plan_batch",
    "render_chaos_campaign",
    "render_serve_report",
    "replay_trace",
    "run_chaos_campaign",
    "run_loadgen",
    "run_solve_postpass",
    "solve_key",
    "summarize_chaos_run",
    "synthesize_requests",
    "verify_chaos_report",
    "write_trace",
]
