"""Chaos serving: the full fault vocabulary injected into live service runs.

:func:`build_chaos` turns one :class:`ChaosConfig` into one seeded
:class:`~repro.faults.plan.FaultPlan` *per pool device* (derived seed
``seed * 1_000_003 + device_id``, counts scaled by ``intensity``), so a
serve run experiences exactly the faults a standalone campaign would:

* ``plan.noc``   — NoC delay/drop at simulated time *t*: the next launch
  starting at or after *t* is stretched (drops also count against the
  member's health breaker);
* ``plan.dram``  — ECC scrub at *t*: a correctable stall folded into the
  next launch (latency, not health — corrected errors are routine);
* ``plan.hangs`` — kernel hang at *t*: the next launch wedges and trips
  the per-launch watchdog;
* ``plan.solver`` — SDC into an in-flight request of launch *k* (the
  flip targets the detectable exponent bit, so the serve-path range
  check always catches it at readback; the victim is retried under its
  budget or shed loudly — never returned silently wrong);
* ``plan.core_failures`` — a decomposition core dies mid-launch *k*:
  the launch checkpoint/restarts on a remapped core set and the member
  serves every later launch at degraded capacity.

:func:`verify_chaos_report` asserts the serving invariants on any
:class:`~repro.serve.telemetry.ServeReport` (zero silent corruption,
zero silent sheds, health bookkeeping consistent), and
:func:`run_chaos_campaign` sweeps seeded intensities through
``repro.parallel`` — one ``serve_chaos`` job per intensity plus a
fault-free baseline — checking bounded p99 inflation on top.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields
from typing import Dict, List, Optional, Sequence, Tuple

from repro.faults.plan import FaultPlan
from repro.parallel.jobs import JobKind, JobSpec, register_kind

__all__ = [
    "CHAOS_SCHEMA",
    "ChaosCampaignConfig",
    "ChaosConfig",
    "ChaosPlan",
    "build_chaos",
    "render_chaos_campaign",
    "run_chaos_campaign",
    "summarize_chaos_run",
    "verify_chaos_report",
]

#: schema tag of the campaign JSON document.
CHAOS_SCHEMA = "repro-serve-chaos/1"

#: derived-stream multiplier shared with the loadgen RNG convention.
_STREAM = 1_000_003


@dataclass(frozen=True)
class ChaosConfig:
    """Shape of one chaos injection: per-device fault counts at unit
    intensity, scaled (rounded) by ``intensity``."""

    seed: int = 0
    intensity: float = 1.0       #: scales every per-device count
    horizon_s: float = 5e-2      #: timed faults land in [0, horizon_s)
    noc_per_device: int = 2
    ecc_per_device: int = 2
    hangs_per_device: int = 1
    sdc_per_device: int = 2
    core_failures_per_device: int = 1
    launch_horizon: int = 12     #: SDC / core-failure launch indices

    def __post_init__(self):
        if self.intensity < 0:
            raise ValueError("intensity must be non-negative")
        if self.horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        if self.launch_horizon < 1:
            raise ValueError("launch_horizon must be at least 1")
        for name in ("noc_per_device", "ecc_per_device", "hangs_per_device",
                     "sdc_per_device", "core_failures_per_device"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def scaled(self, count: int) -> int:
        return int(round(count * self.intensity))

    def to_dict(self) -> Dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "ChaosConfig":
        return cls(**doc)


@dataclass(frozen=True)
class ChaosPlan:
    """One frozen :class:`FaultPlan` per pool device."""

    config: ChaosConfig
    plans: Tuple[FaultPlan, ...]

    @property
    def n_faults(self) -> int:
        return sum(p.n_faults for p in self.plans)

    def describe(self) -> str:
        per = ", ".join(f"e150-{i}:{p.n_faults}"
                        for i, p in enumerate(self.plans))
        return (f"ChaosPlan(seed={self.config.seed}, "
                f"intensity={self.config.intensity:g}): "
                f"{self.n_faults} fault(s) [{per}]")


def build_chaos(cfg: ChaosConfig, n_devices: int,
                grid: Tuple[int, int] = (12, 9)) -> ChaosPlan:
    """Derive one fault plan per device from the chaos seed.

    Pure function of ``(cfg, n_devices, grid)`` — the trace header only
    needs to carry the :class:`ChaosConfig` for a replay to rebuild the
    identical plan.
    """
    plans = []
    for device_id in range(n_devices):
        plans.append(FaultPlan.generate(
            seed=cfg.seed * _STREAM + device_id,
            n_noc_faults=cfg.scaled(cfg.noc_per_device),
            n_dram_flips=cfg.scaled(cfg.ecc_per_device),
            n_hangs=cfg.scaled(cfg.hangs_per_device),
            n_solver_flips=cfg.scaled(cfg.sdc_per_device),
            n_core_failures=cfg.scaled(cfg.core_failures_per_device),
            horizon_s=cfg.horizon_s,
            grid=grid,
            iterations=cfg.launch_horizon,
            interior=(64, 64),
            cores=grid))
    return ChaosPlan(config=cfg, plans=tuple(plans))


# --------------------------------------------------------------------------
# invariants
# --------------------------------------------------------------------------

def verify_chaos_report(report) -> List[str]:
    """The zero-silent-anything contract, checked on a ServeReport.

    Returns a list of human-readable violations (empty == the run
    honoured every serving guarantee):

    * every injected SDC was detected (none returned silently wrong);
    * every submitted request has exactly one terminal outcome;
    * every shed outcome carries a typed reason;
    * aggregate counters agree with the outcome rows.
    """
    out: List[str] = []
    c = report.metrics.counters
    injected = c.get("sdc.injected", 0)
    detected = c.get("sdc.detected", 0)
    if injected != detected:
        out.append(f"silent corruption: {injected} SDC injected but only "
                   f"{detected} detected")
    rids = [o.request.rid for o in report.outcomes]
    if len(rids) != len(set(rids)):
        out.append("duplicate terminal outcomes: some rid appears twice")
    statuses = {"completed", "degraded", "shed"}
    for o in report.outcomes:
        if o.status not in statuses:
            out.append(f"req{o.request.rid}: unknown status {o.status!r}")
        if o.status == "shed" and not o.shed_reason:
            out.append(f"req{o.request.rid}: shed without a typed reason")
    n_shed = sum(1 for o in report.outcomes if o.status == "shed")
    if c.get("shed", 0) != n_shed:
        out.append(f"shed counter {c.get('shed', 0)} != "
                   f"{n_shed} shed outcome row(s)")
    typed = sum(v for k, v in c.items() if k.startswith("shed."))
    if typed != n_shed:
        out.append(f"typed shed counters sum to {typed} but "
                   f"{n_shed} request(s) were shed")
    # Every admitted request must terminate: admitted == non-admission
    # outcomes (admission sheds never enter the state table).
    admission_sheds = sum(
        1 for o in report.outcomes
        if o.status == "shed" and o.shed_reason in
        ("queue_full", "deadline_unmeetable", "invalid"))
    if c.get("submitted", 0) != len(report.outcomes) - admission_sheds:
        out.append(
            f"accounting: {c.get('submitted', 0)} admitted but "
            f"{len(report.outcomes) - admission_sheds} "
            f"non-admission outcome(s)")
    return out


# --------------------------------------------------------------------------
# the campaign: intensities swept through repro.parallel
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class ChaosCampaignConfig:
    """One picklable, cache-keyable chaos-campaign point."""

    loadgen: object              #: LoadGenConfig
    scheduler: object            #: SchedulerConfig or None
    pool: object                 #: PoolConfig or None
    health: object               #: HealthConfig or None
    chaos: ChaosConfig           #: intensity 0 == fault-free baseline


def _run_serve_chaos(config: ChaosCampaignConfig, seed):
    from repro.serve.loadgen import run_loadgen

    chaos = config.chaos if config.chaos.intensity > 0 else None
    report = run_loadgen(config.loadgen, scheduler=config.scheduler,
                         pool=config.pool, chaos=chaos,
                         health=config.health, solve=False,
                         jobs=1, cache=False)
    payload = summarize_chaos_run(report, config.chaos.intensity)
    obs = {"sim_now": report.duration_s,
           "violations": len(payload["violations"])}
    return payload, obs


def _serve_chaos_from_payload(config, seed, payload):
    return payload


register_kind(JobKind("serve_chaos", _run_serve_chaos,
                      _serve_chaos_from_payload))


def summarize_chaos_run(report, intensity: float) -> dict:
    """The invariant summary of one chaos run (JSON-safe, cacheable)."""
    text = report.to_json_text()
    lat = report.latencies()["total_s"]
    c = report.metrics.counters
    doc = report.to_json()
    return {
        "intensity": intensity,
        "report_sha": hashlib.sha256(text.encode()).hexdigest()[:16],
        "duration_s": report.duration_s,
        "submitted": len(report.outcomes),
        "completed": len(report.completed()),
        "shed": len(report.shed()),
        "p99_total_s": lat.get("p99", 0.0),
        "counters": dict(sorted(c.items())),
        "violations": verify_chaos_report(report),
        "resilience": doc.get("resilience", {}),
    }


def run_chaos_campaign(loadgen, scheduler=None, pool=None, health=None,
                       chaos: Optional[ChaosConfig] = None,
                       intensities: Sequence[float] = (0.5, 1.0, 2.0),
                       p99_inflation_limit: float = 50.0,
                       jobs=None, cache=None, progress=None) -> dict:
    """Sweep seeded fault intensities over one serve configuration.

    Runs a fault-free baseline (intensity 0) plus one ``serve_chaos``
    job per intensity through ``repro.parallel``, then checks, per run:
    the :func:`verify_chaos_report` invariants and p99(total latency)
    inflation vs the baseline bounded by ``p99_inflation_limit``.
    """
    from dataclasses import replace
    from repro.parallel import run_jobs

    base_chaos = chaos or ChaosConfig()
    levels = [0.0] + [float(i) for i in intensities]
    specs = [JobSpec("serve_chaos",
                     ChaosCampaignConfig(
                         loadgen=loadgen, scheduler=scheduler, pool=pool,
                         health=health,
                         chaos=replace(base_chaos, intensity=level)),
                     seed=base_chaos.seed)
             for level in levels]
    outcomes = run_jobs(specs, jobs=jobs, cache=cache, progress=progress)
    failures = [o.record.error for o in outcomes if not o.record.ok]
    if failures:
        raise RuntimeError(
            f"{len(failures)} chaos job(s) failed: {failures[0]}")
    runs = [o.result for o in outcomes]
    baseline = runs[0]
    base_p99 = baseline["p99_total_s"] or 0.0
    total_violations = 0
    for run in runs:
        p99 = run["p99_total_s"] or 0.0
        inflation = (p99 / base_p99) if base_p99 > 0 else 0.0
        run["p99_inflation"] = round(inflation, 6)
        run["p99_inflation_ok"] = inflation <= p99_inflation_limit
        if not run["p99_inflation_ok"]:
            run["violations"] = list(run["violations"]) + [
                f"p99 inflation {inflation:.3g}x exceeds the "
                f"{p99_inflation_limit:g}x bound"]
        total_violations += len(run["violations"])
    return {
        "schema": CHAOS_SCHEMA,
        "seed": base_chaos.seed,
        "chaos": base_chaos.to_dict(),
        "intensities": levels[1:],
        "p99_inflation_limit": p99_inflation_limit,
        "baseline": baseline,
        "runs": runs[1:],
        "violations_total": total_violations,
    }


def render_chaos_campaign(doc: dict) -> str:
    """Human-readable campaign table + per-run invariant verdicts."""
    from repro.analysis.report import Table

    table = Table(
        f"serve chaos campaign (seed {doc['seed']}, "
        f"p99 inflation bound {doc['p99_inflation_limit']:g}x)",
        ["intensity", "faults seen", "completed", "shed", "retries",
         "sdc det.", "p99 s", "inflation", "invariants"])
    all_runs = [doc["baseline"], *doc["runs"]]
    for run in all_runs:
        c = run["counters"]
        faults = (c.get("hangs", 0) + c.get("sdc.detected", 0)
                  + c.get("chaos.noc.delay", 0) + c.get("chaos.noc.drop", 0)
                  + c.get("chaos.ecc.scrub", 0)
                  + c.get("chaos.core_failure", 0))
        verdict = "OK" if not run["violations"] \
            else f"{len(run['violations'])} violation(s)"
        table.add_row(f"{run['intensity']:g}", faults, run["completed"],
                      run["shed"], c.get("retries", 0),
                      c.get("sdc.detected", 0),
                      f"{run['p99_total_s']:.6g}",
                      f"{run.get('p99_inflation', 0.0):.3g}x", verdict)
    parts = [table.render()]
    for run in all_runs:
        for violation in run["violations"]:
            parts.append(f"  VIOLATION @intensity {run['intensity']:g}: "
                         f"{violation}")
    return "\n".join(parts)
