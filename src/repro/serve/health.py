"""Per-pool-member health lifecycle: a deterministic circuit breaker.

Each :class:`~repro.serve.pool.DeviceMember` carries a
:class:`MemberHealth` that folds every fault the member experiences —
watchdog hangs, detected SDC, NoC drops, canary failures — into a
sliding window over *simulated* time and drives a four-state machine::

    healthy ──fault──> suspect ──more faults──> quarantined
       ^                  │                          │
       │             window drains              drained, then
       │             (holdoff)                  canary-probed
       │                                             │
       └── clean launches ─── reintegrating <────────┘

* ``healthy``       — full member of the pool.
* ``suspect``       — recent fault(s); rests for ``suspect_holdoff_s``
  before accepting the next launch, then serves at the back of the
  selection order until the window drains.
* ``quarantined``   — the breaker tripped (``quarantine_after`` faults
  inside ``window_s``).  The member accepts no tenant work; the service
  drains it and probes it with canary solves.
* ``reintegrating`` — canaries passed; the member takes tenant work
  again (after healthy peers) and returns to ``healthy`` after
  ``reintegrate_successes`` consecutive clean launches.  Any fault
  while reintegrating sends it straight back to quarantine.

Everything is a pure function of fault arrival times in simulated
seconds, so health transitions — like every other serve decision —
replay byte-identically from a trace.  MTTR (mean time to recovery:
simulated seconds from leaving ``healthy`` to returning) is sampled on
each full recovery and surfaced in the resilience telemetry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["HEALTH_STATES", "HealthConfig", "MemberHealth"]

HEALTH_STATES = ("healthy", "suspect", "quarantined", "reintegrating")


@dataclass(frozen=True)
class HealthConfig:
    """Circuit-breaker thresholds and probe policy (simulated seconds)."""

    window_s: float = 2e-2           #: sliding fault window width
    suspect_after: int = 1           #: faults in window: healthy -> suspect
    quarantine_after: int = 3        #: faults in window: -> quarantined
    suspect_holdoff_s: float = 5e-3  #: suspect rest before next launch
    probe_delay_s: float = 2e-3      #: drained-quarantine rest before canary
    probe_interval_s: float = 1e-3   #: drain poll / inter-canary spacing
    canary_passes: int = 2           #: consecutive clean canaries required
    canary_nx: int = 32              #: canary solve width
    canary_ny: int = 32              #: canary solve height
    canary_iterations: int = 8       #: canary solve iterations
    reintegrate_successes: int = 2   #: clean launches to return healthy

    def __post_init__(self):
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
        if self.suspect_after < 1:
            raise ValueError("suspect_after must be at least 1")
        if self.quarantine_after < self.suspect_after:
            raise ValueError("quarantine_after must be >= suspect_after")
        if min(self.suspect_holdoff_s, self.probe_delay_s,
               self.probe_interval_s) < 0:
            raise ValueError("holdoff/probe delays must be non-negative")
        if self.canary_passes < 1 or self.reintegrate_successes < 1:
            raise ValueError("canary_passes and reintegrate_successes "
                             "must be at least 1")
        if min(self.canary_nx, self.canary_ny,
               self.canary_iterations) < 1:
            raise ValueError("canary solve shape must be positive")

    def to_dict(self) -> Dict[str, object]:
        from dataclasses import fields
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "HealthConfig":
        return cls(**doc)


class MemberHealth:
    """The breaker state for one pool member.

    ``note_fault`` / ``note_success`` / ``to_reintegrating`` return the
    ``(from, to)`` transition they caused (or ``None``), so the service
    can record every transition on the :class:`FaultTrace` and count it.
    """

    def __init__(self, cfg: Optional[HealthConfig] = None,
                 name: str = "member"):
        self.cfg = cfg or HealthConfig()
        self.name = name
        self.state = "healthy"
        self.held_until = 0.0        #: suspect holdoff expiry
        self.epoch = 0               #: bumped on each quarantine entry
        self.clean_streak = 0        #: consecutive clean launches
        self.left_healthy_at: Optional[float] = None
        self.total_faults = 0
        self.transitions: Dict[str, int] = {}
        self.mttr_samples: List[float] = []
        self._window: List[float] = []   #: fault times inside window_s

    # -- queries -----------------------------------------------------------
    def accepts(self, now: float) -> bool:
        """Whether the member may take tenant work right now."""
        if self.state == "quarantined":
            return False
        if self.state == "suspect":
            return now >= self.held_until
        return True

    def rank(self) -> int:
        """Selection order: healthy first, then reintegrating, suspect."""
        return {"healthy": 0, "reintegrating": 1,
                "suspect": 2, "quarantined": 3}[self.state]

    def window_count(self, now: float) -> int:
        self._prune(now)
        return len(self._window)

    # -- events ------------------------------------------------------------
    def note_fault(self, now: float,
                   kind: str) -> Optional[Tuple[str, str]]:
        """Fold one fault event in; returns the transition, if any."""
        self.total_faults += 1
        self._prune(now)
        self._window.append(now)
        self.clean_streak = 0
        if self.state == "reintegrating":
            # Zero tolerance while on probation.
            return self._move("quarantined", now)
        if self.state == "quarantined":
            return None                  # canary failure: stay put
        n = len(self._window)
        if n >= self.cfg.quarantine_after:
            return self._move("quarantined", now)
        if n >= self.cfg.suspect_after:
            self.held_until = now + self.cfg.suspect_holdoff_s
            if self.state == "healthy":
                return self._move("suspect", now)
        return None

    def note_success(self, now: float) -> Optional[Tuple[str, str]]:
        """One clean launch finished; may complete reintegration."""
        self.clean_streak += 1
        if self.state == "suspect" and self.window_count(now) == 0:
            return self._move("healthy", now)
        if self.state == "reintegrating" \
                and self.clean_streak >= self.cfg.reintegrate_successes:
            return self._move("healthy", now)
        return None

    def to_reintegrating(self, now: float) -> Optional[Tuple[str, str]]:
        """Canary probes passed: quarantined -> reintegrating."""
        if self.state != "quarantined":
            return None
        self.clean_streak = 0
        self._window.clear()
        return self._move("reintegrating", now)

    # -- internals ---------------------------------------------------------
    def _prune(self, now: float) -> None:
        cut = now - self.cfg.window_s
        self._window = [t for t in self._window if t > cut]

    def _move(self, to: str, now: float) -> Tuple[str, str]:
        frm = self.state
        self.state = to
        key = f"{frm}->{to}"
        self.transitions[key] = self.transitions.get(key, 0) + 1
        if frm == "healthy":
            self.left_healthy_at = now
        if to == "quarantined":
            self.epoch += 1
        if to == "healthy" and self.left_healthy_at is not None:
            self.mttr_samples.append(now - self.left_healthy_at)
            self.left_healthy_at = None
        return (frm, to)

    def to_doc(self) -> Dict[str, object]:
        """Canonical per-member resilience summary for the report."""
        return {
            "state": self.state,
            "faults": self.total_faults,
            "transitions": dict(sorted(self.transitions.items())),
            "mttr_s": [round(s, 9) for s in self.mttr_samples],
        }
