"""The ``serve_solve`` job kind: functional answers for served requests.

The event-driven service decides *when* and *where* a request runs; the
answer itself never depends on that placement — the decomposed device
sweep is bit-identical to the global BF16 sweep for any core allocation
(:mod:`repro.core.multicore`).  So functional results are computed in a
post-pass, one :class:`~repro.parallel.jobs.JobSpec` per *unique*
problem/backend configuration, through :func:`repro.parallel.run_jobs`:
the pool's ``-j`` fan-out and the content-addressed sweep cache both
apply, and submission-order reassembly keeps the report byte-identical
at any worker count.

The payload per solve is the determinism fingerprint the report embeds:
a SHA-256 of the final grid bits, the FP32 residual, and the interior
extrema (which the discrete maximum principle bounds by the boundary
data — a cheap correctness invariant).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.parallel.jobs import JobKind, JobSpec, register_kind
from repro.serve.request import RequestOutcome

__all__ = [
    "ServeSolveConfig",
    "run_solve_postpass",
    "solve_key",
]


@dataclass(frozen=True)
class ServeSolveConfig:
    """One unique solve: workload kind, backend class, shape, budget."""

    backend: str                 #: "device" (BF16 sweep) or "cpu" (FP32)
    nx: int
    ny: int
    iterations: int
    workload: str = "jacobi"


def solve_key(backend: str, nx: int, ny: int, iterations: int,
              workload: str = "jacobi") -> str:
    """Stable key of a unique solve config (the report's ``solves`` map).

    Jacobi keys keep their historical ``backend:HxW:iN`` shape so old
    reports and tests still match; op workloads prefix their kind.
    """
    base = f"{backend}:{ny}x{nx}:i{iterations}"
    return base if workload == "jacobi" else f"{workload}:{base}"


def _run_serve_op(config: ServeSolveConfig) -> Tuple[dict, dict]:
    """Functional fingerprint of one op-workload config.

    The answer is the *host reference* of the op's determinism contract
    (bit-exact mirror of the device kernels), which is placement- and
    backend-independent — exactly like the Jacobi post-pass.  Repeats
    (``iterations`` for matmul/fft) do not change the answer, so one
    execution fingerprints them all.
    """
    import numpy as np

    from repro.ops import FftProblem, MatmulProblem, Stencil9Problem
    from repro.ops.fft import fft_reference_bits
    from repro.ops.matmul import matmul_reference_bits
    from repro.ops.stencil9 import stencil9_reference_bits

    if config.workload == "matmul":
        problem = MatmulProblem(m=config.ny, k=config.nx, n=config.nx)
        out = matmul_reference_bits(*problem.inputs())
    elif config.workload == "fft":
        problem = FftProblem(n=config.nx, batch=config.ny)
        out = fft_reference_bits(problem.inputs())
    else:
        problem = Stencil9Problem(nx=config.nx, ny=config.ny,
                                  iters=config.iterations)
        out = stencil9_reference_bits(problem.halo_grid_bits(),
                                      problem.iters)[1:-1, 1:-1]
    sha = hashlib.sha256(np.ascontiguousarray(out).tobytes()).hexdigest()
    payload = {"grid_sha": sha, "workload": config.workload}
    obs = {"points": config.nx * config.ny}
    return payload, obs


def _run_serve_solve(config: ServeSolveConfig, seed: int
                     ) -> Tuple[dict, dict]:
    import numpy as np

    from repro.core.grid import LaplaceProblem
    from repro.cpu.jacobi import (jacobi_solve_bf16, jacobi_solve_f32,
                                  residual_f32)
    from repro.dtypes.bf16 import bits_to_f32

    if getattr(config, "workload", "jacobi") != "jacobi":
        return _run_serve_op(config)
    problem = LaplaceProblem(nx=config.nx, ny=config.ny)
    if config.backend == "device":
        bits = jacobi_solve_bf16(problem.initial_grid_bf16(),
                                 config.iterations)
        sha = hashlib.sha256(
            np.ascontiguousarray(bits).tobytes()).hexdigest()
        u = bits_to_f32(bits)
    else:
        u = jacobi_solve_f32(problem.initial_grid_f32(), config.iterations)
        sha = hashlib.sha256(np.ascontiguousarray(u).tobytes()).hexdigest()
    interior = np.asarray(u, dtype=np.float32)[1:-1, 1:-1]
    payload = {
        "grid_sha": sha,
        "residual": float(residual_f32(u)),
        "interior_min": float(interior.min()),
        "interior_max": float(interior.max()),
    }
    obs = {"points": config.nx * config.ny}
    return payload, obs


def _serve_solve_from_payload(config, seed, payload):
    return payload


register_kind(JobKind("serve_solve", _run_serve_solve,
                      _serve_solve_from_payload))


def run_solve_postpass(outcomes: Sequence[RequestOutcome],
                       jobs: Optional[int] = None,
                       cache=None, progress=None
                       ) -> Tuple[Dict[str, dict], List[RequestOutcome]]:
    """Compute functional answers for every completed outcome.

    Returns ``(solves, annotated)``: the key → payload map for the
    report, and the outcomes with ``solve_key`` filled in.  Unique
    configurations are solved once (specs in sorted-key order, so the
    spec list — and any cache traffic — is independent of completion
    order).
    """
    from repro.parallel.engine import sweep_results

    wanted: Dict[str, ServeSolveConfig] = {}
    for o in outcomes:
        if o.status == "shed":
            continue
        req = o.request
        key = solve_key(o.backend_used, req.nx, req.ny,
                        req.effective_iterations, req.workload)
        wanted.setdefault(key, ServeSolveConfig(
            backend=o.backend_used, nx=req.nx, ny=req.ny,
            iterations=req.effective_iterations, workload=req.workload))
    keys = sorted(wanted)
    specs = [JobSpec(kind="serve_solve", config=wanted[k]) for k in keys]
    results = sweep_results(specs, jobs=jobs, cache=cache,
                            progress=progress)
    solves = dict(zip(keys, results))
    annotated: List[RequestOutcome] = []
    for o in outcomes:
        if o.status == "shed":
            annotated.append(o)
            continue
        req = o.request
        annotated.append(replace(o, solve_key=solve_key(
            o.backend_used, req.nx, req.ny, req.effective_iterations,
            req.workload)))
    return solves, annotated
