"""Seeded load generation and request-trace record/replay.

Two tenant models, both driven entirely by explicit ``random.Random``
seeds (never wall-clock — the seeded-RNG audit test enforces this):

* **open loop** — requests arrive on a Poisson process at a fixed rate,
  regardless of how the service is coping; this is the model that
  exposes queue growth and shedding.
* **closed loop** — ``n_clients`` tenants each submit, wait for their
  result, think (exponential), and submit again; offered load tracks
  service capacity, which exposes latency rather than shedding.

Every run can be *recorded*: the trace is a JSONL file — a header with
the full service/loadgen configuration, then one ``(submit time,
request)`` line per request, in submission order.  *Replaying* a trace
resubmits exactly those requests at exactly those simulated times
against a service rebuilt from the header, so a replayed report is
byte-identical to the recorded run's — the strongest statement of the
determinism contract, and what the CI serve-smoke job diffs.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, fields, replace
from typing import List, Optional, Sequence, Tuple

from repro.perfmodel.calibration import DEFAULT_COSTS, CostModel
from repro.serve.chaos import ChaosConfig, build_chaos
from repro.serve.health import HealthConfig
from repro.serve.pool import (PoolConfig, ServeHang, best_case_service_s,
                              generate_hangs)
from repro.serve.request import WORKLOADS, AdmissionError, SolveRequest
from repro.serve.scheduler import SchedulerConfig
from repro.serve.service import SolveService
from repro.serve.telemetry import ServeReport
from repro.sim import Simulator

__all__ = [
    "TRACE_SCHEMA",
    "LoadGenConfig",
    "load_trace",
    "replay_trace",
    "run_loadgen",
    "synthesize_requests",
    "write_trace",
]

#: schema tag of the trace header; bump on incompatible layout changes.
TRACE_SCHEMA = "repro-serve-trace/1"


@dataclass(frozen=True)
class LoadGenConfig:
    """One synthetic tenant population."""

    mode: str = "open"               #: "open" or "closed"
    seed: int = 0
    n_requests: int = 32
    arrival_rate_rps: float = 8000.0  #: open loop: Poisson arrival rate
    n_clients: int = 4               #: closed loop: concurrent tenants
    think_s: float = 2e-3            #: closed loop: mean think time
    sizes: Tuple[int, ...] = (32, 48, 64, 96, 128)
    iterations: int = 32
    cpu_fraction: float = 0.25       #: share of requests targeting CPU
    deadline_fraction: float = 0.25  #: share of requests carrying an SLO
    deadline_slack: float = 16.0     #: deadline = slack x best-case time
    #: workload kinds drawn uniformly per request.  The default keeps
    #: the population — and therefore every recorded trace — byte-
    #: identical to the pre-ops service; the mix draws from its own RNG
    #: stream, so adding kinds never perturbs sizes or arrival times.
    workloads: Tuple[str, ...] = ("jacobi",)

    def __post_init__(self):
        if self.mode not in ("open", "closed"):
            raise ValueError(f"mode must be open|closed, got {self.mode!r}")
        if self.n_requests < 1:
            raise ValueError("n_requests must be positive")
        if self.arrival_rate_rps <= 0 or self.think_s <= 0:
            raise ValueError("rates and think times must be positive")
        if self.n_clients < 1:
            raise ValueError("n_clients must be positive")
        if not self.sizes or any(s < 3 for s in self.sizes):
            raise ValueError("sizes must be grid extents of at least 3")
        if not 0.0 <= self.cpu_fraction <= 1.0 \
                or not 0.0 <= self.deadline_fraction <= 1.0:
            raise ValueError("fractions must be within [0, 1]")
        if self.deadline_slack <= 1.0:
            raise ValueError("deadline_slack must exceed 1")
        if not self.workloads or any(w not in WORKLOADS
                                     for w in self.workloads):
            raise ValueError(
                f"workloads must be a non-empty subset of {WORKLOADS}, "
                f"got {self.workloads!r}")

    def to_dict(self) -> dict:
        doc = {f.name: getattr(self, f.name) for f in fields(self)}
        doc["sizes"] = list(self.sizes)
        doc["workloads"] = list(self.workloads)
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "LoadGenConfig":
        kw = {f.name: doc[f.name] for f in fields(cls) if f.name in doc}
        if "sizes" in kw:
            kw["sizes"] = tuple(kw["sizes"])
        if "workloads" in kw:
            kw["workloads"] = tuple(kw["workloads"])
        return cls(**kw)


def _derived_rng(seed: int, stream: int) -> random.Random:
    """An independent deterministic stream (never tuple-hash seeded)."""
    return random.Random(seed * 1_000_003 + stream)


def _snap_size(workload: str, nx: int) -> int:
    """Snap a drawn grid extent to the workload's validity constraint.

    A pure function of (workload, nx) so mixes replay: fft pencils need
    a power-of-two length (round down), stencil9 a 32-multiple width
    (round up).  jacobi and matmul accept any extent.
    """
    if workload == "fft":
        return 1 << (max(4, nx).bit_length() - 1)
    if workload == "stencil9":
        return -(-nx // 32) * 32
    return nx


def synthesize_requests(cfg: LoadGenConfig, pool: PoolConfig,
                        costs: CostModel = DEFAULT_COSTS,
                        n_priorities: int = 3) -> List[SolveRequest]:
    """The deterministic request population for one seed.

    The workload mix draws from stream 3 — and only when more than one
    kind is configured — so single-kind populations (in particular the
    default jacobi-only one) are bit-identical to what this function
    produced before workload mixing existed.
    """
    rng = _derived_rng(cfg.seed, 1)
    wl_rng = _derived_rng(cfg.seed, 3)
    reqs: List[SolveRequest] = []
    for rid in range(cfg.n_requests):
        nx = rng.choice(cfg.sizes)
        ny = rng.choice(cfg.sizes)
        backend = "cpu" if rng.random() < cfg.cpu_fraction else "device"
        priority = rng.randrange(n_priorities)
        workload = cfg.workloads[0] if len(cfg.workloads) == 1 \
            else wl_rng.choice(cfg.workloads)
        req = SolveRequest(rid=rid, nx=_snap_size(workload, nx), ny=ny,
                           iterations=cfg.iterations, backend=backend,
                           priority=priority, workload=workload)
        if rng.random() < cfg.deadline_fraction:
            base = best_case_service_s(req, pool, costs)
            req = replace(req, deadline_s=cfg.deadline_slack * base)
        reqs.append(req)
    return reqs


# --------------------------------------------------------------------------
# sim processes
# --------------------------------------------------------------------------

def _timed_arrivals(sim: Simulator, service: SolveService,
                    arrivals: Sequence[Tuple[float, SolveRequest]]):
    """Submit each request at its absolute simulated time (open/replay)."""
    for t, req in arrivals:
        if t > sim.now:
            yield sim.timeout_at(t)
        try:
            service.submit(req)
        except AdmissionError:
            pass  # recorded as a shed outcome by the service


def _client(sim: Simulator, service: SolveService,
            my_requests: Sequence[SolveRequest], think_rng: random.Random,
            think_s: float):
    """One closed-loop tenant: submit, await, think, repeat."""
    for i, req in enumerate(my_requests):
        try:
            done = service.submit(req)
        except AdmissionError:
            continue
        try:
            yield done
        except AdmissionError:
            pass  # shed mid-queue (deadline expiry); already recorded
        if i + 1 < len(my_requests):
            # No trailing think: the run ends at the last completion, so
            # a replayed trace reproduces the same simulated duration.
            yield sim.timeout(think_rng.expovariate(1.0 / think_s))


# --------------------------------------------------------------------------
# run drivers
# --------------------------------------------------------------------------

def _service_config_doc(loadgen: Optional[LoadGenConfig],
                        scheduler: SchedulerConfig, pool: PoolConfig,
                        hangs: Sequence[ServeHang],
                        chaos: Optional[ChaosConfig] = None,
                        health: Optional[HealthConfig] = None) -> dict:
    doc = {
        "scheduler": {f.name: getattr(scheduler, f.name)
                      for f in fields(scheduler)},
        "pool": {f.name: getattr(pool, f.name) for f in fields(pool)},
        "hangs": [[h.device_id, h.launch_index] for h in hangs],
        "chaos": chaos.to_dict() if chaos is not None else None,
        "health": health.to_dict() if health is not None else None,
    }
    doc["pool"]["grid"] = list(pool.grid)
    if loadgen is not None:
        doc["loadgen"] = loadgen.to_dict()
    return doc


def _finish(sim: Simulator, service: SolveService, config: dict,
            solve: bool, jobs, cache, progress) -> ServeReport:
    outcomes = service.outcomes
    solves = {}
    if solve:
        from repro.serve.jobs import run_solve_postpass
        solves, outcomes = run_solve_postpass(
            outcomes, jobs=jobs, cache=cache, progress=progress)
    return ServeReport(config=config, duration_s=sim.now,
                       outcomes=outcomes, metrics=service.metrics,
                       utilization=service.utilization(), solves=solves,
                       resilience=service.resilience_doc())


def run_loadgen(cfg: LoadGenConfig,
                scheduler: Optional[SchedulerConfig] = None,
                pool: Optional[PoolConfig] = None,
                n_hangs: int = 0,
                costs: CostModel = DEFAULT_COSTS,
                solve: bool = True,
                jobs: Optional[int] = None, cache=None,
                progress=None,
                chaos: Optional[ChaosConfig] = None,
                health: Optional[HealthConfig] = None) -> ServeReport:
    """Run one seeded load test end to end; returns its report.

    ``n_hangs`` arms a deterministic hang plan drawn from the same seed
    (:func:`~repro.serve.pool.generate_hangs`), exercising the watchdog /
    retry / degrade path under load.  ``chaos`` additionally arms one
    full per-device :class:`~repro.faults.plan.FaultPlan`
    (:func:`~repro.serve.chaos.build_chaos`) — NoC, ECC, hangs, SDC,
    core failures — and ``health`` tunes the member breaker; both are
    recorded in the trace header so replays rebuild them exactly.
    """
    scheduler = scheduler or SchedulerConfig()
    pool = pool or PoolConfig()
    hangs = generate_hangs(cfg.seed, n_hangs, pool.n_devices) \
        if n_hangs else ()
    plan = build_chaos(chaos, pool.n_devices, pool.grid) \
        if chaos is not None else None
    sim = Simulator()
    service = SolveService(sim, scheduler, pool, hangs, costs,
                           chaos=plan, health=health)
    reqs = synthesize_requests(cfg, pool, costs, scheduler.n_priorities)
    if cfg.mode == "open":
        gap_rng = _derived_rng(cfg.seed, 2)
        arrivals, t = [], 0.0
        for req in reqs:
            t += gap_rng.expovariate(cfg.arrival_rate_rps)
            arrivals.append((t, req))
        sim.process(_timed_arrivals(sim, service, arrivals),
                    name="serve.loadgen")
    else:
        for cid in range(cfg.n_clients):
            mine = reqs[cid::cfg.n_clients]
            if not mine:
                continue
            sim.process(_client(sim, service, mine,
                                _derived_rng(cfg.seed, 100 + cid),
                                cfg.think_s),
                        name=f"serve.client{cid}")
    sim.run()
    config = _service_config_doc(cfg, scheduler, pool, hangs,
                                 chaos=chaos, health=health)
    return _finish(sim, service, config, solve, jobs, cache, progress)


# --------------------------------------------------------------------------
# trace record / replay
# --------------------------------------------------------------------------

def write_trace(report: ServeReport, path: str) -> None:
    """Record a run as a replayable JSONL trace.

    Every outcome — completed, degraded or shed — contributes one line
    with its original request and absolute submission time, sorted by
    (time, rid) so the file is canonical whatever the completion order.
    """
    rows = sorted(((o.submit_s, o.request) for o in report.outcomes),
                  key=lambda tr: (tr[0], tr[1].rid))
    with open(path, "w") as fh:
        header = {"schema": TRACE_SCHEMA, "config": report.config}
        fh.write(json.dumps(header, sort_keys=True) + "\n")
        for t, req in rows:
            fh.write(json.dumps({"t": t, "req": req.to_dict()},
                                sort_keys=True) + "\n")


def load_trace(path: str) -> Tuple[dict, List[Tuple[float, SolveRequest]]]:
    """Parse a trace file into (config document, timed request list)."""
    with open(path) as fh:
        lines = [line for line in fh.read().splitlines() if line.strip()]
    if not lines:
        raise ValueError(f"trace {path} is empty")
    header = json.loads(lines[0])
    if header.get("schema") != TRACE_SCHEMA:
        raise ValueError(
            f"trace {path} has schema {header.get('schema')!r}, "
            f"expected {TRACE_SCHEMA!r}")
    arrivals = []
    for line in lines[1:]:
        doc = json.loads(line)
        arrivals.append((float(doc["t"]),
                         SolveRequest.from_dict(doc["req"])))
    arrivals.sort(key=lambda tr: (tr[0], tr[1].rid))
    return header["config"], arrivals


def replay_trace(path: str, solve: bool = True,
                 costs: CostModel = DEFAULT_COSTS,
                 jobs: Optional[int] = None, cache=None,
                 progress=None) -> ServeReport:
    """Re-run a recorded trace; the report is byte-identical to the
    original run's (same schedule, same service configuration)."""
    config, arrivals = load_trace(path)
    scheduler = SchedulerConfig(**config["scheduler"])
    pool_doc = dict(config["pool"])
    pool_doc["grid"] = tuple(pool_doc["grid"])
    pool = PoolConfig(**pool_doc)
    hangs = tuple(ServeHang(device_id=d, launch_index=i)
                  for d, i in config.get("hangs", []))
    chaos_doc = config.get("chaos")
    chaos = ChaosConfig.from_dict(chaos_doc) if chaos_doc else None
    health_doc = config.get("health")
    health = HealthConfig.from_dict(health_doc) if health_doc else None
    plan = build_chaos(chaos, pool.n_devices, pool.grid) \
        if chaos is not None else None
    sim = Simulator()
    service = SolveService(sim, scheduler, pool, hangs, costs,
                           chaos=plan, health=health)
    sim.process(_timed_arrivals(sim, service, arrivals),
                name="serve.replay")
    sim.run()
    return _finish(sim, service, config, solve, jobs, cache, progress)
