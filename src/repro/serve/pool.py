"""The executor pool: simulated e150 members and CPU workers.

Each :class:`DeviceMember` models one pooled Grayskull e150 — a 12×9
worker-core grid reachable over PCIe — and each :class:`CpuWorker` one
host CPU slot.  Service times are the calibrated analytic models the
Table-VIII drivers use (:class:`~repro.perfmodel.scaling.JacobiScalingModel`
for the device, :class:`~repro.perfmodel.cpumodel.XeonModel` for the
CPU), plus a PCIe launch overhead per batch, so a pool member's busy
interval is exactly the simulated time the one-shot runners would
report for the same work.

Faults reuse the :mod:`repro.faults` resilience vocabulary two ways: a
:class:`ServeHang` wedges the *n*-th launch on one member (the legacy
index-keyed plan), and a per-device
:class:`~repro.faults.plan.FaultPlan` (built by
:func:`repro.serve.chaos.build_chaos`) arms NoC delays/drops, ECC
scrubs, timed kernel hangs, in-flight SDC and mid-launch core failures.
The per-launch watchdog converts hangs into a
:class:`~repro.ttmetal.host.DeviceHangError` carrying a per-core stall
report, and the service retries the victims on another member (or
degrades them to the CPU backend) — recorded on a
:class:`~repro.analysis.resilience.FaultTrace`, never dropped.  Each
device also carries a :class:`~repro.serve.health.MemberHealth` breaker
that decides, from the member's recent fault history, whether it may
accept work at all.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.halo import HaloExchangeModel
from repro.cluster.topology import card_splits, exchange_strips, plan_cards
from repro.faults.plan import CoreFailure, FaultPlan, SolverBitFlip
from repro.perfmodel.calibration import DEFAULT_COSTS, CostModel
from repro.perfmodel.cpumodel import XeonModel
from repro.perfmodel.scaling import JacobiScalingModel
from repro.serve.health import HealthConfig, MemberHealth
from repro.serve.request import SolveRequest
from repro.ttmetal.host import CoreStall, DeviceHangError

__all__ = [
    "CpuWorker",
    "DeviceMember",
    "PoolConfig",
    "ServeHang",
    "WorkerPool",
    "best_case_service_s",
    "cluster_cards_needed",
    "cluster_service_time",
    "cpu_service_time",
    "device_service_time",
    "generate_hangs",
    "launch_overhead_s",
]

_BF16 = 2  # bytes per element


@dataclass(frozen=True)
class ServeHang:
    """The ``launch_index``-th launch on device ``device_id`` hangs."""

    device_id: int
    launch_index: int            #: 0-based per-device launch counter


def generate_hangs(seed: int, n_hangs: int, n_devices: int,
                   horizon_launches: int = 16) -> Tuple[ServeHang, ...]:
    """Draw a deterministic hang plan from one integer seed.

    Uses ``random.Random`` only — launch indices, never wall-clock — so
    a load test with an armed hang plan replays bit-identically.
    """
    if n_devices < 1:
        raise ValueError("need at least one device")
    rng = random.Random(seed)
    seen = set()
    hangs: List[ServeHang] = []
    while len(hangs) < n_hangs and len(seen) < n_devices * horizon_launches:
        h = ServeHang(device_id=rng.randrange(n_devices),
                      launch_index=rng.randrange(horizon_launches))
        if (h.device_id, h.launch_index) in seen:
            continue
        seen.add((h.device_id, h.launch_index))
        hangs.append(h)
    return tuple(sorted(hangs, key=lambda h: (h.device_id, h.launch_index)))


@dataclass(frozen=True)
class PoolConfig:
    """Shape and policy of the executor pool."""

    n_devices: int = 2
    n_cpu_workers: int = 1
    cpu_threads: int = 24            #: threads per CPU worker slot
    grid: Tuple[int, int] = (12, 9)  #: worker-core grid per device
    watchdog_factor: float = 4.0     #: timeout = factor x expected service
    max_retries: int = 1             #: per-request retry budget
    hang_cooldown_s: float = 5e-3    #: suspect holdoff (health breaker)
    retry_backoff_s: float = 5e-4    #: base of the 2^k retry backoff
    scrub_stall_s: float = 5e-5      #: launch stall per ECC scrub
    noc_drop_penalty_s: float = 2e-4 #: retransmit cost of a NoC drop
    restart_overhead_s: float = 5e-4 #: checkpoint-restart fixed cost
    checkpoint_every: int = 8        #: iterations between serve checkpoints
    #: interior points one card serves comfortably; a larger grid spans
    #: ``ceil(points / capacity)`` pooled cards as one cluster launch
    #: (:mod:`repro.cluster`).  ``None`` disables spanning entirely —
    #: every request fits one member, exactly the pre-cluster behaviour.
    card_point_capacity: Optional[int] = None

    def __post_init__(self):
        if self.n_devices < 0 or self.n_cpu_workers < 0:
            raise ValueError("pool sizes must be non-negative")
        if self.n_devices == 0 and self.n_cpu_workers == 0:
            raise ValueError("the pool needs at least one member")
        if self.watchdog_factor <= 1.0:
            raise ValueError("watchdog_factor must exceed 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if min(self.retry_backoff_s, self.scrub_stall_s,
               self.noc_drop_penalty_s, self.restart_overhead_s) < 0:
            raise ValueError("fault-handling costs must be non-negative")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be at least 1")
        if self.card_point_capacity is not None \
                and self.card_point_capacity < 1:
            raise ValueError("card_point_capacity must be positive")


# --------------------------------------------------------------------------
# deterministic service-time models
# --------------------------------------------------------------------------

#: float32 lanes per Jacobi point update (3 adds + 1 multiply); converts
#: op-workload FLOP counts into the point-throughput vocabulary of
#: :class:`~repro.perfmodel.cpumodel.XeonModel`.
_JACOBI_FLOPS_PER_POINT = 4.0


def _op_problem_and_repeats(req: SolveRequest):
    """The :mod:`repro.ops` problem behind a non-Jacobi request.

    Returns ``(op_name, problem, repeats)``: matmul/fft repeat one op
    execution ``iterations`` times; stencil9 folds the iteration budget
    into the problem's sweep count.  Pure function of the request, so
    admission decisions and traces replay.
    """
    from repro.ops import FftProblem, MatmulProblem, Stencil9Problem
    if req.workload == "matmul":
        return "matmul", MatmulProblem(m=req.ny, k=req.nx, n=req.nx), \
            req.iterations
    if req.workload == "fft":
        return "fft", FftProblem(n=req.nx, batch=req.ny), req.iterations
    if req.workload == "stencil9":
        return "stencil9", Stencil9Problem(nx=req.nx, ny=req.ny,
                                           iters=req.iterations), 1
    raise ValueError(f"not an op workload: {req.workload!r}")


def device_service_time(req: SolveRequest, cores_y: int, cores_x: int,
                        costs: CostModel = DEFAULT_COSTS) -> float:
    """Simulated solve time of ``req`` on a ``cores_y x cores_x`` slice.

    Jacobi requests use the same analytic model the Table-VIII rows do,
    so a request served on the full grid costs exactly what ``repro
    solve --backend e150-model`` would report.  Op workloads use the
    calibrated roofline of :func:`repro.perfmodel.ops.op_service_time`,
    built from the very same :class:`CostModel` constants.
    """
    if req.workload != "jacobi":
        from repro.perfmodel.ops import op_service_time
        op, problem, repeats = _op_problem_and_repeats(req)
        return repeats * op_service_time(op, problem, (cores_y, cores_x),
                                         costs)
    model = JacobiScalingModel(costs)
    return model.run(req.nx, req.ny, req.effective_iterations,
                     cores_y, cores_x).solve_time_s


def cpu_service_time(req: SolveRequest, threads: int) -> float:
    """Simulated solve time of ``req`` on a CPU worker slot.

    Op workloads convert their FLOP count into equivalent Jacobi point
    updates (:data:`_JACOBI_FLOPS_PER_POINT` lanes each) so the one
    calibrated Xeon throughput curve prices every kind.
    """
    xeon = XeonModel()
    if req.workload != "jacobi":
        _op, problem, repeats = _op_problem_and_repeats(req)
        points = max(1, round(problem.flops() * repeats
                              / _JACOBI_FLOPS_PER_POINT))
        return xeon.solve_time_s(points, 1, threads)
    return xeon.solve_time_s(req.points, req.effective_iterations,
                             threads)


def _pcie_round_trip_bytes(req: SolveRequest) -> int:
    """Total host<->device bytes one request moves, both directions."""
    if req.workload == "matmul":
        # A (ny,nx) + B (nx,nx) BF16 in, C (ny,nx) BF16 out
        return (2 * req.ny * req.nx + req.nx * req.nx) * _BF16
    if req.workload == "fft":
        # float32 planes: xr/xi + twiddles in, xr/xi out
        return 5 * req.nx * req.ny * 4
    # jacobi and stencil9 round-trip one padded BF16 halo grid
    return 2 * (req.nx + 2) * (req.ny + 2) * _BF16


def launch_overhead_s(requests: Sequence[SolveRequest],
                      costs: CostModel = DEFAULT_COSTS) -> float:
    """PCIe cost of moving a batch's operands to the device and back."""
    total = sum(_pcie_round_trip_bytes(r) for r in requests)
    return 2 * costs.pcie_latency + total / costs.pcie_bw


def best_case_service_s(req: SolveRequest, cfg: PoolConfig,
                        costs: CostModel = DEFAULT_COSTS) -> float:
    """Lower bound on ``req``'s service time: a whole pool member to itself.

    This is the figure admission control compares deadlines against, and
    the load generator scales synthetic deadlines from — a pure function
    of the request and the pool shape, so both replay deterministically.
    """
    if req.backend == "cpu":
        return cpu_service_time(req, cfg.cpu_threads)
    need = cluster_cards_needed(req, cfg.card_point_capacity)
    if need > 1:
        return cluster_service_time(req, need, cfg, costs)
    gy, gx = cfg.grid
    cy = max(1, min(gy, req.ny))
    cx = max(1, min(gx, req.nx))
    return launch_overhead_s([req], costs) \
        + device_service_time(req, cy, cx, costs)


def cluster_cards_needed(req: SolveRequest,
                         capacity: Optional[int]) -> int:
    """Cards an admitted device request spans: ``ceil(points/capacity)``.

    1 when spanning is disabled (``capacity is None``), the request
    targets the CPU backend, the grid fits one card, or the request is
    an op workload (the halo-exchange cluster timeline is Jacobi-only;
    op requests always run on a single member).
    """
    if capacity is None or req.backend != "device" \
            or req.workload != "jacobi":
        return 1
    return max(1, math.ceil(req.points / capacity))


def cluster_service_time(req: SolveRequest, n_cards: int,
                         cfg: PoolConfig,
                         costs: CostModel = DEFAULT_COSTS) -> float:
    """Service time of one cluster-span launch over ``n_cards`` members.

    The analytic mirror of the model-timed :class:`repro.cluster.solver.
    ClusterSolver` timeline: initial scatter, ``iterations`` barriers at
    the slowest card's per-iteration step (each card runs its block on
    its full worker grid), one host-staged halo round per iteration, and
    the final gather.  A pure function of the request and the pool
    shape, so admission decisions replay.
    """
    if n_cards < 1:
        raise ValueError("n_cards must be positive")
    cards_y, cards_x = card_splits(n_cards)
    cards = plan_cards(req.nx, req.ny, cards_y, cards_x)
    halo = HaloExchangeModel(costs)
    gy, gx = cfg.grid
    model = JacobiScalingModel(costs)
    step_s = 0.0
    for row in cards:
        for sub in row:
            cy = max(1, min(gy, sub.ny))
            cx = max(1, min(gx, sub.nx))
            t = model.run(sub.nx, sub.ny, req.effective_iterations,
                          cy, cx).solve_time_s
            step_s = max(step_s, t)
    block_elems = [(sub.ny + 2) * (sub.nx + 2)
                   for row in cards for sub in row]
    stage_s = 2 * halo.block_transfer_s(block_elems)   # scatter + gather
    strips = exchange_strips(cards)
    halo_s = req.effective_iterations * halo.round_cost(strips).total_s
    return stage_s + step_s + halo_s


# --------------------------------------------------------------------------
# pool members
# --------------------------------------------------------------------------

class _Member:
    """Busy-state and utilization bookkeeping shared by both member kinds."""

    def __init__(self, name: str):
        self.name = name
        self.busy = False
        self.busy_s = 0.0            #: accumulated service time
        self.launches = 0

    def available(self, now: float) -> bool:
        return not self.busy

    def utilization(self, horizon_s: float) -> float:
        if horizon_s <= 0:
            return 0.0
        return min(1.0, self.busy_s / horizon_s)


class DeviceMember(_Member):
    """One pooled e150: core grid, fault plans, and a health breaker.

    Availability is delegated to :class:`MemberHealth`: a quarantined
    member never accepts tenant work, a suspect one rests through its
    holdoff first.  The chaos :class:`FaultPlan` is consumed as the
    service launches work — timed faults (NoC, ECC, timed hangs) fire
    on the next launch starting at or after their ``t``, index-keyed
    faults (SDC, core failures) on the matching per-device launch.
    """

    def __init__(self, device_id: int, grid: Tuple[int, int],
                 hangs: Sequence[ServeHang] = (),
                 chaos: Optional[FaultPlan] = None,
                 health: Optional[HealthConfig] = None):
        super().__init__(f"e150-{device_id}")
        self.device_id = device_id
        self.grid = grid
        self.health = MemberHealth(health, self.name)
        self.failed_cores = 0
        #: held for a pending cluster-span launch: not busy, but not
        #: offered to other work until the span dispatches (or sheds).
        self.reserved = False
        self._hang_at = {h.launch_index for h in hangs
                         if h.device_id == device_id}
        #: timed faults, consumed in t order at launch starts
        self._timed: List[Tuple[float, str, object]] = []
        self._timed_hangs: List[float] = []
        #: launch-index-keyed faults
        self._sdc_at: Dict[int, List[SolverBitFlip]] = {}
        self._fail_at: Dict[int, List[CoreFailure]] = {}
        if chaos is not None:
            for noc in chaos.noc:
                self._timed.append((noc.t, "noc", noc))
            for flip in chaos.dram:
                self._timed.append((flip.t, "ecc", flip))
            self._timed.sort(key=lambda e: e[0])
            self._timed_hangs = sorted(h.t for h in chaos.hangs)
            for flip in chaos.solver:
                self._sdc_at.setdefault(flip.iteration, []).append(flip)
            for death in chaos.core_failures:
                self._fail_at.setdefault(death.iteration, []).append(death)

    @property
    def n_cores(self) -> int:
        return self.grid[0] * self.grid[1]

    def available(self, now: float) -> bool:
        return not self.busy and not self.reserved \
            and self.health.accepts(now)

    def capacity_factor(self) -> float:
        """Service-time multiplier after core failures (remapped set)."""
        alive = max(1, self.n_cores - self.failed_cores)
        return self.n_cores / alive

    def fail_core(self) -> None:
        if self.failed_cores < self.n_cores - 1:
            self.failed_cores += 1

    # -- fault-plan consumption -------------------------------------------
    def next_launch_hangs(self) -> bool:
        """Whether the launch about to start is wedged by the hang plan."""
        return self.launches in self._hang_at

    def take_hang(self, now: float, launch_index: int) -> bool:
        """Consume a hang wedging the launch starting now (if armed)."""
        if launch_index in self._hang_at:
            self._hang_at.discard(launch_index)
            return True
        if self._timed_hangs and self._timed_hangs[0] <= now:
            self._timed_hangs.pop(0)
            return True
        return False

    def take_timed(self, now: float) -> List[Tuple[str, object]]:
        """Consume every pending NoC/ECC fault with ``t <= now``."""
        out: List[Tuple[str, object]] = []
        while self._timed and self._timed[0][0] <= now:
            _t, kind, fault = self._timed.pop(0)
            out.append((kind, fault))
        return out

    def take_sdc(self, launch_index: int) -> List[SolverBitFlip]:
        return self._sdc_at.pop(launch_index, [])

    def take_core_failures(self, launch_index: int) -> List[CoreFailure]:
        return self._fail_at.pop(launch_index, [])

    def hang_error(self, t: float, timeout_s: float) -> DeviceHangError:
        """The watchdog report for a wedged launch, in the host vocabulary."""
        stall = CoreStall(core=(0, 0), slot="compute",
                          kernel=f"serve.launch{self.launches}@{self.name}",
                          waiting_on="cb.wait_front", since_s=t)
        return DeviceHangError([stall], t=t + timeout_s, timeout_s=timeout_s)


class CpuWorker(_Member):
    """One host CPU slot (``threads`` OpenMP threads)."""

    def __init__(self, worker_id: int, threads: int):
        super().__init__(f"cpu-{worker_id}")
        self.worker_id = worker_id
        self.threads = threads


class WorkerPool:
    """All pool members, with deterministic selection order."""

    def __init__(self, cfg: PoolConfig, hangs: Sequence[ServeHang] = (),
                 chaos=None, health: Optional[HealthConfig] = None):
        self.cfg = cfg
        plans = getattr(chaos, "plans", None)
        self.devices = [
            DeviceMember(i, cfg.grid, hangs,
                         chaos=plans[i] if plans else None,
                         health=health)
            for i in range(cfg.n_devices)]
        self.cpus = [CpuWorker(i, cfg.cpu_threads)
                     for i in range(cfg.n_cpu_workers)]

    def free_device(self, now: float) -> Optional[DeviceMember]:
        """Best available device: healthiest rank first, then lowest id."""
        ranked = sorted(self.devices,
                        key=lambda d: (d.health.rank(), d.device_id))
        for dev in ranked:
            if dev.available(now):
                return dev
        return None

    def free_cpu(self, now: float) -> Optional[CpuWorker]:
        for cpu in self.cpus:
            if cpu.available(now):
                return cpu
        return None

    @property
    def members(self) -> List[_Member]:
        return [*self.devices, *self.cpus]

    def utilization(self, horizon_s: float) -> Dict[str, float]:
        """Per-member busy fraction over ``horizon_s`` simulated seconds."""
        return {m.name: m.utilization(horizon_s) for m in self.members}
