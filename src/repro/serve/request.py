"""Request vocabulary of the solve service.

A :class:`SolveRequest` is everything a tenant tells the service: the
problem (grid size, iteration budget or target tolerance), which backend
class may run it (``device`` — a pool e150 — or ``cpu``), a priority
class, and an optional latency deadline.  Requests are frozen value
objects so they can sit in queues, be retried on another pool member, or
be re-played from a recorded trace without aliasing surprises.

:class:`AdmissionError` is the typed rejection the scheduler raises when
a request cannot be admitted — queue full, or a deadline that is already
unmeetable given the best-case service time.  Shed requests are always
*reported* (they appear in the outcome log and the shed counter); the
exception is how the submitting client learns synchronously.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields, replace
from typing import Optional

__all__ = [
    "BACKENDS",
    "WORKLOADS",
    "AdmissionError",
    "RequestOutcome",
    "SolveRequest",
    "iterations_for_tolerance",
]

#: backend classes a request may target.
BACKENDS = ("device", "cpu")

#: workload kinds the service schedules.  ``jacobi`` is the original
#: 5-point solve; the others come from the :mod:`repro.ops` library
#: (``iterations`` counts op repeats for matmul/fft and sweeps for
#: stencil9 — see :func:`repro.serve.pool.device_service_time`).
WORKLOADS = ("jacobi", "matmul", "fft", "stencil9")


class AdmissionError(RuntimeError):
    """The scheduler refused a request.

    ``reason`` is machine-readable: ``"queue_full"``,
    ``"deadline_unmeetable"``, ``"too_large"`` (the grid needs more
    cards than the pool owns, or cannot be decomposed over them) or
    ``"invalid"``.
    """

    def __init__(self, reason: str, detail: str = ""):
        self.reason = reason
        self.detail = detail
        msg = f"request rejected: {reason}"
        if detail:
            msg += f" ({detail})"
        super().__init__(msg)


def iterations_for_tolerance(nx: int, ny: int, tolerance: float,
                             max_iters: int) -> int:
    """Deterministic iteration budget to reach ``tolerance``.

    Jacobi on the unit-square Laplace problem contracts the error by
    ``rho = cos(pi / (n + 1))`` per sweep (``n`` the smaller interior
    dimension), so ``tolerance`` needs ``ln(tol) / ln(rho)`` sweeps.  The
    estimate is clamped to ``[1, max_iters]`` — a pure function of the
    request, never of runtime state, so admission decisions replay.
    """
    if not 0.0 < tolerance < 1.0:
        raise ValueError(f"tolerance must be in (0, 1), got {tolerance!r}")
    n = min(nx, ny)
    rho = math.cos(math.pi / (n + 1))
    need = math.ceil(math.log(tolerance) / math.log(rho))
    return max(1, min(max_iters, need))


@dataclass(frozen=True)
class SolveRequest:
    """One tenant solve: problem, backend class, priority, deadline.

    ``deadline_s`` is *relative* to submission (seconds of simulated
    time); the service turns it into an absolute deadline at admission.
    ``tolerance`` (if given) converts to an iteration budget via
    :func:`iterations_for_tolerance`, capped by ``iterations``.

    ``workload`` selects what the request computes.  ``jacobi`` keeps
    the original meaning of every field.  For the :mod:`repro.ops`
    kinds the grid fields parameterize the op — ``matmul``: ``C[ny,nx]
    = A[ny,nx] @ B[nx,nx]``; ``fft``: pencils of power-of-two length
    ``nx``, batch ``ny``; ``stencil9``: an ``ny x nx`` interior with
    ``nx`` a 32-multiple — and ``iterations`` counts op repeats
    (matmul/fft) or sweeps (stencil9).  ``tolerance`` is Jacobi-only.
    """

    rid: int
    nx: int = 64
    ny: int = 64
    iterations: int = 32
    tolerance: Optional[float] = None
    backend: str = "device"
    priority: int = 1            #: 0 = highest class
    deadline_s: Optional[float] = None
    workload: str = "jacobi"

    def __post_init__(self):
        if self.nx < 3 or self.ny < 3:
            raise ValueError(f"grid {self.ny}x{self.nx} too small")
        if self.iterations < 1:
            raise ValueError("iterations must be positive")
        if self.backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, "
                             f"got {self.backend!r}")
        if self.priority < 0:
            raise ValueError("priority must be non-negative")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        if self.workload not in WORKLOADS:
            raise ValueError(f"workload must be one of {WORKLOADS}, "
                             f"got {self.workload!r}")
        if self.workload != "jacobi" and self.tolerance is not None:
            raise ValueError(
                "tolerance targets are jacobi-only; op workloads take an "
                "explicit iteration (repeat) count")
        if self.workload == "fft" and self.nx & (self.nx - 1):
            raise ValueError(
                f"fft pencils need a power-of-two length, got nx={self.nx}")
        if self.workload == "stencil9" and self.nx % 32:
            raise ValueError(
                f"stencil9 needs nx as a multiple of 32, got nx={self.nx}")

    @property
    def effective_iterations(self) -> int:
        """The iteration budget after the tolerance conversion."""
        if self.tolerance is None:
            return self.iterations
        return iterations_for_tolerance(self.nx, self.ny, self.tolerance,
                                        self.iterations)

    @property
    def points(self) -> int:
        return self.nx * self.ny

    def degraded(self) -> "SolveRequest":
        """The same request re-targeted at the CPU backend."""
        return replace(self, backend="cpu")

    def to_dict(self) -> dict:
        """JSON-ready rendering (stable key order) for trace records."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, doc: dict) -> "SolveRequest":
        return cls(**{f.name: doc[f.name] for f in fields(cls)
                      if f.name in doc})


@dataclass(frozen=True)
class RequestOutcome:
    """What happened to one admitted-or-shed request.

    All times are simulated seconds; ``status`` is ``"completed"``,
    ``"degraded"`` (completed, but on the CPU after the device path kept
    failing) or ``"shed"``.  A shed outcome still carries the request —
    nothing is ever silently dropped.  ``sdc_detected`` counts corrupted
    readbacks the serve path caught for this request (each was retried
    or ended in a typed shed — never returned), and ``restarts`` counts
    mid-launch checkpoint/restarts (core failures) it rode through.
    """

    request: SolveRequest
    status: str
    backend_used: Optional[str]      #: None when shed before dispatch
    worker: Optional[str]            #: pool member that finished it
    cores: Optional[tuple]           #: (cy, cx) of the device allocation
    batch_id: Optional[int]
    batch_size: int
    submit_s: float
    start_s: Optional[float]         #: service start (None when shed)
    finish_s: Optional[float]
    retries: int
    shed_reason: Optional[str] = None
    solve_key: Optional[str] = None  #: functional-result key (post-pass)
    sdc_detected: int = 0            #: corrupted readbacks caught
    restarts: int = 0                #: checkpoint/restarts ridden through

    @property
    def wait_s(self) -> Optional[float]:
        if self.start_s is None:
            return None
        return self.start_s - self.submit_s

    @property
    def service_s(self) -> Optional[float]:
        if self.start_s is None or self.finish_s is None:
            return None
        return self.finish_s - self.start_s

    @property
    def total_s(self) -> Optional[float]:
        if self.finish_s is None:
            return None
        return self.finish_s - self.submit_s

    @property
    def deadline_met(self) -> Optional[bool]:
        if self.request.deadline_s is None or self.total_s is None:
            return None
        return self.total_s <= self.request.deadline_s
