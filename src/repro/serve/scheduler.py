"""Admission control and the batching scheduler.

Two pieces:

* :class:`BoundedPriorityQueue` — per-priority-class FIFO queues with a
  hard capacity.  Admission is where requests are refused: a full class
  raises :class:`~repro.serve.request.AdmissionError` (``queue_full``),
  and a request whose deadline cannot be met even by the *best-case*
  service time is refused up front (``deadline_unmeetable``) instead of
  wasting queue space on a guaranteed SLO miss.

* :func:`plan_batch` — the batching policy.  Compatible small grids are
  packed onto **one** multi-core launch: the device's 12×9 worker grid is
  carved into per-request core slices with
  :func:`repro.core.decomposition.split_domain` (the Table-VIII systolic
  split, applied to the *core grid* instead of the element grid), so K
  queued requests cost ``max_i t_i(slice_i)`` instead of
  ``sum_i t_i(full grid)``.  Packing never changes answers — the
  decomposed sweep is bit-identical to the global one
  (:mod:`repro.core.multicore`) — only latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.core.decomposition import split_domain
from repro.serve.request import AdmissionError, SolveRequest

__all__ = [
    "BatchPlan",
    "BoundedPriorityQueue",
    "SchedulerConfig",
    "plan_batch",
]


@dataclass(frozen=True)
class SchedulerConfig:
    """Queueing and batching policy knobs."""

    n_priorities: int = 3
    queue_capacity: int = 64         #: per priority class
    max_batch: int = 4               #: requests packed per device launch
    #: grids at or below this many interior points are batchable; larger
    #: requests get the whole device to themselves.
    batch_point_limit: int = 16384

    def __post_init__(self):
        if self.n_priorities < 1:
            raise ValueError("need at least one priority class")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be positive")
        if self.max_batch < 1:
            raise ValueError("max_batch must be positive")


class BoundedPriorityQueue:
    """Per-class bounded FIFOs, popped strictly in priority order.

    Priorities above ``n_priorities - 1`` are clamped into the lowest
    class.  ``push_front`` re-queues a retried request at the head of its
    class so a hang victim is never overtaken by later arrivals of the
    same priority.
    """

    def __init__(self, cfg: SchedulerConfig):
        self.cfg = cfg
        self._queues: List[List[SolveRequest]] = [
            [] for _ in range(cfg.n_priorities)]

    def _class_of(self, req: SolveRequest) -> int:
        return min(req.priority, self.cfg.n_priorities - 1)

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues)

    def depth(self, priority: Optional[int] = None) -> int:
        if priority is None:
            return len(self)
        return len(self._queues[priority])

    def push(self, req: SolveRequest) -> None:
        q = self._queues[self._class_of(req)]
        if len(q) >= self.cfg.queue_capacity:
            raise AdmissionError(
                "queue_full",
                f"priority class {self._class_of(req)} holds "
                f"{len(q)}/{self.cfg.queue_capacity} requests")
        q.append(req)

    def push_front(self, req: SolveRequest) -> None:
        """Re-queue a retried request at the head of its class.

        Retries bypass the capacity check: the request was already
        admitted once, and shedding it now would turn a device fault
        into a lost request.
        """
        self._queues[self._class_of(req)].insert(0, req)

    def peek(self) -> Optional[SolveRequest]:
        for q in self._queues:
            if q:
                return q[0]
        return None

    def pop(self) -> Optional[SolveRequest]:
        for q in self._queues:
            if q:
                return q.pop(0)
        return None

    def peek_where(self, want: Callable[[SolveRequest], bool]
                   ) -> Optional[SolveRequest]:
        """First matching request in priority-FIFO order, not removed."""
        for q in self._queues:
            for req in q:
                if want(req):
                    return req
        return None

    def pop_where(self, want: Callable[[SolveRequest], bool],
                  limit: int) -> List[SolveRequest]:
        """Pop up to ``limit`` matching requests in priority-FIFO order.

        Non-matching requests keep their positions — the scan never
        reorders a class, so two runs with the same queue state always
        pop the same set.
        """
        taken: List[SolveRequest] = []
        for q in self._queues:
            i = 0
            while i < len(q) and len(taken) < limit:
                if want(q[i]):
                    taken.append(q.pop(i))
                else:
                    i += 1
            if len(taken) >= limit:
                break
        return taken


@dataclass(frozen=True)
class BatchPlan:
    """One device launch: requests and their core-grid slices."""

    requests: Tuple[SolveRequest, ...]
    allocations: Tuple[Tuple[int, int], ...]   #: (cy, cx) per request

    def __len__(self) -> int:
        return len(self.requests)


def plan_batch(requests: List[SolveRequest],
               grid: Tuple[int, int]) -> BatchPlan:
    """Pack ``requests`` onto one launch of a ``grid`` worker-core array.

    The core grid is carved with :func:`split_domain` — one row-band of
    cores per request (K ≤ grid height), each band spanning the full
    grid width, mirroring how the paper lays decomposition rows along
    the physical axis.  Each allocation is additionally clamped to the
    request's interior (a 4×4 grid cannot use more than 4 core rows).
    """
    if not requests:
        raise ValueError("cannot plan an empty batch")
    gy, gx = grid
    if len(requests) > gy:
        raise ValueError(
            f"batch of {len(requests)} exceeds the {gy}-row core grid")
    bands = split_domain(nx=gx, ny=gy, cores_y=len(requests), cores_x=1)
    allocations = []
    for req, row in zip(requests, bands):
        band = row[0]
        cy = max(1, min(band.ny, req.ny))
        cx = max(1, min(band.nx, req.nx))
        allocations.append((cy, cx))
    return BatchPlan(requests=tuple(requests),
                     allocations=tuple(allocations))
