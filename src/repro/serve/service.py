"""The multi-tenant solve service: an event-driven loop on ``sim.engine``.

:class:`SolveService` multiplexes :class:`~repro.serve.request.SolveRequest`
streams over a :class:`~repro.serve.pool.WorkerPool`.  Everything —
arrivals, queueing, batching, launches, hangs, retries — happens in
*simulated* time on one :class:`~repro.sim.engine.Simulator`, so a full
load test is a deterministic discrete-event simulation: byte-identical
across repeat runs and across ``-j`` settings (worker processes are only
used by the functional post-pass, which reassembles in submission order).

Life of a request::

    submit() ── admission control ──> bounded priority queue
        │  (queue_full / deadline_unmeetable -> AdmissionError + shed
        │   outcome; nothing is silently dropped)
        └─> dispatcher (a sim process) packs compatible small grids into
            one multi-core launch (scheduler.plan_batch / split_domain),
            or hands CPU-backend requests to a CPU worker
               └─> launch occupies the pool member for the modelled
                   service time; requests complete as their core slices
                   finish
                      └─> a hang (ServeHang plan) trips the per-launch
                          watchdog instead: DeviceHangError, victims are
                          re-queued at the head of their class (retry on
                          another member) or degraded to the CPU backend
                          after ``max_retries`` — each step recorded on
                          the FaultTrace.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.perfmodel.calibration import DEFAULT_COSTS, CostModel
from repro.serve.pool import (CpuWorker, DeviceMember, PoolConfig, ServeHang,
                              WorkerPool, best_case_service_s,
                              cpu_service_time, device_service_time,
                              launch_overhead_s)
from repro.serve.request import (AdmissionError, RequestOutcome,
                                 SolveRequest)
from repro.serve.scheduler import (BatchPlan, BoundedPriorityQueue,
                                   SchedulerConfig, plan_batch)
from repro.serve.telemetry import ServeMetrics
from repro.sim import Event, Simulator

__all__ = ["SolveService"]


class _RequestState:
    """Mutable per-request bookkeeping keyed by rid.

    ``request`` is the *original* submission — a degrade swaps the queued
    copy's backend, but outcomes (and recorded traces) always carry the
    request as the tenant wrote it, so a replay resubmits it verbatim.
    """

    __slots__ = ("request", "submit_s", "deadline_abs", "retries",
                 "degraded", "done")

    def __init__(self, request: SolveRequest, submit_s: float,
                 deadline_abs: Optional[float], done: Event):
        self.request = request
        self.submit_s = submit_s
        self.deadline_abs = deadline_abs
        self.retries = 0
        self.degraded = False
        self.done = done


class SolveService:
    """Admission control + batching scheduler + device-pool executor."""

    def __init__(self, sim: Simulator,
                 scheduler: Optional[SchedulerConfig] = None,
                 pool: Optional[PoolConfig] = None,
                 hangs: Sequence[ServeHang] = (),
                 costs: CostModel = DEFAULT_COSTS):
        self.sim = sim
        self.scheduler_cfg = scheduler or SchedulerConfig()
        self.pool_cfg = pool or PoolConfig()
        self.costs = costs
        self.queue = BoundedPriorityQueue(self.scheduler_cfg)
        self.pool = WorkerPool(self.pool_cfg, hangs)
        self.metrics = ServeMetrics()
        self.outcomes: List[RequestOutcome] = []
        self._states: Dict[int, _RequestState] = {}
        self._batch_seq = 0
        self._kick = sim.event("serve.kick")
        sim.process(self._dispatch_loop(), name="serve.dispatcher")

    # -- admission ---------------------------------------------------------
    def best_case_service_s(self, req: SolveRequest) -> float:
        """Lower bound on service time: the whole pool member to itself."""
        return best_case_service_s(req, self.pool_cfg, self.costs)

    def submit(self, req: SolveRequest) -> Event:
        """Admit ``req`` (or shed it with a typed :class:`AdmissionError`).

        Returns an :class:`~repro.sim.engine.Event` that succeeds with the
        request's :class:`RequestOutcome` when it completes.  A rejected
        request raises — and is *also* recorded as a shed outcome, so the
        report never loses it.
        """
        now = self.sim.now
        if req.rid in self._states:
            raise AdmissionError("invalid", f"duplicate rid {req.rid}")
        if req.backend == "device" and not self.pool.devices:
            raise AdmissionError("invalid", "pool has no devices")
        if req.backend == "cpu" and not self.pool.cpus:
            raise AdmissionError("invalid", "pool has no CPU workers")
        if req.deadline_s is not None:
            best = self.best_case_service_s(req)
            if best > req.deadline_s:
                self._record_shed(req, now, "deadline_unmeetable")
                raise AdmissionError(
                    "deadline_unmeetable",
                    f"best-case service {best:.6g}s exceeds deadline "
                    f"{req.deadline_s:.6g}s")
        try:
            self.queue.push(req)
        except AdmissionError as exc:
            self._record_shed(req, now, exc.reason)
            raise
        deadline_abs = None if req.deadline_s is None \
            else now + req.deadline_s
        done = self.sim.event(f"serve.done.{req.rid}")
        self._states[req.rid] = _RequestState(req, now, deadline_abs, done)
        self.metrics.bump("submitted")
        self.metrics.sample_depth(now, len(self.queue))
        self._wake()
        return done

    def _record_shed(self, req: SolveRequest, now: float,
                     reason: str) -> None:
        self.metrics.bump("shed")
        self.metrics.bump(f"shed.{reason}")
        self.metrics.trace.record(now, "serve.admission", f"req{req.rid}",
                                  "shed", reason)
        self.outcomes.append(RequestOutcome(
            request=req, status="shed", backend_used=None, worker=None,
            cores=None, batch_id=None, batch_size=0, submit_s=now,
            start_s=None, finish_s=None, retries=0, shed_reason=reason))

    # -- dispatch ----------------------------------------------------------
    def _wake(self) -> None:
        if not self._kick.triggered:
            self._kick.succeed()

    def _wake_at(self, when: float) -> None:
        """Schedule a dispatcher wake-up at absolute time ``when``."""
        self.sim.timeout_at(when).add_callback(lambda _e: self._wake())

    def _dispatch_loop(self):
        while True:
            while self._try_dispatch():
                pass
            yield self._kick
            self._kick = self.sim.event("serve.kick")

    def _try_dispatch(self) -> bool:
        """Start at most one launch; True if anything was dispatched."""
        now = self.sim.now
        if not len(self.queue):
            return False
        self._shed_expired(now)
        cpu = self.pool.free_cpu(now)
        if cpu is not None:
            picked = self.queue.pop_where(
                lambda r: r.backend == "cpu", limit=1)
            if picked:
                self._launch_cpu(cpu, picked[0])
                return True
        dev = self.pool.free_device(now)
        if dev is not None:
            plan = self._form_device_batch(dev)
            if plan is not None:
                self._launch_device(dev, plan)
                return True
        return False

    def _shed_expired(self, now: float) -> None:
        """Drop queued requests whose absolute deadline already passed."""
        expired = self.queue.pop_where(
            lambda r: (self._states[r.rid].deadline_abs is not None
                       and self._states[r.rid].deadline_abs < now),
            limit=self.scheduler_cfg.queue_capacity
            * self.scheduler_cfg.n_priorities)
        for req in expired:
            state = self._states.pop(req.rid)
            self.metrics.bump("shed")
            self.metrics.bump("shed.deadline_expired")
            self.metrics.trace.record(now, "serve.deadline",
                                      f"req{req.rid}", "shed", "expired")
            outcome = RequestOutcome(
                request=state.request, status="shed", backend_used=None,
                worker=None, cores=None, batch_id=None, batch_size=0,
                submit_s=state.submit_s, start_s=None, finish_s=None,
                retries=state.retries, shed_reason="deadline_expired")
            self.outcomes.append(outcome)
            state.done.fail(AdmissionError("deadline_expired",
                                           f"req{req.rid}"))

    def _form_device_batch(self, dev: DeviceMember) -> Optional[BatchPlan]:
        head = self.queue.pop_where(
            lambda r: r.backend == "device", limit=1)
        if not head:
            return None
        first = head[0]
        limit = self.scheduler_cfg.batch_point_limit
        batch = [first]
        if first.points <= limit:
            room = min(self.scheduler_cfg.max_batch, dev.grid[0]) - 1
            if room > 0:
                batch += self.queue.pop_where(
                    lambda r: (r.backend == "device"
                               and r.points <= limit), limit=room)
        return plan_batch(batch, dev.grid)

    # -- launches ----------------------------------------------------------
    def _launch_cpu(self, cpu: CpuWorker, req: SolveRequest) -> None:
        cpu.busy = True
        self.metrics.bump("launches.cpu")
        self.metrics.sample_depth(self.sim.now, len(self.queue))
        self.sim.process(self._run_cpu(cpu, req),
                         name=f"serve.{cpu.name}.req{req.rid}")

    def _run_cpu(self, cpu: CpuWorker, req: SolveRequest):
        t0 = self.sim.now
        service = cpu_service_time(req, cpu.threads)
        yield self.sim.timeout(service)
        cpu.busy_s += service
        cpu.launches += 1
        cpu.busy = False
        self._complete(req, worker=cpu.name, backend_used="cpu",
                       cores=None, batch_id=None, batch_size=1, start_s=t0)
        self._wake()

    def _launch_device(self, dev: DeviceMember, plan: BatchPlan) -> None:
        batch_id = self._batch_seq
        self._batch_seq += 1
        dev.busy = True
        self.metrics.bump("launches.device")
        if len(plan) >= 2:
            self.metrics.bump("batches.multi")
            self.metrics.bump("batched_requests", by=len(plan))
        self.metrics.sample_depth(self.sim.now, len(self.queue))
        self.sim.process(self._run_device(dev, plan, batch_id),
                         name=f"serve.{dev.name}.batch{batch_id}")

    def _run_device(self, dev: DeviceMember, plan: BatchPlan,
                    batch_id: int):
        t0 = self.sim.now
        overhead = launch_overhead_s(plan.requests, self.costs)
        times = [overhead + device_service_time(req, cy, cx, self.costs)
                 for req, (cy, cx) in zip(plan.requests, plan.allocations)]
        expected = max(times)
        hang = dev.next_launch_hangs()
        launch_index = dev.launches
        dev.launches += 1

        if hang:
            timeout_s = self.pool_cfg.watchdog_factor * expected
            yield self.sim.timeout(timeout_s)
            err = dev.hang_error(t0, timeout_s)
            dev.busy_s += timeout_s
            dev.busy = False
            dev.cooldown_until = self.sim.now + self.pool_cfg.hang_cooldown_s
            self._wake_at(dev.cooldown_until)
            self.metrics.bump("hangs")
            self.metrics.trace.record(
                self.sim.now, "serve.hang",
                f"{dev.name}.launch{launch_index}", "detected",
                f"watchdog@{timeout_s:.6g}s.{len(err.stalls)}stall(s)")
            for req in plan.requests:
                self._retry_or_degrade(req, dev)
            self._wake()
            return

        # Requests complete as their core slices finish (staggered); the
        # member frees when the slowest slice does.
        order = sorted(range(len(plan)), key=lambda i: (times[i], i))
        elapsed = 0.0
        for i in order:
            if times[i] > elapsed:
                yield self.sim.timeout(times[i] - elapsed)
                elapsed = times[i]
            req = plan.requests[i]
            self._complete(req, worker=dev.name, backend_used="device",
                           cores=plan.allocations[i], batch_id=batch_id,
                           batch_size=len(plan), start_s=t0)
        if expected > elapsed:
            yield self.sim.timeout(expected - elapsed)
        dev.busy_s += expected
        dev.busy = False
        self._wake()

    def _retry_or_degrade(self, req: SolveRequest,
                          dev: DeviceMember) -> None:
        state = self._states[req.rid]
        state.retries += 1
        where = f"req{req.rid}@{dev.name}"
        if state.retries <= self.pool_cfg.max_retries:
            self.metrics.bump("retries")
            self.metrics.trace.record(self.sim.now, "serve.hang", where,
                                      "retried",
                                      f"attempt{state.retries}")
            self.queue.push_front(req)
        elif self.pool.cpus:
            # Counted once, at completion, via the "degraded" status.
            state.degraded = True
            self.metrics.trace.record(self.sim.now, "serve.hang", where,
                                      "degraded", "to-cpu")
            self.queue.push_front(req.degraded())
        else:
            # No CPU fallback configured: report the loss loudly.
            self.metrics.bump("shed")
            self.metrics.bump("shed.retries_exhausted")
            self.metrics.trace.record(self.sim.now, "serve.hang", where,
                                      "shed", "retries_exhausted")
            outcome = RequestOutcome(
                request=state.request, status="shed", backend_used=None,
                worker=None, cores=None, batch_id=None, batch_size=0,
                submit_s=state.submit_s, start_s=None, finish_s=None,
                retries=state.retries, shed_reason="retries_exhausted")
            self.outcomes.append(outcome)
            self._states.pop(req.rid)
            state.done.fail(AdmissionError("retries_exhausted",
                                           f"req{req.rid}"))

    def _complete(self, req: SolveRequest, worker: str, backend_used: str,
                  cores, batch_id, batch_size: int, start_s: float) -> None:
        state = self._states.pop(req.rid)
        status = "degraded" if state.degraded else "completed"
        self.metrics.bump(status)
        outcome = RequestOutcome(
            request=state.request, status=status, backend_used=backend_used,
            worker=worker, cores=cores, batch_id=batch_id,
            batch_size=batch_size, submit_s=state.submit_s,
            start_s=start_s, finish_s=self.sim.now, retries=state.retries)
        self.outcomes.append(outcome)
        self.metrics.sample_depth(self.sim.now, len(self.queue))
        state.done.succeed(outcome)

    # -- reporting ---------------------------------------------------------
    def utilization(self, horizon_s: Optional[float] = None):
        horizon = self.sim.now if horizon_s is None else horizon_s
        return self.pool.utilization(horizon)
