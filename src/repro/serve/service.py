"""The multi-tenant solve service: an event-driven loop on ``sim.engine``.

:class:`SolveService` multiplexes :class:`~repro.serve.request.SolveRequest`
streams over a :class:`~repro.serve.pool.WorkerPool`.  Everything —
arrivals, queueing, batching, launches, faults, retries, health
transitions — happens in *simulated* time on one
:class:`~repro.sim.engine.Simulator`, so a full load test is a
deterministic discrete-event simulation: byte-identical across repeat
runs and across ``-j`` settings (worker processes are only used by the
functional post-pass, which reassembles in submission order).

Life of a request::

    submit() ── admission control ──> bounded priority queue
        │  (queue_full / deadline_unmeetable -> AdmissionError + shed
        │   outcome; nothing is silently dropped)
        └─> dispatcher (a sim process) packs compatible small grids into
            one multi-core launch (scheduler.plan_batch / split_domain),
            hands CPU-backend requests to a CPU worker, or — when
            ``PoolConfig.card_point_capacity`` is set and the grid
            exceeds it — reserves pool members one by one as they free
            until the oversized request can span them as a single
            cluster launch (:mod:`repro.cluster`'s halo-exchange
            timeline); small tenants keep packing onto the unreserved
            spares meanwhile.  A grid needing more cards than the pool
            owns is shed ``too_large`` at admission
               └─> launch occupies the pool member for the modelled
                   service time; chaos faults stretch it (NoC, ECC
                   scrubs) or checkpoint/restart it on a remapped core
                   set (core failures); requests complete as their core
                   slices finish
                      └─> a hang trips the per-launch watchdog; a
                          detected-SDC readback discards the corrupted
                          answer — either way the victims retry under a
                          per-request budget with deterministic
                          exponential backoff, degrade to the CPU
                          backend, or shed with a typed reason.  Every
                          fault feeds the member's health breaker
                          (healthy → suspect → quarantined →
                          reintegrating); quarantined members are
                          drained, canary-probed and reintegrated.
                          Each step is recorded on the FaultTrace.

Deadline semantics: a queued request whose absolute deadline passes is
shed ``deadline_expired``.  A *first* attempt in flight at its deadline
runs to completion (reported with ``deadline_met == False``); a *retry*
in flight at its deadline is abandoned — the launch finishes and its
result is discarded loudly (``abandoned_launches`` counter + trace
record), and the request's single terminal outcome is the
``deadline_expired`` shed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.perfmodel.calibration import DEFAULT_COSTS, CostModel
from repro.serve.health import HealthConfig
from repro.cluster.topology import card_splits
from repro.serve.pool import (CpuWorker, DeviceMember, PoolConfig, ServeHang,
                              WorkerPool, best_case_service_s,
                              cluster_cards_needed, cluster_service_time,
                              cpu_service_time, device_service_time,
                              launch_overhead_s)
from repro.serve.request import (AdmissionError, RequestOutcome,
                                 SolveRequest)
from repro.serve.scheduler import (BatchPlan, BoundedPriorityQueue,
                                   SchedulerConfig, plan_batch)
from repro.serve.telemetry import ServeMetrics
from repro.sim import Event, Simulator

__all__ = ["SolveService"]


class _RequestState:
    """Mutable per-request bookkeeping keyed by rid.

    ``request`` is the *original* submission — a degrade swaps the queued
    copy's backend, but outcomes (and recorded traces) always carry the
    request as the tenant wrote it, so a replay resubmits it verbatim.
    """

    __slots__ = ("request", "submit_s", "deadline_abs", "retries",
                 "degraded", "done", "sdc_detected", "restarts")

    def __init__(self, request: SolveRequest, submit_s: float,
                 deadline_abs: Optional[float], done: Event):
        self.request = request
        self.submit_s = submit_s
        self.deadline_abs = deadline_abs
        self.retries = 0
        self.degraded = False
        self.done = done
        self.sdc_detected = 0
        self.restarts = 0


#: fraction of a launch elapsed when a planned core failure strikes.
_STRIKE_FRACTION = 0.5


class SolveService:
    """Admission control + batching scheduler + device-pool executor."""

    def __init__(self, sim: Simulator,
                 scheduler: Optional[SchedulerConfig] = None,
                 pool: Optional[PoolConfig] = None,
                 hangs: Sequence[ServeHang] = (),
                 costs: CostModel = DEFAULT_COSTS,
                 chaos=None,
                 health: Optional[HealthConfig] = None):
        self.sim = sim
        self.scheduler_cfg = scheduler or SchedulerConfig()
        self.pool_cfg = pool or PoolConfig()
        self.costs = costs
        self.health_cfg = health or HealthConfig(
            suspect_holdoff_s=self.pool_cfg.hang_cooldown_s)
        self.chaos = chaos           #: ChaosPlan or None
        self.queue = BoundedPriorityQueue(self.scheduler_cfg)
        self.pool = WorkerPool(self.pool_cfg, hangs, chaos=chaos,
                               health=self.health_cfg)
        self.metrics = ServeMetrics()
        self.outcomes: List[RequestOutcome] = []
        self._states: Dict[int, _RequestState] = {}
        self._batch_seq = 0
        #: oversized head-of-line request waiting for enough members,
        #: and the members already held for it.
        self._pending_cluster: Optional[SolveRequest] = None
        self._reserved: List[DeviceMember] = []
        self._kick = sim.event("serve.kick")
        sim.process(self._dispatch_loop(), name="serve.dispatcher")

    # -- admission ---------------------------------------------------------
    def best_case_service_s(self, req: SolveRequest) -> float:
        """Lower bound on service time: the whole pool member to itself."""
        return best_case_service_s(req, self.pool_cfg, self.costs)

    def submit(self, req: SolveRequest) -> Event:
        """Admit ``req`` (or shed it with a typed :class:`AdmissionError`).

        Returns an :class:`~repro.sim.engine.Event` that succeeds with the
        request's :class:`RequestOutcome` when it completes.  A rejected
        request raises — and is *also* recorded as a shed outcome, so the
        report never loses it.
        """
        now = self.sim.now
        if req.rid in self._states:
            raise AdmissionError("invalid", f"duplicate rid {req.rid}")
        if req.backend == "device" and not self.pool.devices:
            raise AdmissionError("invalid", "pool has no devices")
        if req.backend == "cpu" and not self.pool.cpus:
            raise AdmissionError("invalid", "pool has no CPU workers")
        need = cluster_cards_needed(req, self.pool_cfg.card_point_capacity)
        if need > 1:
            if need > len(self.pool.devices):
                self._record_shed(req, now, "too_large")
                raise AdmissionError(
                    "too_large",
                    f"{req.points} points need {need} cards; pool has "
                    f"{len(self.pool.devices)}")
            try:
                cluster_service_time(req, need, self.pool_cfg, self.costs)
            except ValueError as exc:
                self._record_shed(req, now, "too_large")
                raise AdmissionError("too_large", str(exc)) from exc
        if req.deadline_s is not None:
            best = self.best_case_service_s(req)
            if best > req.deadline_s:
                self._record_shed(req, now, "deadline_unmeetable")
                raise AdmissionError(
                    "deadline_unmeetable",
                    f"best-case service {best:.6g}s exceeds deadline "
                    f"{req.deadline_s:.6g}s")
        try:
            self.queue.push(req)
        except AdmissionError as exc:
            self._record_shed(req, now, exc.reason)
            raise
        deadline_abs = None if req.deadline_s is None \
            else now + req.deadline_s
        done = self.sim.event(f"serve.done.{req.rid}")
        self._states[req.rid] = _RequestState(req, now, deadline_abs, done)
        self.metrics.bump("submitted")
        self.metrics.sample_depth(now, len(self.queue))
        self._wake()
        return done

    def _record_shed(self, req: SolveRequest, now: float,
                     reason: str) -> None:
        self.metrics.bump("shed")
        self.metrics.bump(f"shed.{reason}")
        self.metrics.trace.record(now, "serve.admission", f"req{req.rid}",
                                  "shed", reason)
        self.outcomes.append(RequestOutcome(
            request=req, status="shed", backend_used=None, worker=None,
            cores=None, batch_id=None, batch_size=0, submit_s=now,
            start_s=None, finish_s=None, retries=0, shed_reason=reason))

    # -- dispatch ----------------------------------------------------------
    def _wake(self) -> None:
        if not self._kick.triggered:
            self._kick.succeed()

    def _wake_at(self, when: float) -> None:
        """Schedule a dispatcher wake-up at absolute time ``when``."""
        self.sim.timeout_at(when).add_callback(lambda _e: self._wake())

    def _dispatch_loop(self):
        while True:
            while self._try_dispatch():
                pass
            yield self._kick
            self._kick = self.sim.event("serve.kick")

    def _try_dispatch(self) -> bool:
        """Start at most one launch; True if anything was dispatched."""
        now = self.sim.now
        if not len(self.queue) and self._pending_cluster is None:
            return False
        self._shed_expired(now)
        cpu = self.pool.free_cpu(now)
        if cpu is not None:
            picked = self.queue.pop_where(
                lambda r: r.backend == "cpu", limit=1)
            if picked:
                self._launch_cpu(cpu, picked[0])
                return True
        if self._dispatch_cluster(now):
            return True
        dev = self.pool.free_device(now)
        if dev is not None:
            plan = self._form_device_batch(dev)
            if plan is not None:
                self._launch_device(dev, plan)
                return True
        return False

    def _release_reservations(self) -> None:
        for dev in self._reserved:
            dev.reserved = False
        self._reserved.clear()

    def _dispatch_cluster(self, now: float) -> bool:
        """Reserve members for an oversized head-of-line request; launch
        the span once enough are held.  True only when a span launched —
        merely reserving a member falls through so small tenants keep
        packing onto the unreserved spares."""
        cap = self.pool_cfg.card_point_capacity
        if cap is None:
            return False
        if self._pending_cluster is None:
            head = self.queue.peek_where(lambda r: r.backend == "device")
            if head is None or cluster_cards_needed(head, cap) <= 1:
                return False
            self.queue.pop_where(lambda r: r.rid == head.rid, limit=1)
            self._pending_cluster = head
            need = cluster_cards_needed(head, cap)
            self.metrics.trace.record(now, "serve.cluster",
                                      f"req{head.rid}", "reserving",
                                      f"span={need}card(s)")
            state = self._states.get(head.rid)
            if state is not None and state.deadline_abs is not None:
                self._wake_at(state.deadline_abs)
        req = self._pending_cluster
        state = self._states.get(req.rid)
        if state is None:
            self._release_reservations()
            self._pending_cluster = None
            return False
        if state.deadline_abs is not None and state.deadline_abs < now:
            self._release_reservations()
            self._pending_cluster = None
            self._terminal_shed(state, "deadline_expired",
                               f"req{req.rid}", "expired-awaiting-cluster")
            return False
        need = cluster_cards_needed(req, cap)
        while len(self._reserved) < need:
            dev = self.pool.free_device(now)
            if dev is None:
                return False
            dev.reserved = True
            self._reserved.append(dev)
        devs, self._reserved = self._reserved, []
        self._pending_cluster = None
        for dev in devs:
            dev.reserved = False
        self._launch_cluster(devs, req)
        return True

    def _shed_expired(self, now: float) -> None:
        """Drop queued requests whose absolute deadline already passed."""
        expired = self.queue.pop_where(
            lambda r: (self._states[r.rid].deadline_abs is not None
                       and self._states[r.rid].deadline_abs < now),
            limit=self.scheduler_cfg.queue_capacity
            * self.scheduler_cfg.n_priorities)
        for req in expired:
            state = self._states[req.rid]
            self._terminal_shed(state, "deadline_expired",
                               f"req{req.rid}", "expired-in-queue")

    def _fits_one_member(self, req: SolveRequest) -> bool:
        """Whether a device request may run on a single pool member.

        Oversized requests (cluster spans) must never be popped into a
        single-member launch or packed into its batch — they wait for
        the cluster path even when another span already holds the
        pending slot.
        """
        return cluster_cards_needed(
            req, self.pool_cfg.card_point_capacity) <= 1

    def _form_device_batch(self, dev: DeviceMember) -> Optional[BatchPlan]:
        head = self.queue.pop_where(
            lambda r: r.backend == "device" and self._fits_one_member(r),
            limit=1)
        if not head:
            return None
        first = head[0]
        limit = self.scheduler_cfg.batch_point_limit
        batch = [first]
        if first.points <= limit:
            room = min(self.scheduler_cfg.max_batch, dev.grid[0]) - 1
            if room > 0:
                # only compatible kinds share a launch: mixed-workload
                # traffic packs matmul with matmul, fft with fft, ...
                batch += self.queue.pop_where(
                    lambda r: (r.backend == "device"
                               and r.workload == first.workload
                               and r.points <= limit
                               and self._fits_one_member(r)), limit=room)
        return plan_batch(batch, dev.grid)

    # -- launches ----------------------------------------------------------
    def _launch_cpu(self, cpu: CpuWorker, req: SolveRequest) -> None:
        cpu.busy = True
        self.metrics.bump("launches.cpu")
        self.metrics.sample_depth(self.sim.now, len(self.queue))
        self.sim.process(self._run_cpu(cpu, req),
                         name=f"serve.{cpu.name}.req{req.rid}")

    def _run_cpu(self, cpu: CpuWorker, req: SolveRequest):
        t0 = self.sim.now
        service = cpu_service_time(req, cpu.threads)
        yield self.sim.timeout(service)
        cpu.busy_s += service
        cpu.launches += 1
        cpu.busy = False
        self._complete(req, worker=cpu.name, backend_used="cpu",
                       cores=None, batch_id=None, batch_size=1, start_s=t0)
        self._wake()

    def _launch_device(self, dev: DeviceMember, plan: BatchPlan) -> None:
        batch_id = self._batch_seq
        self._batch_seq += 1
        dev.busy = True
        self.metrics.bump("launches.device")
        if len(plan) >= 2:
            self.metrics.bump("batches.multi")
            self.metrics.bump("batched_requests", by=len(plan))
        self.metrics.sample_depth(self.sim.now, len(self.queue))
        self.sim.process(self._run_device(dev, plan, batch_id),
                         name=f"serve.{dev.name}.batch{batch_id}")

    def _consume_timed(self, dev: DeviceMember, t0: float) -> float:
        """Fold pending NoC/ECC faults into a launch-start stretch."""
        stretch = 0.0
        for kind, fault in dev.take_timed(t0):
            if kind == "noc":
                extra = fault.delay_s if fault.kind == "delay" \
                    else self.pool_cfg.noc_drop_penalty_s
                self.metrics.bump(f"chaos.noc.{fault.kind}")
                self.metrics.attribute(f"noc.{fault.kind}", extra)
                self.metrics.trace.record(
                    t0, f"noc.{fault.kind}", f"{dev.name}.noc{fault.noc_id}",
                    "consumed", f"stretch={extra:.6g}s")
                if fault.kind == "drop":
                    # A drop means retransmits — breaker-relevant.
                    self._note_fault(dev, "noc.drop")
            else:
                extra = self.pool_cfg.scrub_stall_s
                self.metrics.bump("chaos.ecc.scrub")
                self.metrics.attribute("dram.ecc", extra)
                self.metrics.trace.record(
                    t0, "dram.bitflip",
                    f"{dev.name}.bank{fault.bank_id}+0x{fault.addr:x}",
                    "corrected", f"ecc-scrub stall={extra:.6g}s")
            stretch += extra
        return stretch

    def _run_device(self, dev: DeviceMember, plan: BatchPlan,
                    batch_id: int):
        t0 = self.sim.now
        launch_index = dev.launches
        dev.launches += 1
        overhead = launch_overhead_s(plan.requests, self.costs)
        factor = dev.capacity_factor()
        times = [(overhead + device_service_time(req, cy, cx, self.costs))
                 * factor
                 for req, (cy, cx) in zip(plan.requests, plan.allocations)]
        faulted = False

        stretch = self._consume_timed(dev, t0)
        if stretch:
            times = [t + stretch for t in times]

        # Core failures striking mid-launch: the launch restarts from the
        # last checkpoint on a remapped (smaller) core set; later
        # launches on this member run at the degraded capacity.
        restarts = 0
        for death in dev.take_core_failures(launch_index):
            before = max(times)
            old_factor = dev.capacity_factor()
            dev.fail_core()
            ratio = dev.capacity_factor() / old_factor
            ckpt = self.pool_cfg.checkpoint_every
            new_times = []
            for req, t_full in zip(plan.requests, times):
                iters = req.effective_iterations
                done_iters = (int(_STRIKE_FRACTION * iters)
                              // ckpt) * ckpt
                redo = 1.0 - done_iters / iters
                new_times.append(_STRIKE_FRACTION * t_full
                                 + self.pool_cfg.restart_overhead_s
                                 + redo * t_full * ratio)
            times = new_times
            restarts += 1
            faulted = True
            self.metrics.bump("chaos.core_failure")
            self.metrics.bump("restarts")
            self.metrics.attribute("core.failure", max(times) - before)
            self.metrics.trace.record(
                t0, "core.failure",
                f"{dev.name}.core({death.iy},{death.ix})", "injected",
                f"launch{launch_index}")
            self.metrics.trace.record(
                t0, "core.failure", f"{dev.name}.launch{launch_index}",
                "remapped",
                f"checkpoint-restart.{dev.failed_cores}core(s)-out")
            self._note_fault(dev, "core_failure")
            for req in plan.requests:
                state = self._states.get(req.rid)
                if state is not None:
                    state.restarts += 1

        expected = max(times)
        if dev.take_hang(t0, launch_index):
            timeout_s = self.pool_cfg.watchdog_factor * expected
            yield self.sim.timeout(timeout_s)
            err = dev.hang_error(t0, timeout_s)
            dev.busy_s += timeout_s
            dev.busy = False
            self.metrics.bump("hangs")
            self.metrics.attribute("hang", timeout_s)
            self.metrics.trace.record(
                self.sim.now, "serve.hang",
                f"{dev.name}.launch{launch_index}", "detected",
                f"watchdog@{timeout_s:.6g}s.{len(err.stalls)}stall(s)")
            self._note_fault(dev, "hang")
            for req in plan.requests:
                self._retry_or_degrade(req, dev, why="hang")
            self._wake()
            return

        # SDC armed for this launch: the flip lands in one request's
        # slice and is caught at readback by the range check (the plan
        # targets the detectable exponent bit — see faults.plan).
        victims: Dict[int, int] = {}
        for flip in dev.take_sdc(launch_index):
            i = flip.row % len(plan)
            victims[i] = victims.get(i, 0) + 1

        # Requests complete as their core slices finish (staggered); the
        # member frees when the slowest slice does.
        order = sorted(range(len(plan)), key=lambda i: (times[i], i))
        elapsed = 0.0
        for i in order:
            if times[i] > elapsed:
                yield self.sim.timeout(times[i] - elapsed)
                elapsed = times[i]
            req = plan.requests[i]
            if i in victims:
                hits = victims[i]
                faulted = True
                self.metrics.bump("sdc.injected", by=hits)
                self.metrics.bump("sdc.detected", by=hits)
                where = f"req{req.rid}@{dev.name}.launch{launch_index}"
                self.metrics.trace.record(self.sim.now, "solver.sdc",
                                          where, "injected",
                                          f"{hits}flip(s).bit14")
                self.metrics.trace.record(self.sim.now, "solver.sdc",
                                          where, "detected",
                                          "range-check@readback")
                state = self._states.get(req.rid)
                if state is not None:
                    state.sdc_detected += hits
                self._note_fault(dev, "sdc")
                self._retry_or_degrade(req, dev, why="sdc")
            else:
                self._complete(req, worker=dev.name, backend_used="device",
                               cores=plan.allocations[i], batch_id=batch_id,
                               batch_size=len(plan), start_s=t0)
        if expected > elapsed:
            yield self.sim.timeout(expected - elapsed)
        dev.busy_s += expected
        dev.busy = False
        if not faulted:
            self._note_success(dev)
        self._wake()

    # -- cluster spans ------------------------------------------------------
    def _launch_cluster(self, devs: List[DeviceMember],
                        req: SolveRequest) -> None:
        batch_id = self._batch_seq
        self._batch_seq += 1
        for dev in devs:
            dev.busy = True
        self.metrics.bump("launches.cluster")
        self.metrics.sample_depth(self.sim.now, len(self.queue))
        names = "+".join(d.name for d in devs)
        self.metrics.trace.record(self.sim.now, "serve.cluster",
                                  f"req{req.rid}", "spanned", names)
        self.sim.process(self._run_cluster_span(devs, req, batch_id),
                         name=f"serve.cluster.req{req.rid}")

    def _run_cluster_span(self, devs: List[DeviceMember], req: SolveRequest,
                          batch_id: int):
        """One oversized request occupying ``devs`` for a whole span.

        The span's service time is the cluster halo-exchange timeline
        (scatter, barriered iterations, staged halo rounds, gather);
        every member is busy for all of it — faults on *any* member hit
        the whole span, exactly as a real multi-card launch would stall
        on its slowest or sickest card.
        """
        t0 = self.sim.now
        launch_index = {d.name: d.launches for d in devs}
        for dev in devs:
            dev.launches += 1
        names = "+".join(d.name for d in devs)
        time_s = cluster_service_time(req, len(devs), self.pool_cfg,
                                      self.costs) \
            * max(d.capacity_factor() for d in devs)
        time_s += sum(self._consume_timed(d, t0) for d in devs)
        faulted = False

        # A core failure on any member checkpoint-restarts the span on
        # that member's remapped (smaller) core set.
        for dev in devs:
            for death in dev.take_core_failures(launch_index[dev.name]):
                before = time_s
                old_factor = max(d.capacity_factor() for d in devs)
                dev.fail_core()
                ratio = max(d.capacity_factor()
                            for d in devs) / old_factor
                ckpt = self.pool_cfg.checkpoint_every
                iters = req.effective_iterations
                done_iters = (int(_STRIKE_FRACTION * iters) // ckpt) * ckpt
                redo = 1.0 - done_iters / iters
                time_s = _STRIKE_FRACTION * time_s \
                    + self.pool_cfg.restart_overhead_s \
                    + redo * time_s * ratio
                faulted = True
                self.metrics.bump("chaos.core_failure")
                self.metrics.bump("restarts")
                self.metrics.attribute("core.failure", time_s - before)
                self.metrics.trace.record(
                    t0, "core.failure",
                    f"{dev.name}.core({death.iy},{death.ix})", "injected",
                    f"cluster.req{req.rid}")
                state = self._states.get(req.rid)
                if state is not None:
                    state.restarts += 1

        expected = time_s
        hung = [d for d in devs
                if d.take_hang(t0, launch_index[d.name])]
        if hung:
            timeout_s = self.pool_cfg.watchdog_factor * expected
            yield self.sim.timeout(timeout_s)
            for dev in devs:
                dev.busy_s += timeout_s
                dev.busy = False
            self.metrics.bump("hangs")
            self.metrics.attribute("hang", timeout_s)
            self.metrics.trace.record(
                self.sim.now, "serve.hang", f"cluster.req{req.rid}@{names}",
                "detected", f"watchdog@{timeout_s:.6g}s."
                f"{len(hung)}member(s)")
            for dev in hung:
                self._note_fault(dev, "hang")
            self._retry_or_degrade(req, hung[0], why="hang")
            self._wake()
            return

        sdc_members = [d for d in devs
                       if d.take_sdc(launch_index[d.name])]
        yield self.sim.timeout(expected)
        for dev in devs:
            dev.busy_s += expected
            dev.busy = False
        if sdc_members:
            hits = len(sdc_members)
            self.metrics.bump("sdc.injected", by=hits)
            self.metrics.bump("sdc.detected", by=hits)
            where = f"req{req.rid}@{names}"
            self.metrics.trace.record(self.sim.now, "solver.sdc", where,
                                      "detected", "range-check@gather")
            state = self._states.get(req.rid)
            if state is not None:
                state.sdc_detected += hits
            for dev in sdc_members:
                self._note_fault(dev, "sdc")
            self._retry_or_degrade(req, sdc_members[0], why="sdc")
        else:
            self._complete(req, worker=names, backend_used="device",
                           cores=card_splits(len(devs)), batch_id=batch_id,
                           batch_size=1, start_s=t0)
            if not faulted:
                for dev in devs:
                    self._note_success(dev)
        self._wake()

    # -- health lifecycle --------------------------------------------------
    def _note_fault(self, dev: DeviceMember, kind: str) -> None:
        """Feed the member's breaker; record and act on transitions."""
        now = self.sim.now
        transition = dev.health.note_fault(now, kind)
        if dev.health.state == "suspect":
            # Every fault extends the holdoff — schedule the wake even
            # without a transition, or a queue with every member resting
            # would starve (no other event would rouse the dispatcher).
            self._wake_at(dev.health.held_until)
        if transition is None:
            return
        frm, to = transition
        self.metrics.bump(f"health.{frm}->{to}")
        self.metrics.trace.record(now, "health.transition", dev.name, to,
                                  f"from={frm}.{kind}")
        if to == "quarantined":
            self.sim.process(
                self._probe_quarantined(dev, dev.health.epoch),
                name=f"serve.canary.{dev.name}.e{dev.health.epoch}")

    def _note_success(self, dev: DeviceMember) -> None:
        transition = dev.health.note_success(self.sim.now)
        if transition is None:
            return
        frm, to = transition
        self.metrics.bump(f"health.{frm}->{to}")
        detail = f"from={frm}.clean"
        if to == "healthy" and dev.health.mttr_samples:
            detail += f".mttr={dev.health.mttr_samples[-1]:.6g}s"
        self.metrics.trace.record(self.sim.now, "health.transition",
                                  dev.name, to, detail)

    def _canary_service_s(self, dev: DeviceMember) -> float:
        cfg = self.health_cfg
        canary = SolveRequest(rid=0, nx=cfg.canary_nx, ny=cfg.canary_ny,
                              iterations=cfg.canary_iterations)
        cy = max(1, min(dev.grid[0], canary.ny))
        cx = max(1, min(dev.grid[1], canary.nx))
        return (launch_overhead_s([canary], self.costs)
                + device_service_time(canary, cy, cx, self.costs)) \
            * dev.capacity_factor()

    def _probe_quarantined(self, dev: DeviceMember, epoch: int):
        """Drain a quarantined member, canary-probe it, reintegrate it.

        Canary launches consume the member's armed faults exactly like
        tenant launches would — so a wedged or corrupting member fails
        its probes (and stays quarantined) until the fault plan drains.
        """
        h = dev.health
        cfg = self.health_cfg
        while dev.busy:                       # drain the in-flight launch
            yield self.sim.timeout(cfg.probe_interval_s)
        yield self.sim.timeout(cfg.probe_delay_s)
        passes = 0
        while h.state == "quarantined" and h.epoch == epoch:
            launch_index = dev.launches
            dev.launches += 1
            dev.busy = True
            t0 = self.sim.now
            self.metrics.bump("canary.run")
            canary_s = self._canary_service_s(dev) \
                + self._consume_timed(dev, t0)
            hang = dev.take_hang(t0, launch_index)
            sdc = dev.take_sdc(launch_index)
            if hang:
                timeout_s = self.pool_cfg.watchdog_factor * canary_s
                yield self.sim.timeout(timeout_s)
                dev.busy_s += timeout_s
                failed, why = True, "hang"
                self.metrics.attribute("hang", timeout_s)
            else:
                yield self.sim.timeout(canary_s)
                dev.busy_s += canary_s
                failed, why = bool(sdc), "sdc"
            dev.busy = False
            where = f"{dev.name}.launch{launch_index}"
            if failed:
                passes = 0
                self.metrics.bump("canary.failed")
                h.note_fault(self.sim.now, f"canary.{why}")
                self.metrics.trace.record(self.sim.now, "serve.canary",
                                          where, "failed", why)
                yield self.sim.timeout(cfg.probe_delay_s)
                continue
            passes += 1
            self.metrics.trace.record(self.sim.now, "serve.canary", where,
                                      "passed",
                                      f"{passes}/{cfg.canary_passes}")
            if passes >= cfg.canary_passes:
                transition = h.to_reintegrating(self.sim.now)
                if transition is not None:
                    frm, to = transition
                    self.metrics.bump(f"health.{frm}->{to}")
                    self.metrics.trace.record(
                        self.sim.now, "health.transition", dev.name, to,
                        f"from={frm}.canaries={cfg.canary_passes}")
                self._wake()
                return
            yield self.sim.timeout(cfg.probe_interval_s)

    # -- retries and terminal outcomes -------------------------------------
    def _retry_or_degrade(self, req: SolveRequest, dev: DeviceMember,
                          why: str = "hang") -> None:
        state = self._states.get(req.rid)
        now = self.sim.now
        where = f"req{req.rid}@{dev.name}"
        if state is None:
            # The request already reached a terminal outcome (deadline
            # expired mid-launch); account the wasted work loudly.
            self.metrics.bump("abandoned_launches")
            self.metrics.trace.record(now, "serve.retry", where,
                                      "abandoned", f"{why}.no-live-request")
            return
        if state.deadline_abs is not None and state.deadline_abs <= now:
            self._terminal_shed(state, "deadline_expired", where,
                               f"expired-mid-{why}")
            return
        state.retries += 1
        if state.retries <= self.pool_cfg.max_retries:
            backoff = self.pool_cfg.retry_backoff_s \
                * 2 ** (state.retries - 1)
            self.metrics.bump("retries")
            self.metrics.attribute("retry_backoff", backoff)
            self.metrics.trace.record(
                now, "serve.hang" if why == "hang" else "solver.sdc",
                where, "retried",
                f"attempt{state.retries}.backoff={backoff:.6g}s")
            self.sim.timeout(backoff).add_callback(
                lambda _e, r=req: self._requeue(r))
        elif self.pool.cpus:
            # Counted once, at completion, via the "degraded" status.
            self.metrics.bump("retry_budget.exhausted")
            state.degraded = True
            self.metrics.trace.record(now, "serve.hang", where,
                                      "degraded", "to-cpu")
            self.queue.push_front(req.degraded())
        else:
            # No CPU fallback configured: report the loss loudly.
            self.metrics.bump("retry_budget.exhausted")
            self._terminal_shed(state, "retries_exhausted", where, why)

    def _requeue(self, req: SolveRequest) -> None:
        """Backoff elapsed: put the retry at the head of its class."""
        state = self._states.get(req.rid)
        if state is None:
            return
        now = self.sim.now
        if state.deadline_abs is not None and state.deadline_abs <= now:
            self._terminal_shed(state, "deadline_expired",
                               f"req{req.rid}", "expired-in-backoff")
            return
        self.queue.push_front(req)
        self._wake()

    def _terminal_shed(self, state: _RequestState, reason: str,
                       where: str, detail: str = "") -> None:
        """The single terminal shed path: outcome + counter + trace."""
        rid = state.request.rid
        self._states.pop(rid, None)
        now = self.sim.now
        self.metrics.bump("shed")
        self.metrics.bump(f"shed.{reason}")
        kind = "serve.deadline" if reason == "deadline_expired" \
            else "serve.shed"
        self.metrics.trace.record(now, kind, where, "shed",
                                  detail or reason)
        self.outcomes.append(RequestOutcome(
            request=state.request, status="shed", backend_used=None,
            worker=None, cores=None, batch_id=None, batch_size=0,
            submit_s=state.submit_s, start_s=None, finish_s=None,
            retries=state.retries, shed_reason=reason,
            sdc_detected=state.sdc_detected, restarts=state.restarts))
        state.done.fail(AdmissionError(reason, f"req{rid}"))

    def _complete(self, req: SolveRequest, worker: str, backend_used: str,
                  cores, batch_id, batch_size: int, start_s: float) -> None:
        state = self._states.get(req.rid)
        now = self.sim.now
        if state is None:
            # Terminal outcome already emitted; the launch ran to waste.
            self.metrics.bump("abandoned_launches")
            self.metrics.trace.record(
                now, "serve.deadline", f"req{req.rid}@{worker}",
                "abandoned", "launch-completed-after-terminal-outcome")
            return
        if state.retries > 0 and state.deadline_abs is not None \
                and state.deadline_abs < now:
            # Deadline expired mid-retry: exactly one terminal outcome
            # (the shed below); the finished launch is accounted, its
            # result discarded.
            self.metrics.bump("abandoned_launches")
            self.metrics.trace.record(
                now, "serve.deadline", f"req{req.rid}@{worker}",
                "abandoned", "retry-finished-after-deadline")
            self._terminal_shed(state, "deadline_expired",
                               f"req{req.rid}@{worker}", "expired-mid-retry")
            return
        self._states.pop(req.rid)
        status = "degraded" if state.degraded else "completed"
        self.metrics.bump(status)
        outcome = RequestOutcome(
            request=state.request, status=status, backend_used=backend_used,
            worker=worker, cores=cores, batch_id=batch_id,
            batch_size=batch_size, submit_s=state.submit_s,
            start_s=start_s, finish_s=now, retries=state.retries,
            sdc_detected=state.sdc_detected, restarts=state.restarts)
        self.outcomes.append(outcome)
        self.metrics.sample_depth(now, len(self.queue))
        state.done.succeed(outcome)

    # -- reporting ---------------------------------------------------------
    def utilization(self, horizon_s: Optional[float] = None):
        horizon = self.sim.now if horizon_s is None else horizon_s
        return self.pool.utilization(horizon)

    def resilience_doc(self) -> Dict[str, object]:
        """Canonical resilience section of the report: health + MTTR +
        fault-attributed latency."""
        health = {dev.name: dev.health.to_doc()
                  for dev in self.pool.devices}
        for dev in self.pool.devices:
            health[dev.name]["failed_cores"] = dev.failed_cores
        mttr = [s for dev in self.pool.devices
                for s in dev.health.mttr_samples]
        fault_s = dict(sorted(
            (k, round(v, 12)) for k, v in self.metrics.fault_s.items()))
        return {
            "health": health,
            "mttr_mean_s": (round(sum(mttr) / len(mttr), 9)
                            if mttr else None),
            "fault_latency_s": fault_s,
            "fault_latency_total_s": round(sum(fault_s.values()), 12),
            "retry_budget_exhausted":
                self.metrics.counters.get("retry_budget.exhausted", 0),
            "abandoned_launches":
                self.metrics.counters.get("abandoned_launches", 0),
        }
