"""Serving telemetry: queue depth, latency histograms, utilization.

Everything recorded here is a *simulated-time* quantity — queue depths
sampled at scheduler events, wait/service/total latencies of completed
requests, per-member busy fractions, shed/retry/degrade counters — so a
:class:`ServeReport` is deterministic end to end: the JSON export
(:meth:`ServeReport.to_json`) is byte-identical across repeat runs and
across ``-j`` settings, which is what the CI serve-smoke job diffs.

Percentiles come from :func:`repro.analysis.metrics.latency_summary`
(nearest-rank — a reported p99 is a latency that actually occurred), and
fault-plane activity (hangs, retries, degrades) lives on the standard
:class:`~repro.analysis.resilience.FaultTrace` so the resilience tooling
renders serve incidents the same way it renders campaign injections.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.metrics import latency_summary
from repro.analysis.report import Table
from repro.analysis.resilience import FaultTrace
from repro.serve.request import RequestOutcome

__all__ = ["SERVE_SCHEMA", "ServeMetrics", "ServeReport",
           "render_serve_report"]

#: schema tag of the JSON report; bump on incompatible layout changes.
#: /2 added the "resilience" section (health lifecycle, MTTR,
#: fault-attributed latency) and the sdc/restart outcome columns.
#: Additive fields since /2 (no bump needed): the "latency_by_workload"
#: section and the "workload" outcome column (mixed-workload serving).
SERVE_SCHEMA = "repro-serve/2"


@dataclass
class ServeMetrics:
    """Mutable collector the service writes into while it runs."""

    counters: Dict[str, int] = field(default_factory=dict)
    depth_samples: List[Tuple[float, int]] = field(default_factory=list)
    trace: FaultTrace = field(default_factory=FaultTrace)
    #: simulated seconds of latency attributed to each fault kind
    #: (watchdog waits, retry backoff, NoC stretches, ECC stalls,
    #: checkpoint-restart penalties)
    fault_s: Dict[str, float] = field(default_factory=dict)

    def bump(self, name: str, by: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + by

    def attribute(self, kind: str, seconds: float) -> None:
        """Charge ``seconds`` of simulated latency to fault ``kind``."""
        self.fault_s[kind] = self.fault_s.get(kind, 0.0) + seconds

    def sample_depth(self, t: float, depth: int) -> None:
        self.depth_samples.append((t, depth))

    @property
    def max_depth(self) -> int:
        return max((d for _t, d in self.depth_samples), default=0)

    def mean_depth(self) -> float:
        """Time-weighted mean queue depth over the sampled horizon."""
        if len(self.depth_samples) < 2:
            return float(self.depth_samples[0][1]) if self.depth_samples \
                else 0.0
        area = 0.0
        for (t0, d0), (t1, _d1) in zip(self.depth_samples,
                                       self.depth_samples[1:]):
            area += d0 * (t1 - t0)
        span = self.depth_samples[-1][0] - self.depth_samples[0][0]
        return area / span if span > 0 else float(self.depth_samples[0][1])


@dataclass
class ServeReport:
    """Deterministic outcome of one load test."""

    config: Dict[str, object]            #: loadgen + service configuration
    duration_s: float                    #: simulated end-to-end span
    outcomes: List[RequestOutcome]
    metrics: ServeMetrics
    utilization: Dict[str, float]        #: member name -> busy fraction
    solves: Dict[str, dict] = field(default_factory=dict)
    #: ``solves`` maps a solve key (unique problem/backend config) to its
    #: functional result (grid_sha, residual, interior range) computed
    #: through the repro.parallel post-pass.
    resilience: Dict[str, object] = field(default_factory=dict)
    #: health lifecycle + MTTR + fault-attributed latency
    #: (:meth:`SolveService.resilience_doc`).

    # -- derived views -----------------------------------------------------
    def completed(self) -> List[RequestOutcome]:
        return [o for o in self.outcomes if o.status != "shed"]

    def shed(self) -> List[RequestOutcome]:
        return [o for o in self.outcomes if o.status == "shed"]

    def latencies(self) -> Dict[str, Dict[str, float]]:
        done = self.completed()
        return {
            "wait_s": latency_summary([o.wait_s for o in done]),
            "service_s": latency_summary([o.service_s for o in done]),
            "total_s": latency_summary([o.total_s for o in done]),
        }

    def latencies_by_workload(self) -> Dict[str, Dict[str, dict]]:
        """Per-kind p50/p95/p99 over completed requests, keyed by the
        request's ``workload`` — the mixed-serving SLO view."""
        by_kind: Dict[str, List[RequestOutcome]] = {}
        for o in self.completed():
            by_kind.setdefault(o.request.workload, []).append(o)
        return {
            kind: {
                "wait_s": latency_summary([o.wait_s for o in done]),
                "service_s": latency_summary([o.service_s for o in done]),
                "total_s": latency_summary([o.total_s for o in done]),
            }
            for kind, done in sorted(by_kind.items())
        }

    def slo(self) -> Dict[str, int]:
        """Deadline accounting over requests that declared one."""
        met = missed = 0
        for o in self.completed():
            if o.deadline_met is True:
                met += 1
            elif o.deadline_met is False:
                missed += 1
        return {"deadline_met": met, "deadline_missed": missed}

    def throughput_rps(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return len(self.completed()) / self.duration_s

    # -- export ------------------------------------------------------------
    def to_json(self) -> dict:
        """The schema-stable document the bench comparator can diff.

        Simulated-time quantities only — no wall-clock, no host facts —
        so the serialised bytes are a determinism invariant.
        """
        counters = dict(sorted(self.metrics.counters.items()))
        return {
            "schema": SERVE_SCHEMA,
            "config": self.config,
            "duration_s": self.duration_s,
            "requests": {
                "submitted": len(self.outcomes),
                "completed": len(self.completed()),
                "shed": len(self.shed()),
            },
            "throughput_rps": self.throughput_rps(),
            "latency": self.latencies(),
            "latency_by_workload": self.latencies_by_workload(),
            "slo": self.slo(),
            "queue": {
                "max_depth": self.metrics.max_depth,
                "mean_depth": self.metrics.mean_depth(),
            },
            "counters": counters,
            "utilization": dict(sorted(self.utilization.items())),
            "resilience": _resilience_doc(self),
            "fault_trace": self.metrics.trace.to_text().splitlines(),
            "solves": {k: self.solves[k] for k in sorted(self.solves)},
            "outcomes": [_outcome_row(o) for o in self.outcomes],
        }

    def to_json_text(self) -> str:
        """Canonical byte-stable rendering (sorted keys, fixed format)."""
        return json.dumps(self.to_json(), sort_keys=True, indent=1) + "\n"

    def write(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json_text())


def _resilience_doc(report: "ServeReport") -> dict:
    """The resilience section with derived shares, stable key order."""
    doc = dict(report.resilience)
    total = doc.get("fault_latency_total_s", 0.0) or 0.0
    if report.duration_s > 0:
        doc["fault_latency_share"] = round(total / report.duration_s, 9)
    else:
        doc["fault_latency_share"] = 0.0
    return {k: doc[k] for k in sorted(doc)}


def _outcome_row(o: RequestOutcome) -> dict:
    return {
        "rid": o.request.rid,
        "status": o.status,
        "workload": o.request.workload,
        "backend": o.request.backend,
        "backend_used": o.backend_used,
        "worker": o.worker,
        "cores": list(o.cores) if o.cores else None,
        "batch_id": o.batch_id,
        "batch_size": o.batch_size,
        "submit_s": o.submit_s,
        "start_s": o.start_s,
        "finish_s": o.finish_s,
        "retries": o.retries,
        "shed_reason": o.shed_reason,
        "deadline_met": o.deadline_met,
        "solve_key": o.solve_key,
        "sdc_detected": o.sdc_detected,
        "restarts": o.restarts,
    }


def render_serve_report(report: ServeReport) -> str:
    """Human-readable rendering: latency table, counters, utilization."""
    lat = report.latencies()
    table = Table(
        f"serve load test: {len(report.outcomes)} request(s) over "
        f"{report.duration_s:.6g}s simulated "
        f"({report.throughput_rps():.6g} req/s)",
        ["latency", "n", "p50 s", "p95 s", "p99 s", "mean s", "max s"])
    for name in ("wait_s", "service_s", "total_s"):
        s = lat[name]
        if s.get("n", 0) == 0:
            table.add_row(name, 0, "-", "-", "-", "-", "-")
            continue
        table.add_row(name, s["n"], f"{s['p50']:.6g}", f"{s['p95']:.6g}",
                      f"{s['p99']:.6g}", f"{s['mean']:.6g}",
                      f"{s['max']:.6g}")
    slo = report.slo()
    counters = Table("counters", ["counter", "value"])
    for key, value in sorted(report.metrics.counters.items()):
        counters.add_row(key, value)
    counters.add_row("queue.max_depth", report.metrics.max_depth)
    counters.add_row("queue.mean_depth", f"{report.metrics.mean_depth():.4g}")
    counters.add_row("slo.deadline_met", slo["deadline_met"])
    counters.add_row("slo.deadline_missed", slo["deadline_missed"])
    util = Table("pool utilization", ["member", "busy fraction"])
    for name, frac in sorted(report.utilization.items()):
        util.add_row(name, f"{frac:.4f}")
    parts = [table.render()]
    by_kind = report.latencies_by_workload()
    if len(by_kind) > 1:
        kinds = Table("latency by workload (total_s)",
                      ["workload", "n", "p50 s", "p95 s", "p99 s",
                       "mean s", "max s"])
        for kind, summaries in by_kind.items():
            s = summaries["total_s"]
            kinds.add_row(kind, s["n"], f"{s['p50']:.6g}",
                          f"{s['p95']:.6g}", f"{s['p99']:.6g}",
                          f"{s['mean']:.6g}", f"{s['max']:.6g}")
        parts += ["", kinds.render()]
    parts += ["", counters.render(), "", util.render()]
    res = report.resilience
    if res.get("health"):
        health = Table(
            "member health (MTTR = simulated s from leaving healthy to "
            "return)",
            ["member", "state", "faults", "transitions", "mttr s",
             "cores out"])
        for name in sorted(res["health"]):
            h = res["health"][name]
            transitions = sum(h.get("transitions", {}).values())
            mttr = h.get("mttr_s", [])
            mttr_txt = f"{sum(mttr) / len(mttr):.6g}" if mttr else "-"
            health.add_row(name, h.get("state", "?"), h.get("faults", 0),
                           transitions, mttr_txt,
                           h.get("failed_cores", 0))
        parts += ["", health.render()]
        fault_s = res.get("fault_latency_s", {})
        if fault_s:
            share = res.get("fault_latency_total_s", 0.0)
            frac = share / report.duration_s if report.duration_s else 0.0
            lines = [f"fault-attributed latency: {share:.6g}s "
                     f"({frac:.2%} of the run)"]
            for kind in sorted(fault_s):
                lines.append(f"  {kind}: {fault_s[kind]:.6g}s")
            parts += ["", "\n".join(lines)]
    if report.metrics.trace.events:
        parts += ["", "resilience events:",
                  report.metrics.trace.to_text().rstrip()]
    return "\n".join(parts)
