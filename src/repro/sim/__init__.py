"""Discrete-event simulation engine.

A minimal, deterministic, generator-coroutine event engine in the style of
SimPy.  Baby-core kernels in :mod:`repro.arch` are ordinary Python
generators; they suspend by yielding :class:`Event` objects (timeouts,
semaphore acquisitions, circular-buffer waits) and the :class:`Simulator`
advances simulated time between them.

The engine is deliberately small but complete: events carry values and
failures, processes compose with ``yield from``, and scheduling is fully
deterministic (FIFO among simultaneous events).
"""

from repro.sim.engine import (
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.sim.resources import Channel, Mutex, Resource, Semaphore

__all__ = [
    "Channel",
    "Event",
    "Interrupt",
    "Mutex",
    "Process",
    "Resource",
    "Semaphore",
    "SimulationError",
    "Simulator",
    "Timeout",
]
