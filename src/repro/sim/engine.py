"""Core discrete-event engine: events, processes, and the simulator loop.

Design notes
------------
* Simulated time is a ``float`` in **seconds** (the natural unit for the
  calibration constants derived from the paper, which are nanoseconds to
  seconds).
* Scheduling is deterministic: the ready queue is a heap keyed by
  ``(time, sequence)`` where ``sequence`` is a monotonically increasing
  counter, so simultaneous events fire in FIFO order regardless of heap
  internals.
* Processes are plain generators.  ``yield event`` suspends the process
  until the event triggers; the event's value becomes the result of the
  ``yield`` expression.  ``yield from helper()`` composes naturally, which
  is how device kernels call into the tt-metal style API.
"""

from __future__ import annotations

import heapq
import os
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "Simulator",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for engine-level protocol violations (double trigger, etc.)."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


_PENDING = object()

#: env toggle for the CPU fast path (``REPRO_ENGINE_FASTPATH=0`` disables).
#: The fast path only elides host-side work (an inlined run loop, no
#: per-event budget arithmetic); it never changes which events exist, their
#: timestamps, or their firing order, so both settings produce bit-identical
#: simulations — the determinism tests assert exactly that.
_FASTPATH_OFF = ("0", "false", "off", "no")


def _fastpath_default() -> bool:
    return os.environ.get("REPRO_ENGINE_FASTPATH", "1").lower() \
        not in _FASTPATH_OFF


def _check_delay(delay: float) -> float:
    """Validate a trigger delay: a non-negative real number.

    ``succeed`` and ``fail`` share this so both reject ``None`` (which used
    to be silently coerced to ``0.0`` by ``fail`` while crashing
    ``succeed``) and negative delays (which would move time backwards).
    """
    if delay is None:
        raise ValueError("delay must be a number, not None")
    try:
        d = float(delay)
    except (TypeError, ValueError):
        raise ValueError(f"delay must be a real number, got {delay!r}") from None
    if d < 0:
        raise ValueError(f"negative trigger delay {delay!r}")
    return d


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*, is *triggered* exactly once (either with a
    value via :meth:`succeed` or an exception via :meth:`fail`), and then
    runs its callbacks when the simulator processes it.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_scheduled", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._scheduled = False
        self.name = name

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """Whether the event has been given a value/failure."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """Whether the callbacks have already run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """Whether the event succeeded (only meaningful once triggered)."""
        if not self.triggered:
            raise SimulationError(f"event {self!r} not yet triggered")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        if not self.triggered:
            raise SimulationError(f"event {self!r} has no value yet")
        return self._value

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully, scheduling callbacks ``delay`` from now."""
        if self._value is not _PENDING:
            raise SimulationError(f"event {self!r} already triggered")
        if delay != 0.0:
            # The comparison is the fast path for the overwhelmingly common
            # immediate trigger; odd inputs (None, "x", negatives) compare
            # unequal and still land in the full validator.
            delay = _check_delay(delay)
        self._value = value
        self._ok = True
        self.sim._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event with an exception to be thrown into waiters."""
        if self.triggered:
            raise SimulationError(f"event {self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        delay = _check_delay(delay)
        self._value = exception
        self._ok = False
        self.sim._schedule(self, delay)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already processed: run immediately via a zero-delay bridge
            # event so ordering stays deterministic.
            bridge = Event(self.sim, name=f"bridge:{self.name}")
            bridge.callbacks.append(lambda _e: fn(self))
            bridge._value = self._value
            bridge._ok = self._ok
            self.sim._schedule(bridge, 0.0)
        else:
            self.callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event that triggers ``delay`` seconds after creation.

    Timeouts dominate event traffic (every kernel-API op charges one), so
    the constructor assigns slots directly instead of chaining through
    ``Event.__init__`` and builds its display name lazily — the f-string
    showed up as a top-3 hot spot when profiling full-device runs.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._ok = True
        self._scheduled = False
        self.delay = delay
        sim._schedule(self, delay)

    @property
    def name(self) -> str:  # lazy: only deadlock reports / repr need it
        return f"timeout({self.delay:g})"


class Process(Event):
    """Wraps a generator; the process *is* an event that triggers on return.

    The generator's ``return`` value becomes the event value, so processes
    can be joined with ``result = yield some_process``.
    """

    __slots__ = ("generator", "_send", "_throw", "_waiting_on", "_wait_since")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        if not hasattr(generator, "send"):
            raise TypeError(
                f"Process requires a generator, got {type(generator).__name__}"
                " (did you forget to call the kernel function?)")
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self.generator = generator
        # Bound-method caches: ``_resume`` runs once per yield of every
        # kernel, so the attribute lookups are worth hoisting.
        self._send = generator.send
        self._throw = generator.throw
        self._waiting_on: Optional[Event] = None
        self._wait_since: float = sim.now
        sim._register_process(self)
        # Kick off at the current time.
        boot = Event(sim, name=f"boot:{self.name}")
        boot._value = None
        boot._ok = True
        boot.callbacks.append(self._resume)
        sim._schedule(boot, 0.0)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished process {self!r}")
        poke = Event(self.sim, name=f"interrupt:{self.name}")
        poke._value = Interrupt(cause)
        poke._ok = False
        poke.callbacks.append(self._resume)
        self.sim._schedule(poke, 0.0)

    # -- stepping ---------------------------------------------------------
    def _resume(self, trigger: Event) -> None:
        if self._value is not _PENDING:
            return  # e.g. interrupted after normal completion raced
        self._waiting_on = None
        try:
            if trigger._ok:
                target = self._send(trigger._value)
            else:
                target = self._throw(trigger._value)
        except StopIteration as stop:
            self._value = stop.value
            self._ok = True
            self.sim._schedule(self, 0.0)
            return
        except BaseException as exc:
            self._value = exc
            self._ok = False
            self.sim._schedule(self, 0.0)
            if not self.callbacks:
                # Nobody is joining this process: surface the crash.
                self.sim._crashed.append((self, exc))
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must "
                "yield Event instances (Timeout, Semaphore.acquire(), ...)")
        if target.sim is not self.sim:
            raise SimulationError("yielded event belongs to a different simulator")
        self._waiting_on = target
        self._wait_since = self.sim.now
        target.add_callback(self._resume)


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("events", "_n_done")

    def __init__(self, sim: "Simulator", events: Iterable[Event], name: str):
        super().__init__(sim, name=name)
        self.events = list(events)
        self._n_done = 0
        if not self.events:
            self.succeed([])
            return
        # Each constituent gets its own callback carrying its position, so
        # the same Event object may appear more than once (and the firing
        # index is O(1), not an ``events.index`` scan that would always
        # report the first duplicate).
        for idx, ev in enumerate(self.events):
            ev.add_callback(lambda e, idx=idx: self._check(e, idx))

    def _check(self, ev: Event, idx: int) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when all constituent events have triggered; value is their values."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, events, name="all_of")

    def _check(self, ev: Event, idx: int) -> None:
        if self.triggered:
            return
        if not ev._ok:
            self.fail(ev._value)
            return
        self._n_done += 1
        if self._n_done == len(self.events):
            self.succeed([e._value for e in self.events])


class AnyOf(_Condition):
    """Triggers when the first constituent event triggers; value is (index, value)."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, events, name="any_of")

    def _check(self, ev: Event, idx: int) -> None:
        if self.triggered:
            return
        if not ev._ok:
            self.fail(ev._value)
            return
        self.succeed((idx, ev._value))


class Simulator:
    """The event loop: a priority queue of ``(time, seq, event)``."""

    def __init__(self, fastpath: Optional[bool] = None):
        self.now: float = 0.0
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._crashed: list[tuple[Process, BaseException]] = []
        self._processes: list[Process] = []
        self.events_processed = 0
        #: CPU fast path (inlined run loop).  Resolved per instance from
        #: ``REPRO_ENGINE_FASTPATH`` unless overridden, so tests can compare
        #: both modes side by side.  Either setting yields bit-identical
        #: timestamps, event counts and results.
        self.fastpath: bool = _fastpath_default() if fastpath is None \
            else bool(fastpath)

    # -- process registry -------------------------------------------------
    def _register_process(self, proc: "Process") -> None:
        """Track live processes so deadlock reports can name them."""
        self._processes.append(proc)
        if len(self._processes) % 256 == 0:
            self._processes = [p for p in self._processes if p.is_alive]

    def stranded_processes(self) -> list["Process"]:
        """Processes that are still alive (useful after a deadlock)."""
        self._processes = [p for p in self._processes if p.is_alive]
        return list(self._processes)

    def _deadlock_report(self, stop_event: "Event", limit: int = 16) -> str:
        """Actionable deadlock diagnostic: who is stranded, waiting on what.

        This is what makes watchdog reports useful: instead of only a
        stranded-event count, each live process is listed with the event it
        is ``_waiting_on`` and the simulated time it started waiting.
        """
        stranded = self.stranded_processes()
        head = (f"run(until={stop_event!r}) deadlocked at t={self.now:g}s "
                f"with {len(self._queue)} stranded events and "
                f"{len(stranded)} stranded processes")
        lines = [head]
        for proc in stranded[:limit]:
            target = proc._waiting_on
            if target is None:
                what = "nothing (never resumed)"
            else:
                what = target.name or repr(target)
            lines.append(f"  - process {proc.name!r} waiting on {what} "
                         f"since t={proc._wait_since:g}s")
        if len(stranded) > limit:
            lines.append(f"  ... and {len(stranded) - limit} more")
        return "\n".join(lines)

    # -- factories --------------------------------------------------------
    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def timeout_at(self, when: float, value: Any = None) -> Timeout:
        """A timeout firing at *absolute* simulated time ``when``.

        Unlike ``timeout(when - now)`` this schedules the heap entry at
        exactly ``when`` with no float round trip, so batched charges can
        land on the same bit-exact timestamp a sequence of relative
        timeouts would have produced.
        """
        if when < self.now:
            raise ValueError(
                f"timeout_at({when!r}) is in the past (now={self.now!r})")
        tmo = Timeout.__new__(Timeout)
        tmo.sim = self
        tmo.callbacks = []
        tmo._value = value
        tmo._ok = True
        tmo._scheduled = True
        tmo.delay = when - self.now
        self._seq += 1
        heapq.heappush(self._queue, (when, self._seq, tmo))
        return tmo

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling -------------------------------------------------------
    def _schedule(self, event: Event, delay: float) -> None:
        if event._scheduled:
            raise SimulationError(f"event {event!r} scheduled twice")
        event._scheduled = True
        self._seq += 1
        heapq.heappush(self._queue, (self.now + delay, self._seq, event))

    def _step(self) -> None:
        when, _seq, event = heapq.heappop(self._queue)
        if when < self.now:
            raise SimulationError("time went backwards")
        self.now = when
        callbacks, event.callbacks = event.callbacks, None
        self.events_processed += 1
        for cb in callbacks:
            cb(event)

    # -- running ----------------------------------------------------------
    def run(self, until: Optional[float | Event] = None,
            max_events: Optional[int] = None) -> Any:
        """Run until the queue drains, a deadline passes, or an event triggers.

        ``until`` may be a simulated-time deadline (float) or an
        :class:`Event` (commonly a :class:`Process`) to wait for; in the
        latter case the event's value is returned.  ``max_events`` guards
        against runaway simulations.
        """
        deadline: Optional[float] = None
        stop_event: Optional[Event] = None
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            deadline = float(until)

        if max_events is None and self.fastpath:
            self._run_loop_fast(stop_event, deadline)
        else:
            budget = max_events if max_events is not None else float("inf")
            while self._queue:
                if stop_event is not None and stop_event.processed:
                    break
                when = self._queue[0][0]
                if deadline is not None and when > deadline:
                    self.now = deadline
                    break
                if budget <= 0:
                    raise SimulationError(
                        f"exceeded max_events={max_events} at t={self.now:g}s")
                budget -= 1
                self._step()
                if self._crashed:
                    proc, exc = self._crashed[0]
                    raise SimulationError(
                        f"process {proc.name!r} crashed at t={self.now:g}s"
                    ) from exc

        if stop_event is not None:
            if not stop_event.triggered:
                raise SimulationError(self._deadlock_report(stop_event))
            if not stop_event._ok:
                raise stop_event._value
            return stop_event._value
        if deadline is not None and not self._queue:
            self.now = max(self.now, deadline)
        return None

    def _run_loop_fast(self, stop_event: Optional[Event],
                       deadline: Optional[float]) -> None:
        """The default run loop with ``_step`` inlined.

        Semantically identical to the reference loop in :meth:`run` (same
        pop order, same ``events_processed`` accounting, same crash and
        deadline handling) minus the per-event budget arithmetic, method
        dispatch and attribute traffic.  Kept textually close to
        ``_step``/``run`` on purpose — any behavioural edit must land in
        both loops.
        """
        queue = self._queue
        crashed = self._crashed
        pop = heapq.heappop
        processed = 0
        try:
            while queue:
                if stop_event is not None and stop_event.callbacks is None:
                    break
                when = queue[0][0]
                if deadline is not None and when > deadline:
                    self.now = deadline
                    break
                when, _seq, event = pop(queue)
                if when < self.now:
                    raise SimulationError("time went backwards")
                self.now = when
                callbacks, event.callbacks = event.callbacks, None
                processed += 1
                for cb in callbacks:
                    cb(event)
                if crashed:
                    proc, exc = crashed[0]
                    raise SimulationError(
                        f"process {proc.name!r} crashed at t={self.now:g}s"
                    ) from exc
        finally:
            self.events_processed += processed

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")
