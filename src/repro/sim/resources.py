"""Synchronisation and contention primitives built on the event engine.

These are the building blocks the hardware model uses:

* :class:`Semaphore` — counting semaphore with both *consuming* acquires
  and tt-metal style non-consuming ``wait_at_least`` (the paper's green
  dashed reader/writer semaphore in Fig. 3).
* :class:`Mutex` — binary convenience wrapper.
* :class:`Channel` — bounded FIFO of Python objects (host↔device queues).
* :class:`Resource` — SimPy-style capacity resource with FIFO queueing.
* :class:`FifoServer` — a process-free serial server with a service rate;
  models a NoC link, DMA engine or DRAM bank port cheaply: a transfer of
  ``n`` bytes completes at ``max(now, busy_until) + overhead + n/rate``.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, Optional

from repro.sim.engine import Event, SimulationError, Simulator

__all__ = ["Semaphore", "Mutex", "Channel", "Resource", "FifoServer"]


class Semaphore:
    """Counting semaphore with FIFO wakeup.

    Two waiting disciplines are offered:

    * ``acquire(n)`` — consuming: waits until the value is at least ``n``
      then subtracts ``n`` (classic semaphore).
    * ``wait_at_least(v)`` — non-consuming: waits until the value reaches
      ``v`` without modifying it.  This matches tt-metal's
      ``noc_semaphore_wait`` where a data-mover core blocks until a peer
      has advanced a counter.
    """

    def __init__(self, sim: Simulator, value: int = 0, name: str = ""):
        if value < 0:
            raise ValueError("semaphore value must be non-negative")
        self.sim = sim
        self.value = value
        self.name = name
        self._acquirers: Deque[tuple[int, Event]] = deque()
        self._watchers: list[tuple[int, Event]] = []

    def try_acquire(self, n: int = 1) -> bool:
        """Consume ``n`` immediately if possible; never blocks.

        FIFO discipline is preserved: with acquirers queued, even a
        satisfiable request must line up behind them, so this returns
        ``False`` and the caller falls back to :meth:`acquire`.
        """
        if n <= 0:
            raise ValueError("acquire count must be positive")
        if self._acquirers or self.value < n:
            return False
        self.value -= n
        return True

    def try_wait_at_least(self, v: int) -> bool:
        """Non-consuming threshold test; ``True`` iff a wait would not block.

        Watchers are broadcast (no queue-order concerns), so a satisfied
        threshold can always be answered synchronously.
        """
        return self.value >= v

    def acquire(self, n: int = 1) -> Event:
        if n <= 0:
            raise ValueError("acquire count must be positive")
        ev = self.sim.event(name=f"sem.acquire({self.name})")
        self._acquirers.append((n, ev))
        self._drain()
        return ev

    def wait_at_least(self, v: int) -> Event:
        ev = self.sim.event(name=f"sem.wait({self.name}>={v})")
        self._watchers.append((v, ev))
        self._drain()
        return ev

    def release(self, n: int = 1) -> None:
        if n <= 0:
            raise ValueError("release count must be positive")
        self.value += n
        self._drain()

    def set_value(self, v: int) -> None:
        """tt-metal ``noc_semaphore_set``: overwrite the counter."""
        if v < 0:
            raise ValueError("semaphore value must be non-negative")
        self.value = v
        self._drain()

    def _drain(self) -> None:
        # Watchers are broadcast: every satisfied threshold fires, whatever
        # the arrival order (barrier semantics).  Acquirers are strict
        # FIFO: the head blocks until satisfiable (no overtaking).
        fired = [w for w in self._watchers if self.value >= w[0]]
        if fired:
            self._watchers = [w for w in self._watchers
                              if self.value < w[0]]
            for _v, ev in fired:
                ev.succeed(self.value)
        while self._acquirers:
            n, ev = self._acquirers[0]
            if self.value < n:
                return
            self.value -= n
            self._acquirers.popleft()
            ev.succeed()
            # consuming may unblock watchers? no — value only decreased.

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Semaphore {self.name!r} value={self.value} "
                f"waiters={len(self._acquirers) + len(self._watchers)}>")


class Mutex:
    """Binary lock; ``yield mutex.acquire()`` ... ``mutex.release()``."""

    def __init__(self, sim: Simulator, name: str = ""):
        self._sem = Semaphore(sim, value=1, name=name or "mutex")

    def acquire(self) -> Event:
        return self._sem.acquire(1)

    def release(self) -> None:
        if self._sem.value != 0:
            raise SimulationError("mutex released while not held")
        self._sem.release(1)

    @property
    def locked(self) -> bool:
        return self._sem.value == 0


class Channel:
    """Bounded FIFO of items with blocking put/get.

    ``capacity=None`` gives an unbounded channel (puts never block).
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None,
                 name: str = ""):
        if capacity is not None and capacity <= 0:
            raise ValueError("channel capacity must be positive or None")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Any, Event]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> Event:
        ev = self.sim.event(name=f"chan.put({self.name})")
        self._putters.append((item, ev))
        self._drain()
        return ev

    def get(self) -> Event:
        ev = self.sim.event(name=f"chan.get({self.name})")
        self._getters.append(ev)
        self._drain()
        return ev

    def _drain(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._putters and (
                    self.capacity is None or len(self._items) < self.capacity):
                item, ev = self._putters.popleft()
                self._items.append(item)
                ev.succeed()
                progressed = True
            while self._getters and self._items:
                self._getters.popleft().succeed(self._items.popleft())
                progressed = True


class Resource:
    """Capacity-limited resource with FIFO queueing.

    Usage from a process::

        yield resource.request()
        try:
            yield sim.timeout(service_time)
        finally:
            resource.release()
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity <= 0:
            raise ValueError("resource capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._waiters: Deque[Event] = deque()

    def request(self) -> Event:
        ev = self.sim.event(name=f"res.request({self.name})")
        self._waiters.append(ev)
        self._drain()
        return ev

    def release(self) -> None:
        if self.in_use <= 0:
            raise SimulationError(f"resource {self.name!r} over-released")
        self.in_use -= 1
        self._drain()

    def _drain(self) -> None:
        while self._waiters and self.in_use < self.capacity:
            self.in_use += 1
            self._waiters.popleft().succeed()

    def using(self, duration: float) -> Generator[Event, Any, None]:
        """Helper: hold the resource for ``duration`` (composable via yield from)."""
        yield self.request()
        try:
            yield self.sim.timeout(duration)
        finally:
            self.release()


class FifoServer:
    """Process-free serial server with a byte rate and fixed per-job overhead.

    Models a unidirectional NoC link, a DMA engine queue, or a DRAM bank
    port: jobs are served strictly in submission order, each taking
    ``overhead + nbytes / rate`` seconds of exclusive server time.  The
    implementation keeps only a ``busy_until`` watermark, so a million-job
    burst costs O(1) events when submitted as one call.

    Statistics (``busy_time``, ``bytes_served``, ``jobs``) support
    utilisation reporting in the experiments.
    """

    def __init__(self, sim: Simulator, rate: float, overhead: float = 0.0,
                 name: str = ""):
        if rate <= 0:
            raise ValueError("rate must be positive (bytes/second)")
        if overhead < 0:
            raise ValueError("overhead must be non-negative")
        self.sim = sim
        self.rate = float(rate)
        self.overhead = float(overhead)
        self.name = name
        self.busy_until = 0.0
        self.busy_time = 0.0
        self.bytes_served = 0
        self.jobs = 0
        self._done_name = f"fifo.done({name})"

    def service_time(self, nbytes: float, jobs: int = 1) -> float:
        return jobs * self.overhead + nbytes / self.rate

    def submit(self, nbytes: float, jobs: int = 1,
               extra_time: float = 0.0) -> Event:
        """Enqueue ``jobs`` back-to-back jobs totalling ``nbytes`` bytes.

        Returns an event that triggers at service completion.  ``extra_time``
        adds a fixed latency that occupies the server (e.g. a DRAM row
        activation).
        """
        if nbytes < 0 or jobs < 0:
            raise ValueError("nbytes and jobs must be non-negative")
        start = max(self.sim.now, self.busy_until)
        duration = self.service_time(nbytes, jobs) + extra_time
        self.busy_until = start + duration
        self.busy_time += duration
        self.bytes_served += int(nbytes)
        self.jobs += jobs
        ev = Event(self.sim, self._done_name)
        ev.succeed(value=self.busy_until, delay=self.busy_until - self.sim.now)
        return ev

    @property
    def utilisation(self) -> float:
        """Fraction of elapsed simulated time the server has been busy."""
        return self.busy_time / self.sim.now if self.sim.now > 0 else 0.0
