"""The Section-V streaming benchmark.

Loads integers from DRAM as fast as possible on one data-mover core,
passes them through a circular buffer to the other data mover, which
writes them back to DRAM.  Sweeping request batch size, synchronisation
discipline, access order, read replication, interleaving page size and
core count reproduces Tables III–VII.
"""

from repro.streaming.kernels import StreamConfig, StreamResult, run_streaming
from repro.streaming.sweep import (
    sweep_batch_sizes,
    sweep_multicore,
    sweep_page_sizes,
    sweep_replication,
)

__all__ = [
    "StreamConfig",
    "StreamResult",
    "run_streaming",
    "sweep_batch_sizes",
    "sweep_multicore",
    "sweep_page_sizes",
    "sweep_replication",
]
