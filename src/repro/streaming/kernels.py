"""Streaming kernels: DRAM → CB → DRAM as fast as possible.

One reader data mover fills CB pages with bursts of ``read_batch``-byte
requests; the writer drains them with ``write_batch``-byte requests to
the destination buffer at the same logical offsets, so the benchmark is
also a functional DRAM→DRAM copy (verified by tests at small scale).

Access order:

* ``contiguous`` — row after row, so consecutive requests extend each
  other (Table III);
* non-contiguous — batch columns are traversed *downwards through Y*
  (the paper's wording), so every consecutive request jumps by the row
  stride (Table IV).

``replication`` re-reads the ``n`` previous rows alongside every row read
(Table V); re-reads are flagged as row-buffer replays.  ``page_size``
interleaves the buffers across the 8 banks (Table VI).  ``n_cores`` splits
the rows across cores that share the same two buffers (Table VII).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.arch.device import GrayskullDevice
from repro.arch.tensix import DATA_MOVER_0, DATA_MOVER_1
from repro.core.decomposition import split_extent
from repro.ttmetal import (
    CreateCircularBuffer,
    CreateKernel,
    EnqueueProgram,
    EnqueueWriteBuffer,
    Finish,
    Program,
    create_buffer,
)

__all__ = ["StreamConfig", "StreamResult", "run_streaming"]

CB_STREAM = 0


@dataclass(frozen=True)
class StreamConfig:
    """One streaming experiment (defaults: the paper's problem)."""

    rows: int = 4096
    row_elems: int = 4096
    elem_bytes: int = 4
    read_batch: Optional[int] = None   #: bytes per read request (None = full row)
    write_batch: Optional[int] = None  #: bytes per write request (None = full row)
    sync_read: bool = False          #: barrier after every read request
    sync_write: bool = False         #: barrier after every write request
    contiguous: bool = True
    replication: int = 0             #: re-read the n previous rows per row
    page_size: Optional[int] = None  #: interleave page; None = single bank
    n_cores: int = 1
    verify: bool = False             #: functionally check dst == src

    @property
    def row_bytes(self) -> int:
        return self.row_elems * self.elem_bytes

    @property
    def total_bytes(self) -> int:
        return self.rows * self.row_bytes

    def __post_init__(self):
        if self.read_batch is None:
            object.__setattr__(self, "read_batch", self.row_bytes)
        if self.write_batch is None:
            object.__setattr__(self, "write_batch", self.row_bytes)
        if self.read_batch <= 0 or self.write_batch <= 0:
            raise ValueError("batch sizes must be positive")
        if self.row_bytes % self.read_batch or self.row_bytes % self.write_batch:
            raise ValueError("batch sizes must divide the row size")
        if self.replication < 0:
            raise ValueError("replication must be non-negative")
        if self.n_cores <= 0:
            raise ValueError("n_cores must be positive")


@dataclass(frozen=True)
class StreamResult:
    """Runtime and traffic of one streaming run."""

    config: StreamConfig
    runtime_s: float
    read_requests: int
    write_requests: int
    bytes_read: int
    bytes_written: int
    verified: Optional[bool]

    @property
    def read_bw(self) -> float:
        return self.bytes_read / self.runtime_s

    @property
    def write_bw(self) -> float:
        return self.bytes_written / self.runtime_s


@dataclass(frozen=True)
class _Group:
    """One CB page worth of uniform requests: n × batch every stride."""

    start: int
    n: int
    batch: int
    stride: int

    def ranges(self) -> List[tuple[int, int]]:
        return [(self.start + i * self.stride, self.batch)
                for i in range(self.n)]


def _row_groups(cfg: StreamConfig, row_lo: int, row_hi: int,
                batch: int) -> List[_Group]:
    """Request groups (one CB page each) in the configured access order."""
    groups: List[_Group] = []
    per_row = cfg.row_bytes // batch
    if cfg.contiguous:
        for r in range(row_lo, row_hi):
            groups.append(_Group(r * cfg.row_bytes, per_row, batch, batch))
    else:
        # Proceed downwards through Y: batch column j over all rows, one
        # page worth of column entries per group.
        per_group = max(1, cfg.row_bytes // batch)
        rows = row_hi - row_lo
        for j in range(per_row):
            for k in range(0, rows, per_group):
                n = min(per_group, rows - k)
                start = (row_lo + k) * cfg.row_bytes + j * batch
                groups.append(_Group(start, n, batch, cfg.row_bytes))
    return groups


def _burst_read(ctx, buf, group: _Group, ptr: int, page: int, *,
                sync: bool, replay: bool = False):
    """Dispatch a group read via the fast uniform path when possible."""
    if not buf.interleaved:
        yield from ctx.noc_read_buffer_burst_uniform(
            buf, group.start, group.n, group.batch, group.stride, ptr,
            sync=sync, replay=replay, window=page)
    else:
        yield from ctx.noc_read_buffer_burst(
            buf, group.ranges(), ptr, sync=sync, replay=replay, window=page)


def _burst_write(ctx, buf, group: _Group, ptr: int, page: int, *,
                 sync: bool):
    if not buf.interleaved:
        yield from ctx.noc_write_buffer_burst_uniform(
            buf, group.start, group.n, group.batch, group.stride, ptr,
            sync=sync, window=page)
    else:
        yield from ctx.noc_write_buffer_burst(
            buf, group.ranges(), ptr, sync=sync, window=page)


def _reader_kernel(ctx):
    cfg: StreamConfig = ctx.arg("config")
    src = ctx.arg("src")
    row_lo, row_hi = ctx.arg("row_range")
    page = ctx.arg("page_bytes")

    for gi, group in enumerate(_row_groups(cfg, row_lo, row_hi,
                                           cfg.read_batch)):
        yield from ctx.cb_reserve_back(CB_STREAM, 1)
        ptr = ctx.cb_write_ptr(CB_STREAM)
        if cfg.replication and cfg.contiguous:
            # Re-read the n previous rows alongside the actual row read
            # (Table V): replicated fetches are row-buffer replays.
            base_row = row_lo + gi
            n_prev = min(cfg.replication, base_row)
            if n_prev:
                prev = _Group((base_row - n_prev) * cfg.row_bytes,
                              n_prev, cfg.row_bytes, cfg.row_bytes)
                yield from _burst_read(ctx, src, prev, ptr, page,
                                       sync=False, replay=True)
        yield from _burst_read(ctx, src, group, ptr, page,
                               sync=cfg.sync_read)
        yield from ctx.noc_async_read_barrier()
        yield from ctx.cb_push_back(CB_STREAM, 1)


def _writer_kernel(ctx):
    cfg: StreamConfig = ctx.arg("config")
    dst = ctx.arg("dst")
    row_lo, row_hi = ctx.arg("row_range")
    page = ctx.arg("page_bytes")

    # The writer follows its *own* access plan (its batch size and order
    # are swept independently of the reader's in Tables III/IV), consuming
    # one CB page per reader group.  When both sides use the same batch
    # size and order — the verified configuration — page k's content is
    # exactly plan-group k, so the benchmark doubles as a DRAM→DRAM copy.
    n_groups = len(_row_groups(cfg, row_lo, row_hi, cfg.read_batch))
    plan = _row_groups(cfg, row_lo, row_hi, cfg.write_batch)
    # Repartition the plan's groups so the writer drains exactly one CB
    # page per reader group (group counts match whenever read/write batch
    # sizes match, which is every configuration the sweeps verify).
    base, extra = divmod(len(plan), n_groups)
    pos = 0
    for g in range(n_groups):
        take = base + (1 if g < extra else 0)
        yield from ctx.cb_wait_front(CB_STREAM, 1)
        ptr = ctx.cb_read_ptr(CB_STREAM)
        for grp in plan[pos:pos + take]:
            yield from _burst_write(ctx, dst, grp, ptr, page,
                                    sync=cfg.sync_write)
        if take:
            yield from ctx.noc_async_write_barrier()
        pos += take
        yield from ctx.cb_pop_front(CB_STREAM, 1)


def run_streaming(cfg: StreamConfig,
                  device: Optional[GrayskullDevice] = None) -> StreamResult:
    """Execute one streaming experiment on a (fresh by default) device."""
    dev = device or GrayskullDevice()
    mk = dict(interleaved=True, page_size=cfg.page_size) \
        if cfg.page_size else dict(bank_id=0)
    src = create_buffer(dev, cfg.total_bytes, **mk)
    dst = create_buffer(dev, cfg.total_bytes, **mk)

    rng = np.random.default_rng(42)
    payload = None
    if cfg.verify:
        payload = rng.integers(0, 2**32, size=cfg.total_bytes // 4,
                               dtype=np.uint32)
        EnqueueWriteBuffer(dev, src, payload)

    prog = Program(dev)
    page = min(cfg.row_bytes, 16384)
    shares = split_extent(cfg.rows, cfg.n_cores)
    for i, (lo, count) in enumerate(shares):
        core = dev.core(i % dev.grid_width, i // dev.grid_width)
        CreateCircularBuffer(prog, core, CB_STREAM, page, 4)
        args = dict(config=cfg, src=src, dst=dst,
                    row_range=(lo, lo + count), page_bytes=page)
        CreateKernel(prog, _reader_kernel, core, DATA_MOVER_0, args)
        CreateKernel(prog, _writer_kernel, core, DATA_MOVER_1, args)

    EnqueueProgram(dev, prog)
    runtime = Finish(dev)

    verified = None
    if cfg.verify:
        out = dst.read_host().view(np.uint32)
        verified = bool(np.array_equal(out, payload))

    n0, n1 = dev.noc0.stats, dev.noc1.stats
    return StreamResult(
        config=cfg,
        runtime_s=runtime,
        read_requests=n0.read_requests + n1.read_requests,
        write_requests=n0.write_requests + n1.write_requests,
        bytes_read=n0.read_bytes + n1.read_bytes,
        bytes_written=n0.write_bytes + n1.write_bytes,
        verified=verified,
    )
