"""Sweep drivers that regenerate the rows of Tables III–VII.

Each driver returns structured rows (batch size / page size / cores →
runtime) ready for the report formatter.  Devices are created fresh per
configuration so runs never share queue state.

The problem size is parameterisable: the paper uses 4096×4096 32-bit
integers; tests use smaller grids (runtimes scale linearly in rows, which
``tests/streaming`` verifies).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.streaming.kernels import StreamConfig, StreamResult, run_streaming

__all__ = [
    "BatchSweepRow",
    "sweep_batch_sizes",
    "sweep_replication",
    "sweep_page_sizes",
    "sweep_multicore",
    "PAPER_BATCH_SIZES",
    "PAPER_PAGE_SIZES",
]

#: Table III/IV batch sizes (bytes), largest to smallest.
PAPER_BATCH_SIZES = [16384, 8192, 4096, 2048, 1024, 512, 256, 128, 64, 32,
                     16, 8, 4]
#: Table VI/VII page sizes (None = single bank, i.e. the "none" row).
PAPER_PAGE_SIZES: List[Optional[int]] = [
    None, 64 << 10, 32 << 10, 16 << 10, 8 << 10, 4 << 10, 2 << 10, 1 << 10]


@dataclass(frozen=True)
class BatchSweepRow:
    """One Table III/IV row: a batch size's four runtimes."""

    batch_size: int
    requests_per_row: int
    read_nosync_s: float
    read_sync_s: float
    write_nosync_s: float
    write_sync_s: float


def sweep_batch_sizes(base: Optional[StreamConfig] = None,
                      batch_sizes: Sequence[int] = PAPER_BATCH_SIZES,
                      contiguous: bool = True) -> List[BatchSweepRow]:
    """Tables III (contiguous) and IV (non-contiguous).

    Exactly as the paper: when sweeping the read batch, writes stay at the
    full-row batch, and vice versa; sync means a barrier after every
    request on the swept side.
    """
    base = base or StreamConfig()
    base = replace(base, contiguous=contiguous)
    rows = []
    for batch in batch_sizes:
        if base.row_bytes % batch:
            raise ValueError(f"batch {batch} does not divide the row size")
        read_ns = run_streaming(replace(base, read_batch=batch))
        read_s = run_streaming(replace(base, read_batch=batch,
                                       sync_read=True))
        write_ns = run_streaming(replace(base, write_batch=batch))
        write_s = run_streaming(replace(base, write_batch=batch,
                                        sync_write=True))
        rows.append(BatchSweepRow(
            batch_size=batch,
            requests_per_row=base.row_bytes // batch,
            read_nosync_s=read_ns.runtime_s,
            read_sync_s=read_s.runtime_s,
            write_nosync_s=write_ns.runtime_s,
            write_sync_s=write_s.runtime_s,
        ))
    return rows


def sweep_replication(base: Optional[StreamConfig] = None,
                      factors: Sequence[int] = (1, 2, 4, 8, 16, 32)
                      ) -> List[tuple[int, float]]:
    """Table V: replicate every row read ``factor`` times in total."""
    base = base or StreamConfig()
    out = []
    for f in factors:
        if f < 1:
            raise ValueError("replication factor counts total reads; >= 1")
        res = run_streaming(replace(base, replication=f - 1))
        out.append((f, res.runtime_s))
    return out


def sweep_page_sizes(base: Optional[StreamConfig] = None,
                     page_sizes: Sequence[Optional[int]] = None,
                     replications: Sequence[int] = (0, 8, 16, 32)
                     ) -> List[tuple[Optional[int], List[float]]]:
    """Table VI: interleaving page size × replication factor."""
    base = base or StreamConfig()
    pages = PAPER_PAGE_SIZES if page_sizes is None else list(page_sizes)
    out = []
    for page in pages:
        runtimes = []
        for repl in replications:
            res = run_streaming(replace(base, page_size=page,
                                        replication=repl))
            runtimes.append(res.runtime_s)
        out.append((page, runtimes))
    return out


def sweep_multicore(base: Optional[StreamConfig] = None,
                    page_sizes: Sequence[Optional[int]] = None,
                    core_counts: Sequence[int] = (1, 2, 4, 8)
                    ) -> List[tuple[Optional[int], List[float]]]:
    """Table VII: interleaving page size × number of Tensix cores."""
    base = base or StreamConfig()
    pages = (PAPER_PAGE_SIZES[:-1] if page_sizes is None
             else list(page_sizes))  # the paper's Table VII stops at 2K
    out = []
    for page in pages:
        runtimes = []
        for n in core_counts:
            res = run_streaming(replace(base, page_size=page, n_cores=n))
            runtimes.append(res.runtime_s)
        out.append((page, runtimes))
    return out
