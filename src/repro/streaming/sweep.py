"""Sweep drivers that regenerate the rows of Tables III–VII.

Each driver returns structured rows (batch size / page size / cores →
runtime) ready for the report formatter.  Devices are created fresh per
configuration so runs never share queue state.

Sweep points are embarrassingly parallel and fully deterministic, so
every driver routes its configurations through the
:mod:`repro.parallel` engine: ``jobs`` fans the points out across
worker processes (results come back in submission order, so ``jobs=4``
output is byte-identical to the sequential ``jobs=1`` path) and
``cache`` re-uses content-addressed results from previous runs.  The
``*_configs`` builders expose the exact configuration lists so the
``repro sweep`` CLI can drive the same plans with per-job reporting.

The problem size is parameterisable: the paper uses 4096×4096 32-bit
integers; tests use smaller grids (runtimes scale linearly in rows, which
``tests/streaming`` verifies).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.parallel import JobSpec, sweep_results
from repro.streaming.kernels import StreamConfig, StreamResult

__all__ = [
    "BatchSweepRow",
    "sweep_batch_sizes",
    "sweep_replication",
    "sweep_page_sizes",
    "sweep_multicore",
    "batch_sweep_configs",
    "replication_sweep_configs",
    "page_sweep_configs",
    "multicore_sweep_configs",
    "run_stream_configs",
    "PAPER_BATCH_SIZES",
    "PAPER_PAGE_SIZES",
]

#: Table III/IV batch sizes (bytes), largest to smallest.
PAPER_BATCH_SIZES = [16384, 8192, 4096, 2048, 1024, 512, 256, 128, 64, 32,
                     16, 8, 4]
#: Table VI/VII page sizes (None = single bank, i.e. the "none" row).
PAPER_PAGE_SIZES: List[Optional[int]] = [
    None, 64 << 10, 32 << 10, 16 << 10, 8 << 10, 4 << 10, 2 << 10, 1 << 10]


@dataclass(frozen=True)
class BatchSweepRow:
    """One Table III/IV row: a batch size's four runtimes."""

    batch_size: int
    requests_per_row: int
    read_nosync_s: float
    read_sync_s: float
    write_nosync_s: float
    write_sync_s: float


# --------------------------------------------------------------------------
# configuration builders (shared by the drivers and the `repro sweep` CLI)
# --------------------------------------------------------------------------

def batch_sweep_configs(base: StreamConfig, batch_sizes: Sequence[int],
                        contiguous: bool = True
                        ) -> List[tuple[str, StreamConfig]]:
    """The Table III/IV plan: 4 labelled configurations per batch size."""
    base = replace(base, contiguous=contiguous)
    out: List[tuple[str, StreamConfig]] = []
    for batch in batch_sizes:
        if base.row_bytes % batch:
            raise ValueError(f"batch {batch} does not divide the row size")
        out.append((f"{batch}B read nosync",
                    replace(base, read_batch=batch)))
        out.append((f"{batch}B read sync",
                    replace(base, read_batch=batch, sync_read=True)))
        out.append((f"{batch}B write nosync",
                    replace(base, write_batch=batch)))
        out.append((f"{batch}B write sync",
                    replace(base, write_batch=batch, sync_write=True)))
    return out


def replication_sweep_configs(base: StreamConfig,
                              factors: Sequence[int]
                              ) -> List[tuple[str, StreamConfig]]:
    """The Table V plan: one configuration per replication factor."""
    out = []
    for f in factors:
        if f < 1:
            raise ValueError("replication factor counts total reads; >= 1")
        out.append((f"replication x{f}", replace(base, replication=f - 1)))
    return out


def page_sweep_configs(base: StreamConfig,
                       page_sizes: Optional[Sequence[Optional[int]]],
                       replications: Sequence[int]
                       ) -> List[tuple[str, StreamConfig]]:
    """The Table VI plan: page size × replication factor."""
    pages = PAPER_PAGE_SIZES if page_sizes is None else list(page_sizes)
    out = []
    for page in pages:
        label = "none" if page is None else f"{page >> 10}K"
        for repl in replications:
            out.append((f"page {label} repl {repl}",
                        replace(base, page_size=page, replication=repl)))
    return out


def multicore_sweep_configs(base: StreamConfig,
                            page_sizes: Optional[Sequence[Optional[int]]],
                            core_counts: Sequence[int]
                            ) -> List[tuple[str, StreamConfig]]:
    """The Table VII plan: page size × core count (paper stops at 2K)."""
    pages = (PAPER_PAGE_SIZES[:-1] if page_sizes is None
             else list(page_sizes))
    out = []
    for page in pages:
        label = "none" if page is None else f"{page >> 10}K"
        for n in core_counts:
            out.append((f"page {label} cores {n}",
                        replace(base, page_size=page, n_cores=n)))
    return out


def run_stream_configs(configs: Sequence[StreamConfig],
                       jobs: Optional[int] = None,
                       cache=None) -> List[StreamResult]:
    """Run streaming configurations through the parallel sweep engine."""
    specs = [JobSpec("stream", cfg) for cfg in configs]
    return sweep_results(specs, jobs=jobs, cache=cache)


# --------------------------------------------------------------------------
# drivers
# --------------------------------------------------------------------------

def sweep_batch_sizes(base: Optional[StreamConfig] = None,
                      batch_sizes: Sequence[int] = PAPER_BATCH_SIZES,
                      contiguous: bool = True, *,
                      jobs: Optional[int] = None,
                      cache=None) -> List[BatchSweepRow]:
    """Tables III (contiguous) and IV (non-contiguous).

    Exactly as the paper: when sweeping the read batch, writes stay at the
    full-row batch, and vice versa; sync means a barrier after every
    request on the swept side.
    """
    base = base or StreamConfig()
    plan = batch_sweep_configs(base, batch_sizes, contiguous)
    results = run_stream_configs([cfg for _, cfg in plan],
                                 jobs=jobs, cache=cache)
    rows = []
    for i, batch in enumerate(batch_sizes):
        read_ns, read_s, write_ns, write_s = results[4 * i:4 * i + 4]
        rows.append(BatchSweepRow(
            batch_size=batch,
            requests_per_row=base.row_bytes // batch,
            read_nosync_s=read_ns.runtime_s,
            read_sync_s=read_s.runtime_s,
            write_nosync_s=write_ns.runtime_s,
            write_sync_s=write_s.runtime_s,
        ))
    return rows


def sweep_replication(base: Optional[StreamConfig] = None,
                      factors: Sequence[int] = (1, 2, 4, 8, 16, 32), *,
                      jobs: Optional[int] = None,
                      cache=None) -> List[tuple[int, float]]:
    """Table V: replicate every row read ``factor`` times in total."""
    base = base or StreamConfig()
    plan = replication_sweep_configs(base, factors)
    results = run_stream_configs([cfg for _, cfg in plan],
                                 jobs=jobs, cache=cache)
    return [(f, res.runtime_s) for f, res in zip(factors, results)]


def sweep_page_sizes(base: Optional[StreamConfig] = None,
                     page_sizes: Sequence[Optional[int]] = None,
                     replications: Sequence[int] = (0, 8, 16, 32), *,
                     jobs: Optional[int] = None,
                     cache=None
                     ) -> List[tuple[Optional[int], List[float]]]:
    """Table VI: interleaving page size × replication factor."""
    base = base or StreamConfig()
    pages = PAPER_PAGE_SIZES if page_sizes is None else list(page_sizes)
    plan = page_sweep_configs(base, pages, replications)
    results = run_stream_configs([cfg for _, cfg in plan],
                                 jobs=jobs, cache=cache)
    n = len(replications)
    return [(page, [r.runtime_s for r in results[i * n:(i + 1) * n]])
            for i, page in enumerate(pages)]


def sweep_multicore(base: Optional[StreamConfig] = None,
                    page_sizes: Sequence[Optional[int]] = None,
                    core_counts: Sequence[int] = (1, 2, 4, 8), *,
                    jobs: Optional[int] = None,
                    cache=None
                    ) -> List[tuple[Optional[int], List[float]]]:
    """Table VII: interleaving page size × number of Tensix cores."""
    base = base or StreamConfig()
    pages = (PAPER_PAGE_SIZES[:-1] if page_sizes is None
             else list(page_sizes))  # the paper's Table VII stops at 2K
    plan = multicore_sweep_configs(base, pages, core_counts)
    results = run_stream_configs([cfg for _, cfg in plan],
                                 jobs=jobs, cache=cache)
    n = len(core_counts)
    return [(page, [r.runtime_s for r in results[i * n:(i + 1) * n]])
            for i, page in enumerate(pages)]
