"""tt-metal-style SDK for the simulated Grayskull.

This package mirrors the programming model the paper's kernels are written
against:

* :mod:`repro.ttmetal.buffers` — DRAM buffers: single-bank or interleaved
  across the 8 banks with a configurable page size (Section V, Table VI).
* :mod:`repro.ttmetal.kernel_api` — the device-side API surface
  (``noc_async_read``, ``cb_wait_front``, ``add_tiles``, semaphores, and
  the paper's ``cb_set_rd_ptr`` extension).  Kernels are Python generator
  functions taking a context object.
* :mod:`repro.ttmetal.host` — host-side program construction and enqueue
  operations (``CreateKernel``, ``CreateCircularBuffer``,
  ``EnqueueWriteBuffer``, ``EnqueueProgram``, ``Finish``).
"""

from repro.ttmetal.buffers import Buffer, BufferConfig, create_buffer
from repro.ttmetal.host import (
    CoreStall,
    CreateCircularBuffer,
    CreateKernel,
    CreateSemaphore,
    DeviceHangError,
    EnqueueProgram,
    EnqueueReadBuffer,
    EnqueueWriteBuffer,
    Finish,
    LintError,
    LintWarning,
    PcieTransferError,
    Program,
)
from repro.ttmetal.kernel_api import ComputeCtx, DataMoverCtx

__all__ = [
    "Buffer",
    "BufferConfig",
    "ComputeCtx",
    "CoreStall",
    "CreateCircularBuffer",
    "CreateKernel",
    "CreateSemaphore",
    "DataMoverCtx",
    "DeviceHangError",
    "EnqueueProgram",
    "EnqueueReadBuffer",
    "EnqueueWriteBuffer",
    "Finish",
    "LintError",
    "LintWarning",
    "PcieTransferError",
    "Program",
    "create_buffer",
]
