"""DRAM buffers: single-bank and interleaved placements.

tt-metal offers two DRAM placements the paper studies in Section V:

* **single-bank** — the buffer is one contiguous region in one bank (the
  paper's initial approach: "we have allocated DRAM all in a single
  bank"); the allocator round-robins banks across *buffers*.
* **interleaved** — the buffer is cut into fixed-size pages cycled across
  all 8 banks (page size up to 64 KB), relieving pressure on any one bank
  under replicated load (Table VI).

A :class:`Buffer` resolves logical byte ranges to physical ``(bank,
address)`` segments; kernels and host enqueue operations use
:meth:`Buffer.locate` so a logical access transparently spans page
boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.arch.device import GrayskullDevice
from repro.arch.noc import ReadJob, WriteJob

__all__ = ["BufferConfig", "Buffer", "Segment", "create_buffer"]


@dataclass(frozen=True)
class BufferConfig:
    """Host-side description of a DRAM buffer."""

    size: int
    interleaved: bool = False
    page_size: Optional[int] = None     #: required iff interleaved
    bank_id: Optional[int] = None       #: force a bank for single-bank buffers

    def __post_init__(self):
        if self.size <= 0:
            raise ValueError("buffer size must be positive")
        if self.interleaved and not self.page_size:
            raise ValueError("interleaved buffers need a page_size")
        if not self.interleaved and self.page_size:
            raise ValueError("page_size only applies to interleaved buffers")


@dataclass(frozen=True)
class Segment:
    """One physical piece of a logical range: (bank, address, size, logical offset)."""

    bank_id: int
    addr: int
    size: int
    offset: int


class Buffer:
    """A DRAM buffer on one device."""

    def __init__(self, device: GrayskullDevice, config: BufferConfig):
        self.device = device
        self.config = config
        self.size = config.size
        if config.interleaved:
            self.page_size = int(config.page_size)  # type: ignore[arg-type]
            self._pages = device.dram.allocate_interleaved(
                config.size, self.page_size)
            self.bank_id = None
            self.addr = None
        else:
            self.page_size = None
            self._pages = None
            self.bank_id, self.addr = device.dram.allocate(
                config.size, bank_id=config.bank_id)

    @property
    def interleaved(self) -> bool:
        return self.config.interleaved

    @property
    def n_pages(self) -> int:
        return len(self._pages) if self._pages is not None else 1

    def page_location(self, page: int) -> tuple[int, int]:
        """(bank, address) of page ``page`` of an interleaved buffer."""
        if not self.interleaved:
            raise ValueError("page_location requires an interleaved buffer")
        return self._pages[page]

    def noc_coords(self) -> tuple[int, int]:
        """NoC coordinates of a single-bank buffer's bank (for get_noc_addr)."""
        if self.interleaved:
            raise ValueError("interleaved buffers are addressed per page")
        return self.device.dram_bank_noc_coords(self.bank_id)

    # -- logical addressing ------------------------------------------------
    def locate(self, offset: int, size: int) -> List[Segment]:
        """Physical segments covering logical ``[offset, offset+size)``.

        Single-bank buffers return one segment; interleaved buffers return
        one segment per touched page — the per-page NoC requests the DMA
        engine must issue (whose count drives the Table-VI page-size
        overheads).
        """
        if offset < 0 or size < 0 or offset + size > self.size:
            raise IndexError(
                f"range [{offset}, {offset + size}) outside buffer of "
                f"{self.size} bytes")
        if size == 0:
            return []
        if not self.interleaved:
            return [Segment(self.bank_id, self.addr + offset, size, offset)]
        segs: List[Segment] = []
        pos = offset
        end = offset + size
        while pos < end:
            page = pos // self.page_size
            in_page = pos % self.page_size
            take = min(self.page_size - in_page, end - pos)
            bank, base = self._pages[page]
            segs.append(Segment(bank, base + in_page, take, pos))
            pos += take
        return segs

    # -- host-side functional access (timing charged by host enqueue ops) ---
    def write_host(self, data: np.ndarray, offset: int = 0) -> None:
        """Store host bytes into the buffer (functional)."""
        payload = np.ascontiguousarray(data).view(np.uint8).ravel()
        for seg in self.locate(offset, payload.size):
            self.device.dram.bank(seg.bank_id).storage[
                seg.addr:seg.addr + seg.size] = \
                payload[seg.offset - offset:seg.offset - offset + seg.size]

    def read_host(self, offset: int = 0, size: Optional[int] = None) -> np.ndarray:
        """Fetch buffer bytes back to the host (functional)."""
        size = self.size - offset if size is None else size
        out = np.empty(size, dtype=np.uint8)
        for seg in self.locate(offset, size):
            out[seg.offset - offset:seg.offset - offset + seg.size] = \
                self.device.dram.bank(seg.bank_id).storage[
                    seg.addr:seg.addr + seg.size]
        return out

    # -- uniform strided access (vectorised fast path) ------------------------
    def _uniform_span(self, start: int, n: int, batch: int,
                      stride: int) -> tuple[int, int]:
        if self.interleaved:
            raise ValueError("uniform access requires a single-bank buffer")
        if n <= 0 or batch <= 0 or stride < batch:
            raise ValueError("need n>0, batch>0, stride>=batch")
        end = start + (n - 1) * stride + batch
        if start < 0 or end > self.size:
            raise IndexError(f"uniform range [{start},{end}) outside buffer")
        return start, end

    def gather_uniform(self, start: int, n: int, batch: int,
                       stride: int) -> np.ndarray:
        """Read ``n`` requests of ``batch`` bytes spaced ``stride`` apart.

        One vectorised gather replacing ``n`` :class:`ReadJob`s — used by
        the streaming sweeps where ``n`` reaches 16.8 M.  Per-request
        alignment-corruption emulation is *not* applied on this path (the
        sweeps never inspect payload content); tests exercising the
        alignment rules use the regular per-request path.
        """
        start, end = self._uniform_span(start, n, batch, stride)
        bank = self.device.dram.bank(self.bank_id)
        span = bank.storage[self.addr + start:self.addr + end]
        if stride == batch:
            return span.copy()
        # Strided gather without copying the whole span: a read-only
        # strided view of exactly (n, batch) bytes, then one small copy.
        view = np.lib.stride_tricks.as_strided(
            span, shape=(n, batch), strides=(stride, 1), writeable=False)
        return np.ascontiguousarray(view).ravel()

    def scatter_uniform(self, start: int, n: int, batch: int, stride: int,
                        data: np.ndarray) -> None:
        """Write ``n`` uniform requests from ``data`` (n·batch bytes)."""
        start, end = self._uniform_span(start, n, batch, stride)
        payload = np.ascontiguousarray(data).view(np.uint8).ravel()
        if payload.size != n * batch:
            raise ValueError(
                f"payload {payload.size} B != {n} x {batch} B")
        bank = self.device.dram.bank(self.bank_id)
        span = bank.storage[self.addr + start:self.addr + end]
        if stride == batch:
            span[:] = payload
            return
        blocks = payload.reshape(n, batch)
        tail = span[(n - 1) * stride:]
        strided = np.lib.stride_tricks.as_strided(
            span, shape=(n - 1, batch), strides=(stride, 1), writeable=True
        ) if n > 1 else None
        if strided is not None:
            strided[:] = blocks[:-1]
        tail[:batch] = blocks[-1]

    # -- kernel-side job builders -------------------------------------------
    def read_jobs(self, offset: int, size: int) -> List[ReadJob]:
        return [ReadJob(s.bank_id, s.addr, s.size)
                for s in self.locate(offset, size)]

    def write_jobs(self, offset: int, data: np.ndarray) -> List[WriteJob]:
        payload = np.ascontiguousarray(data).view(np.uint8).ravel()
        jobs = []
        for s in self.locate(offset, payload.size):
            jobs.append(WriteJob(
                s.bank_id, s.addr,
                payload[s.offset - offset:s.offset - offset + s.size]))
        return jobs

    def __repr__(self) -> str:  # pragma: no cover
        if self.interleaved:
            return (f"<Buffer interleaved {self.size}B pages={self.page_size}B "
                    f"x{self.n_pages}>")
        return f"<Buffer bank{self.bank_id}@{self.addr:#x} {self.size}B>"


def create_buffer(device: GrayskullDevice, size: int, *,
                  interleaved: bool = False,
                  page_size: Optional[int] = None,
                  bank_id: Optional[int] = None) -> Buffer:
    """Convenience wrapper mirroring tt-metal's ``CreateBuffer``."""
    return Buffer(device, BufferConfig(size=size, interleaved=interleaved,
                                       page_size=page_size, bank_id=bank_id))
